// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// hyperdom_server: the single-binary query server. Equivalent to
// `hyperdom_cli serve ...` — this entry point exists so deployments ship
// one obvious binary.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc));
  args.emplace_back("serve");
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return hyperdom::cli::Run(args, std::cout, std::cerr);
}
