// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return hyperdom::cli::Run(args, std::cout, std::cerr);
}
