// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "tools/cli.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <numeric>
#include <optional>
#include <thread>

#include <cmath>

#include "common/fault.h"
#include "common/io.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "data/csv.h"
#include "dominance/certified.h"
#include "dominance/instrumented.h"
#include "dominance/numeric_oracle.h"
#include "data/generator.h"
#include "dominance/growing.h"
#include "eval/experiment.h"
#include "exec/batch.h"
#include "eval/table_printer.h"
#include "eval/workload.h"
#include "index/mutable_ss_tree.h"
#include "index/snapshot.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/inverse_ranking.h"
#include "query/knn.h"
#include "query/probabilistic_knn.h"
#include "query/range.h"
#include "server/admin.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_store.h"

namespace hyperdom {
namespace cli {

namespace {

constexpr char kUsage[] =
    "usage: hyperdom_cli COMMAND [--flag=value ...]\n"
    "commands:\n"
    "  generate    --out=FILE --n=N --dim=D [--mu=10] [--centers=gaussian|"
    "uniform]\n"
    "              [--radii=gaussian|uniform] [--seed=S]\n"
    "  dominate    --sa=X,..;R --sb=X,..;R --sq=X,..;R [--criterion=NAME|"
    "all]\n"
    "  knn         --data=FILE --query=X,..;R [--k=10] [--criterion=NAME]\n"
    "              [--strategy=hs|df] [--certified=1] [--deadline-ms=T]\n"
    "              [--node-budget=N] [--queries=N --seed=S --threads=T]\n"
    "  rank        --data=FILE --target=ID --query=X,..;R "
    "[--criterion=NAME]\n"
    "  range       --data=FILE --query=X,..;R --range=D\n"
    "  probknn     --data=FILE --query=X,..;R [--k=10] [--tau=0.5]\n"
    "              [--samples=400] [--seed=S]\n"
    "  expiry      --sa=X,..;R --sb=X,..;R --sq=X,..;R --va=V --vb=V "
    "--vq=V\n"
    "              [--horizon=100]\n"
    "  experiment  --data=FILE [--queries=10000] [--repeats=3] [--seed=S]\n"
    "  selfcheck   [--scenes=20000] [--dim=4] [--mu=10] [--seed=S]\n"
    "              [--certified=1]\n"
    "  snapshot    --op=save|load|verify --file=SNAP [--index=ss|vp]\n"
    "              [--data=FILE]\n"
    "  serve       --data=FILE [--port=0] [--host=127.0.0.1] [--threads=0]\n"
    "              [--queue-capacity=128] [--max-connections=256]\n"
    "              [--io-timeout-ms=5000] [--criterion=NAME] [--mutable=1]\n"
    "              [--admin-port=P] [--slow-query-ms=T] [--shards=K]\n"
    "              [--shard-policy=hash|kmeans]\n"
    "  query       --server=HOST:PORT --query=X,..;R [--k=10]\n"
    "              [--strategy=hs|df] [--budget-ms=T] [--node-budget=N]\n"
    "              [--timeout-ms=10000] [--attempts=4]\n"
    "  insert      --server=HOST:PORT --id=N --sphere=X,..;R\n"
    "              [--budget-ms=T] [--timeout-ms=10000] [--attempts=4]\n"
    "  remove      --server=HOST:PORT --id=N [--budget-ms=T]\n"
    "              [--timeout-ms=10000] [--attempts=4]\n"
    "  metrics     (prints the catalogue of process-wide metric names)\n"
    "criteria: minmax, mbr, gp, trigonometric, hyperbola, oracle, certified\n"
    "--certified=1 routes dominance through the certified engine and reports\n"
    "uncertainty rates and escalation-tier counters.\n"
    "global flags: --fault-rate=P and --fault-site=SITE arm the fault-\n"
    "injection registry (seeded by --seed) before the command runs;\n"
    "--deadline-ms / --node-budget bound a query, degrading gracefully to a\n"
    "flagged best-effort answer.\n"
    "observability: --metrics-out=FILE dumps every metric after the command\n"
    "(.json extension selects the JSON export, anything else Prometheus\n"
    "text); --trace-out=FILE records spans and writes a Chrome trace_event\n"
    "JSON file loadable in chrome://tracing or https://ui.perfetto.dev.\n"
    "logging: --log-level=debug|info|warn|error|off sets the structured\n"
    "JSON-lines logger threshold (default warn); --log-out=FILE appends the\n"
    "lines to FILE instead of stderr.\n"
    "serve --admin-port=P exposes the admin plane (GET /metrics,\n"
    "/metrics.json, /healthz, /readyz, /statusz, /tracez) on a second\n"
    "port (P=0 picks one, printed at startup); --slow-query-ms=T emits one\n"
    "hyperdom-slowlog-v1 JSON record per kNN at or above T milliseconds.\n"
    "knn --queries=N replaces the single --query with a seeded workload of\n"
    "N random queries drawn from the dataset, reporting aggregate stats;\n"
    "--threads=T shards the workload across T workers (0 = all cores) with\n"
    "bit-identical results at any thread count.\n"
    "serve --mutable=1 accepts insert/remove frames (ids seeded as row\n"
    "numbers); read-only servers answer them with kNotSupported.\n"
    "serve --shards=K partitions the store into K shards queried scatter-\n"
    "gather with bit-identical answers (--shard-policy picks hash or\n"
    "kmeans placement); incompatible with --mutable=1.\n"
    "exit codes: 0 success, 1 command error, 2 usage error, 3 server\n"
    "overloaded, 4 deadline exceeded, 5 protocol error, 6 mutation\n"
    "conflict (store frozen or compacting — safe to retry later).\n";

Result<uint64_t> RequireUint(const ParsedArgs& args, const std::string& key,
                             uint64_t fallback, bool required) {
  const std::string raw = args.GetFlag(key);
  if (raw.empty()) {
    if (required) return Status::InvalidArgument("missing --" + key);
    return fallback;
  }
  uint64_t value = 0;
  if (!ParseUint64(raw, &value)) {
    return Status::InvalidArgument("bad --" + key + ": '" + raw + "'");
  }
  return value;
}

Result<std::vector<Hypersphere>> LoadData(const ParsedArgs& args) {
  const std::string path = args.GetFlag("data");
  if (path.empty()) return Status::InvalidArgument("missing --data");
  return LoadSpheresCsv(path);
}

// Builds a query deadline from the optional --deadline-ms / --node-budget
// flags; unbounded when neither is given.
Result<Deadline> ParseDeadline(const ParsedArgs& args) {
  Deadline deadline;
  const std::string ms = args.GetFlag("deadline-ms");
  if (!ms.empty()) {
    double value = 0.0;
    if (!ParseDouble(ms, &value) || value <= 0.0) {
      return Status::InvalidArgument("bad --deadline-ms: '" + ms + "'");
    }
    deadline = Deadline::AfterDuration(std::chrono::nanoseconds(
        static_cast<int64_t>(value * 1e6)));
  }
  auto budget = RequireUint(args, "node-budget", 0, /*required=*/false);
  if (!budget.ok()) return budget.status();
  if (*budget > 0) deadline.SetNodeBudget(*budget);
  return deadline;
}

Status CmdGenerate(const ParsedArgs& args, std::ostream& out) {
  const std::string path = args.GetFlag("out");
  if (path.empty()) return Status::InvalidArgument("missing --out");
  SyntheticSpec spec;
  auto n = RequireUint(args, "n", 0, /*required=*/true);
  if (!n.ok()) return n.status();
  auto dim = RequireUint(args, "dim", 0, /*required=*/true);
  if (!dim.ok()) return dim.status();
  auto seed = RequireUint(args, "seed", spec.seed, /*required=*/false);
  if (!seed.ok()) return seed.status();
  spec.n = *n;
  spec.dim = *dim;
  spec.seed = *seed;
  if (spec.n == 0 || spec.dim == 0) {
    return Status::InvalidArgument("--n and --dim must be positive");
  }
  const std::string mu = args.GetFlag("mu", "10");
  if (!ParseDouble(mu, &spec.radius_mean) || spec.radius_mean < 0.0) {
    return Status::InvalidArgument("bad --mu: '" + mu + "'");
  }
  auto parse_dist = [](const std::string& v, Distribution* dist) {
    if (v == "gaussian") {
      *dist = Distribution::kGaussian;
    } else if (v == "uniform") {
      *dist = Distribution::kUniform;
    } else {
      return false;
    }
    return true;
  };
  if (!parse_dist(args.GetFlag("centers", "gaussian"),
                  &spec.center_distribution)) {
    return Status::InvalidArgument("bad --centers (gaussian|uniform)");
  }
  if (!parse_dist(args.GetFlag("radii", "gaussian"),
                  &spec.radius_distribution)) {
    return Status::InvalidArgument("bad --radii (gaussian|uniform)");
  }
  const auto data = GenerateSynthetic(spec);
  HYPERDOM_RETURN_NOT_OK(SaveSpheresCsv(path, data));
  out << "wrote " << data.size() << " spheres (" << spec.dim << "-d) to "
      << path << "\n";
  return Status::OK();
}

Status CmdDominate(const ParsedArgs& args, std::ostream& out) {
  auto sa = ParseSphere(args.GetFlag("sa"));
  if (!sa.ok()) return Status::InvalidArgument("--sa: " + sa.status().message());
  auto sb = ParseSphere(args.GetFlag("sb"));
  if (!sb.ok()) return Status::InvalidArgument("--sb: " + sb.status().message());
  auto sq = ParseSphere(args.GetFlag("sq"));
  if (!sq.ok()) return Status::InvalidArgument("--sq: " + sq.status().message());
  if (sa->dim() != sb->dim() || sa->dim() != sq->dim()) {
    return Status::InvalidArgument("spheres must share one dimensionality");
  }

  const std::string name = args.GetFlag("criterion", "all");
  std::vector<CriterionKind> kinds;
  if (name == "all") {
    kinds = PaperCriteria();
    kinds.push_back(CriterionKind::kCertified);
  } else {
    auto kind = ParseCriterion(name);
    if (!kind.ok()) return kind.status();
    kinds.push_back(*kind);
  }
  TablePrinter table({"criterion", "Dominates(Sa,Sb,Sq)"});
  for (CriterionKind kind : kinds) {
    const auto criterion = MakeCriterion(kind);
    std::string cell;
    if (kind == CriterionKind::kCertified) {
      // The certified engine answers with a three-valued verdict plus the
      // escalation tier that resolved it.
      const CertifiedDominance engine;
      CertifiedTier tier = CertifiedTier::kUnresolved;
      const Verdict verdict = engine.Decide(*sa, *sb, *sq, &tier);
      cell = std::string(VerdictName(verdict));
      if (verdict != Verdict::kUncertain) {
        cell += " (tier " + std::to_string(static_cast<int>(tier)) + ")";
      }
    } else {
      cell = criterion->Dominates(*sa, *sb, *sq) ? "true" : "false";
    }
    table.AddRow({std::string(criterion->name()), cell});
  }
  out << table.Render();
  return Status::OK();
}

Status CmdKnn(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  if (data->empty()) return Status::InvalidArgument("dataset is empty");
  auto workload_size = RequireUint(args, "queries", 0, /*required=*/false);
  if (!workload_size.ok()) return workload_size.status();
  auto k = RequireUint(args, "k", 10, /*required=*/false);
  if (!k.ok()) return k.status();
  if (*k == 0) return Status::InvalidArgument("--k must be positive");
  const bool certified = args.GetFlag("certified", "0") != "0";
  auto kind = ParseCriterion(
      args.GetFlag("criterion", certified ? "certified" : "hyperbola"));
  if (!kind.ok()) return kind.status();
  if (certified && *kind != CriterionKind::kCertified) {
    return Status::InvalidArgument(
        "--certified=1 conflicts with --criterion=" +
        args.GetFlag("criterion"));
  }
  const std::string strategy = args.GetFlag("strategy", "hs");
  if (strategy != "hs" && strategy != "df") {
    return Status::InvalidArgument("bad --strategy (hs|df)");
  }
  auto deadline = ParseDeadline(args);
  if (!deadline.ok()) return deadline.status();

  SsTree tree(data->front().dim());
  HYPERDOM_RETURN_NOT_OK(tree.BulkLoad(*data));
  // Route dominance through the instrumented wrapper so the per-criterion
  // verdict counters and decide latencies show up in --metrics-out.
  const auto criterion = MakeInstrumentedCriterion(*kind);
  KnnOptions options;
  options.k = *k;
  options.strategy = strategy == "hs" ? SearchStrategy::kBestFirst
                                      : SearchStrategy::kDepthFirst;
  options.deadline = *deadline;
  KnnSearcher searcher(criterion.get(), options);

  if (*workload_size > 0) {
    // Workload mode: N seeded queries drawn from the dataset's own
    // distribution, reported in aggregate. This is the path the
    // observability exports are meant to summarize.
    auto seed = RequireUint(args, "seed", 0xC8ECull, /*required=*/false);
    if (!seed.ok()) return seed.status();
    auto threads = RequireUint(args, "threads", 1, /*required=*/false);
    if (!threads.ok()) return threads.status();
    const std::vector<Hypersphere> queries =
        MakeKnnQueries(*data, *workload_size, *seed);
    BatchOptions exec;
    exec.threads = static_cast<size_t>(*threads);
    exec.seed = *seed;
    const BatchKnnResult batch =
        BatchKnn(tree, queries, *criterion, options, exec);
    const KnnStats& totals = batch.stats.totals;
    uint64_t answers = 0;
    for (const KnnResult& one : batch.results) answers += one.answers.size();
    const double nanos = static_cast<double>(batch.stats.wall_nanos);
    out << queries.size() << " top-" << *k << " queries (criterion "
        << criterion->name() << "): "
        << FormatDuration(nanos / static_cast<double>(queries.size()))
        << "/query\n"
        << "  " << totals.nodes_visited << " nodes visited, "
        << totals.nodes_pruned << " pruned, " << totals.entries_accessed
        << " entries accessed, " << totals.dominance_checks
        << " dominance checks\n"
        << "  " << answers << " answer entries across the workload";
    if (batch.stats.best_effort > 0) {
      out << "; " << batch.stats.best_effort << " best-effort answers ("
          << totals.nodes_deadline_skipped << " subtrees deadline-skipped)";
    }
    out << "\n";
    if (batch.stats.threads > 1) {
      out << "  " << batch.stats.threads
          << " worker threads (results are bit-identical to --threads=1)\n";
    }
    return Status::OK();
  }

  auto query = ParseSphere(args.GetFlag("query"));
  if (!query.ok()) {
    return Status::InvalidArgument("--query: " + query.status().message());
  }
  if (query->dim() != data->front().dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  const KnnResult result = searcher.Search(tree, *query);

  out << result.answers.size() << " possible top-" << *k
      << " objects (criterion " << criterion->name() << ", "
      << result.stats.dominance_checks << " dominance checks)\n";
  if (result.completeness == Completeness::kBestEffort) {
    out << "deadline expired: best-effort answer ("
        << result.stats.nodes_visited << " nodes visited, "
        << result.stats.nodes_deadline_skipped
        << " subtrees skipped; every entry below is certainly in the exact"
           " answer)\n";
  }
  if (certified) {
    const uint64_t checks = result.stats.dominance_checks;
    const double rate =
        checks == 0 ? 0.0
                    : 100.0 * static_cast<double>(
                                  result.stats.uncertain_verdicts) /
                          static_cast<double>(checks);
    out << "certified: " << result.stats.uncertain_verdicts
        << " uncertain verdicts (" << FormatDouble(rate, 4)
        << "% of checks; uncertain entries are kept, never pruned)\n";
  }
  size_t shown = 0;
  for (const auto& entry : result.answers) {
    out << "  #" << entry.id << "  " << entry.sphere.ToString()
        << "  maxdist=" << FormatDouble(MaxDist(entry.sphere, *query)) << "\n";
    if (++shown >= 20 && result.answers.size() > 20) {
      out << "  ... (" << result.answers.size() - shown << " more)\n";
      break;
    }
  }
  return Status::OK();
}

Status CmdRank(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  auto query = ParseSphere(args.GetFlag("query"));
  if (!query.ok()) {
    return Status::InvalidArgument("--query: " + query.status().message());
  }
  auto target = RequireUint(args, "target", 0, /*required=*/true);
  if (!target.ok()) return target.status();
  if (*target >= data->size()) {
    return Status::OutOfRange("--target beyond dataset size");
  }
  if (data->front().dim() != query->dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  auto kind = ParseCriterion(args.GetFlag("criterion", "hyperbola"));
  if (!kind.ok()) return kind.status();
  const auto criterion = MakeCriterion(*kind);
  const RankInterval interval =
      InverseRanking(*data, *target, *query, *criterion);
  out << "object #" << *target << " can rank between " << interval.best_rank
      << " and " << interval.worst_rank << " of " << data->size() << " ("
      << interval.certainly_closer << " certainly closer, "
      << interval.certainly_farther << " certainly farther)\n";
  return Status::OK();
}

Status CmdRange(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  auto query = ParseSphere(args.GetFlag("query"));
  if (!query.ok()) {
    return Status::InvalidArgument("--query: " + query.status().message());
  }
  if (data->empty() || data->front().dim() != query->dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  double range = -1.0;
  if (!ParseDouble(args.GetFlag("range"), &range) || range < 0.0) {
    return Status::InvalidArgument("missing or bad --range");
  }
  SsTree tree(data->front().dim());
  HYPERDOM_RETURN_NOT_OK(tree.BulkLoad(*data));
  const RangeResult result = RangeSearch(tree, *query, range);
  out << result.certain.size() << " objects certainly within "
      << FormatDouble(range) << ", " << result.possible.size()
      << " possibly within (" << result.stats.entries_accessed
      << " entries accessed, " << result.stats.nodes_pruned
      << " subtrees pruned)\n";
  return Status::OK();
}

Status CmdProbKnn(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  auto query = ParseSphere(args.GetFlag("query"));
  if (!query.ok()) {
    return Status::InvalidArgument("--query: " + query.status().message());
  }
  if (data->empty() || data->front().dim() != query->dim()) {
    return Status::InvalidArgument("query dimensionality mismatch");
  }
  ProbabilisticKnnOptions options;
  auto k = RequireUint(args, "k", options.k, /*required=*/false);
  if (!k.ok()) return k.status();
  options.k = *k;
  auto samples = RequireUint(args, "samples", options.samples,
                             /*required=*/false);
  if (!samples.ok()) return samples.status();
  options.samples = *samples;
  auto seed = RequireUint(args, "seed", options.seed, /*required=*/false);
  if (!seed.ok()) return seed.status();
  options.seed = *seed;
  const std::string tau = args.GetFlag("tau", "0.5");
  if (!ParseDouble(tau, &options.tau) || options.tau < 0.0 ||
      options.tau > 1.0) {
    return Status::InvalidArgument("bad --tau (in [0, 1])");
  }
  if (options.k == 0 || options.samples == 0) {
    return Status::InvalidArgument("--k and --samples must be positive");
  }
  const auto criterion = MakeCriterion(CriterionKind::kHyperbola);
  const auto result = ProbabilisticKnn(*data, *query, *criterion, options);
  out << result.answers.size() << " objects with P[top-" << options.k
      << "] >= " << FormatDouble(options.tau) << " ("
      << result.candidates_pruned
      << " pruned with certainty-zero probability)\n";
  size_t shown = 0;
  for (const auto& c : result.answers) {
    out << "  #" << c.id << "  p=" << FormatDouble(c.probability, 4) << "\n";
    if (++shown >= 20 && result.answers.size() > 20) {
      out << "  ... (" << result.answers.size() - shown << " more)\n";
      break;
    }
  }
  return Status::OK();
}

Status CmdExpiry(const ParsedArgs& args, std::ostream& out) {
  auto sa = ParseSphere(args.GetFlag("sa"));
  if (!sa.ok()) return Status::InvalidArgument("--sa: " + sa.status().message());
  auto sb = ParseSphere(args.GetFlag("sb"));
  if (!sb.ok()) return Status::InvalidArgument("--sb: " + sb.status().message());
  auto sq = ParseSphere(args.GetFlag("sq"));
  if (!sq.ok()) return Status::InvalidArgument("--sq: " + sq.status().message());
  if (sa->dim() != sb->dim() || sa->dim() != sq->dim()) {
    return Status::InvalidArgument("spheres must share one dimensionality");
  }
  double va = 0.0, vb = 0.0, vq = 0.0, horizon = 100.0;
  if (!ParseDouble(args.GetFlag("va", "0"), &va) || va < 0.0 ||
      !ParseDouble(args.GetFlag("vb", "0"), &vb) || vb < 0.0 ||
      !ParseDouble(args.GetFlag("vq", "0"), &vq) || vq < 0.0) {
    return Status::InvalidArgument("bad growth rates (must be >= 0)");
  }
  if (!ParseDouble(args.GetFlag("horizon", "100"), &horizon) ||
      horizon < 0.0) {
    return Status::InvalidArgument("bad --horizon");
  }
  const GrowingSphere ga{*sa, va};
  const GrowingSphere gb{*sb, vb};
  const GrowingSphere gq{*sq, vq};
  if (!DominatesAtTime(ga, gb, gq, 0.0)) {
    out << "Sa does not dominate Sb at t = 0\n";
    return Status::OK();
  }
  const double expiry = DominanceExpiry(ga, gb, gq, horizon);
  if (expiry >= horizon) {
    out << "dominance holds through the whole horizon ("
        << FormatDouble(horizon) << ")\n";
  } else {
    out << "dominance expires at t = " << FormatDouble(expiry) << "\n";
  }
  return Status::OK();
}

Status CmdSelfCheck(const ParsedArgs& args, std::ostream& out) {
  auto scenes = RequireUint(args, "scenes", 20'000, /*required=*/false);
  if (!scenes.ok()) return scenes.status();
  auto dim = RequireUint(args, "dim", 4, /*required=*/false);
  if (!dim.ok()) return dim.status();
  auto seed = RequireUint(args, "seed", 0xC8ECull, /*required=*/false);
  if (!seed.ok()) return seed.status();
  double mu = 10.0;
  if (!ParseDouble(args.GetFlag("mu", "10"), &mu) || mu < 0.0) {
    return Status::InvalidArgument("bad --mu");
  }
  if (*dim == 0 || *scenes == 0) {
    return Status::InvalidArgument("--dim and --scenes must be positive");
  }
  const bool certified = args.GetFlag("certified", "0") != "0";

  const auto oracle = MakeCriterion(CriterionKind::kNumericOracle);
  struct Check {
    std::unique_ptr<DominanceCriterion> criterion;
    uint64_t false_positives = 0;
    uint64_t false_negatives = 0;
  };
  std::vector<Check> checks;
  for (CriterionKind kind : PaperCriteria()) {
    checks.push_back(Check{MakeCriterion(kind)});
  }
  const CertifiedDominance engine;
  uint64_t certified_wrong = 0;

  Rng rng(*seed);
  uint64_t borderline = 0;
  for (uint64_t i = 0; i < *scenes; ++i) {
    auto sphere = [&]() {
      Point c(*dim);
      for (auto& v : c) v = rng.Gaussian(100.0, 25.0);
      return Hypersphere(std::move(c),
                         std::max(0.0, rng.Gaussian(mu, mu / 4.0)));
    };
    const Hypersphere sa = sphere();
    const Hypersphere sb = sphere();
    const Hypersphere sq = sphere();
    const double margin =
        MinDistanceDifference(sa, sb, sq) - (sa.radius() + sb.radius());
    if (std::abs(margin) < 1e-6) {
      ++borderline;
      continue;  // too close to the decision boundary to compare exactly
    }
    const bool truth = !Overlaps(sa, sb) && margin > 0.0;
    for (auto& check : checks) {
      const bool predicted = check.criterion->Dominates(sa, sb, sq);
      if (predicted && !truth) ++check.false_positives;
      if (!predicted && truth) ++check.false_negatives;
    }
    if (certified) {
      const Verdict verdict = engine.Decide(sa, sb, sq);
      if (verdict == Verdict::kDominates && !truth) ++certified_wrong;
      if (verdict == Verdict::kNotDominates && truth) ++certified_wrong;
    }
  }

  TablePrinter table({"criterion", "claims", "false pos", "false neg",
                      "verdict"});
  bool all_good = true;
  for (const auto& check : checks) {
    const bool correct_ok =
        !check.criterion->is_correct() || check.false_positives == 0;
    const bool sound_ok =
        !check.criterion->is_sound() || check.false_negatives == 0;
    if (!correct_ok || !sound_ok) all_good = false;
    std::string claims;
    if (check.criterion->is_correct()) claims += "correct ";
    if (check.criterion->is_sound()) claims += "sound";
    table.AddRow({std::string(check.criterion->name()),
                  claims.empty() ? "-" : claims,
                  std::to_string(check.false_positives),
                  std::to_string(check.false_negatives),
                  correct_ok && sound_ok ? "OK" : "VIOLATED"});
  }
  out << table.Render();
  out << "(" << borderline << " borderline scenes skipped)\n";
  if (certified) {
    const CertifiedStats stats = engine.stats();
    out << "certified engine: " << stats.calls << " calls, "
        << stats.uncertain << " uncertain ("
        << FormatDouble(100.0 * stats.UncertainRate(), 4) << "%)\n"
        << "  resolved by tier: quartic=" << stats.resolved_quartic
        << " parametric=" << stats.resolved_parametric
        << " long-double=" << stats.resolved_long_double
        << " oracle=" << stats.resolved_oracle << "\n";
    if (certified_wrong > 0) {
      return Status::Internal(
          std::to_string(certified_wrong) +
          " decisive certified verdicts disagree with the oracle");
    }
    out << "no decisive certified verdict disagrees with the oracle\n";
  }
  if (!all_good) {
    return Status::Internal("criterion contract violated; see table");
  }
  out << "all criterion contracts hold on " << *scenes << " scenes\n";
  return Status::OK();
}

Status CmdSnapshot(const ParsedArgs& args, std::ostream& out) {
  const std::string op = args.GetFlag("op");
  if (op != "save" && op != "load" && op != "verify") {
    return Status::InvalidArgument("missing or bad --op (save|load|verify)");
  }
  const std::string file = args.GetFlag("file");
  if (file.empty()) return Status::InvalidArgument("missing --file");

  if (op == "verify") {
    auto info = VerifySnapshot(file);
    if (!info.ok()) return info.status();
    out << "snapshot " << file << ": kind=" << SnapshotKindName(info->kind)
        << " version=" << info->version << " payload=" << info->payload_size
        << " bytes checksum=" << (info->crc_ok ? "OK" : "MISMATCH") << "\n";
    if (!info->crc_ok) {
      return Status::Corruption("snapshot checksum mismatch: " + file);
    }
    return Status::OK();
  }

  const std::string index = args.GetFlag("index", "ss");
  if (index != "ss" && index != "vp") {
    return Status::InvalidArgument("bad --index (ss|vp)");
  }

  if (op == "save") {
    auto data = LoadData(args);
    if (!data.ok()) return data.status();
    if (data->empty()) return Status::InvalidArgument("dataset is empty");
    if (index == "ss") {
      SsTree tree(data->front().dim());
      HYPERDOM_RETURN_NOT_OK(tree.BulkLoadStr(*data));
      HYPERDOM_RETURN_NOT_OK(SaveSnapshot(tree, file));
    } else {
      VpTree tree;
      HYPERDOM_RETURN_NOT_OK(tree.Build(*data));
      HYPERDOM_RETURN_NOT_OK(SaveSnapshot(tree, file));
    }
    out << "saved " << index << "-tree snapshot of " << data->size()
        << " spheres to " << file << "\n";
    return Status::OK();
  }

  // op == "load": with --data, fall back to a rebuild when the snapshot is
  // missing or corrupt; without it, a clean load is the only option.
  const bool have_data = !args.GetFlag("data").empty();
  std::vector<Hypersphere> data;
  if (have_data) {
    auto loaded = LoadData(args);
    if (!loaded.ok()) return loaded.status();
    data = std::move(*loaded);
  }
  size_t size = 0;
  SnapshotLoadOutcome outcome = SnapshotLoadOutcome::kLoaded;
  Status load_error;
  if (index == "ss") {
    SsTree tree(1);
    if (have_data) {
      HYPERDOM_RETURN_NOT_OK(
          LoadSnapshotOrRebuild(file, data, &tree, &outcome, &load_error));
    } else {
      HYPERDOM_RETURN_NOT_OK(LoadSnapshot(file, &tree));
    }
    size = tree.size();
  } else {
    VpTree tree;
    if (have_data) {
      HYPERDOM_RETURN_NOT_OK(
          LoadSnapshotOrRebuild(file, data, &tree, &outcome, &load_error));
    } else {
      HYPERDOM_RETURN_NOT_OK(LoadSnapshot(file, &tree));
    }
    size = tree.size();
  }
  if (outcome == SnapshotLoadOutcome::kRebuilt) {
    out << "snapshot unusable (" << load_error.ToString() << "); rebuilt "
        << index << "-tree from --data (" << size << " spheres)\n";
  } else {
    out << "loaded " << index << "-tree snapshot: " << size << " spheres\n";
  }
  return Status::OK();
}

Status CmdExperiment(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  if (data->size() < 3) {
    return Status::InvalidArgument("need at least 3 objects");
  }
  DominanceExperimentConfig config;
  auto queries = RequireUint(args, "queries", config.workload_size,
                             /*required=*/false);
  if (!queries.ok()) return queries.status();
  auto repeats = RequireUint(args, "repeats", 3, /*required=*/false);
  if (!repeats.ok()) return repeats.status();
  auto seed = RequireUint(args, "seed", config.seed, /*required=*/false);
  if (!seed.ok()) return seed.status();
  config.workload_size = *queries;
  config.repeats = static_cast<int>(*repeats);
  config.seed = *seed;

  TablePrinter table({"criterion", "time/query", "precision", "recall"});
  for (const auto& row : RunDominanceExperiment(*data, config)) {
    table.AddRow({row.criterion, FormatDuration(row.nanos_per_query),
                  FormatDouble(row.precision_pct, 4) + "%",
                  FormatDouble(row.recall_pct, 4) + "%"});
  }
  out << table.Render();
  return Status::OK();
}

// SIGTERM/SIGINT land here while `serve` runs; the main thread polls the
// flag and drains gracefully. Async-signal-safe: one relaxed store.
std::atomic<bool> g_serve_shutdown{false};

extern "C" void HandleServeSignal(int /*signum*/) {
  g_serve_shutdown.store(true, std::memory_order_relaxed);
}

Status CmdServe(const ParsedArgs& args, std::ostream& out) {
  auto data = LoadData(args);
  if (!data.ok()) return data.status();
  if (data->empty()) return Status::InvalidArgument("dataset is empty");
  auto kind = ParseCriterion(args.GetFlag("criterion", "hyperbola"));
  if (!kind.ok()) return kind.status();
  auto port = RequireUint(args, "port", 0, /*required=*/false);
  if (!port.ok()) return port.status();
  if (*port > 65535) return Status::InvalidArgument("bad --port");
  auto threads = RequireUint(args, "threads", 0, /*required=*/false);
  if (!threads.ok()) return threads.status();
  auto queue_capacity =
      RequireUint(args, "queue-capacity", 128, /*required=*/false);
  if (!queue_capacity.ok()) return queue_capacity.status();
  if (*queue_capacity == 0) {
    return Status::InvalidArgument("--queue-capacity must be positive");
  }
  auto max_conns = RequireUint(args, "max-connections", 256,
                               /*required=*/false);
  if (!max_conns.ok()) return max_conns.status();
  auto io_timeout = RequireUint(args, "io-timeout-ms", 5000,
                                /*required=*/false);
  if (!io_timeout.ok()) return io_timeout.status();
  // --admin-port present (even as 0 = ephemeral) switches the admin
  // plane on; absent leaves it off.
  const bool admin_enabled = !args.GetFlag("admin-port").empty();
  auto admin_port = RequireUint(args, "admin-port", 0, /*required=*/false);
  if (!admin_port.ok()) return admin_port.status();
  if (*admin_port > 65535) return Status::InvalidArgument("bad --admin-port");
  auto slow_query_ms = RequireUint(args, "slow-query-ms", 0,
                                   /*required=*/false);
  if (!slow_query_ms.ok()) return slow_query_ms.status();

  const bool mutable_mode = args.GetFlag("mutable") == "1";
  auto shards = RequireUint(args, "shards", 0, /*required=*/false);
  if (!shards.ok()) return shards.status();
  const bool sharded_mode = *shards > 0;
  shard::ShardPolicy shard_policy = shard::ShardPolicy::kHash;
  const std::string policy_name = args.GetFlag("shard-policy", "hash");
  if (!shard::ParseShardPolicy(policy_name, &shard_policy)) {
    return Status::InvalidArgument("bad --shard-policy (want hash|kmeans): '" +
                                   policy_name + "'");
  }
  if (sharded_mode && mutable_mode) {
    return Status::InvalidArgument(
        "--shards and --mutable=1 are mutually exclusive (sharded stores "
        "are immutable)");
  }
  const auto criterion = MakeInstrumentedCriterion(*kind);

  server::ServerOptions options;
  options.host = args.GetFlag("host", "127.0.0.1");
  options.port = static_cast<uint16_t>(*port);
  options.worker_threads = static_cast<size_t>(*threads);
  options.queue_capacity = static_cast<size_t>(*queue_capacity);
  options.max_connections = static_cast<size_t>(*max_conns);
  options.io_timeout_ms = static_cast<int>(*io_timeout);
  options.slow_query_micros = *slow_query_ms * 1000;

  // --mutable=1 serves a MutableSsTree (accepting insert/remove frames,
  // ids seeded as the dataset's row numbers); otherwise the server is
  // read-only and answers mutation frames with kNotSupported.
  std::optional<SsTree> tree;
  std::optional<MutableSsTree> mutable_tree;
  std::optional<shard::ShardedStore> sharded_store;
  // Declared before `server` so it outlives the query server: the drain
  // hook below runs inside server->Stop() and must find a live admin.
  std::optional<server::AdminServer> admin;
  std::optional<server::Server> server;
  if (admin_enabled) {
    // Flip /readyz to 503 the moment the drain begins — before the query
    // listener closes — so load balancers stop routing ahead of failures.
    options.drain_begin_hook = [&admin] {
      if (admin) admin->SetReady(false);
    };
  }
  if (sharded_mode) {
    shard::ShardingOptions sharding;
    sharding.shards = static_cast<size_t>(*shards);
    sharding.policy = shard_policy;
    sharded_store.emplace();
    HYPERDOM_RETURN_NOT_OK(
        shard::ShardedStore::Build(*data, sharding, &*sharded_store));
    server.emplace(&*sharded_store, criterion.get(), options);
  } else if (mutable_mode) {
    mutable_tree.emplace(data->front().dim());
    std::vector<uint64_t> ids(data->size());
    std::iota(ids.begin(), ids.end(), uint64_t{0});
    HYPERDOM_RETURN_NOT_OK(mutable_tree->Build(*data, ids));
    server.emplace(&*mutable_tree, criterion.get(), options);
  } else {
    tree.emplace(data->front().dim());
    HYPERDOM_RETURN_NOT_OK(tree->BulkLoad(*data));
    server.emplace(&*tree, criterion.get(), options);
  }
  HYPERDOM_RETURN_NOT_OK(server->Start());
  if (admin_enabled) {
    server::AdminOptions admin_options;
    admin_options.host = options.host;
    admin_options.port = static_cast<uint16_t>(*admin_port);
    admin_options.build_info =
        "hyperdom_cli serve, criterion " + std::string(criterion->name()) +
        (sharded_mode
             ? ", sharded x" + std::to_string(sharded_store->shards())
             : (mutable_mode ? ", mutable" : ", read-only"));
    server::AdminServer::Sources sources;
    sources.queue_depth = [&server] { return server->QueueDepth(); };
    sources.active_connections = [&server] {
      return server->counters().active_connections.load();
    };
    sources.requests_served = [&server] {
      return server->counters().requests_served.load();
    };
    if (sharded_mode) {
      sources.store_live = [&sharded_store] {
        return static_cast<uint64_t>(sharded_store->size());
      };
      sources.shards = [&sharded_store] { return sharded_store->shards(); };
    } else if (mutable_mode) {
      sources.store_version = [&mutable_tree] {
        return mutable_tree->version();
      };
      sources.store_live = [&mutable_tree] {
        return static_cast<uint64_t>(mutable_tree->live_size());
      };
    } else {
      sources.store_live = [&tree] {
        return static_cast<uint64_t>(tree->size());
      };
    }
    admin.emplace(std::move(admin_options), std::move(sources));
    HYPERDOM_RETURN_NOT_OK(admin->Start());
  }
  out << "hyperdom_server listening on " << options.host << ":"
      << server->port() << " (" << data->size() << " spheres, criterion "
      << criterion->name() << (mutable_mode ? ", mutable" : "");
  if (sharded_mode) {
    out << ", " << sharded_store->shards() << " shards ("
        << shard::ShardPolicyName(shard_policy) << ")";
  }
  out << ")\n";
  if (admin_enabled) {
    out << "admin plane on " << options.host << ":" << admin->port()
        << " (GET /metrics /metrics.json /healthz /readyz /statusz"
        << " /tracez)\n";
  }
  out << "SIGTERM/SIGINT drains in-flight queries and exits.\n";
  out.flush();

  g_serve_shutdown.store(false, std::memory_order_relaxed);
  std::signal(SIGTERM, HandleServeSignal);
  std::signal(SIGINT, HandleServeSignal);
  while (!g_serve_shutdown.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGINT, SIG_DFL);
  out << "draining...\n";
  out.flush();
  // Order matters: server->Stop() fires drain_begin_hook (readyz -> 503)
  // and finishes in-flight work; only then does the admin plane go down,
  // so a scraper can watch the drain end-to-end.
  server->Stop();
  if (admin) admin->Stop();
  const server::ServerCounters& counters = server->counters();
  out << "served " << counters.requests_served.load() << " requests ("
      << counters.requests_shed.load() << " shed, "
      << counters.best_effort_responses.load() << " best-effort, "
      << counters.protocol_errors.load() << " protocol errors) across "
      << counters.connections_accepted.load() << " connections\n";
  return Status::OK();
}

Status CmdQuery(const ParsedArgs& args, std::ostream& out) {
  const std::string target = args.GetFlag("server");
  if (target.empty()) return Status::InvalidArgument("missing --server");
  const std::vector<std::string> parts = Split(target, ':');
  uint64_t port = 0;
  if (parts.size() != 2 || !ParseUint64(parts[1], &port) || port == 0 ||
      port > 65535) {
    return Status::InvalidArgument("bad --server (want HOST:PORT): '" +
                                   target + "'");
  }
  auto query = ParseSphere(args.GetFlag("query"));
  if (!query.ok()) {
    return Status::InvalidArgument("--query: " + query.status().message());
  }
  auto k = RequireUint(args, "k", 10, /*required=*/false);
  if (!k.ok()) return k.status();
  if (*k == 0) return Status::InvalidArgument("--k must be positive");
  const std::string strategy = args.GetFlag("strategy", "hs");
  if (strategy != "hs" && strategy != "df") {
    return Status::InvalidArgument("bad --strategy (hs|df)");
  }
  auto budget_ms = RequireUint(args, "budget-ms", 0, /*required=*/false);
  if (!budget_ms.ok()) return budget_ms.status();
  auto node_budget = RequireUint(args, "node-budget", 0, /*required=*/false);
  if (!node_budget.ok()) return node_budget.status();
  auto timeout_ms = RequireUint(args, "timeout-ms", 10000,
                                /*required=*/false);
  if (!timeout_ms.ok()) return timeout_ms.status();
  auto attempts = RequireUint(args, "attempts", 4, /*required=*/false);
  if (!attempts.ok()) return attempts.status();

  server::ClientOptions options;
  options.host = parts[0];
  options.port = static_cast<uint16_t>(port);
  options.io_timeout_ms = static_cast<int>(*timeout_ms);
  options.max_attempts = static_cast<int>(std::max<uint64_t>(1, *attempts));
  server::Client client(options);

  server::KnnRequest request;
  request.query = *query;
  request.k = static_cast<uint32_t>(*k);
  request.strategy = strategy == "hs" ? SearchStrategy::kBestFirst
                                      : SearchStrategy::kDepthFirst;
  request.budget_micros = *budget_ms * 1000;
  request.node_budget = *node_budget;
  Result<server::KnnResponse> response = client.Knn(request);
  if (!response.ok()) return response.status();

  out << response->answers.size() << " possible top-" << *k << " objects ("
      << CompletenessName(response->completeness) << ", "
      << client.last_attempts() << " attempt"
      << (client.last_attempts() == 1 ? "" : "s") << ")\n";
  if (response->completeness == Completeness::kBestEffort) {
    out << "deadline expired server-side: every entry below is certainly in"
           " the exact answer\n";
  }
  size_t shown = 0;
  for (const auto& entry : response->answers) {
    out << "  #" << entry.id << "  " << entry.sphere.ToString()
        << "  maxdist=" << FormatDouble(MaxDist(entry.sphere, *query)) << "\n";
    if (++shown >= 20 && response->answers.size() > 20) {
      out << "  ... (" << response->answers.size() - shown << " more)\n";
      break;
    }
  }
  return Status::OK();
}

// Shared --server/--timeout-ms/--attempts parsing for the remote verbs
// (insert/remove); mirrors CmdQuery's connection flags.
Result<server::ClientOptions> ParseClientOptions(const ParsedArgs& args) {
  const std::string target = args.GetFlag("server");
  if (target.empty()) return Status::InvalidArgument("missing --server");
  const std::vector<std::string> parts = Split(target, ':');
  uint64_t port = 0;
  if (parts.size() != 2 || !ParseUint64(parts[1], &port) || port == 0 ||
      port > 65535) {
    return Status::InvalidArgument("bad --server (want HOST:PORT): '" +
                                   target + "'");
  }
  auto timeout_ms = RequireUint(args, "timeout-ms", 10000,
                                /*required=*/false);
  if (!timeout_ms.ok()) return timeout_ms.status();
  auto attempts = RequireUint(args, "attempts", 4, /*required=*/false);
  if (!attempts.ok()) return attempts.status();
  server::ClientOptions options;
  options.host = parts[0];
  options.port = static_cast<uint16_t>(port);
  options.io_timeout_ms = static_cast<int>(*timeout_ms);
  options.max_attempts = static_cast<int>(std::max<uint64_t>(1, *attempts));
  return options;
}

Status CmdInsert(const ParsedArgs& args, std::ostream& out) {
  auto options = ParseClientOptions(args);
  if (!options.ok()) return options.status();
  auto id = RequireUint(args, "id", 0, /*required=*/true);
  if (!id.ok()) return id.status();
  auto sphere = ParseSphere(args.GetFlag("sphere"));
  if (!sphere.ok()) {
    return Status::InvalidArgument("--sphere: " + sphere.status().message());
  }
  auto budget_ms = RequireUint(args, "budget-ms", 0, /*required=*/false);
  if (!budget_ms.ok()) return budget_ms.status();

  server::Client client(*options);
  server::InsertRequest request;
  request.id = *id;
  request.sphere = *sphere;
  request.budget_micros = *budget_ms * 1000;
  Result<server::MutateResponse> response = client.Insert(request);
  if (!response.ok()) return response.status();
  out << "inserted #" << *id << " at store version " << response->version
      << " (" << response->live << " live, " << client.last_attempts()
      << " attempt" << (client.last_attempts() == 1 ? "" : "s") << ")\n";
  return Status::OK();
}

Status CmdRemove(const ParsedArgs& args, std::ostream& out) {
  auto options = ParseClientOptions(args);
  if (!options.ok()) return options.status();
  auto id = RequireUint(args, "id", 0, /*required=*/true);
  if (!id.ok()) return id.status();
  auto budget_ms = RequireUint(args, "budget-ms", 0, /*required=*/false);
  if (!budget_ms.ok()) return budget_ms.status();

  server::Client client(*options);
  server::RemoveRequest request;
  request.id = *id;
  request.budget_micros = *budget_ms * 1000;
  Result<server::MutateResponse> response = client.Remove(request);
  if (!response.ok()) return response.status();
  out << "removed #" << *id << " at store version " << response->version
      << " (" << response->live << " live, " << client.last_attempts()
      << " attempt" << (client.last_attempts() == 1 ? "" : "s") << ")\n";
  return Status::OK();
}

// Arms the process-wide fault registry from the global --fault-site /
// --fault-rate flags (no-op when neither is given). The probabilistic mode
// is seeded by the same --seed that drives workload generation, so a
// failing run reproduces from the one seed.
Status ArmFaultsFromFlags(const ParsedArgs& args) {
  const std::string site = args.GetFlag("fault-site");
  const std::string rate = args.GetFlag("fault-rate");
  if (site.empty() && rate.empty()) return Status::OK();
#if !defined(HYPERDOM_FAULT_INJECTION_ENABLED)
  return Status::NotSupported(
      "fault injection was compiled out (HYPERDOM_FAULT_INJECTION=OFF)");
#else
  if (!site.empty() && !rate.empty()) {
    return Status::InvalidArgument(
        "--fault-site and --fault-rate are mutually exclusive");
  }
  if (!site.empty()) {
    const auto& sites = AllFaultSites();
    if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
      return Status::InvalidArgument("unknown fault site '" + site + "'");
    }
    auto nth = RequireUint(args, "fault-nth", 1, /*required=*/false);
    if (!nth.ok()) return nth.status();
    if (*nth == 0) return Status::InvalidArgument("--fault-nth must be >= 1");
    FaultRegistry::Instance().ArmSite(site, *nth);
    return Status::OK();
  }
  double probability = 0.0;
  if (!ParseDouble(rate, &probability) || probability < 0.0 ||
      probability > 1.0) {
    return Status::InvalidArgument("bad --fault-rate (in [0, 1])");
  }
  auto seed = RequireUint(args, "seed", 0, /*required=*/false);
  if (!seed.ok()) return seed.status();
  FaultRegistry::Instance().ArmRandom(*seed, probability);
  return Status::OK();
#endif  // HYPERDOM_FAULT_INJECTION_ENABLED
}

// Prints the catalogue of process-wide metric names so operators can see
// what --metrics-out will export without reading source.
Status CmdMetrics(const ParsedArgs& /*args*/, std::ostream& out) {
#if !defined(HYPERDOM_OBSERVABILITY_ENABLED)
  (void)out;
  return Status::NotSupported(
      "observability was compiled out (HYPERDOM_OBSERVABILITY=OFF)");
#else
  TablePrinter table({"metric", "type", "help"});
  for (const obs::MetricDef& def : obs::MetricCatalogue()) {
    table.AddRow({def.name, std::string(obs::MetricTypeName(def.type)),
                  def.help});
  }
  out << table.Render();
  return Status::OK();
#endif  // HYPERDOM_OBSERVABILITY_ENABLED
}

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
Status WriteTextFile(const std::string& path, const std::string& body) {
  return WriteStringToFile(path, body);
}
#endif  // HYPERDOM_OBSERVABILITY_ENABLED

// Mirrors ArmFaultsFromFlags: the observability flags always parse, and
// fail loudly instead of silently producing nothing when the subsystem was
// compiled out. Tracing must be switched on before the command runs so the
// spans it opens are captured.
Status SetupObservabilityFromFlags(const ParsedArgs& args) {
  // The structured logger is always compiled (its off-cost is one atomic
  // load), so the logging flags work regardless of HYPERDOM_OBSERVABILITY.
  const std::string log_level = args.GetFlag("log-level");
  if (!log_level.empty()) {
    obs::LogLevel level = obs::LogLevel::kWarn;
    if (!obs::ParseLogLevel(log_level, &level)) {
      return Status::InvalidArgument(
          "bad --log-level '" + log_level +
          "' (want debug|info|warn|error|off)");
    }
    obs::Logger::Instance().SetLevel(level);
  }
  const std::string log_out = args.GetFlag("log-out");
  if (!log_out.empty()) {
    HYPERDOM_RETURN_NOT_OK(obs::Logger::Instance().OpenFileSink(log_out));
  }
  const std::string metrics_out = args.GetFlag("metrics-out");
  const std::string trace_out = args.GetFlag("trace-out");
  if (metrics_out.empty() && trace_out.empty()) return Status::OK();
#if !defined(HYPERDOM_OBSERVABILITY_ENABLED)
  return Status::NotSupported(
      "observability was compiled out (HYPERDOM_OBSERVABILITY=OFF)");
#else
  if (!trace_out.empty()) obs::Tracer::Instance().Enable();
  return Status::OK();
#endif  // HYPERDOM_OBSERVABILITY_ENABLED
}

// Dumps the metrics registry and/or the captured trace to the files named
// by --metrics-out / --trace-out. A `.json` extension on --metrics-out
// selects the machine-readable JSON export; anything else gets Prometheus
// text exposition. Runs after the command so its instruments are final.
Status WriteObservabilityOutputs([[maybe_unused]] const ParsedArgs& args,
                                 [[maybe_unused]] std::ostream& err) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  const std::string metrics_out = args.GetFlag("metrics-out");
  if (!metrics_out.empty()) {
    auto& registry = obs::MetricsRegistry::Instance();
    HYPERDOM_RETURN_NOT_OK(WriteTextFile(
        metrics_out, EndsWith(metrics_out, ".json")
                         ? registry.RenderJson()
                         : registry.RenderPrometheus()));
  }
  const std::string trace_out = args.GetFlag("trace-out");
  if (!trace_out.empty()) {
    const obs::Tracer& tracer = obs::Tracer::Instance();
    if (tracer.dropped() > 0) {
      err << "note: trace ring overflowed; " << tracer.dropped()
          << " oldest records were dropped\n";
    }
    HYPERDOM_RETURN_NOT_OK(
        WriteTextFile(trace_out, tracer.RenderChromeTrace()));
  }
#endif  // HYPERDOM_OBSERVABILITY_ENABLED
  return Status::OK();
}

}  // namespace

std::string ParsedArgs::GetFlag(const std::string& key,
                                const std::string& fallback) const {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

Result<ParsedArgs> ParseArgs(const std::vector<std::string>& args) {
  if (args.empty()) return Status::InvalidArgument("missing command");
  ParsedArgs parsed;
  parsed.command = args[0];
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& token = args[i];
    if (!StartsWith(token, "--")) {
      return Status::InvalidArgument("expected --flag=value, got '" + token +
                                     "'");
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 2) {
      return Status::InvalidArgument("malformed flag '" + token + "'");
    }
    parsed.flags[token.substr(2, eq - 2)] = token.substr(eq + 1);
  }
  return parsed;
}

Result<Hypersphere> ParseSphere(const std::string& spec) {
  const size_t semi = spec.find(';');
  if (semi == std::string::npos) {
    return Status::InvalidArgument("sphere literal needs 'coords;radius'");
  }
  const std::vector<std::string> coords = Split(spec.substr(0, semi), ',');
  if (coords.empty() || coords.front().empty()) {
    return Status::InvalidArgument("sphere needs at least one coordinate");
  }
  Point center(coords.size());
  for (size_t i = 0; i < coords.size(); ++i) {
    if (!ParseDouble(coords[i], &center[i])) {
      return Status::InvalidArgument("bad coordinate '" + coords[i] + "'");
    }
  }
  double radius = 0.0;
  if (!ParseDouble(spec.substr(semi + 1), &radius) || radius < 0.0) {
    return Status::InvalidArgument("bad radius '" + spec.substr(semi + 1) +
                                   "'");
  }
  return Hypersphere(std::move(center), radius);
}

Result<CriterionKind> ParseCriterion(const std::string& name) {
  if (name == "minmax") return CriterionKind::kMinMax;
  if (name == "mbr") return CriterionKind::kMbr;
  if (name == "gp") return CriterionKind::kGp;
  if (name == "trigonometric") return CriterionKind::kTrigonometric;
  if (name == "hyperbola") return CriterionKind::kHyperbola;
  if (name == "oracle") return CriterionKind::kNumericOracle;
  if (name == "certified") return CriterionKind::kCertified;
  return Status::InvalidArgument("unknown criterion '" + name + "'");
}

int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  auto parsed = ParseArgs(args);
  if (!parsed.ok()) {
    err << "error: " << parsed.status().ToString() << "\n" << kUsage;
    return 2;
  }
  const Status armed = ArmFaultsFromFlags(*parsed);
  if (!armed.ok()) {
    err << "error: " << armed.ToString() << "\n";
    return 2;
  }
  const Status observing = SetupObservabilityFromFlags(*parsed);
  if (!observing.ok()) {
    err << "error: " << observing.ToString() << "\n";
    return 2;
  }
  Status status;
  if (parsed->command == "generate") {
    status = CmdGenerate(*parsed, out);
  } else if (parsed->command == "dominate") {
    status = CmdDominate(*parsed, out);
  } else if (parsed->command == "knn") {
    status = CmdKnn(*parsed, out);
  } else if (parsed->command == "rank") {
    status = CmdRank(*parsed, out);
  } else if (parsed->command == "range") {
    status = CmdRange(*parsed, out);
  } else if (parsed->command == "probknn") {
    status = CmdProbKnn(*parsed, out);
  } else if (parsed->command == "expiry") {
    status = CmdExpiry(*parsed, out);
  } else if (parsed->command == "selfcheck") {
    status = CmdSelfCheck(*parsed, out);
  } else if (parsed->command == "snapshot") {
    status = CmdSnapshot(*parsed, out);
  } else if (parsed->command == "experiment") {
    status = CmdExperiment(*parsed, out);
  } else if (parsed->command == "serve") {
    status = CmdServe(*parsed, out);
  } else if (parsed->command == "query") {
    status = CmdQuery(*parsed, out);
  } else if (parsed->command == "insert") {
    status = CmdInsert(*parsed, out);
  } else if (parsed->command == "remove") {
    status = CmdRemove(*parsed, out);
  } else if (parsed->command == "metrics") {
    status = CmdMetrics(*parsed, out);
  } else if (parsed->command == "help") {
    out << kUsage;
    return 0;
  } else {
    err << "error: unknown command '" << parsed->command << "'\n" << kUsage;
    return 2;
  }
  if (status.ok()) {
    status = WriteObservabilityOutputs(*parsed, err);
  }
  if (!status.ok()) {
    err << "error: " << status.ToString() << "\n";
    // Scripted callers (and the load generator) distinguish the wire-
    // protocol failure classes without parsing stderr.
    switch (status.code()) {
      case StatusCode::kOverloaded:
        return 3;
      case StatusCode::kDeadlineExceeded:
        return 4;
      case StatusCode::kProtocolError:
        return 5;
      case StatusCode::kConflict:
        return 6;
      default:
        return 1;
    }
  }
  return 0;
}

}  // namespace cli
}  // namespace hyperdom
