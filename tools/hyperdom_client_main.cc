// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// hyperdom_client: one kNN query against a running hyperdom_server.
// Equivalent to `hyperdom_cli query ...`; exit codes distinguish
// overload (3), deadline expiry (4) and protocol failures (5).

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<size_t>(argc));
  args.emplace_back("query");
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return hyperdom::cli::Run(args, std::cout, std::cerr);
}
