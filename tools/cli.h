// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The `hyperdom_cli` command-line tool, as a library so tests can drive it
// without spawning processes. Commands:
//
//   generate    --out=FILE --n=N --dim=D [--mu=10] [--centers=gaussian|
//               uniform] [--radii=gaussian|uniform] [--seed=S]
//       writes a synthetic dataset as CSV (data/csv.h format)
//   dominate    --sa=SPHERE --sb=SPHERE --sq=SPHERE [--criterion=NAME|all]
//       decides Dom(Sa, Sb, Sq); SPHERE is "x,y,...;r"
//   knn         --data=FILE --query=SPHERE [--k=10] [--criterion=NAME]
//               [--strategy=hs|df] [--deadline-ms=T] [--node-budget=N]
//       runs the Definition-2 kNN over an SS-tree built from FILE; an
//       expired deadline yields a flagged best-effort answer
//   rank        --data=FILE --target=ID --query=SPHERE [--criterion=NAME]
//       prints the possible-rank interval of object ID
//   snapshot    --op=save|load|verify --file=SNAP [--index=ss|vp]
//               [--data=FILE]
//       saves/loads/verifies a checksummed index snapshot; load with
//       --data rebuilds from the raw data when the snapshot is corrupt
//   experiment  --data=FILE [--queries=10000] [--repeats=3] [--seed=S]
//       runs the Section-7.1 dominance experiment on FILE
//
// Global flags: --fault-site=SITE / --fault-rate=P arm the fault-injection
// registry (common/fault.h) before the command runs; the probabilistic
// mode derives every decision from --seed, so failures reproduce exactly.
//
// Criterion names: minmax, mbr, gp, trigonometric, hyperbola, oracle.

#ifndef HYPERDOM_TOOLS_CLI_H_
#define HYPERDOM_TOOLS_CLI_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "dominance/criterion.h"

namespace hyperdom {
namespace cli {

/// A parsed command line: the command word plus --key=value flags.
struct ParsedArgs {
  std::string command;
  std::map<std::string, std::string> flags;

  /// Flag lookup with default.
  std::string GetFlag(const std::string& key,
                      const std::string& fallback = "") const;
};

/// Parses "command --k=v ..." argument vectors (argv[0] excluded).
/// Fails on missing command, non-flag tokens or malformed flags.
Result<ParsedArgs> ParseArgs(const std::vector<std::string>& args);

/// Parses a sphere literal "x,y,...;r" (at least one coordinate; r >= 0).
Result<Hypersphere> ParseSphere(const std::string& spec);

/// Parses a criterion name (see header comment). "all" is not accepted
/// here; commands that support it handle it themselves.
Result<CriterionKind> ParseCriterion(const std::string& name);

/// Runs the tool. Writes human output to `out`, errors to `err`; returns
/// the process exit code (0 on success).
int Run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace cli
}  // namespace hyperdom

#endif  // HYPERDOM_TOOLS_CLI_H_
