#!/usr/bin/env bash
# Dual-ISA guard: the suite must build and pass tier-1 BOTH with and
# without HYPERDOM_NATIVE. The scalar leg is the portable fallback every
# consumer gets by default; the native leg compiles the AVX2 kernel paths
# (and, via the bit-identity tests under the `simd` ctest label, proves
# they return the same bits as the scalar reference). Run from the repo
# root:
#
#   tools/check_native.sh            # both legs, full tier-1 each
#   tools/check_native.sh --simd     # both legs, `simd`-label tests only
#
# Uses the `default` and `native-verify` CMake presets, so the build trees
# (build/, build-native-verify/) are shared with normal development.

set -euo pipefail
cd "$(dirname "$0")/.."

filter=()
if [[ "${1:-}" == "--simd" ]]; then
  filter=(-L simd)
  shift
fi
if [[ $# -gt 0 ]]; then
  echo "usage: tools/check_native.sh [--simd]" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 2)"

run_leg() {
  local preset="$1"
  echo "=== [check_native] configure+build+test: ${preset} ==="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  local build_dir
  case "${preset}" in
    default) build_dir=build ;;
    native-verify) build_dir=build-native-verify ;;
    *) echo "unknown preset ${preset}" >&2; exit 2 ;;
  esac
  (cd "${build_dir}" && ctest --output-on-failure -j "${jobs}" "${filter[@]+"${filter[@]}"}")
}

run_leg default
run_leg native-verify

echo "=== [check_native] OK: scalar and native legs both green ==="
