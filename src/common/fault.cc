// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/fault.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

namespace {

// Every HYPERDOM_FAULT_POINT / HYPERDOM_FAULT_DEGRADE site in the library.
// Ordered by subsystem; the sweep test in tests/fault_injection_test.cc
// arms each once and asserts clean propagation.
constexpr std::string_view kAllSites[] = {
    // data/ — CSV load/save.
    "csv/open_read",
    "csv/parse_row",
    "csv/open_write",
    "csv/write_row",
    // index/ — build, split and (de)serialization.
    "ss_tree/insert",
    "ss_tree/split",
    "ss_tree/str_pack",
    "ss_tree/serialize",
    "ss_tree/deserialize",
    "vp_tree/build",
    "vp_tree/build_node",
    "vp_tree/serialize",
    "vp_tree/deserialize",
    "rstar_tree/insert",
    "m_tree/insert",
    // index/snapshot — checksummed persistence envelope.
    "snapshot/write",
    "snapshot/read",
    // index/rotation — generation rotation: fires between the generation
    // write and the CURRENT manifest update, the crash window the
    // last-good fallback exists for.
    "snapshot/rotate",
    // index/mutable_ss_tree — live write paths. Both fire BEFORE any
    // state is published, so a failure never leaves a torn store.
    "store/insert",
    "store/compact",
    // dominance/ — certified escalation chain (degrade sites: firing
    // forces the tier's outcome to "uncertain", never a Status).
    "certified/quartic",
    "certified/parametric",
    "certified/long_double",
    "certified/oracle",
    // server/ — network front-end request path. Covered by the armed
    // sweep in tests/server_e2e_test.cc (ctest label `server`), not the
    // generic workload sweep in fault_injection_test.cc.
    "server/accept",
    "server/read",
    "server/write",
    "server/enqueue",
    // shard/ — sharded scatter-gather engine. `shard/build` fires once
    // per shard during ShardedStore::Build; `shard/scatter` fires once
    // per (query, shard) before the per-shard traversal starts.
    "shard/build",
    "shard/scatter",
};

constexpr std::string_view kDegradePrefix = "certified/";

// SplitMix64 — the same finalizer rng.cc uses for seeding; good avalanche
// so (seed, site, index) map to independent-looking uniform draws.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t HashSite(std::string_view site) {
  // FNV-1a, then one SplitMix64 round to spread the low bits.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x00000100000001B3ULL;
  }
  return SplitMix64(h);
}

// Uniform [0, 1) draw that is a pure function of (seed, site, hit index).
double DrawUnit(uint64_t seed, std::string_view site, uint64_t index) {
  const uint64_t mixed =
      SplitMix64(seed ^ HashSite(site) ^ (index * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

// Query-scoped variant: pure in (seed, site, query id, per-query index).
// The query id is avalanched before mixing so ids 0,1,2,... (batch
// indices) land on independent-looking streams.
double DrawUnitForQuery(uint64_t seed, std::string_view site,
                        uint64_t query_id, uint64_t index) {
  return DrawUnit(seed ^ SplitMix64(query_id ^ 0xA5A5A5A5A5A5A5A5ULL), site,
                  index);
}

// Thread-local per-query fault context; installed by FaultQueryScope.
// Lives outside the registry so reading it never takes the registry lock.
struct QueryFaultContext {
  bool active = false;
  uint64_t query_id = 0;
  // Per-(query, site) execution counts; reset at scope entry so the hit
  // index restarts from 1 for every query.
  std::map<std::string, uint64_t, std::less<>> hits;
};

thread_local QueryFaultContext t_query_context;

// A firing is rare (tests arm a single site; random mode runs at low
// probability), so per-firing registry lookup and a span event are cheap.
void RecordFiring(std::string_view site) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  obs::MetricsRegistry::Instance()
      .GetCounter(obs::kFaultInjected, "site", site)
      ->Add(1);
  obs::Span::CurrentEvent("fault/" + std::string(site));
#else
  (void)site;
#endif
}

}  // namespace

const std::vector<std::string_view>& AllFaultSites() {
  static const std::vector<std::string_view> sites(std::begin(kAllSites),
                                                   std::end(kAllSites));
  return sites;
}

bool IsDegradeFaultSite(std::string_view site) {
  return site.substr(0, kDegradePrefix.size()) == kDegradePrefix;
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kDisarmed;
  armed_site_.clear();
  armed_nth_ = 0;
  seed_ = 0;
  probability_ = 0.0;
  injected_ = 0;
  hit_counts_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

void FaultRegistry::ArmSite(std::string_view site, uint64_t nth) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kSite;
  armed_site_ = std::string(site);
  armed_nth_ = nth == 0 ? 1 : nth;
  injected_ = 0;
  hit_counts_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultRegistry::ArmRandom(uint64_t seed, double probability) {
  std::lock_guard<std::mutex> lock(mu_);
  mode_ = Mode::kRandom;
  seed_ = seed;
  probability_ = std::clamp(probability, 0.0, 1.0);
  injected_ = 0;
  hit_counts_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

uint64_t FaultRegistry::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injected_;
}

uint64_t FaultRegistry::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hit_counts_.find(site);
  return it == hit_counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, uint64_t>> FaultRegistry::HitCounts()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {hit_counts_.begin(), hit_counts_.end()};
}

bool FaultRegistry::ShouldFire(std::string_view site, uint64_t* hit_index) {
  // The per-query hit index is thread-local state, claimed before the
  // registry lock: its value cannot depend on how threads interleave.
  const bool query_scoped = t_query_context.active;
  uint64_t query_index = 0;
  if (query_scoped) {
    auto [it, inserted] = t_query_context.hits.try_emplace(std::string(site), 0);
    query_index = ++it->second;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (mode_ == Mode::kDisarmed) return false;
  auto [it, inserted] = hit_counts_.try_emplace(std::string(site), 0);
  *hit_index = ++it->second;
  bool fire = false;
  if (mode_ == Mode::kSite) {
    // "nth execution" is a process-wide notion; it stays on the global
    // counter even inside a query scope (single-shot arming targets build
    // paths, which run outside query scopes).
    fire = site == armed_site_ && *hit_index == armed_nth_;
  } else if (query_scoped) {
    fire = probability_ > 0.0 &&
           DrawUnitForQuery(seed_, site, t_query_context.query_id,
                            query_index) < probability_;
    *hit_index = query_index;
  } else {
    fire = probability_ > 0.0 &&
           DrawUnit(seed_, site, *hit_index) < probability_;
  }
  if (fire) ++injected_;
  return fire;
}

Status FaultRegistry::Hit(std::string_view site) {
  uint64_t index = 0;
  if (!ShouldFire(site, &index)) return Status::OK();
  RecordFiring(site);
  return Status::Internal("injected fault at " + std::string(site) +
                          " (hit " + std::to_string(index) + ")");
}

bool FaultRegistry::HitDegrade(std::string_view site) {
  uint64_t index = 0;
  if (!ShouldFire(site, &index)) return false;
  RecordFiring(site);
  return true;
}

FaultQueryScope::FaultQueryScope(uint64_t query_id)
    : prev_active_(t_query_context.active),
      prev_query_id_(t_query_context.query_id),
      prev_hits_(std::move(t_query_context.hits)) {
  t_query_context.active = true;
  t_query_context.query_id = query_id;
  t_query_context.hits.clear();
}

FaultQueryScope::~FaultQueryScope() {
  t_query_context.active = prev_active_;
  t_query_context.query_id = prev_query_id_;
  t_query_context.hits = std::move(prev_hits_);
}

bool FaultQueryScope::Active() { return t_query_context.active; }

uint64_t FaultQueryScope::CurrentQueryId() {
  return t_query_context.active ? t_query_context.query_id : 0;
}

}  // namespace hyperdom
