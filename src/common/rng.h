// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Deterministic random number generation. Every experiment in the paper is
// reproduced from fixed seeds so that test and bench output is stable across
// runs and machines; the generator is a self-contained xoshiro256++ rather
// than std::mt19937 so that streams are identical across standard libraries.

#ifndef HYPERDOM_COMMON_RNG_H_
#define HYPERDOM_COMMON_RNG_H_

#include <cstdint>

namespace hyperdom {

/// \brief Deterministic 64-bit PRNG (xoshiro256++) with distribution helpers.
///
/// Not thread-safe; create one instance per thread/stream. Distinct logical
/// streams (e.g. centers vs. radii of a generated dataset) should use
/// distinct seeds derived via Fork().
class Rng {
 public:
  /// Seeds the state from a single 64-bit value via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t NextU64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformU64(uint64_t n);

  /// Standard normal via Box-Muller (cached second value).
  double NextGaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// A child generator with an independent stream, derived from this
  /// generator's state and `stream_id`. The parent state is not advanced.
  Rng Fork(uint64_t stream_id) const;

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_RNG_H_
