// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Hardened POSIX file IO shared by the persistence layers (index/snapshot,
// data/csv) and the network front-end. Every primitive retries EINTR,
// finishes partial reads/writes in a loop, and maps errno into a Status
// whose message names the failing syscall, the target, and strerror(errno)
// — so "IO error: write failed" becomes
// "IO error: write '/data/snap.tmp': No space left on device".

#ifndef HYPERDOM_COMMON_IO_H_
#define HYPERDOM_COMMON_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hyperdom {

/// Maps an errno value into a Status: ENOENT becomes kNotFound, everything
/// else kIOError; the message is "<op> '<target>': <strerror(err)>".
Status ErrnoToStatus(int err, std::string_view op, std::string_view target);

/// Reads the whole file into a string. Retries EINTR and short reads until
/// EOF; errno-mapped Status on failure.
Result<std::string> ReadFileToString(const std::string& path);

/// Creates/truncates `path` and writes `body` in full. Retries EINTR and
/// partial writes; errno-mapped Status on failure (the partially written
/// file is left behind for the caller — snapshot saves write to a `.tmp`
/// path and rename into place, so a torn write never replaces good data).
Status WriteStringToFile(const std::string& path, std::string_view body);

/// rename(2) with errno mapping, for atomic replace-on-success patterns.
Status RenameFile(const std::string& from, const std::string& to);

/// unlink(2); ENOENT is not an error (the file is gone either way).
Status RemoveFile(const std::string& path);

/// Lists the entry names in `dir` (no "."/".."), unsorted; errno-mapped
/// Status on failure. Used by the snapshot rotation fallback walk.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_IO_H_
