// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Deterministic fault injection. Fallible subsystems declare named sites
// (HYPERDOM_FAULT_POINT("ss_tree/split")); tests arm the process-wide
// registry to make exactly the nth execution of a site — or a seeded
// pseudo-random fraction of all executions — fail with a Status. Every
// injected failure travels the same Status path a real failure would
// (a short read, an allocation error, a corrupt record), so the failure
// handling is exercised by tests instead of trusted on faith.
//
// Two kinds of site:
//   * HYPERDOM_FAULT_POINT(site)    expands to `return Status::Internal(...)`
//     when the site fires; usable only inside functions returning Status
//     or Result<T>.
//   * HYPERDOM_FAULT_DEGRADE(site)  evaluates to true when the site fires;
//     for code that cannot fail (e.g. the certified-dominance escalation
//     chain, which returns a Verdict) and instead degrades conservatively.
//
// Determinism contract: with the registry armed via ArmRandom(seed, p),
// whether a given (site, per-site hit index) fires is a pure function of
// (seed, site, index) — independent of thread interleaving, iteration
// order, or what other sites exist — so any failure reproduces from the
// seed alone. Single-threaded, the index is the process-wide per-site
// execution counter. Under concurrent queries that counter's *assignment*
// to queries would race, so query drivers (the exec/ batch engine) install
// a FaultQueryScope: while one is active, the stream is derived from
// (seed, site, query id, per-query hit index), all of which are
// thread-local facts — which query fails is then identical at any thread
// count. ArmSite's "nth execution" stays a process-wide notion either way.
//
// The macros compile to nothing when HYPERDOM_FAULT_INJECTION_ENABLED is
// not defined (CMake option HYPERDOM_FAULT_INJECTION, default ON; release
// deployments switch it OFF for zero overhead). Even when compiled in, an
// un-armed registry costs one relaxed atomic load per site execution.

#ifndef HYPERDOM_COMMON_FAULT_H_
#define HYPERDOM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace hyperdom {

/// The canonical list of injection sites compiled into the library.
/// Sweep tests iterate this to prove every site propagates cleanly; keep
/// it in sync when adding a HYPERDOM_FAULT_POINT / HYPERDOM_FAULT_DEGRADE.
const std::vector<std::string_view>& AllFaultSites();

/// True for sites that degrade (HYPERDOM_FAULT_DEGRADE) rather than fail
/// with a Status: firing them can never produce a non-OK Status, only a
/// conservative answer (e.g. a kUncertain verdict).
bool IsDegradeFaultSite(std::string_view site);

/// \brief Process-wide fault-injection registry.
///
/// Thread-safe. Exactly one arming is active at a time: ArmSite() for a
/// targeted single-shot fault, ArmRandom() for seeded probabilistic
/// faults across all sites. Reset() disarms and clears all counters.
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  /// Disarms the registry and clears hit/injection counters.
  void Reset();

  /// Arms the `nth` execution (1-based) of `site` to fail. Replaces any
  /// previous arming; counters are cleared.
  void ArmSite(std::string_view site, uint64_t nth = 1);

  /// Arms every site to fail independently with `probability` on each
  /// execution, deterministically derived from (seed, site, per-site hit
  /// index). probability = 0 enables hit counting without ever firing
  /// (used by coverage tests). Replaces any previous arming.
  void ArmRandom(uint64_t seed, double probability);

  /// True when any arming is active (including ArmRandom with p = 0).
  bool armed() const { return enabled_.load(std::memory_order_relaxed); }

  /// Total faults injected since the last arming.
  uint64_t injected() const;

  /// Executions of `site` since the last arming (0 while disarmed —
  /// counting is only active while armed, keeping the disarmed fast path
  /// to one atomic load).
  uint64_t hits(std::string_view site) const;

  /// All (site, execution count) pairs observed since the last arming.
  std::vector<std::pair<std::string, uint64_t>> HitCounts() const;

  /// Called by HYPERDOM_FAULT_POINT: returns non-OK iff the site fires.
  Status Hit(std::string_view site);

  /// Called by HYPERDOM_FAULT_DEGRADE: returns true iff the site fires.
  bool HitDegrade(std::string_view site);

 private:
  FaultRegistry() = default;

  // Returns true when this execution of `site` should fire; updates the
  // per-site counter. Caller holds no lock.
  bool ShouldFire(std::string_view site, uint64_t* hit_index);

  enum class Mode { kDisarmed, kSite, kRandom };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  Mode mode_ = Mode::kDisarmed;
  std::string armed_site_;
  uint64_t armed_nth_ = 0;
  uint64_t seed_ = 0;
  double probability_ = 0.0;
  uint64_t injected_ = 0;
  std::map<std::string, uint64_t, std::less<>> hit_counts_;
};

/// \brief RAII thread-local per-query fault context.
///
/// While a scope is active on a thread, ArmRandom firing decisions on that
/// thread are pure in (seed, site, query_id, per-query hit index) instead
/// of the process-wide per-site counter, making fault placement
/// reproducible under concurrent query execution (see the determinism
/// contract above). The batch engine installs one per query, with the
/// query's index in its batch as the id; single-query drivers run without
/// a scope and keep the historical global-counter stream. Scopes nest
/// (the outer context is restored on destruction); a scope must be
/// destroyed on the thread that created it.
class FaultQueryScope {
 public:
  explicit FaultQueryScope(uint64_t query_id);
  ~FaultQueryScope();

  FaultQueryScope(const FaultQueryScope&) = delete;
  FaultQueryScope& operator=(const FaultQueryScope&) = delete;

  /// True when a scope is active on this thread.
  static bool Active();

  /// The active scope's query id (0 when none is active).
  static uint64_t CurrentQueryId();

 private:
  bool prev_active_;
  uint64_t prev_query_id_;
  std::map<std::string, uint64_t, std::less<>> prev_hits_;
};

}  // namespace hyperdom

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)

/// Fails the enclosing Status/Result-returning function when `site` fires.
#define HYPERDOM_FAULT_POINT(site)                                   \
  do {                                                               \
    if (::hyperdom::FaultRegistry::Instance().armed()) {             \
      ::hyperdom::Status _fault_status =                             \
          ::hyperdom::FaultRegistry::Instance().Hit(site);           \
      if (!_fault_status.ok()) return _fault_status;                 \
    }                                                                \
  } while (false)

/// Evaluates to true when `site` fires; the caller degrades conservatively.
#define HYPERDOM_FAULT_DEGRADE(site)                   \
  (::hyperdom::FaultRegistry::Instance().armed() &&    \
   ::hyperdom::FaultRegistry::Instance().HitDegrade(site))

/// Expression form of HYPERDOM_FAULT_POINT: evaluates to the injected
/// Status (OK unless `site` fires), for call sites that handle the
/// failure locally — e.g. the server's connection loop, which must close
/// the connection rather than return.
#define HYPERDOM_FAULT_POINT_STATUS(site)                  \
  (::hyperdom::FaultRegistry::Instance().armed()           \
       ? ::hyperdom::FaultRegistry::Instance().Hit(site)   \
       : ::hyperdom::Status::OK())

#else

#define HYPERDOM_FAULT_POINT(site) \
  do {                             \
  } while (false)
#define HYPERDOM_FAULT_DEGRADE(site) (false)
#define HYPERDOM_FAULT_POINT_STATUS(site) (::hyperdom::Status::OK())

#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

#endif  // HYPERDOM_COMMON_FAULT_H_
