// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Cooperative query deadlines. A Deadline bounds a traversal by wall-clock
// time and/or a node-visit budget; query drivers poll Expired() at each
// node they are about to expand and, on expiry, stop descending and return
// what they can prove so far. Results carry a Completeness tag so degraded
// answers are flagged, never silent.
//
// Best-effort answers keep a hard guarantee (see docs/robustness.md §7):
// the kNN drivers report only entries whose membership in the *exact*
// answer set is certain. The key monotonicity fact is that
// Dom(A, B, Sq) implies MaxDist(A, Sq) < MaxDist(B, Sq), so the exact
// k-th dominance distance can never drop below
//     L = min(interim DistK, min MinDist over deadline-skipped subtrees)
// and every seen entry with MaxDist <= L is in the exact answer.
// TraversalGuard tracks the second term (the "pending bound").

#ifndef HYPERDOM_COMMON_DEADLINE_H_
#define HYPERDOM_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

/// Whether a query result covers the whole search space or was cut short
/// by a deadline/budget.
enum class Completeness {
  kExact,       ///< the traversal ran to completion; the answer is exact
  kBestEffort,  ///< deadline expired; flagged partial (but certified) answer
};

/// "exact" or "best-effort".
std::string_view CompletenessName(Completeness completeness);

/// \brief A time and/or work budget for one query.
///
/// Value type; default-constructed it is unbounded. The node budget is an
/// exact, deterministic cutoff ("expand at most N nodes") used by tests;
/// the wall deadline is the production knob. Both can be set at once —
/// whichever trips first expires the query.
class Deadline {
 public:
  /// Unbounded: Expired() is always false.
  Deadline() = default;

  static Deadline Unbounded() { return Deadline(); }

  /// Expires once `max_node_visits` nodes have been expanded.
  static Deadline WithNodeBudget(uint64_t max_node_visits) {
    Deadline d;
    d.node_budget_ = max_node_visits;
    return d;
  }

  /// Expires `budget` from now (steady clock).
  static Deadline AfterDuration(std::chrono::nanoseconds budget) {
    Deadline d;
    d.has_wall_deadline_ = true;
    d.wall_deadline_ = ReadClock() + budget;
    return d;
  }

  /// Adds a node budget to an existing deadline.
  Deadline& SetNodeBudget(uint64_t max_node_visits) {
    node_budget_ = max_node_visits;
    return *this;
  }

  bool unbounded() const {
    return !has_wall_deadline_ && node_budget_ == kUnlimited;
  }
  uint64_t node_budget() const { return node_budget_; }
  bool has_wall_deadline() const { return has_wall_deadline_; }

  /// Exact, clock-free half of the expiry test: the node budget is spent
  /// (`nodes_visited >= budget`).
  bool NodeBudgetExpired(uint64_t nodes_visited) const {
    return nodes_visited >= node_budget_;
  }

  /// Clock-reading half of the expiry test: the wall deadline has passed.
  /// False when no wall deadline is set (and the clock is not read).
  bool WallExpired() const {
    if (!has_wall_deadline_) return false;
    return ReadClock() >= wall_deadline_;
  }

  /// True when the query must stop: the node budget is spent or the wall
  /// deadline has passed. The caller polls this *before* expanding a node,
  /// passing the number of nodes expanded so far. Hot loops should go
  /// through TraversalGuard::ShouldStop, which rate-limits the clock read.
  bool Expired(uint64_t nodes_visited) const {
    return NodeBudgetExpired(nodes_visited) || WallExpired();
  }

  /// Process-wide count of steady_clock reads made by Deadline. For the
  /// regression test that a budget-only deadline never touches the clock;
  /// monotonically increasing, racy-but-consistent.
  static uint64_t WallClockReads();

 private:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  // The single funnel for steady_clock::now(), so clock usage is countable.
  static std::chrono::steady_clock::time_point ReadClock();

  uint64_t node_budget_ = kUnlimited;
  bool has_wall_deadline_ = false;
  std::chrono::steady_clock::time_point wall_deadline_{};
};

/// \brief Per-traversal deadline bookkeeping shared by the query drivers.
///
/// Wraps a Deadline with (a) a sticky expired flag — once a traversal
/// sees expiry it stays expired, so one wall-clock check governs the
/// whole wind-down — and (b) the pending bound: the minimum lower bound
/// (MinDist) over every subtree the traversal skipped because of expiry,
/// i.e. a floor on what the unexplored space could still contain.
/// +infinity while nothing was skipped.
///
/// Owns its Deadline by value (24 bytes), so a guard built from a
/// temporary (`TraversalGuard g(Deadline::AfterDuration(ms))`) or moved
/// into a worker-pool task never dangles.
class TraversalGuard {
 public:
  /// Wall-clock polls per actual steady_clock read in ShouldStop. The
  /// node-budget half of the test stays exact on every poll; only the
  /// clock read is rate-limited (always taken on the first poll, so a
  /// zero wall budget still stops the query before any node expands).
  static constexpr uint64_t kWallPollStride = 64;

  explicit TraversalGuard(Deadline deadline) : deadline_(deadline) {}

  /// Polled before expanding a node; `work_done` is the driver's count of
  /// nodes expanded so far. Sticky.
  bool ShouldStop(uint64_t work_done) {
    if (expired_) return true;
    if (deadline_.unbounded()) return false;
    if (deadline_.NodeBudgetExpired(work_done)) {
      MarkExpired();
    } else if (deadline_.has_wall_deadline() &&
               (wall_polls_++ % kWallPollStride) == 0 &&
               deadline_.WallExpired()) {
      MarkExpired();
    }
    return expired_;
  }

  /// Records the lower bound of a subtree skipped due to expiry.
  void NoteSkipped(double lower_bound) {
    if (lower_bound < pending_bound_) pending_bound_ = lower_bound;
  }

  /// True iff the deadline fired at least once during this traversal.
  bool expired() const { return expired_; }

  /// min MinDist over skipped subtrees; +inf when nothing was skipped.
  double pending_bound() const { return pending_bound_; }

 private:
  void MarkExpired() {
    expired_ = true;
    // The false->true transition happens at most once per traversal, so
    // the expiry instrumentation stays off the per-node polling path.
    HYPERDOM_COUNTER_INC(obs::kDeadlineExpired);
    HYPERDOM_SPAN_EVENT_CURRENT("deadline_expired");
  }

  Deadline deadline_;
  uint64_t wall_polls_ = 0;
  bool expired_ = false;
  double pending_bound_ = std::numeric_limits<double>::infinity();
};

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_DEADLINE_H_
