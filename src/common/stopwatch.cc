// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Stopwatch is header-only; this translation unit anchors the target.

#include "common/stopwatch.h"
