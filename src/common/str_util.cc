// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/str_util.h"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>

namespace hyperdom {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool ParseDouble(std::string_view s, double* out) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return false;
  // std::from_chars<double> is not universally available; use strtod on a
  // NUL-terminated copy.
  std::string buf(s);
  char* endp = nullptr;
  double v = std::strtod(buf.c_str(), &endp);
  if (endp != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return false;
  uint64_t v = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string FormatDuration(double nanos) {
  char buf[64];
  if (nanos < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", nanos);
  } else if (nanos < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f us", nanos * 1e-3);
  } else if (nanos < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", nanos * 1e-6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", nanos * 1e-9);
  }
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace hyperdom
