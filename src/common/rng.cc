// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace hyperdom {

namespace {

inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextU64() {
  // xoshiro256++ step.
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::UniformU64(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix all state words with the stream id through SplitMix64.
  uint64_t acc = 0x243F6A8885A308D3ULL ^ stream_id;
  for (const auto& word : s_) {
    acc ^= word;
    (void)SplitMix64(&acc);
  }
  return Rng(acc ^ (stream_id * 0x9E3779B97F4A7C15ULL));
}

}  // namespace hyperdom
