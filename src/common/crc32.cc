// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/crc32.h"

#include <array>

namespace hyperdom {

namespace {

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  uint32_t c = state_;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

uint32_t Crc32Of(const void* data, size_t size) {
  Crc32 crc;
  crc.Update(data, size);
  return crc.value();
}

}  // namespace hyperdom
