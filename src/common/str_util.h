// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Small string helpers shared by the CSV reader and the table printer.

#ifndef HYPERDOM_COMMON_STR_UTIL_H_
#define HYPERDOM_COMMON_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hyperdom {

/// Splits `s` on `delim`; keeps empty fields. "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Parses a double; returns false on trailing garbage or empty input.
bool ParseDouble(std::string_view s, double* out);

/// Parses a non-negative integer; returns false on trailing garbage.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Formats a double with `precision` significant digits (shortest form).
std::string FormatDouble(double v, int precision = 6);

/// Formats nanoseconds as a human-scaled duration ("1.23 us", "45 ms").
std::string FormatDuration(double nanos);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_STR_UTIL_H_
