// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

namespace hyperdom {

namespace {

// Thread-safe strerror: strerror_r has two incompatible signatures; route
// through the POSIX one via a local buffer and fall back to the number.
std::string ErrnoText(int err) {
  char buf[128];
#if defined(__GLIBC__) && defined(_GNU_SOURCE)
  return std::string(strerror_r(err, buf, sizeof(buf)));
#else
  if (strerror_r(err, buf, sizeof(buf)) != 0) {
    return "errno " + std::to_string(err);
  }
  return std::string(buf);
#endif
}

int OpenRetry(const char* path, int flags, mode_t mode) {
  int fd = -1;
  do {
    fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  return fd;
}

void CloseQuietly(int fd) {
  // POSIX leaves the fd state unspecified on EINTR from close(2); Linux
  // always releases it, so retrying would risk closing a reused descriptor.
  ::close(fd);
}

}  // namespace

Status ErrnoToStatus(int err, std::string_view op, std::string_view target) {
  std::string msg(op);
  msg.append(" '").append(target).append("': ").append(ErrnoText(err));
  if (err == ENOENT) return Status::NotFound(std::move(msg));
  return Status::IOError(std::move(msg));
}

Result<std::string> ReadFileToString(const std::string& path) {
  const int fd = OpenRetry(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return ErrnoToStatus(errno, "open", path);
  std::string out;
  // Size hint only: the read loop below is the truth, so a file that grows
  // or shrinks between fstat and read still loads correctly.
  struct stat st {};
  if (::fstat(fd, &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;  // EOF
    if (errno == EINTR) continue;
    const int err = errno;
    CloseQuietly(fd);
    return ErrnoToStatus(err, "read", path);
  }
  CloseQuietly(fd);
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view body) {
  const int fd = OpenRetry(path.c_str(),
                           O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return ErrnoToStatus(errno, "open", path);
  size_t written = 0;
  while (written < body.size()) {
    const ssize_t n =
        ::write(fd, body.data() + written, body.size() - written);
    if (n >= 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    const int err = errno;
    CloseQuietly(fd);
    return ErrnoToStatus(err, "write", path);
  }
  CloseQuietly(fd);
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoToStatus(errno, "rename", from + "' -> '" + to);
  }
  return Status::OK();
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return ErrnoToStatus(errno, "unlink", path);
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return ErrnoToStatus(errno, "opendir", dir);
  std::vector<std::string> names;
  for (;;) {
    errno = 0;
    const struct dirent* entry = ::readdir(handle);
    if (entry == nullptr) {
      const int err = errno;
      ::closedir(handle);
      if (err != 0) return ErrnoToStatus(err, "readdir", dir);
      return names;
    }
    const std::string_view name(entry->d_name);
    if (name == "." || name == "..") continue;
    names.emplace_back(name);
  }
}

}  // namespace hyperdom
