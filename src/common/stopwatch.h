// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Wall-clock timing utilities for the experiment harness.

#ifndef HYPERDOM_COMMON_STOPWATCH_H_
#define HYPERDOM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hyperdom {

/// \brief Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Prevents the compiler from optimizing away a computed value
/// (google-benchmark's DoNotOptimize, usable outside benchmark binaries).
template <typename T>
inline void DoNotOptimizeAway(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_STOPWATCH_H_
