// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Wall-clock timing utilities for the experiment harness.

#ifndef HYPERDOM_COMMON_STOPWATCH_H_
#define HYPERDOM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace hyperdom {

/// \brief Monotonic wall-clock stopwatch with nanosecond resolution.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Nanoseconds elapsed since construction or the last Restart().
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// ElapsedNanos() clamped to >= 0 and widened for histogram recording.
  /// (steady_clock never goes backwards; the clamp guards arithmetic on
  /// the cast, not the clock.)
  uint64_t ElapsedNs() const {
    const int64_t ns = ElapsedNanos();
    return ns > 0 ? static_cast<uint64_t>(ns) : 0;
  }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  static_assert(Clock::is_steady,
                "Stopwatch requires a monotonic clock: timings must never "
                "jump with wall-clock adjustments");
  Clock::time_point start_;
};

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

/// \brief RAII timer recording its scope's duration into a registry
/// histogram on destruction.
///
/// Prefer the HYPERDOM_SCOPED_TIMER / HYPERDOM_SCOPED_TIMER_L macros,
/// which compile out with observability and cache the histogram handle.
class ScopedTimer {
 public:
  explicit ScopedTimer(obs::Histogram* histogram) : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(watch_.ElapsedNs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  obs::Histogram* histogram_;
  Stopwatch watch_;
};

/// Times the rest of the scope into `def`'s histogram.
#define HYPERDOM_SCOPED_TIMER(var, def)                              \
  static ::hyperdom::obs::Histogram* const _hyperdom_timer_##var =   \
      ::hyperdom::obs::MetricsRegistry::Instance().GetHistogram(def); \
  ::hyperdom::ScopedTimer var(_hyperdom_timer_##var)

/// Labelled variant; `key` and `value` must be string literals.
#define HYPERDOM_SCOPED_TIMER_L(var, def, key, value)                \
  static ::hyperdom::obs::Histogram* const _hyperdom_timer_##var =   \
      ::hyperdom::obs::MetricsRegistry::Instance().GetHistogram(     \
          def, key, value);                                          \
  ::hyperdom::ScopedTimer var(_hyperdom_timer_##var)

#else

#define HYPERDOM_SCOPED_TIMER(var, def) \
  do {                                  \
  } while (false)
#define HYPERDOM_SCOPED_TIMER_L(var, def, key, value) \
  do {                                                \
  } while (false)

#endif  // HYPERDOM_OBSERVABILITY_ENABLED

/// Prevents the compiler from optimizing away a computed value
/// (google-benchmark's DoNotOptimize, usable outside benchmark binaries).
template <typename T>
inline void DoNotOptimizeAway(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_STOPWATCH_H_
