// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/deadline.h"

namespace hyperdom {

std::string_view CompletenessName(Completeness completeness) {
  switch (completeness) {
    case Completeness::kExact:
      return "exact";
    case Completeness::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

}  // namespace hyperdom
