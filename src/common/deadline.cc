// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/deadline.h"

#include <atomic>

namespace hyperdom {

namespace {
// Read-side observability for the "budget-only deadlines are clock-free"
// guarantee; bumped on the rate-limited path only, so the relaxed add is
// noise next to the clock read it counts.
std::atomic<uint64_t> g_wall_clock_reads{0};
}  // namespace

std::chrono::steady_clock::time_point Deadline::ReadClock() {
  g_wall_clock_reads.fetch_add(1, std::memory_order_relaxed);
  return std::chrono::steady_clock::now();
}

uint64_t Deadline::WallClockReads() {
  return g_wall_clock_reads.load(std::memory_order_relaxed);
}

std::string_view CompletenessName(Completeness completeness) {
  switch (completeness) {
    case Completeness::kExact:
      return "exact";
    case Completeness::kBestEffort:
      return "best-effort";
  }
  return "unknown";
}

}  // namespace hyperdom
