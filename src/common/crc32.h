// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for snapshot
// integrity checks. Table-driven, streamable via the Crc32 accumulator.
// Standard check value: Crc32Of("123456789", 9) == 0xCBF43926.

#ifndef HYPERDOM_COMMON_CRC32_H_
#define HYPERDOM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace hyperdom {

/// \brief Incremental CRC-32 accumulator.
class Crc32 {
 public:
  /// Folds `size` bytes at `data` into the checksum.
  void Update(const void* data, size_t size);

  /// The checksum of everything folded in so far.
  uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 of a buffer.
uint32_t Crc32Of(const void* data, size_t size);

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_CRC32_H_
