// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// A small Status/Result pair in the RocksDB/Arrow idiom: the library does not
// throw; fallible operations (I/O, parsing, configuration) report through
// Status, pure geometric predicates return values directly.

#ifndef HYPERDOM_COMMON_STATUS_H_
#define HYPERDOM_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>

namespace hyperdom {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kInternal,
  // Wire-protocol categories (src/server/): the server sheds load, a
  // deadline expired before any answer could be certified, or a frame
  // failed structural validation (bad magic/CRC/size).
  kOverloaded,
  kDeadlineExceeded,
  kProtocolError,
  // Mutability (src/index/mutable_ss_tree.h): a mutation was rejected
  // because the store is compacting or frozen for drain. Retryable once
  // the maintenance window closes; the store is unchanged.
  kConflict,
};

/// \brief Outcome of a fallible operation.
///
/// Cheap to copy in the OK case (no allocation); carries a code and a
/// human-readable message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \name Factory constructors, one per category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The error category.
  StatusCode code() const { return code_; }
  /// The error message; empty for OK.
  const std::string& message() const { return message_; }

  /// "OK" or "<Category>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-error holder, used by APIs that produce a value.
///
/// Call ok() before ValueOrDie()/operator*.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: failure.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& ValueOrDie() const {
    assert(ok());
    return value_;
  }
  T& ValueOrDie() {
    assert(ok());
    return value_;
  }
  /// Moves the contained value out; must only be called when ok().
  T TakeValue() {
    assert(ok());
    return std::move(value_);
  }

  const T& operator*() const { return ValueOrDie(); }
  T& operator*() { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller (RocksDB-style early return).
#define HYPERDOM_RETURN_NOT_OK(expr)          \
  do {                                        \
    ::hyperdom::Status _st = (expr);          \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace hyperdom

#endif  // HYPERDOM_COMMON_STATUS_H_
