// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "common/status.h"

namespace hyperdom {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kProtocolError:
      return "Protocol error";
    case StatusCode::kConflict:
      return "Conflict";
  }
  return "Unknown";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hyperdom
