// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The batch query engine: shard a vector of query hyperspheres across a
// worker pool, each worker running the existing single-query drivers.
// Per-query isolation is the unit of parallelism — every query gets its
// own TraversalGuard (deadline held by value), its own KnnStats, its own
// fault stream (FaultQueryScope keyed by the query's batch index), and,
// for stochastic drivers, its own Rng forked as Rng(seed).Fork(index) —
// so the i-th result is a pure function of (tree, queries[i], options),
// bit-identical at any thread count. See docs/performance.md.
//
// Aggregate counters merge through the sharded obs registry exactly as in
// serial execution (each worker thread lands on its own shard); the
// BatchStats totals returned here are the arithmetic sum of the per-query
// stats, so exports and results reconcile by construction.

#ifndef HYPERDOM_EXEC_BATCH_H_
#define HYPERDOM_EXEC_BATCH_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "dominance/criterion.h"
#include "exec/thread_pool.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"
#include "query/knn_types.h"
#include "query/range.h"

namespace hyperdom {

/// Execution knobs shared by the batch entry points.
struct BatchOptions {
  /// Worker threads; 0 picks the hardware concurrency. 1 runs inline on
  /// the calling thread (still through the per-query isolation path, so
  /// results match the threaded runs bit for bit).
  size_t threads = 1;
  /// Base seed for per-query Rng streams (query i gets Rng(seed).Fork(i)).
  /// The kNN/range drivers are deterministic and ignore it; it feeds
  /// future stochastic drivers routed through RunBatch().
  uint64_t seed = 0;
  /// Optional externally owned pool to run on; threads is ignored when
  /// set. The pool must outlive the call.
  ThreadPool* pool = nullptr;
};

/// Aggregate view of one batch run.
struct BatchStats {
  uint64_t queries = 0;         ///< results produced (== queries.size())
  uint64_t best_effort = 0;     ///< results flagged kBestEffort
  KnnStats totals;              ///< field-wise sum of per-query KnnStats
  uint64_t wall_nanos = 0;      ///< end-to-end batch wall time
  size_t threads = 1;           ///< workers the run actually used
};

/// Result of a batch kNN run: results[i] answers queries[i], and is
/// bit-identical to running the serial driver on queries[i] alone.
struct BatchKnnResult {
  std::vector<KnnResult> results;
  BatchStats stats;
};

/// Result of a batch range run; same per-index correspondence.
struct BatchRangeResult {
  std::vector<RangeResult> results;
  RangeStats totals;
  uint64_t queries = 0;
  uint64_t best_effort = 0;
  uint64_t wall_nanos = 0;
  size_t threads = 1;
};

/// Batch kNN over each of the four indexes. `criterion` is shared by all
/// workers and must be thread-safe for concurrent Decide calls (every
/// criterion in dominance/ is: they are stateless or use atomics).
BatchKnnResult BatchKnn(const SsTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec);
BatchKnnResult BatchKnn(const RStarTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec);
BatchKnnResult BatchKnn(const VpTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec);
BatchKnnResult BatchKnn(const MTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec);

/// Batch range search over the SS-tree; the per-query deadline is applied
/// independently to every query.
BatchRangeResult BatchRange(const SsTree& tree,
                            const std::vector<Hypersphere>& queries,
                            double range, const Deadline& deadline,
                            const BatchOptions& exec);

/// Per-query execution context handed to RunBatch bodies.
struct QueryContext {
  size_t index;  ///< the query's position in the batch
  Rng rng;       ///< independent stream: Rng(exec.seed).Fork(index)
};

/// \brief Generic batch scaffold: runs `body(ctx)` once per query index
/// with the per-query fault scope and Rng installed, on `exec`'s pool.
///
/// BatchKnn/BatchRange are built on this; callers with custom drivers
/// (e.g. probabilistic kNN sweeps) can reuse it to inherit the same
/// determinism contract. `body` must be concurrency-safe for distinct
/// indices. Returns the workers used.
size_t RunBatch(size_t n, const BatchOptions& exec,
                const std::function<void(QueryContext&)>& body);

}  // namespace hyperdom

#endif  // HYPERDOM_EXEC_BATCH_H_
