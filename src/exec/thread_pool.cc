// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "exec/thread_pool.h"

#include <utility>

#include "obs/metrics.h"

namespace hyperdom {

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = threads > 0 ? threads : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  HYPERDOM_GAUGE_SET(obs::kExecPoolThreads, static_cast<double>(n));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  HYPERDOM_COUNTER_INC(obs::kExecTasks);
  work_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      task();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace hyperdom
