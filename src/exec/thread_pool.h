// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// A fixed-size worker pool for per-query parallelism. The query layer is
// embarrassingly parallel across queries — every single-query driver owns
// its TraversalGuard/KnnStats and publishes to the sharded obs registry —
// so the pool only has to hand out independent tasks; it does no work
// partitioning itself (ParallelFor in parallel_for.h does that with a
// lock-free claim counter).
//
// Semantics:
//   * Submit() enqueues a task; workers run tasks in FIFO order.
//   * Wait() blocks until every submitted task finished, then rethrows the
//     first exception any task threw (later ones are dropped). The pool
//     stays usable after Wait(), including after an exception.
//   * The destructor drains the queue (it does not cancel queued tasks)
//     and joins the workers; pending exceptions are swallowed there, so
//     callers who care must Wait().

#ifndef HYPERDOM_EXEC_THREAD_POOL_H_
#define HYPERDOM_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hyperdom {

/// \brief Fixed-size worker pool with FIFO task queue.
///
/// Thread-safe for Submit/Wait from any thread, though Wait() from inside
/// a task deadlocks (a worker cannot wait for itself).
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 is clamped to 1. The pool never grows or
  /// shrinks.
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count chosen for `requested`: the request itself, or the
  /// hardware concurrency when `requested` is 0 (at least 1).
  static size_t ResolveThreads(size_t requested);

  size_t size() const { return workers_.size(); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks completed; rethrows the first task
  /// exception (clearing it, so the pool is reusable).
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_ready_;   // workers wait here for tasks
  std::condition_variable all_done_;     // Wait() sleeps here
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
  std::vector<std::thread> workers_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_EXEC_THREAD_POOL_H_
