// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "exec/batch.h"

#include <memory>
#include <utility>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "exec/parallel_for.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/index_knn.h"
#include "query/knn.h"

namespace hyperdom {

namespace {

void AccumulateKnnStats(const KnnStats& one, KnnStats* totals) {
  totals->nodes_visited += one.nodes_visited;
  totals->nodes_pruned += one.nodes_pruned;
  totals->entries_accessed += one.entries_accessed;
  totals->dominance_checks += one.dominance_checks;
  totals->pruned_case2 += one.pruned_case2;
  totals->pruned_case3 += one.pruned_case3;
  totals->removed_case1 += one.removed_case1;
  totals->uncertain_verdicts += one.uncertain_verdicts;
  totals->nodes_deadline_skipped += one.nodes_deadline_skipped;
}

// The shared shape of the four BatchKnn overloads: `run_one(sq)` executes
// the index's existing single-query driver.
template <typename RunOne>
BatchKnnResult RunBatchKnn(const std::vector<Hypersphere>& queries,
                           const BatchOptions& exec, const RunOne& run_one) {
  HYPERDOM_SPAN(span, "batch/knn");
  BatchKnnResult batch;
  batch.results.resize(queries.size());
  Stopwatch watch;
  batch.stats.threads =
      RunBatch(queries.size(), exec, [&](QueryContext& ctx) {
        batch.results[ctx.index] = run_one(queries[ctx.index]);
      });
  batch.stats.wall_nanos = watch.ElapsedNs();
  batch.stats.queries = queries.size();
  for (const KnnResult& result : batch.results) {
    AccumulateKnnStats(result.stats, &batch.stats.totals);
    if (result.completeness == Completeness::kBestEffort) {
      ++batch.stats.best_effort;
    }
  }
  HYPERDOM_COUNTER_INC_L(obs::kBatchRuns, "kind", "knn");
  HYPERDOM_COUNTER_ADD_L(obs::kBatchQueries, "kind", "knn", queries.size());
  HYPERDOM_HISTOGRAM_RECORD_L(obs::kBatchDuration, "kind", "knn",
                              batch.stats.wall_nanos);
  HYPERDOM_SPAN_ANNOTATE(span, "queries",
                         static_cast<uint64_t>(queries.size()));
  HYPERDOM_SPAN_ANNOTATE(span, "threads",
                         static_cast<uint64_t>(batch.stats.threads));
  return batch;
}

}  // namespace

size_t RunBatch(size_t n, const BatchOptions& exec,
                const std::function<void(QueryContext&)>& body) {
  const Rng base(exec.seed);
  const auto run_one = [&base, &body](size_t i) {
    // Per-query isolation: the fault stream keys on the batch index and
    // the Rng stream forks from it, so query i's execution is identical
    // whether it runs first, last, or on another thread.
    FaultQueryScope fault_scope(static_cast<uint64_t>(i));
    QueryContext ctx{i, base.Fork(static_cast<uint64_t>(i))};
    body(ctx);
  };

  if (exec.pool != nullptr) {
    ParallelFor(exec.pool, n, run_one);
    return exec.pool->size();
  }
  const size_t threads = ThreadPool::ResolveThreads(exec.threads);
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) run_one(i);
    return 1;
  }
  ThreadPool pool(threads);
  ParallelFor(&pool, n, run_one);
  return threads;
}

BatchKnnResult BatchKnn(const SsTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec) {
  const KnnSearcher searcher(&criterion, options);
  return RunBatchKnn(queries, exec, [&](const Hypersphere& sq) {
    return searcher.Search(tree, sq);
  });
}

BatchKnnResult BatchKnn(const RStarTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec) {
  return RunBatchKnn(queries, exec, [&](const Hypersphere& sq) {
    return RStarKnnSearch(tree, sq, criterion, options);
  });
}

BatchKnnResult BatchKnn(const VpTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec) {
  return RunBatchKnn(queries, exec, [&](const Hypersphere& sq) {
    return VpTreeKnnSearch(tree, sq, criterion, options);
  });
}

BatchKnnResult BatchKnn(const MTree& tree,
                        const std::vector<Hypersphere>& queries,
                        const DominanceCriterion& criterion,
                        const KnnOptions& options, const BatchOptions& exec) {
  return RunBatchKnn(queries, exec, [&](const Hypersphere& sq) {
    return MTreeKnnSearch(tree, sq, criterion, options);
  });
}

BatchRangeResult BatchRange(const SsTree& tree,
                            const std::vector<Hypersphere>& queries,
                            double range, const Deadline& deadline,
                            const BatchOptions& exec) {
  HYPERDOM_SPAN(span, "batch/range");
  BatchRangeResult batch;
  batch.results.resize(queries.size());
  Stopwatch watch;
  batch.threads = RunBatch(queries.size(), exec, [&](QueryContext& ctx) {
    batch.results[ctx.index] =
        RangeSearch(tree, queries[ctx.index], range, deadline);
  });
  batch.wall_nanos = watch.ElapsedNs();
  batch.queries = queries.size();
  for (const RangeResult& result : batch.results) {
    batch.totals.nodes_visited += result.stats.nodes_visited;
    batch.totals.nodes_pruned += result.stats.nodes_pruned;
    batch.totals.entries_accessed += result.stats.entries_accessed;
    batch.totals.nodes_deadline_skipped +=
        result.stats.nodes_deadline_skipped;
    if (result.completeness == Completeness::kBestEffort) {
      ++batch.best_effort;
    }
  }
  HYPERDOM_COUNTER_INC_L(obs::kBatchRuns, "kind", "range");
  HYPERDOM_COUNTER_ADD_L(obs::kBatchQueries, "kind", "range",
                         queries.size());
  HYPERDOM_HISTOGRAM_RECORD_L(obs::kBatchDuration, "kind", "range",
                              batch.wall_nanos);
  HYPERDOM_SPAN_ANNOTATE(span, "queries",
                         static_cast<uint64_t>(queries.size()));
  return batch;
}

}  // namespace hyperdom
