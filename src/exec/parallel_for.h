// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// ParallelFor: run `body(i)` for i in [0, n) across a ThreadPool. Work is
// claimed with a single shared atomic cursor — a lock-free fetch_add per
// item, no per-item task allocation, no work partitioning to balance —
// which keeps skewed workloads (one slow query among thousands) from
// idling workers. Exactly min(pool.size(), n) pool tasks are submitted.
//
// `body` must be safe to call concurrently for distinct i. The call
// blocks until every index ran (or was abandoned after a throw) and
// rethrows the first exception a body threw; remaining indices are then
// skipped, never half-run.

#ifndef HYPERDOM_EXEC_PARALLEL_FOR_H_
#define HYPERDOM_EXEC_PARALLEL_FOR_H_

#include <atomic>
#include <cstddef>

#include "exec/thread_pool.h"

namespace hyperdom {

/// Runs `body(0) .. body(n-1)` on `pool`'s workers. With a null pool, a
/// one-worker pool, or n <= 1 the loop runs inline on the caller's thread
/// (same exception behavior, zero synchronization).
template <typename Body>
void ParallelFor(ThreadPool* pool, size_t n, const Body& body) {
  if (pool == nullptr || pool->size() <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Shared by the claiming tasks; lives on the caller's frame, which
  // outlives them because Wait() below joins the whole submission.
  std::atomic<size_t> next{0};
  std::atomic<bool> abandoned{false};
  const size_t tasks = pool->size() < n ? pool->size() : n;
  for (size_t t = 0; t < tasks; ++t) {
    pool->Submit([&next, &abandoned, n, &body] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || abandoned.load(std::memory_order_relaxed)) return;
        try {
          body(i);
        } catch (...) {
          // Stop claiming new work; the pool records the exception and
          // Wait() rethrows it on the calling thread.
          abandoned.store(true, std::memory_order_relaxed);
          throw;
        }
      }
    });
  }
  pool->Wait();
}

}  // namespace hyperdom

#endif  // HYPERDOM_EXEC_PARALLEL_FOR_H_
