// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The two experiment drivers shared by every benchmark binary: the
// dominance-operator experiment of Section 7.1 and the kNN experiment of
// Section 7.2. Each returns printable rows; the bench binaries own the
// dataset choice and the parameter sweep.

#ifndef HYPERDOM_EVAL_EXPERIMENT_H_
#define HYPERDOM_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "dominance/criterion.h"
#include "index/ss_tree.h"
#include "query/knn.h"

namespace hyperdom {

/// One line of a Section 7.1 figure: a criterion's time/precision/recall.
struct DominanceExperimentRow {
  std::string criterion;
  double nanos_per_query = 0.0;
  double precision_pct = 0.0;
  double recall_pct = 0.0;
};

/// Protocol knobs (paper defaults: 10,000 queries, averaged over 10 runs).
struct DominanceExperimentConfig {
  size_t workload_size = 10'000;
  int repeats = 10;
  uint64_t seed = 0xD0117ULL;
  /// Criteria to evaluate, default = the paper's five (Table 1 order).
  std::vector<CriterionKind> criteria = PaperCriteria();
};

/// \brief Runs the dominance experiment on `data`: builds the random-triple
/// workload, uses Hyperbola as ground truth, and measures every criterion.
std::vector<DominanceExperimentRow> RunDominanceExperiment(
    const std::vector<Hypersphere>& data,
    const DominanceExperimentConfig& config);

/// One line of a Section 7.2 figure: an algorithm's query time/precision.
struct KnnExperimentRow {
  std::string algorithm;  ///< e.g. "HS(Hyper)", "DF(MinMax)"
  double millis_per_query = 0.0;
  double precision_pct = 0.0;
  double recall_pct = 0.0;  ///< 100 for every correct criterion
};

/// Protocol knobs for the kNN experiment.
struct KnnExperimentConfig {
  size_t k = 10;
  size_t num_queries = 20;
  uint64_t seed = 0x5EED0B22ULL;
  /// Worker threads for the query workload (0 = hardware concurrency).
  /// Results are bit-identical at any value; only wall time changes.
  size_t threads = 1;
  SsTreeOptions tree_options;
  /// Pruning criteria (the paper omits Trigonometric here: an incorrect
  /// criterion can drop true kNN answers).
  std::vector<CriterionKind> criteria = {
      CriterionKind::kHyperbola, CriterionKind::kMinMax, CriterionKind::kMbr,
      CriterionKind::kGp};
  std::vector<SearchStrategy> strategies = {SearchStrategy::kBestFirst,
                                            SearchStrategy::kDepthFirst};
};

/// \brief Runs the kNN experiment: builds one SS-tree over `data`, issues
/// the query workload with every (strategy, criterion) combination, and
/// scores each against the exact Definition-2 answer (linear scan with
/// Hyperbola).
std::vector<KnnExperimentRow> RunKnnExperiment(
    const std::vector<Hypersphere>& data, const KnnExperimentConfig& config);

/// Short display label, e.g. ("HS", kHyperbola) -> "HS(Hyper)".
std::string KnnAlgorithmLabel(SearchStrategy strategy, CriterionKind kind);

}  // namespace hyperdom

#endif  // HYPERDOM_EVAL_EXPERIMENT_H_
