// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Fixed-width table output for the benchmark binaries, so each bench prints
// rows shaped like the paper's figures/tables.

#ifndef HYPERDOM_EVAL_TABLE_PRINTER_H_
#define HYPERDOM_EVAL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace hyperdom {

/// \brief Collects rows of string cells and prints them column-aligned.
class TablePrinter {
 public:
  /// `headers` define the column count; rows must match it (asserted).
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table: header, separator, rows.
  std::string Render() const;

  /// Convenience: Render() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_EVAL_TABLE_PRINTER_H_
