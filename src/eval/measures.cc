// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/measures.h"

#include "common/stopwatch.h"

namespace hyperdom {

double ConfusionCounts::PrecisionPercent() const {
  const uint64_t denom = tp + fp;
  if (denom == 0) return 100.0;
  return 100.0 * static_cast<double>(tp) / static_cast<double>(denom);
}

double ConfusionCounts::RecallPercent() const {
  const uint64_t denom = tp + fn;
  if (denom == 0) return 100.0;
  return 100.0 * static_cast<double>(tp) / static_cast<double>(denom);
}

ConfusionCounts EvaluateCriterion(const DominanceCriterion& criterion,
                                  const std::vector<DominanceQuery>& workload,
                                  const std::vector<bool>& ground_truth) {
  ConfusionCounts counts;
  for (size_t i = 0; i < workload.size(); ++i) {
    const bool predicted =
        criterion.Dominates(workload[i].sa, workload[i].sb, workload[i].sq);
    const bool actual = ground_truth[i];
    if (predicted && actual) {
      ++counts.tp;
    } else if (predicted && !actual) {
      ++counts.fp;
    } else if (!predicted && actual) {
      ++counts.fn;
    } else {
      ++counts.tn;
    }
  }
  return counts;
}

std::vector<bool> RunCriterion(const DominanceCriterion& criterion,
                               const std::vector<DominanceQuery>& workload) {
  std::vector<bool> out(workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    out[i] =
        criterion.Dominates(workload[i].sa, workload[i].sb, workload[i].sq);
  }
  return out;
}

double TimeCriterionNanos(const DominanceCriterion& criterion,
                          const std::vector<DominanceQuery>& workload,
                          int repeats) {
  // One untimed warm-up pass to fault in the data.
  uint64_t sink = 0;
  for (const auto& q : workload) {
    sink += criterion.Dominates(q.sa, q.sb, q.sq) ? 1 : 0;
  }
  Stopwatch watch;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const auto& q : workload) {
      sink += criterion.Dominates(q.sa, q.sb, q.sq) ? 1 : 0;
    }
  }
  const double elapsed = static_cast<double>(watch.ElapsedNs());
  DoNotOptimizeAway(sink);
  return elapsed /
         (static_cast<double>(repeats) * static_cast<double>(workload.size()));
}

}  // namespace hyperdom
