// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The paper's three measures (Section 7.1): execution time, precision
// TP/(TP+FP) and recall TP/(TP+FN), with Hyperbola's answers as ground
// truth ("the only algorithm which is both correct and sound").

#ifndef HYPERDOM_EVAL_MEASURES_H_
#define HYPERDOM_EVAL_MEASURES_H_

#include <cstdint>
#include <vector>

#include "dominance/criterion.h"
#include "eval/workload.h"

namespace hyperdom {

/// Confusion counts of a criterion against ground truth over a workload.
struct ConfusionCounts {
  uint64_t tp = 0;
  uint64_t fp = 0;
  uint64_t tn = 0;
  uint64_t fn = 0;

  /// TP/(TP+FP), as a percentage; 100 when nothing was returned positive.
  double PrecisionPercent() const;
  /// TP/(TP+FN), as a percentage; 100 when nothing should be positive.
  double RecallPercent() const;
};

/// Evaluates `criterion` on every query; `ground_truth[i]` is the exact
/// answer for `workload[i]`.
ConfusionCounts EvaluateCriterion(const DominanceCriterion& criterion,
                                  const std::vector<DominanceQuery>& workload,
                                  const std::vector<bool>& ground_truth);

/// Runs `criterion` over every workload query once and returns the exact
/// answers (used to produce ground truth with Hyperbola).
std::vector<bool> RunCriterion(const DominanceCriterion& criterion,
                               const std::vector<DominanceQuery>& workload);

/// \brief Average wall-clock nanoseconds per query: the whole workload is
/// executed `repeats` times (the paper runs each workload 10 times) and the
/// total time is divided by repeats * workload size.
double TimeCriterionNanos(const DominanceCriterion& criterion,
                          const std::vector<DominanceQuery>& workload,
                          int repeats);

}  // namespace hyperdom

#endif  // HYPERDOM_EVAL_MEASURES_H_
