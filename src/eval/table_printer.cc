// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/table_printer.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace hyperdom {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

}  // namespace hyperdom
