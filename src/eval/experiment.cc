// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/experiment.h"

#include <algorithm>
#include <unordered_set>

#include "common/stopwatch.h"
#include "eval/measures.h"
#include "eval/workload.h"
#include "exec/batch.h"

namespace hyperdom {

std::vector<DominanceExperimentRow> RunDominanceExperiment(
    const std::vector<Hypersphere>& data,
    const DominanceExperimentConfig& config) {
  HYPERDOM_SCOPED_TIMER_L(run_timer, obs::kExperimentDuration, "phase",
                          "dominance");
  const std::vector<DominanceQuery> workload =
      MakeDominanceWorkload(data, config.workload_size, config.seed);

  // Ground truth per the paper: Hyperbola ("the only algorithm which is
  // both correct and sound").
  const auto hyperbola = MakeCriterion(CriterionKind::kHyperbola);
  const std::vector<bool> truth = RunCriterion(*hyperbola, workload);

  std::vector<DominanceExperimentRow> rows;
  rows.reserve(config.criteria.size());
  for (CriterionKind kind : config.criteria) {
    const auto criterion = MakeCriterion(kind);
    DominanceExperimentRow row;
    row.criterion = std::string(criterion->name());
    row.nanos_per_query =
        TimeCriterionNanos(*criterion, workload, config.repeats);
    const ConfusionCounts counts =
        EvaluateCriterion(*criterion, workload, truth);
    row.precision_pct = counts.PrecisionPercent();
    row.recall_pct = counts.RecallPercent();
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string KnnAlgorithmLabel(SearchStrategy strategy, CriterionKind kind) {
  std::string label =
      strategy == SearchStrategy::kBestFirst ? "HS(" : "DF(";
  switch (kind) {
    case CriterionKind::kHyperbola:
      label += "Hyper";
      break;
    case CriterionKind::kMinMax:
      label += "MinMax";
      break;
    case CriterionKind::kMbr:
      label += "MBR";
      break;
    case CriterionKind::kGp:
      label += "GP";
      break;
    default:
      label += std::string(CriterionKindName(kind));
      break;
  }
  label += ")";
  return label;
}

std::vector<KnnExperimentRow> RunKnnExperiment(
    const std::vector<Hypersphere>& data, const KnnExperimentConfig& config) {
  HYPERDOM_SCOPED_TIMER_L(run_timer, obs::kExperimentDuration, "phase",
                          "knn");
  SsTree tree(data.empty() ? 0 : data.front().dim(), config.tree_options);
  Status st = tree.BulkLoad(data);
  (void)st;  // generated data is well-formed; surfaced via tests otherwise

  const std::vector<Hypersphere> queries =
      MakeKnnQueries(data, config.num_queries, config.seed);

  // Exact Definition-2 ground truth per query, by linear scan + Hyperbola.
  const auto exact = MakeCriterion(CriterionKind::kHyperbola);
  std::vector<std::unordered_set<uint64_t>> truth_sets;
  truth_sets.reserve(queries.size());
  for (const auto& sq : queries) {
    const KnnResult exact_result =
        KnnLinearScan(data, sq, config.k, *exact);
    std::unordered_set<uint64_t> ids;
    for (const auto& e : exact_result.answers) ids.insert(e.id);
    truth_sets.push_back(std::move(ids));
  }

  std::vector<KnnExperimentRow> rows;
  for (SearchStrategy strategy : config.strategies) {
    for (CriterionKind kind : config.criteria) {
      const auto criterion = MakeCriterion(kind);
      KnnOptions options;
      options.k = config.k;
      options.strategy = strategy;
      BatchOptions exec;
      exec.threads = config.threads;
      exec.seed = config.seed;
      const BatchKnnResult batch =
          BatchKnn(tree, queries, *criterion, options, exec);

      uint64_t returned_total = 0;
      uint64_t correct_total = 0;
      uint64_t truth_total = 0;
      const double total_nanos =
          static_cast<double>(batch.stats.wall_nanos);
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const KnnResult& result = batch.results[qi];
        returned_total += result.answers.size();
        truth_total += truth_sets[qi].size();
        for (const auto& e : result.answers) {
          if (truth_sets[qi].count(e.id) > 0) ++correct_total;
        }
      }

      KnnExperimentRow row;
      row.algorithm = KnnAlgorithmLabel(strategy, kind);
      row.millis_per_query =
          total_nanos * 1e-6 / static_cast<double>(queries.size());
      row.precision_pct =
          returned_total == 0
              ? 100.0
              : 100.0 * static_cast<double>(correct_total) /
                    static_cast<double>(returned_total);
      row.recall_pct = truth_total == 0
                           ? 100.0
                           : 100.0 * static_cast<double>(correct_total) /
                                 static_cast<double>(truth_total);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

}  // namespace hyperdom
