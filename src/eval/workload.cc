// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/workload.h"

#include <cassert>

#include "common/rng.h"

namespace hyperdom {

std::vector<DominanceQuery> MakeDominanceWorkload(
    const std::vector<Hypersphere>& data, size_t count, uint64_t seed) {
  assert(data.size() >= 3);
  Rng rng(seed);
  std::vector<DominanceQuery> out;
  out.reserve(count);
  const uint64_t n = data.size();
  for (size_t i = 0; i < count; ++i) {
    uint64_t ia = rng.UniformU64(n);
    uint64_t ib = rng.UniformU64(n);
    while (ib == ia) ib = rng.UniformU64(n);
    uint64_t iq = rng.UniformU64(n);
    while (iq == ia || iq == ib) iq = rng.UniformU64(n);
    out.push_back(DominanceQuery{data[ia], data[ib], data[iq]});
  }
  return out;
}

std::vector<Hypersphere> MakeKnnQueries(const std::vector<Hypersphere>& data,
                                        size_t count, uint64_t seed) {
  assert(!data.empty());
  Rng rng(seed ^ 0xABCDEF12345ULL);
  std::vector<Hypersphere> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(data[rng.UniformU64(data.size())]);
  }
  return out;
}

}  // namespace hyperdom
