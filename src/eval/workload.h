// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Workload construction following the paper's Section 7 protocol: "a
// workload containing 10,000 random queries each involving three
// hyperspheres Sa, Sb and Sq selected from the dataset randomly".

#ifndef HYPERDOM_EVAL_WORKLOAD_H_
#define HYPERDOM_EVAL_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// One dominance query instance.
struct DominanceQuery {
  Hypersphere sa;
  Hypersphere sb;
  Hypersphere sq;
};

/// Draws `count` random (Sa, Sb, Sq) triples from `data` (with replacement
/// across queries; the three members of one triple are distinct objects).
/// Deterministic in `seed`. Requires data.size() >= 3.
std::vector<DominanceQuery> MakeDominanceWorkload(
    const std::vector<Hypersphere>& data, size_t count, uint64_t seed);

/// Draws `count` random query hyperspheres for the kNN experiments: each is
/// a randomly chosen dataset object (the paper queries the dataset's own
/// distribution). Deterministic in `seed`.
std::vector<Hypersphere> MakeKnnQueries(const std::vector<Hypersphere>& data,
                                        size_t count, uint64_t seed);

}  // namespace hyperdom

#endif  // HYPERDOM_EVAL_WORKLOAD_H_
