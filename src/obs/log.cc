// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "obs/log.h"

#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <utility>

#include "obs/metrics.h"

namespace hyperdom {
namespace obs {

namespace {

std::string FormatToken(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

std::string FormatToken(const char* fmt, ...) {
  char buf[64];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return std::string(buf, n > 0 ? static_cast<size_t>(n) : 0);
}

uint64_t WallNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

void CountLine(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      HYPERDOM_COUNTER_INC_L(kLogLines, "level", "debug");
      break;
    case LogLevel::kInfo:
      HYPERDOM_COUNTER_INC_L(kLogLines, "level", "info");
      break;
    case LogLevel::kWarn:
      HYPERDOM_COUNTER_INC_L(kLogLines, "level", "warn");
      break;
    case LogLevel::kError:
      HYPERDOM_COUNTER_INC_L(kLogLines, "level", "error");
      break;
    case LogLevel::kOff:
      break;
  }
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    if (text == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

LogField LogField::Str(std::string_view key, std::string_view value) {
  // Built with += rather than `"\"" + JsonEscape(value) + "\""`: the
  // operator+(const char*, string&&) form trips GCC 12's -Wrestrict
  // false positive (PR 105329) under -O2 inlining, which -Werror turns
  // into a clean-build failure.
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted += '"';
  quoted += JsonEscape(value);
  quoted += '"';
  return LogField{std::string(key), std::move(quoted)};
}

LogField LogField::U64(std::string_view key, uint64_t value) {
  return LogField{std::string(key), FormatToken("%" PRIu64, value)};
}

LogField LogField::I64(std::string_view key, int64_t value) {
  return LogField{std::string(key), FormatToken("%" PRId64, value)};
}

LogField LogField::F64(std::string_view key, double value) {
  return LogField{std::string(key), FormatToken("%.17g", value)};
}

LogField LogField::Bool(std::string_view key, bool value) {
  return LogField{std::string(key), value ? "true" : "false"};
}

Logger& Logger::Instance() {
  static Logger* const instance = new Logger();
  return *instance;
}

Status Logger::OpenFileSink(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ae");
  if (f == nullptr) {
    return Status::IOError("cannot open log sink '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = f;
  callback_ = nullptr;
  return Status::OK();
}

void Logger::SetStderrSink() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  callback_ = nullptr;
}

void Logger::SetCallbackSink(std::function<void(const std::string&)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(static_cast<std::FILE*>(file_));
  file_ = nullptr;
  callback_ = std::move(fn);
}

void Logger::Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (callback_) {
    callback_(line);
  } else {
    std::FILE* f =
        file_ != nullptr ? static_cast<std::FILE*>(file_) : stderr;
    std::fwrite(line.data(), 1, line.size(), f);
    std::fputc('\n', f);
    std::fflush(f);
  }
  lines_emitted_.fetch_add(1, std::memory_order_relaxed);
}

void Logger::Log(LogLevel level, std::string_view component,
                 uint64_t request_id, std::string_view message,
                 std::initializer_list<LogField> fields) {
  std::string line;
  line.reserve(128);
  line.append("{\"ts_ns\":").append(FormatToken("%" PRIu64, WallNowNs()));
  line.append(",\"level\":\"").append(LogLevelName(level)).append("\"");
  line.append(",\"component\":\"").append(JsonEscape(component)).append("\"");
  if (request_id != 0) {
    line.append(",\"request_id\":")
        .append(FormatToken("%" PRIu64, request_id));
  }
  line.append(",\"msg\":\"").append(JsonEscape(message)).append("\"");
  for (const LogField& field : fields) {
    line.append(",\"").append(JsonEscape(field.key)).append("\":");
    line.append(field.json_value);
  }
  line.push_back('}');
  CountLine(level);
  Emit(line);
}

void LogSlowQuery(const SlowQueryRecord& record) {
  HYPERDOM_COUNTER_INC(kSlowQueries);
  Logger& logger = Logger::Instance();
  if (!logger.Enabled(LogLevel::kWarn)) return;
  logger.Log(LogLevel::kWarn, "slowlog", record.request_id, "slow query",
             {LogField::Str("schema", "hyperdom-slowlog-v1"),
              LogField::U64("latency_ns", record.latency_ns),
              LogField::U64("threshold_ns", record.threshold_ns),
              LogField::Str("index", record.index_kind),
              LogField::U64("k", record.k),
              LogField::U64("nodes_visited", record.nodes_visited),
              LogField::U64("nodes_pruned", record.nodes_pruned),
              LogField::U64("entries_accessed", record.entries_accessed),
              LogField::U64("dominance_checks", record.dominance_checks),
              LogField::U64("pruned_case2", record.pruned_case2),
              LogField::U64("pruned_case3", record.pruned_case3),
              LogField::U64("uncertain_verdicts", record.uncertain_verdicts),
              LogField::U64("nodes_deadline_skipped",
                            record.nodes_deadline_skipped),
              LogField::F64("completeness", record.completeness),
              LogField::U64("store_version", record.store_version),
              LogField::U64("epoch_lag", record.epoch_lag)});
}

}  // namespace obs
}  // namespace hyperdom
