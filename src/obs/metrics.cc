// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace hyperdom {
namespace obs {

namespace {

// Round-robin shard assignment: the Nth thread to touch the registry gets
// shard N % kShards for its whole lifetime.
size_t NextShard() {
  static std::atomic<size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kShards;
}

void AppendFormatted(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormatted(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

// "name{labels}" -> "name"; used to group HELP/TYPE lines.
std::string_view BaseName(std::string_view full) {
  const size_t brace = full.find('{');
  return brace == std::string_view::npos ? full : full.substr(0, brace);
}

// "name{a=\"b\"}" -> "a=\"b\"" (empty when unlabelled).
std::string_view Labels(std::string_view full) {
  const size_t brace = full.find('{');
  if (brace == std::string_view::npos) return {};
  std::string_view rest = full.substr(brace + 1);
  if (!rest.empty() && rest.back() == '}') rest.remove_suffix(1);
  return rest;
}

}  // namespace

std::string_view MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

size_t ThisThreadShard() {
  thread_local const size_t shard = NextShard();
  return shard;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (auto& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= 64) return std::numeric_limits<uint64_t>::max();
  return (uint64_t{1} << i) - 1;
}

size_t Histogram::BucketIndex(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  for (const auto& shard : shards_) {
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      const uint64_t c = shard.buckets[i].load(std::memory_order_relaxed);
      snap.buckets[i] += c;
      snap.count += c;
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

void Histogram::Reset() {
  for (auto& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

std::string PromEscapeLabelValue(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PromEscapeHelp(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabeledName(std::string_view base, std::string_view label_key,
                        std::string_view label_value) {
  // The exposition-format escapes are baked in at registration time (the
  // registry stores the full rendered name), so RenderPrometheus() can
  // still emit names verbatim with no hot- or export-path escaping.
  const std::string value = PromEscapeLabelValue(label_value);
  std::string out;
  out.reserve(base.size() + label_key.size() + value.size() + 5);
  out.append(base);
  out.push_back('{');
  out.append(label_key);
  out.append("=\"");
  out.append(value);
  out.append("\"}");
  return out;
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(key);
    out.append("=\"");
    out.append(PromEscapeLabelValue(value));
    out.append("\"");
  }
  out.append("}");
  return out;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          AppendFormatted(&out, "\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* const instance = new MetricsRegistry();
  return *instance;
}

template <typename T>
T* MetricsRegistry::GetOrCreate(
    std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
    std::string name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map->find(name);
  if (it == map->end()) {
    it = map->emplace(name, std::make_unique<T>()).first;
    if (!help.empty()) {
      help_.emplace(std::string(BaseName(it->first)), std::string(help));
    }
  }
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(std::string name,
                                     std::string_view help) {
  return GetOrCreate(&counters_, std::move(name), help);
}

Gauge* MetricsRegistry::GetGauge(std::string name, std::string_view help) {
  return GetOrCreate(&gauges_, std::move(name), help);
}

Histogram* MetricsRegistry::GetHistogram(std::string name,
                                         std::string_view help) {
  return GetOrCreate(&histograms_, std::move(name), help);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  auto emit_header = [&](std::string_view full, const char* type,
                         std::string_view* last_base) {
    const std::string_view base = BaseName(full);
    if (base == *last_base) return;
    *last_base = base;
    const auto help_it = help_.find(base);
    if (help_it != help_.end()) {
      out.append("# HELP ").append(base).append(" ").append(
          PromEscapeHelp(help_it->second));
      out.push_back('\n');
    }
    out.append("# TYPE ").append(base).append(" ").append(type);
    out.push_back('\n');
  };

  std::string_view last_base;
  for (const auto& [name, counter] : counters_) {
    emit_header(name, "counter", &last_base);
    AppendFormatted(&out, "%s %" PRIu64 "\n", name.c_str(),
                    counter->Value());
  }
  last_base = {};
  for (const auto& [name, gauge] : gauges_) {
    emit_header(name, "gauge", &last_base);
    AppendFormatted(&out, "%s %.17g\n", name.c_str(), gauge->Value());
  }
  last_base = {};
  for (const auto& [name, histogram] : histograms_) {
    emit_header(name, "histogram", &last_base);
    const HistogramSnapshot snap = histogram->Snapshot();
    const std::string_view base = BaseName(name);
    const std::string_view labels = Labels(name);
    // Sparse exposition: only non-empty finite buckets are listed (plus the
    // mandatory +Inf bucket, which covers bucket 64 as well).
    uint64_t cumulative = 0;
    for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
      cumulative += snap.buckets[i];
      if (snap.buckets[i] == 0) continue;
      out.append(base).append("_bucket{");
      if (!labels.empty()) out.append(labels).append(",");
      AppendFormatted(&out, "le=\"%" PRIu64 "\"",
                      HistogramSnapshot::BucketUpperBound(i));
      AppendFormatted(&out, "} %" PRIu64 "\n", cumulative);
    }
    out.append(base).append("_bucket{");
    if (!labels.empty()) out.append(labels).append(",");
    AppendFormatted(&out, "le=\"+Inf\"} %" PRIu64 "\n", snap.count);
    out.append(base).append("_sum");
    if (!labels.empty()) {
      out.push_back('{');
      out.append(labels);
      out.push_back('}');
    }
    AppendFormatted(&out, " %" PRIu64 "\n", snap.sum);
    out.append(base).append("_count");
    if (!labels.empty()) {
      out.push_back('{');
      out.append(labels);
      out.push_back('}');
    }
    AppendFormatted(&out, " %" PRIu64 "\n", snap.count);
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"schema\": \"hyperdom-metrics-v1\",\n";
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    AppendFormatted(&out, "%s\n    \"%s\": %" PRIu64, first ? "" : ",",
                    JsonEscape(name).c_str(), counter->Value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    AppendFormatted(&out, "%s\n    \"%s\": %.17g", first ? "" : ",",
                    JsonEscape(name).c_str(), gauge->Value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot snap = histogram->Snapshot();
    AppendFormatted(&out,
                    "%s\n    \"%s\": {\"count\": %" PRIu64
                    ", \"sum\": %" PRIu64 ", \"mean\": %.6g, \"buckets\": [",
                    first ? "" : ",", JsonEscape(name).c_str(), snap.count,
                    snap.sum, snap.Mean());
    bool first_bucket = true;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (snap.buckets[i] == 0) continue;
      AppendFormatted(&out, "%s{\"le\": %.17g, \"count\": %" PRIu64 "}",
                      first_bucket ? "" : ", ",
                      static_cast<double>(
                          HistogramSnapshot::BucketUpperBound(i)),
                      snap.buckets[i]);
      first_bucket = false;
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  for (const auto& [name, gauge] : gauges_) names.push_back(name);
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

const std::vector<MetricDef>& MetricCatalogue() {
  static const std::vector<MetricDef>* const catalogue =
      new std::vector<MetricDef>{
          kKnnQueries,          kKnnBestEffort,
          kKnnNodesVisited,     kKnnNodesPruned,
          kKnnEntriesAccessed,  kKnnDominanceChecks,
          kKnnPrunedCase2,      kKnnPrunedCase3,
          kKnnRemovedCase1,     kKnnUncertainVerdicts,
          kKnnDeadlineSkippedNodes, kKnnQueryDuration,
          kRangeQueries,        kCriterionVerdicts,
          kCriterionDecideDuration, kCertifiedCalls,
          kCertifiedResolved,   kCertifiedUncertain,
          kIndexBuilds,         kIndexBuildDuration,
          kIndexSize,           kDeadlineExpired,
          kFaultInjected,       kSnapshotOps,
          kSnapshotDuration,    kStoreMutations,
          kStoreLive,           kStoreTombstones,
          kStoreEpochLag,       kStoreCompactions,
          kStoreCompactionDuration, kSnapshotRebuildFallback,
          kExperimentDuration,
          kExecPoolThreads,     kExecTasks,
          kBatchRuns,           kBatchQueries,
          kBatchDuration,       kTraceDropped,
          kServerConnections,   kServerActiveConnections,
          kServerRequests,      kServerQueueDepth,
          kServerShed,          kServerProtocolErrors,
          kServerBestEffort,    kServerRequestDuration,
          kShardCount,          kShardSizeEntries,
          kShardQueries,        kShardMergeDuration,
          kSlowQueries,         kAdminRequests,
          kAdminHttpErrors,     kLogLines,
      };
  return *catalogue;
}

}  // namespace obs
}  // namespace hyperdom
