// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// log-scale latency histograms, exportable as Prometheus text or JSON.
//
// Hot-path cost model. Instruments are sharded by thread: each counter
// (and each histogram bucket array) is split into kShards cache-line-
// padded relaxed atomics, and a thread always touches the same shard, so
// an increment is one thread-local read plus one uncontended relaxed
// fetch_add — a few ns, no locks, no allocation. Registration (the name
// lookup) happens once per call site via a function-local static, so the
// string never appears on the hot path. Reads (Value(), Snapshot(),
// exports) merge the shards; they are racy-but-consistent like any
// monitoring read.
//
// Call sites use the HYPERDOM_COUNTER_* / HYPERDOM_HISTOGRAM_* macros
// below. When the CMake option HYPERDOM_OBSERVABILITY is OFF the macros
// compile to nothing, instrumented code is byte-identical to the
// uninstrumented version, and — because the obs objects live in their own
// static library — no registry symbol is pulled into the final binaries.
//
// Naming convention (see docs/observability.md for the full catalogue):
// Prometheus style, `hyperdom_` prefix, `_total` suffix on counters,
// `_duration_ns` on latency histograms. Labels are baked into the
// registered name ("hyperdom_knn_queries_total{index=\"ss\"}"): the
// registry treats the full string as the key and the exporters emit it
// verbatim, which keeps the hot path free of label-set hashing.

#ifndef HYPERDOM_OBS_METRICS_H_
#define HYPERDOM_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hyperdom {
namespace obs {

/// Number of per-thread shards per instrument (power of two). Threads are
/// assigned shards round-robin at first use; more threads than shards only
/// means some contention, never lost updates.
inline constexpr size_t kShards = 16;

/// Histogram bucket count: bucket 0 holds the value 0, bucket i (1..64)
/// holds values v with 2^(i-1) <= v < 2^i, i.e. bit_width(v) == i.
inline constexpr size_t kHistogramBuckets = 65;

/// Returns this thread's shard index (assigned round-robin on first use).
size_t ThisThreadShard();

/// What a catalogue entry describes.
enum class MetricType { kCounter, kGauge, kHistogram };

/// "counter" / "gauge" / "histogram".
std::string_view MetricTypeName(MetricType type);

/// A documented metric: the un-labelled base name plus help text. Call
/// sites register instruments through these so the name catalogue
/// (`MetricCatalogue()`, the CLI `metrics` verb, docs/observability.md)
/// cannot drift from the code.
struct MetricDef {
  const char* name;
  const char* help;
  MetricType type;
};

namespace internal {
struct alignas(64) PaddedCounter {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal

/// \brief Monotonic counter, sharded by thread.
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ThisThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  /// Sum across shards (racy-but-consistent).
  uint64_t Value() const;

  /// Zeroes every shard. Not atomic with concurrent writers.
  void Reset();

 private:
  internal::PaddedCounter shards_[kShards];
};

/// \brief Last-write-wins gauge (a single relaxed atomic double).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Merged read-side view of a histogram.
struct HistogramSnapshot {
  uint64_t buckets[kHistogramBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;

  /// Inclusive upper bound of bucket i (2^i - 1; bucket 0 holds only 0).
  static uint64_t BucketUpperBound(size_t i);
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// \brief Fixed-bucket log2-scale histogram, sharded by thread.
///
/// Designed for nanosecond latencies: 65 buckets cover 0 .. 2^64-1 with
/// one bucket per power of two, so Record() is a bit_width plus two
/// relaxed fetch_adds — no floating point, no search, no allocation.
class Histogram {
 public:
  void Record(uint64_t value) {
    Shard& s = shards_[ThisThreadShard()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index for a value: 0 for 0, else bit_width(value) (1..64).
  static size_t BucketIndex(uint64_t value);

  /// Merges all shards (racy-but-consistent).
  HistogramSnapshot Snapshot() const;

  /// Zeroes every shard. Not atomic with concurrent writers.
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> buckets[kHistogramBuckets] = {};
    std::atomic<uint64_t> sum{0};
  };
  Shard shards_[kShards];
};

/// Prometheus exposition-format escaping for label values (`\` `"` and
/// newline) and HELP text (`\` and newline). Applied by LabeledName at
/// registration and by RenderPrometheus on HELP lines, per the text
/// exposition spec.
std::string PromEscapeLabelValue(std::string_view s);
std::string PromEscapeHelp(std::string_view s);

/// Builds the registered-name form "base{key=\"value\"}", escaping the
/// label value per the exposition format. Registration-time helper, not
/// for hot paths.
std::string LabeledName(std::string_view base, std::string_view label_key,
                        std::string_view label_value);

/// Multi-label form: "base{k1=\"v1\",k2=\"v2\"}". Pairs are emitted in the
/// order given (callers pick one canonical order so the same label set
/// always maps to the same registered name). Used for per-shard
/// instruments whose label values are computed at runtime, e.g.
/// `{index="ss",shard="3"}`.
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// JSON string-body escaping (shared by the metric/trace/bench emitters).
std::string JsonEscape(std::string_view s);

/// \brief The process-wide registry.
///
/// Thread-safe. Instruments are created on first lookup and never
/// destroyed, so returned pointers stay valid for the process lifetime —
/// call sites cache them in function-local statics.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// Lookup-or-create by full (possibly labelled) name. `help` is recorded
  /// on first creation; later calls may pass empty.
  Counter* GetCounter(std::string name, std::string_view help = "");
  Gauge* GetGauge(std::string name, std::string_view help = "");
  Histogram* GetHistogram(std::string name, std::string_view help = "");

  /// Convenience: register under `def.name` with an optional label pair.
  Counter* GetCounter(const MetricDef& def) {
    return GetCounter(def.name, def.help);
  }
  Counter* GetCounter(const MetricDef& def, std::string_view label_key,
                      std::string_view label_value) {
    return GetCounter(LabeledName(def.name, label_key, label_value),
                      def.help);
  }
  Histogram* GetHistogram(const MetricDef& def) {
    return GetHistogram(def.name, def.help);
  }
  Histogram* GetHistogram(const MetricDef& def, std::string_view label_key,
                          std::string_view label_value) {
    return GetHistogram(LabeledName(def.name, label_key, label_value),
                        def.help);
  }
  Gauge* GetGauge(const MetricDef& def, std::string_view label_key,
                  std::string_view label_value) {
    return GetGauge(LabeledName(def.name, label_key, label_value), def.help);
  }
  Gauge* GetGauge(const MetricDef& def) { return GetGauge(def.name, def.help); }

  /// Multi-label convenience forms (runtime label values; callers cache the
  /// returned pointer, it stays valid for the process lifetime).
  Counter* GetCounter(
      const MetricDef& def,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels) {
    return GetCounter(LabeledName(def.name, labels), def.help);
  }
  Gauge* GetGauge(
      const MetricDef& def,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels) {
    return GetGauge(LabeledName(def.name, labels), def.help);
  }
  Histogram* GetHistogram(
      const MetricDef& def,
      std::initializer_list<std::pair<std::string_view, std::string_view>>
          labels) {
    return GetHistogram(LabeledName(def.name, labels), def.help);
  }

  /// Zeroes every registered instrument (registrations and cached pointers
  /// stay valid). For tests and CLI runs that want a clean slate.
  void ResetAll();

  /// Prometheus text exposition format (HELP/TYPE per base name, one
  /// sample line per registered name, histogram _bucket/_sum/_count).
  std::string RenderPrometheus() const;

  /// JSON export, schema "hyperdom-metrics-v1" (see docs/observability.md).
  std::string RenderJson() const;

  /// Registered full names, sorted (for tests and the CLI metrics verb).
  std::vector<std::string> Names() const;

 private:
  MetricsRegistry() = default;

  template <typename T>
  T* GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>* map,
                 std::string name, std::string_view help);

  mutable std::mutex mu_;
  // std::map: stable pointers + deterministic export order.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> help_;
};

/// The documented instrument catalogue (every MetricDef below, in
/// docs/observability.md order). The CLI `metrics` verb prints this.
const std::vector<MetricDef>& MetricCatalogue();

// ---------------------------------------------------------------------------
// The metric name catalogue. Every instrument the library registers is
// declared here so names cannot drift between call sites, the `metrics`
// verb, and docs/observability.md.
// ---------------------------------------------------------------------------

// kNN traversal (label index="ss"|"rstar"|"m"|"vp"; mirrors KnnStats).
inline constexpr MetricDef kKnnQueries{
    "hyperdom_knn_queries_total", "kNN queries executed",
    MetricType::kCounter};
inline constexpr MetricDef kKnnBestEffort{
    "hyperdom_knn_best_effort_total",
    "kNN queries that expired a deadline and returned a best-effort answer",
    MetricType::kCounter};
inline constexpr MetricDef kKnnNodesVisited{
    "hyperdom_knn_nodes_visited_total", "index nodes expanded",
    MetricType::kCounter};
inline constexpr MetricDef kKnnNodesPruned{
    "hyperdom_knn_nodes_pruned_total", "subtrees cut by the distk bound",
    MetricType::kCounter};
inline constexpr MetricDef kKnnEntriesAccessed{
    "hyperdom_knn_entries_accessed_total",
    "data entries reaching list maintenance", MetricType::kCounter};
inline constexpr MetricDef kKnnDominanceChecks{
    "hyperdom_knn_dominance_checks_total", "criterion invocations",
    MetricType::kCounter};
inline constexpr MetricDef kKnnPrunedCase2{
    "hyperdom_knn_pruned_case2_total",
    "entries dropped by dominance (case 2)", MetricType::kCounter};
inline constexpr MetricDef kKnnPrunedCase3{
    "hyperdom_knn_pruned_case3_total", "entries dropped by distance (case 3)",
    MetricType::kCounter};
inline constexpr MetricDef kKnnRemovedCase1{
    "hyperdom_knn_removed_case1_total",
    "list entries evicted after insert (case 1)", MetricType::kCounter};
inline constexpr MetricDef kKnnUncertainVerdicts{
    "hyperdom_knn_uncertain_verdicts_total",
    "kUncertain verdicts seen by the pruner (never pruned on)",
    MetricType::kCounter};
inline constexpr MetricDef kKnnDeadlineSkippedNodes{
    "hyperdom_knn_deadline_skipped_nodes_total",
    "subtrees abandoned because a deadline expired", MetricType::kCounter};
inline constexpr MetricDef kKnnQueryDuration{
    "hyperdom_knn_query_duration_ns", "end-to-end kNN query latency",
    MetricType::kHistogram};

// Range queries (SS-tree).
inline constexpr MetricDef kRangeQueries{
    "hyperdom_range_queries_total", "range queries executed",
    MetricType::kCounter};

// Dominance criteria (labels criterion=, verdict=; recorded by the
// InstrumentedCriterion decorator, not inside the O(d) kernels).
inline constexpr MetricDef kCriterionVerdicts{
    "hyperdom_criterion_verdicts_total",
    "three-valued verdicts per criterion", MetricType::kCounter};
inline constexpr MetricDef kCriterionDecideDuration{
    "hyperdom_criterion_decide_duration_ns",
    "per-call decide latency per criterion", MetricType::kHistogram};

// Certified escalation chain (label tier= on the resolution counter).
inline constexpr MetricDef kCertifiedCalls{
    "hyperdom_certified_calls_total", "CertifiedDominance::Decide calls",
    MetricType::kCounter};
inline constexpr MetricDef kCertifiedResolved{
    "hyperdom_certified_resolved_total",
    "decisive verdicts per escalation tier", MetricType::kCounter};
inline constexpr MetricDef kCertifiedUncertain{
    "hyperdom_certified_uncertain_total",
    "calls no tier could certify (verdict kUncertain)", MetricType::kCounter};

// Index builds (label index=).
inline constexpr MetricDef kIndexBuilds{
    "hyperdom_index_builds_total", "index build/bulk-load operations",
    MetricType::kCounter};
inline constexpr MetricDef kIndexBuildDuration{
    "hyperdom_index_build_duration_ns", "index build latency",
    MetricType::kHistogram};
inline constexpr MetricDef kIndexSize{
    "hyperdom_index_size_entries", "entries in the most recently built index",
    MetricType::kGauge};

// Robustness layer (docs/robustness.md §6–§8).
inline constexpr MetricDef kDeadlineExpired{
    "hyperdom_deadline_expired_total",
    "traversals that saw their deadline/budget expire",
    MetricType::kCounter};
inline constexpr MetricDef kFaultInjected{
    "hyperdom_fault_injected_total",
    "fault-injection firings (label site=)", MetricType::kCounter};
inline constexpr MetricDef kSnapshotOps{
    "hyperdom_snapshot_ops_total",
    "snapshot operations (labels op=save|load, result=ok|error)",
    MetricType::kCounter};
inline constexpr MetricDef kSnapshotDuration{
    "hyperdom_snapshot_duration_ns", "snapshot save/load latency (label op=)",
    MetricType::kHistogram};

// Live mutability (src/index/mutable_ss_tree.h, src/storage/epoch.h;
// docs/robustness.md §10).
inline constexpr MetricDef kStoreMutations{
    "hyperdom_store_mutations_total",
    "live-store mutations (labels op=insert|remove, "
    "result=ok|conflict|error)",
    MetricType::kCounter};
inline constexpr MetricDef kStoreLive{
    "hyperdom_store_live_entries",
    "live entries in the most recently published store version",
    MetricType::kGauge};
inline constexpr MetricDef kStoreTombstones{
    "hyperdom_store_tombstone_entries",
    "tombstoned (deleted, not yet compacted) entries in the most recently "
    "published store version",
    MetricType::kGauge};
inline constexpr MetricDef kStoreEpochLag{
    "hyperdom_store_epoch_lag",
    "reclamation epochs the slowest active reader is behind the writer",
    MetricType::kGauge};
inline constexpr MetricDef kStoreCompactions{
    "hyperdom_store_compactions_total",
    "compaction runs (label result=ok|error)", MetricType::kCounter};
inline constexpr MetricDef kStoreCompactionDuration{
    "hyperdom_store_compaction_duration_ns",
    "wall time of one compaction (gather + rebuild + publish)",
    MetricType::kHistogram};
inline constexpr MetricDef kSnapshotRebuildFallback{
    "hyperdom_snapshot_rebuild_fallback_total",
    "LoadSnapshotOrRebuild calls that fell back to an index rebuild "
    "because the snapshot was missing or corrupt",
    MetricType::kCounter};

// Evaluation harness (label phase=dominance|knn; recorded by a
// ScopedTimer around each experiment run).
inline constexpr MetricDef kExperimentDuration{
    "hyperdom_experiment_duration_ns", "wall time of one experiment run",
    MetricType::kHistogram};

// Parallel batch execution (src/exec/; see docs/performance.md).
inline constexpr MetricDef kExecPoolThreads{
    "hyperdom_exec_pool_threads",
    "workers in the most recently created thread pool", MetricType::kGauge};
inline constexpr MetricDef kExecTasks{
    "hyperdom_exec_tasks_total", "tasks submitted to thread pools",
    MetricType::kCounter};
inline constexpr MetricDef kBatchRuns{
    "hyperdom_batch_runs_total",
    "batch query runs (label kind=knn|range)", MetricType::kCounter};
inline constexpr MetricDef kBatchQueries{
    "hyperdom_batch_queries_total",
    "queries executed through the batch engine (label kind=)",
    MetricType::kCounter};
inline constexpr MetricDef kBatchDuration{
    "hyperdom_batch_duration_ns",
    "end-to-end wall time of one batch run (label kind=)",
    MetricType::kHistogram};

// The tracer's own health.
inline constexpr MetricDef kTraceDropped{
    "hyperdom_trace_dropped_total",
    "trace records evicted from the ring buffer", MetricType::kCounter};

// Network front-end (src/server/; see docs/robustness.md §9).
inline constexpr MetricDef kServerConnections{
    "hyperdom_server_connections_total", "client connections accepted",
    MetricType::kCounter};
inline constexpr MetricDef kServerActiveConnections{
    "hyperdom_server_active_connections", "currently open client connections",
    MetricType::kGauge};
inline constexpr MetricDef kServerRequests{
    "hyperdom_server_requests_total",
    "requests admitted to the work queue (label kind=knn|ping)",
    MetricType::kCounter};
inline constexpr MetricDef kServerQueueDepth{
    "hyperdom_server_queue_depth", "requests waiting in the admission queue",
    MetricType::kGauge};
inline constexpr MetricDef kServerShed{
    "hyperdom_server_shed_total",
    "requests rejected with kOverloaded (queue full or draining)",
    MetricType::kCounter};
inline constexpr MetricDef kServerProtocolErrors{
    "hyperdom_server_protocol_errors_total",
    "frames rejected by validation (bad magic/CRC/size/kind)",
    MetricType::kCounter};
inline constexpr MetricDef kServerBestEffort{
    "hyperdom_server_best_effort_total",
    "responses flagged kBestEffort after a deadline expired",
    MetricType::kCounter};
inline constexpr MetricDef kServerRequestDuration{
    "hyperdom_server_request_duration_ns",
    "admission-to-response latency per request", MetricType::kHistogram};

// Sharded scatter-gather engine (src/shard/; see docs/performance.md
// "Sharding"). Per-shard instruments carry a shard= label whose value is
// the shard index rendered in decimal.
inline constexpr MetricDef kShardCount{
    "hyperdom_shard_count", "shards in the most recently built sharded store",
    MetricType::kGauge};
inline constexpr MetricDef kShardSizeEntries{
    "hyperdom_shard_size_entries",
    "entries owned by one shard of the most recently built sharded store "
    "(label shard=)",
    MetricType::kGauge};
inline constexpr MetricDef kShardQueries{
    "hyperdom_shard_queries_total",
    "per-shard traversals executed by the scatter-gather engine "
    "(label shard=)",
    MetricType::kCounter};
inline constexpr MetricDef kShardMergeDuration{
    "hyperdom_shard_merge_duration_ns",
    "gather-phase latency merging per-shard best-known lists",
    MetricType::kHistogram};

// Admin plane + structured logging (src/server/admin.h, src/obs/log.h;
// docs/observability.md "Admin plane").
inline constexpr MetricDef kSlowQueries{
    "hyperdom_slow_queries_total",
    "queries above the slow-query threshold (each emits one "
    "hyperdom-slowlog-v1 record)",
    MetricType::kCounter};
inline constexpr MetricDef kAdminRequests{
    "hyperdom_admin_requests_total",
    "admin HTTP requests answered 200 (label endpoint=)",
    MetricType::kCounter};
inline constexpr MetricDef kAdminHttpErrors{
    "hyperdom_admin_http_errors_total",
    "admin HTTP requests rejected (label code=400|404|405|431)",
    MetricType::kCounter};
inline constexpr MetricDef kLogLines{
    "hyperdom_log_lines_total", "structured log lines emitted (label level=)",
    MetricType::kCounter};

}  // namespace obs
}  // namespace hyperdom

// ---------------------------------------------------------------------------
// Hot-path macros. Each call site caches its instrument pointer in a
// function-local static, so after the first execution the cost is the
// sharded atomic op alone. All of them compile to nothing when
// HYPERDOM_OBSERVABILITY_ENABLED is not defined.
// ---------------------------------------------------------------------------

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

#define HYPERDOM_COUNTER_ADD(def, n)                              \
  do {                                                            \
    static ::hyperdom::obs::Counter* const _hyperdom_counter =    \
        ::hyperdom::obs::MetricsRegistry::Instance().GetCounter(  \
            def);                                                 \
    _hyperdom_counter->Add(n);                                    \
  } while (false)

#define HYPERDOM_COUNTER_INC(def) HYPERDOM_COUNTER_ADD(def, 1)

/// Labelled variant: `key` and `value` must be string literals (the name is
/// assembled once, in the static initializer).
#define HYPERDOM_COUNTER_ADD_L(def, key, value, n)                \
  do {                                                            \
    static ::hyperdom::obs::Counter* const _hyperdom_counter =    \
        ::hyperdom::obs::MetricsRegistry::Instance().GetCounter(  \
            def, key, value);                                     \
    _hyperdom_counter->Add(n);                                    \
  } while (false)

#define HYPERDOM_COUNTER_INC_L(def, key, value) \
  HYPERDOM_COUNTER_ADD_L(def, key, value, 1)

#define HYPERDOM_HISTOGRAM_RECORD(def, v)                          \
  do {                                                             \
    static ::hyperdom::obs::Histogram* const _hyperdom_histogram = \
        ::hyperdom::obs::MetricsRegistry::Instance().GetHistogram( \
            def);                                                  \
    _hyperdom_histogram->Record(v);                                \
  } while (false)

#define HYPERDOM_HISTOGRAM_RECORD_L(def, key, value, v)            \
  do {                                                             \
    static ::hyperdom::obs::Histogram* const _hyperdom_histogram = \
        ::hyperdom::obs::MetricsRegistry::Instance().GetHistogram( \
            def, key, value);                                      \
    _hyperdom_histogram->Record(v);                                \
  } while (false)

/// Gauges are last-write-wins; `def` must be a MetricDef with kGauge type.
#define HYPERDOM_GAUGE_SET(def, v)                              \
  do {                                                          \
    static ::hyperdom::obs::Gauge* const _hyperdom_gauge =      \
        ::hyperdom::obs::MetricsRegistry::Instance().GetGauge(  \
            (def).name, (def).help);                            \
    _hyperdom_gauge->Set(v);                                    \
  } while (false)

/// Labelled gauge variant: `key` and `value` must be string literals (the
/// name is assembled once, in the static initializer). Runtime label
/// values (e.g. a shard index) must instead cache a pointer from
/// MetricsRegistry::GetGauge(def, {{key, value}}).
#define HYPERDOM_GAUGE_SET_L(def, key, value, v)                \
  do {                                                          \
    static ::hyperdom::obs::Gauge* const _hyperdom_gauge =      \
        ::hyperdom::obs::MetricsRegistry::Instance().GetGauge(  \
            def, key, value);                                   \
    _hyperdom_gauge->Set(v);                                    \
  } while (false)

#else

#define HYPERDOM_COUNTER_ADD(def, n) \
  do {                               \
  } while (false)
#define HYPERDOM_COUNTER_INC(def) \
  do {                            \
  } while (false)
#define HYPERDOM_COUNTER_ADD_L(def, key, value, n) \
  do {                                             \
  } while (false)
#define HYPERDOM_COUNTER_INC_L(def, key, value) \
  do {                                          \
  } while (false)
#define HYPERDOM_HISTOGRAM_RECORD(def, v) \
  do {                                    \
  } while (false)
#define HYPERDOM_HISTOGRAM_RECORD_L(def, key, value, v) \
  do {                                                  \
  } while (false)
#define HYPERDOM_GAUGE_SET(def, v) \
  do {                             \
  } while (false)
#define HYPERDOM_GAUGE_SET_L(def, key, value, v) \
  do {                                           \
  } while (false)

#endif  // HYPERDOM_OBSERVABILITY_ENABLED

#endif  // HYPERDOM_OBS_METRICS_H_
