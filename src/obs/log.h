// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Structured JSON-lines logging plus the slow-query log.
//
// One process-wide leveled logger emits one JSON object per line:
//
//   {"ts_ns":..., "level":"warn", "component":"server",
//    "request_id":42, "msg":"...", <kv fields>}
//
// Cost model mirrors the metrics registry: the level check is a single
// relaxed atomic load, and the HYPERDOM_LOG macro evaluates its field
// arguments only after that check passes, so a disabled call site does no
// allocation and no formatting. Emission (rare) takes a mutex around the
// sink write so concurrent lines never interleave.
//
// The slow-query log rides on the same sink: LogSlowQuery() renders one
// "hyperdom-slowlog-v1" record (latency, index kind, traversal stats,
// criterion tier counts, completeness, pinned store version / epoch lag,
// request_id) at warn level and bumps hyperdom_slow_queries_total. See
// docs/observability.md "Admin plane" for the schema.

#ifndef HYPERDOM_OBS_LOG_H_
#define HYPERDOM_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hyperdom {
namespace obs {

/// Severity levels, ordered. kOff disables everything.
enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug" / "info" / "warn" / "error" / "off".
std::string_view LogLevelName(LogLevel level);

/// Parses a level name (as printed by LogLevelName). Returns false on
/// unknown input, leaving *out untouched.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// One key/value field of a log record. The value is stored pre-rendered
/// as a JSON token so emission is a straight append. Built via the named
/// factories (a bare constructor would make integer literals ambiguous).
struct LogField {
  std::string key;
  std::string json_value;

  static LogField Str(std::string_view key, std::string_view value);
  static LogField U64(std::string_view key, uint64_t value);
  static LogField I64(std::string_view key, int64_t value);
  static LogField F64(std::string_view key, double value);
  static LogField Bool(std::string_view key, bool value);
};

/// \brief The process-wide structured logger.
///
/// Thread-safe. Default configuration: level kWarn, sink stderr — the
/// replacement for the ad-hoc fprintf diagnostics the server and CLI
/// used to write.
class Logger {
 public:
  static Logger& Instance();

  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// The hot-path gate: one relaxed load, no locks.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kOff;
  }

  /// Appends JSON lines to `path` (created if missing). Replaces the
  /// current sink on success.
  Status OpenFileSink(const std::string& path);

  /// Routes lines to stderr (the default).
  void SetStderrSink();

  /// Routes lines to `fn` (tests). Pass nullptr to restore stderr.
  void SetCallbackSink(std::function<void(const std::string& line)> fn);

  /// Emits one record (no level check — call Enabled() first, or use the
  /// HYPERDOM_LOG macro which does). request_id 0 means "none" and is
  /// omitted from the line.
  void Log(LogLevel level, std::string_view component, uint64_t request_id,
           std::string_view message, std::initializer_list<LogField> fields);

  /// Total lines emitted since process start (tests).
  uint64_t lines_emitted() const {
    return lines_emitted_.load(std::memory_order_relaxed);
  }

 private:
  Logger() = default;
  void Emit(const std::string& line);

  std::atomic<int> level_{static_cast<int>(LogLevel::kWarn)};
  std::atomic<uint64_t> lines_emitted_{0};
  std::mutex mu_;
  void* file_ = nullptr;  // FILE*, owned; null = stderr or callback
  std::function<void(const std::string&)> callback_;
};

/// One slow query, as observed at the server. Everything the on-call
/// person needs to reproduce/explain the tail without re-running it.
struct SlowQueryRecord {
  uint64_t request_id = 0;
  uint64_t latency_ns = 0;
  uint64_t threshold_ns = 0;
  std::string_view index_kind;  // "ss" | "mutable_ss"
  uint32_t k = 0;
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned = 0;
  uint64_t entries_accessed = 0;
  uint64_t dominance_checks = 0;
  uint64_t pruned_case2 = 0;    // criterion tier: dominance prunes
  uint64_t pruned_case3 = 0;    // criterion tier: distance prunes
  uint64_t uncertain_verdicts = 0;
  uint64_t nodes_deadline_skipped = 0;
  double completeness = 1.0;
  uint64_t store_version = 0;  // pinned MutableSsTree version (0 = static)
  uint64_t epoch_lag = 0;      // EpochManager lag at emission
};

/// Emits one "hyperdom-slowlog-v1" JSON record at kWarn (subject to the
/// logger level) and increments hyperdom_slow_queries_total.
void LogSlowQuery(const SlowQueryRecord& record);

}  // namespace obs
}  // namespace hyperdom

/// Level-gated structured log line. Field arguments are only evaluated
/// when the level is enabled, so a disabled call site allocates nothing:
///   HYPERDOM_LOG(LogLevel::kWarn, "server", id, "slow request",
///                LogField::U64("latency_ns", ns));
#define HYPERDOM_LOG(level_, component_, request_id_, msg_, ...)      \
  do {                                                                \
    ::hyperdom::obs::Logger& _hyperdom_logger =                       \
        ::hyperdom::obs::Logger::Instance();                          \
    if (_hyperdom_logger.Enabled(level_)) {                           \
      _hyperdom_logger.Log(level_, component_, request_id_, msg_,     \
                           {__VA_ARGS__});                            \
    }                                                                 \
  } while (false)

#endif  // HYPERDOM_OBS_LOG_H_
