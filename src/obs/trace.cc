// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "obs/trace.h"

#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"

namespace hyperdom {
namespace obs {

namespace {

void AppendFormatted(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormatted(std::string* out, const char* fmt, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n));
}

int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Small dense thread ids (0, 1, 2, ...) in first-touch order; Chrome's
// trace viewer groups events by tid, and raw pthread ids are unreadable.
uint32_t ThisThreadTraceId() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local Span* g_current_span = nullptr;

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  out->append(JsonEscape(s));
  out->push_back('"');
}

void AppendArgs(std::string* out, const std::vector<TraceArg>& args) {
  out->append(", \"args\": {");
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) out->append(", ");
    first = false;
    AppendJsonString(out, arg.key);
    out->append(": ");
    if (arg.numeric) {
      out->append(arg.value);
    } else {
      AppendJsonString(out, arg.value);
    }
  }
  out->push_back('}');
}

}  // namespace

Tracer& Tracer::Instance() {
  static Tracer* const instance = new Tracer();
  return *instance;
}

void Tracer::Enable(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
  epoch_ns_ = MonotonicNowNs();
  next_id_.store(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  wrapped_ = false;
  dropped_ = 0;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

uint64_t Tracer::NextSpanId() {
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

int64_t Tracer::NowNs() const { return MonotonicNowNs() - epoch_ns_; }

void Tracer::Record(TraceRecord&& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  // Full: evict the oldest record in place.
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
  HYPERDOM_COUNTER_INC(kTraceDropped);
}

std::vector<TraceRecord> Tracer::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!wrapped_) return ring_;
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::RenderChromeTrace() const {
  const std::vector<TraceRecord> records = Records();
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceRecord& r : records) {
    if (!first) out.append(",");
    first = false;
    out.append("\n  {\"name\": ");
    AppendJsonString(&out, r.name);
    AppendFormatted(&out,
                    ", \"ph\": \"%s\", \"pid\": 1, \"tid\": %u"
                    ", \"ts\": %.3f",
                    r.instant ? "i" : "X", r.tid,
                    static_cast<double>(r.start_ns) / 1000.0);
    if (r.instant) {
      out.append(", \"s\": \"t\"");
    } else {
      AppendFormatted(&out, ", \"dur\": %.3f",
                      static_cast<double>(r.dur_ns) / 1000.0);
    }
    AppendFormatted(&out, ", \"id\": %llu",
                    static_cast<unsigned long long>(r.id));
    if (r.parent != 0) {
      AppendFormatted(&out, ", \"parent\": %llu",
                      static_cast<unsigned long long>(r.parent));
    }
    if (!r.args.empty()) AppendArgs(&out, r.args);
    out.append("}");
  }
  out.append("\n], \"displayTimeUnit\": \"ns\"}\n");
  return out;
}

Span::Span(std::string_view name) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  active_ = true;
  id_ = tracer.NextSpanId();
  parent_ = g_current_span != nullptr ? g_current_span->id_ : 0;
  tid_ = ThisThreadTraceId();
  start_ns_ = tracer.NowNs();
  name_.assign(name);
  prev_ = g_current_span;
  g_current_span = this;
}

Span::~Span() {
  if (!active_) return;
  g_current_span = prev_;
  Tracer& tracer = Tracer::Instance();
  TraceRecord record;
  record.name = std::move(name_);
  record.id = id_;
  record.parent = parent_;
  record.tid = tid_;
  record.start_ns = start_ns_;
  record.dur_ns = tracer.NowNs() - start_ns_;
  record.args = std::move(args_);
  tracer.Record(std::move(record));
}

void Span::Annotate(std::string_view key, std::string_view value) {
  if (!active_) return;
  args_.push_back(TraceArg{std::string(key), std::string(value), false});
}

void Span::Annotate(std::string_view key, uint64_t value) {
  if (!active_) return;
  args_.push_back(
      TraceArg{std::string(key), std::to_string(value), true});
}

void Span::Annotate(std::string_view key, int64_t value) {
  if (!active_) return;
  args_.push_back(
      TraceArg{std::string(key), std::to_string(value), true});
}

void Span::Event(std::string_view name) {
  if (!active_) return;
  Tracer& tracer = Tracer::Instance();
  TraceRecord record;
  record.name.assign(name);
  record.parent = id_;
  record.tid = tid_;
  record.start_ns = tracer.NowNs();
  record.instant = true;
  tracer.Record(std::move(record));
}

Span* Span::Current() { return g_current_span; }

void Span::CurrentEvent(std::string_view name) {
  Tracer& tracer = Tracer::Instance();
  if (!tracer.enabled()) return;
  if (g_current_span != nullptr && g_current_span->active_) {
    g_current_span->Event(name);
    return;
  }
  TraceRecord record;
  record.name.assign(name);
  record.tid = ThisThreadTraceId();
  record.start_ns = tracer.NowNs();
  record.instant = true;
  tracer.Record(std::move(record));
}

}  // namespace obs
}  // namespace hyperdom
