// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Span-based tracing. A Span is an RAII scope: construction notes the
// start time and links to the enclosing span on the same thread (a
// thread-local stack), destruction pushes a completed record into the
// process-wide Tracer's ring buffer. Instant events can be attached to
// the active span from anywhere (deadline expiry, fault firings) without
// plumbing a span handle through the call chain.
//
// The tracer is OFF by default: a Span constructed while the tracer is
// disabled does a single relaxed atomic load and nothing else, so spans
// can sit on per-query paths unconditionally. When enabled (CLI
// --trace-out, tests), completed records accumulate in a fixed-capacity
// ring; on overflow the oldest records are evicted and counted in
// hyperdom_trace_dropped_total, never blocking the writer.
//
// Export is Chrome trace_event JSON ("traceEvents" array of complete "X"
// and instant "i" events, timestamps in microseconds) — load the file in
// chrome://tracing or https://ui.perfetto.dev.
//
// Span taxonomy (docs/observability.md): knn/query, index/build,
// snapshot/save, snapshot/load, certified/escalate; event names:
// deadline_expired, fault/<site>.
//
// Like the metrics macros, HYPERDOM_SPAN* compile to nothing when the
// CMake option HYPERDOM_OBSERVABILITY is OFF.

#ifndef HYPERDOM_OBS_TRACE_H_
#define HYPERDOM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hyperdom {
namespace obs {

/// One key/value annotation; numeric values are exported unquoted so
/// tools (and the reconciliation tests) can sum them.
struct TraceArg {
  std::string key;
  std::string value;
  bool numeric = false;
};

/// A completed span or an instant event, as stored in the ring.
struct TraceRecord {
  std::string name;
  uint64_t id = 0;      ///< unique per tracer-enable session; 0 for events
  uint64_t parent = 0;  ///< enclosing span's id; 0 at top level
  uint32_t tid = 0;     ///< small per-thread integer, stable per thread
  int64_t start_ns = 0; ///< relative to the tracer's enable time
  int64_t dur_ns = 0;
  bool instant = false;
  std::vector<TraceArg> args;
};

/// \brief Process-wide span sink (fixed-capacity ring buffer).
class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  static Tracer& Instance();

  /// Starts a capture: clears the ring, re-bases timestamps, sets the
  /// capacity, and enables span recording.
  void Enable(size_t capacity = kDefaultCapacity);

  /// Stops recording; captured records stay readable until Enable/Clear.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops all captured records (keeps the enabled state and capacity).
  void Clear();

  /// Records evicted because the ring was full, this capture.
  uint64_t dropped() const;

  /// Snapshot of the captured records in arrival order.
  std::vector<TraceRecord> Records() const;

  /// Chrome trace_event JSON of the captured records.
  std::string RenderChromeTrace() const;

  // Internal API used by Span.
  uint64_t NextSpanId();
  int64_t NowNs() const;
  void Record(TraceRecord&& record);

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  int64_t epoch_ns_ = 0;

  mutable std::mutex mu_;
  size_t capacity_ = kDefaultCapacity;
  size_t head_ = 0;  // index of the oldest record once wrapped
  bool wrapped_ = false;
  uint64_t dropped_ = 0;
  std::vector<TraceRecord> ring_;
};

/// \brief RAII trace span.
///
/// Construct on the stack; destruction records the completed span. A span
/// constructed while the tracer is disabled is inert (active() == false)
/// and every method is a cheap no-op. Not copyable or movable: the
/// thread-local parent stack assumes strict LIFO scoping.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, uint64_t value);
  void Annotate(std::string_view key, int64_t value);

  /// Records an instant event parented to this span.
  void Event(std::string_view name);

  /// The innermost active span on this thread (nullptr when none).
  static Span* Current();

  /// Records an instant event on the current span — or as a top-level
  /// event when no span is active. No-op while the tracer is disabled.
  static void CurrentEvent(std::string_view name);

 private:
  bool active_ = false;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  uint32_t tid_ = 0;
  int64_t start_ns_ = 0;
  std::string name_;
  std::vector<TraceArg> args_;
  Span* prev_ = nullptr;  // enclosing span, restored on destruction
};

}  // namespace obs
}  // namespace hyperdom

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

/// Declares an RAII span named `var` covering the rest of the scope.
#define HYPERDOM_SPAN(var, name) ::hyperdom::obs::Span var(name)

/// Adds a key/value annotation; the value expression is evaluated only
/// when observability is compiled in.
#define HYPERDOM_SPAN_ANNOTATE(var, key, value) (var).Annotate(key, value)

/// Instant event on the innermost active span of this thread.
#define HYPERDOM_SPAN_EVENT_CURRENT(name) \
  ::hyperdom::obs::Span::CurrentEvent(name)

#else

namespace hyperdom {
namespace obs {
/// Stand-in for Span when observability is compiled out.
struct NullSpan {};
}  // namespace obs
}  // namespace hyperdom

#define HYPERDOM_SPAN(var, name)   \
  ::hyperdom::obs::NullSpan var{}; \
  (void)var
#define HYPERDOM_SPAN_ANNOTATE(var, key, value) \
  do {                                          \
  } while (false)
#define HYPERDOM_SPAN_EVENT_CURRENT(name) \
  do {                                    \
  } while (false)

#endif  // HYPERDOM_OBSERVABILITY_ENABLED

#endif  // HYPERDOM_OBS_TRACE_H_
