// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Top-k dominating query — the third dominance-powered application named in
// the paper's Section 6 intro (Yiu & Mamoulis [33], Lian & Chen [24]).
//
// Each object is scored by how many other objects it provably dominates
// w.r.t. the query sphere; the k highest scorers are returned. With a
// correct criterion every counted pair is a true domination, so scores are
// lower bounds; with Hyperbola they are exact.

#ifndef HYPERDOM_QUERY_DOMINATING_H_
#define HYPERDOM_QUERY_DOMINATING_H_

#include <cstdint>
#include <vector>

#include "dominance/criterion.h"

namespace hyperdom {

/// One scored object.
struct DominatingScore {
  uint64_t id = 0;     ///< index into the dataset
  uint64_t score = 0;  ///< number of objects it dominates w.r.t. the query
};

/// \brief Scores every object and returns the k best, ties broken by lower
/// id. O(N^2) dominance tests, with a MinMax-style cheap reject first.
std::vector<DominatingScore> TopKDominating(
    const std::vector<Hypersphere>& data, const Hypersphere& sq, size_t k,
    const DominanceCriterion& criterion);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_DOMINATING_H_
