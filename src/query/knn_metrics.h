// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Per-query observability for the kNN searchers: one KnnQueryRecorder per
// query opens a "knn/query" span, times the query, and publishes the
// KnnStats counters into the metrics registry under the index's label
// (index="ss"|"rstar"|"m"|"vp"). The span is annotated with the same
// counter values that feed the registry, so traces and metrics reconcile
// exactly by construction.
//
// With HYPERDOM_OBSERVABILITY=OFF the recorder is an empty object and
// every method is an inline no-op — the searchers compile to the pre-PR
// code with no registry symbols referenced.

#ifndef HYPERDOM_QUERY_KNN_METRICS_H_
#define HYPERDOM_QUERY_KNN_METRICS_H_

#include <string_view>

#include "obs/trace.h"
#include "query/knn_types.h"

namespace hyperdom {

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

/// \brief RAII per-query instrumentation.
///
/// Construct at the top of a searcher with a stable index tag; call
/// Publish(result) once, just before returning the result. Queries that
/// return without Publish (not a path the searchers have) record the span
/// but no counters.
class KnnQueryRecorder {
 public:
  explicit KnnQueryRecorder(std::string_view index_tag);

  /// Publishes `result.stats` to the registry and annotates the span.
  void Publish(const KnnResult& result);

 private:
  std::string_view tag_;
  int64_t start_ns_ = 0;
  obs::Span span_;
};

#else

class KnnQueryRecorder {
 public:
  explicit KnnQueryRecorder(std::string_view) {}
  void Publish(const KnnResult&) {}
};

#endif  // HYPERDOM_OBSERVABILITY_ENABLED

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_KNN_METRICS_H_
