// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/knn.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "query/best_known_list.h"
#include "query/knn_metrics.h"
#include "storage/epoch.h"

namespace hyperdom {

namespace {

// Gathers a leaf's visible entries into `scratch` (reused across leaves;
// no steady-state allocation) and scores them as one AccessBatch block —
// the distance bounds of the whole leaf run through the fused batched
// kernel instead of per-entry calls. Decisions and stats are identical to
// per-entry Access by the AccessBatch contract.
void ScanLeaf(const SsTreeNode* node, const SphereStore& store,
              const SearchOverlay* overlay, BestKnownList* list,
              std::vector<EntryView>* scratch) {
  scratch->clear();
  for (const auto& entry : node->entries()) {
    if (overlay != nullptr && !overlay->VisibleBase(entry.slot)) continue;
    scratch->push_back(store.Resolve(entry));
  }
  list->AccessBatch(scratch->data(), scratch->size());
}

void DepthFirstSearch(const SsTreeNode* node, double mindist,
                      const SphereStore& store, const Hypersphere& sq,
                      const SearchOverlay* overlay, BestKnownList* list,
                      KnnStats* stats, TraversalGuard* guard,
                      std::vector<EntryView>* scratch) {
  // distk shrinks while siblings are processed, so the bound is re-checked
  // here, at descent time, rather than where the child was enumerated.
  if (mindist > list->DistK()) {
    ++stats->nodes_pruned;
    return;
  }
  if (guard->ShouldStop(stats->nodes_visited)) {
    ++stats->nodes_deadline_skipped;
    guard->NoteSkipped(mindist);
    return;
  }
  ++stats->nodes_visited;
  if (node->is_leaf()) {
    ScanLeaf(node, store, overlay, list, scratch);
    return;
  }
  // Visit children in ascending MinDist order so distk tightens early
  // (Roussopoulos et al.'s ordering heuristic).
  std::vector<std::pair<double, const SsTreeNode*>> order;
  order.reserve(node->children().size());
  for (const auto& child : node->children()) {
    order.emplace_back(MinDist(child->bounding_sphere(), sq), child.get());
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [child_mindist, child] : order) {
    DepthFirstSearch(child, child_mindist, store, sq, overlay, list, stats,
                     guard, scratch);
  }
}

void BestFirstSearch(const SsTreeNode* root, const SphereStore& store,
                     const Hypersphere& sq, const SearchOverlay* overlay,
                     BestKnownList* list, KnnStats* stats,
                     TraversalGuard* guard, std::vector<EntryView>* scratch) {
  using QueueItem = std::pair<double, const SsTreeNode*>;
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.first > b.first;  // min-heap on MinDist
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(
      cmp);
  heap.emplace(MinDist(root->bounding_sphere(), sq), root);
  while (!heap.empty()) {
    const auto [mindist, node] = heap.top();
    heap.pop();
    if (mindist > list->DistK()) {
      // The heap is ordered by MinDist: everything left is at least as far.
      stats->nodes_pruned += 1 + heap.size();
      break;
    }
    if (guard->ShouldStop(stats->nodes_visited)) {
      // The popped node carries the smallest MinDist left, so it alone
      // determines the pending bound for everything abandoned here.
      guard->NoteSkipped(mindist);
      stats->nodes_deadline_skipped += 1 + heap.size();
      break;
    }
    ++stats->nodes_visited;
    if (node->is_leaf()) {
      ScanLeaf(node, store, overlay, list, scratch);
    } else {
      for (const auto& child : node->children()) {
        heap.emplace(MinDist(child->bounding_sphere(), sq), child.get());
      }
    }
  }
}

}  // namespace

KnnSearcher::KnnSearcher(const DominanceCriterion* criterion,
                         KnnOptions options)
    : criterion_(criterion), options_(options) {
  assert(criterion_ != nullptr);
  assert(options_.k >= 1);
}

KnnResult KnnSearcher::Search(const SsTree& tree, const Hypersphere& sq) const {
  return Search(tree, sq, nullptr);
}

void KnnSearchInto(const SsTree& tree, const Hypersphere& sq,
                   SearchStrategy strategy, const SearchOverlay* overlay,
                   BestKnownList* list, KnnStats* stats,
                   TraversalGuard* guard) {
  // Delta rows live outside the tree: score them exhaustively up front,
  // which also tightens distk before any node is descended. The block
  // form hands them over in contiguous runs for batched scoring.
  if (overlay != nullptr) {
    overlay->ForEachExtraBlock(
        [&](const EntryView* rows, size_t n) { list->AccessBatch(rows, n); });
  }
  std::vector<EntryView> leaf_scratch;
  if (tree.root() != nullptr) {
    if (strategy == SearchStrategy::kDepthFirst) {
      DepthFirstSearch(tree.root(), MinDist(tree.root()->bounding_sphere(), sq),
                       tree.store(), sq, overlay, list, stats, guard,
                       &leaf_scratch);
    } else {
      BestFirstSearch(tree.root(), tree.store(), sq, overlay, list, stats,
                      guard, &leaf_scratch);
    }
  }
}

KnnResult KnnSearcher::Search(const SsTree& tree, const Hypersphere& sq,
                              const SearchOverlay* overlay) const {
  // Pins the reclamation epoch for the whole query: any store version the
  // overlay references stays alive until we return (storage/epoch.h).
  // Nested guards are cheap, so this is safe under RkNN's subqueries too.
  EpochManager::Guard epoch_guard;
  KnnQueryRecorder recorder("ss");
  KnnResult result;
  if (tree.root() == nullptr && overlay == nullptr) {
    recorder.Publish(result);
    return result;
  }
  BestKnownList list(criterion_, &sq, options_.k, options_.pruning_mode,
                     &result.stats);
  TraversalGuard guard(options_.deadline);
  KnnSearchInto(tree, sq, options_.strategy, overlay, &list, &result.stats,
                &guard);
  if (guard.expired()) {
    result.completeness = Completeness::kBestEffort;
    result.answers = list.TakeAnswersWithin(guard.pending_bound());
  } else {
    result.answers = list.TakeAnswers();
  }
  recorder.Publish(result);
  return result;
}

KnnResult KnnLinearScan(const std::vector<Hypersphere>& data,
                        const Hypersphere& sq, size_t k,
                        const DominanceCriterion& criterion) {
  assert(k >= 1);
  KnnResult result;
  // Both passes of the scan are batched: the MaxDist ranking sweep and the
  // final-Sk dominance filter each evaluate every entry unconditionally,
  // so they run through the batched kernels with bit-identical values.
  std::vector<SphereView> views;
  views.reserve(data.size());
  for (const auto& s : data) views.push_back(s.view());
  std::vector<double> maxdists(data.size());
  BatchedMaxDist(views.data(), views.size(), sq.view(), maxdists.data());
  std::vector<std::pair<double, uint64_t>> by_maxdist;
  by_maxdist.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    by_maxdist.emplace_back(maxdists[i], static_cast<uint64_t>(i));
  }
  std::sort(by_maxdist.begin(), by_maxdist.end());

  if (data.size() <= k) {
    for (const auto& [maxdist, id] : by_maxdist) {
      result.answers.push_back(DataEntry{data[id], id});
    }
    result.stats.entries_accessed = data.size();
    return result;
  }

  const Hypersphere& sk = data[by_maxdist[k - 1].second];
  const size_t n = by_maxdist.size();
  std::vector<SphereView> candidates;
  candidates.reserve(n);
  for (const auto& [maxdist, id] : by_maxdist) {
    candidates.push_back(data[id].view());
  }
  std::vector<Verdict> verdicts(n);
  criterion.DecideVerdictBatch(sk.view(), candidates.data(), n, sq.view(),
                               verdicts.data());
  result.stats.entries_accessed += n;
  result.stats.dominance_checks += n;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t id = by_maxdist[i].second;
    // Three-valued filter: an uncertain verdict keeps the entry (only a
    // certified kDominates may drop an answer).
    const Verdict v = verdicts[i];
    if (v == Verdict::kUncertain) ++result.stats.uncertain_verdicts;
    if (v != Verdict::kDominates) {
      result.answers.push_back(DataEntry{data[id], id});
    } else {
      ++result.stats.pruned_case2;
    }
  }
  return result;
}

}  // namespace hyperdom
