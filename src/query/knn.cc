// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/knn.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "query/best_known_list.h"
#include "query/knn_metrics.h"
#include "storage/epoch.h"

namespace hyperdom {

namespace {

void DepthFirstSearch(const SsTreeNode* node, double mindist,
                      const SphereStore& store, const Hypersphere& sq,
                      const SearchOverlay* overlay, BestKnownList* list,
                      KnnStats* stats, TraversalGuard* guard) {
  // distk shrinks while siblings are processed, so the bound is re-checked
  // here, at descent time, rather than where the child was enumerated.
  if (mindist > list->DistK()) {
    ++stats->nodes_pruned;
    return;
  }
  if (guard->ShouldStop(stats->nodes_visited)) {
    ++stats->nodes_deadline_skipped;
    guard->NoteSkipped(mindist);
    return;
  }
  ++stats->nodes_visited;
  if (node->is_leaf()) {
    for (const auto& entry : node->entries()) {
      if (overlay != nullptr && !overlay->VisibleBase(entry.slot)) continue;
      list->Access(store.Resolve(entry));
    }
    return;
  }
  // Visit children in ascending MinDist order so distk tightens early
  // (Roussopoulos et al.'s ordering heuristic).
  std::vector<std::pair<double, const SsTreeNode*>> order;
  order.reserve(node->children().size());
  for (const auto& child : node->children()) {
    order.emplace_back(MinDist(child->bounding_sphere(), sq), child.get());
  }
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [child_mindist, child] : order) {
    DepthFirstSearch(child, child_mindist, store, sq, overlay, list, stats,
                     guard);
  }
}

void BestFirstSearch(const SsTreeNode* root, const SphereStore& store,
                     const Hypersphere& sq, const SearchOverlay* overlay,
                     BestKnownList* list, KnnStats* stats,
                     TraversalGuard* guard) {
  using QueueItem = std::pair<double, const SsTreeNode*>;
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.first > b.first;  // min-heap on MinDist
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(
      cmp);
  heap.emplace(MinDist(root->bounding_sphere(), sq), root);
  while (!heap.empty()) {
    const auto [mindist, node] = heap.top();
    heap.pop();
    if (mindist > list->DistK()) {
      // The heap is ordered by MinDist: everything left is at least as far.
      stats->nodes_pruned += 1 + heap.size();
      break;
    }
    if (guard->ShouldStop(stats->nodes_visited)) {
      // The popped node carries the smallest MinDist left, so it alone
      // determines the pending bound for everything abandoned here.
      guard->NoteSkipped(mindist);
      stats->nodes_deadline_skipped += 1 + heap.size();
      break;
    }
    ++stats->nodes_visited;
    if (node->is_leaf()) {
      for (const auto& entry : node->entries()) {
        if (overlay != nullptr && !overlay->VisibleBase(entry.slot)) continue;
        list->Access(store.Resolve(entry));
      }
    } else {
      for (const auto& child : node->children()) {
        heap.emplace(MinDist(child->bounding_sphere(), sq), child.get());
      }
    }
  }
}

}  // namespace

KnnSearcher::KnnSearcher(const DominanceCriterion* criterion,
                         KnnOptions options)
    : criterion_(criterion), options_(options) {
  assert(criterion_ != nullptr);
  assert(options_.k >= 1);
}

KnnResult KnnSearcher::Search(const SsTree& tree, const Hypersphere& sq) const {
  return Search(tree, sq, nullptr);
}

KnnResult KnnSearcher::Search(const SsTree& tree, const Hypersphere& sq,
                              const SearchOverlay* overlay) const {
  // Pins the reclamation epoch for the whole query: any store version the
  // overlay references stays alive until we return (storage/epoch.h).
  // Nested guards are cheap, so this is safe under RkNN's subqueries too.
  EpochManager::Guard epoch_guard;
  KnnQueryRecorder recorder("ss");
  KnnResult result;
  if (tree.root() == nullptr && overlay == nullptr) {
    recorder.Publish(result);
    return result;
  }
  BestKnownList list(criterion_, &sq, options_.k, options_.pruning_mode,
                     &result.stats);
  // Delta rows live outside the tree: score them exhaustively up front,
  // which also tightens distk before any node is descended.
  if (overlay != nullptr) {
    overlay->ForEachExtra([&](const EntryView& e) { list.Access(e); });
  }
  TraversalGuard guard(options_.deadline);
  if (tree.root() != nullptr) {
    if (options_.strategy == SearchStrategy::kDepthFirst) {
      DepthFirstSearch(tree.root(), MinDist(tree.root()->bounding_sphere(), sq),
                       tree.store(), sq, overlay, &list, &result.stats, &guard);
    } else {
      BestFirstSearch(tree.root(), tree.store(), sq, overlay, &list,
                      &result.stats, &guard);
    }
  }
  if (guard.expired()) {
    result.completeness = Completeness::kBestEffort;
    result.answers = list.TakeAnswersWithin(guard.pending_bound());
  } else {
    result.answers = list.TakeAnswers();
  }
  recorder.Publish(result);
  return result;
}

KnnResult KnnLinearScan(const std::vector<Hypersphere>& data,
                        const Hypersphere& sq, size_t k,
                        const DominanceCriterion& criterion) {
  assert(k >= 1);
  KnnResult result;
  std::vector<std::pair<double, uint64_t>> by_maxdist;
  by_maxdist.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    by_maxdist.emplace_back(MaxDist(data[i], sq), static_cast<uint64_t>(i));
  }
  std::sort(by_maxdist.begin(), by_maxdist.end());

  if (data.size() <= k) {
    for (const auto& [maxdist, id] : by_maxdist) {
      result.answers.push_back(DataEntry{data[id], id});
    }
    result.stats.entries_accessed = data.size();
    return result;
  }

  const Hypersphere& sk = data[by_maxdist[k - 1].second];
  for (const auto& [maxdist, id] : by_maxdist) {
    ++result.stats.entries_accessed;
    ++result.stats.dominance_checks;
    // Three-valued filter: an uncertain verdict keeps the entry (only a
    // certified kDominates may drop an answer).
    const Verdict v = criterion.DecideVerdict(sk, data[id], sq);
    if (v == Verdict::kUncertain) ++result.stats.uncertain_verdicts;
    if (v != Verdict::kDominates) {
      result.answers.push_back(DataEntry{data[id], id});
    } else {
      ++result.stats.pruned_case2;
    }
  }
  return result;
}

}  // namespace hyperdom
