// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/mut_query.h"

namespace hyperdom {

Versioned<KnnResult> MutableKnn(const MutableSsTree& tree,
                                const DominanceCriterion& criterion,
                                const KnnOptions& options,
                                const Hypersphere& sq) {
  KnnSearcher searcher(&criterion, options);
  MutableSsTree::ReadView view = tree.Pin();
  return Versioned<KnnResult>{searcher.Search(view.tree(), sq, &view),
                              view.version()};
}

Versioned<RangeResult> MutableRange(const MutableSsTree& tree,
                                    const Hypersphere& sq, double range,
                                    const Deadline& deadline) {
  MutableSsTree::ReadView view = tree.Pin();
  return Versioned<RangeResult>{
      RangeSearch(view.tree(), sq, range, deadline, &view), view.version()};
}

}  // namespace hyperdom
