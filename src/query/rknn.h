// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Reverse kNN on hyperspheres — one of the dominance-powered applications
// named in the paper's Sections 1 and 6 ("we can discard Sb if Sa dominates
// Sq wrt Sb").
//
// Semantics under uncertainty: an object S is a *possible* RkNN of the
// query Sq unless at least k other objects are provably closer to S than Sq
// is — i.e. unless k distinct objects S' satisfy Dom(S', Sq, S). Note the
// role reversal: the candidate S acts as the query sphere of the dominance
// test. With a correct criterion the returned set is a superset of the true
// possible-RkNN set; with Hyperbola it is exact w.r.t. this filter.

#ifndef HYPERDOM_QUERY_RKNN_H_
#define HYPERDOM_QUERY_RKNN_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "dominance/criterion.h"

namespace hyperdom {

/// Counters describing one RkNN evaluation.
struct RknnStats {
  uint64_t dominance_checks = 0;
  uint64_t candidates_pruned = 0;
  uint64_t candidates_deadline_skipped = 0;
};

/// Result of an RkNN query: indices into the dataset.
/// Deadlines cancel at candidate granularity — a candidate's dominator
/// count is never cut short — so every reported answer is individually
/// certain and a kBestEffort answer set is a subset of the exact one.
struct RknnResult {
  std::vector<uint64_t> answers;
  Completeness completeness = Completeness::kExact;
  RknnStats stats;
};

/// \brief Filter-based reverse-kNN: keep every object for which fewer than
/// `k` other objects dominate `sq` w.r.t. it.
///
/// O(N^2) worst case but each candidate short-circuits after k dominators;
/// candidates are tested against neighbors in ascending MaxDist order so
/// the short-circuit triggers early. The deadline's node budget counts
/// candidates processed (this scan expands no index nodes).
RknnResult RknnFilter(const std::vector<Hypersphere>& data,
                      const Hypersphere& sq, size_t k,
                      const DominanceCriterion& criterion,
                      const Deadline& deadline = Deadline::Unbounded());

/// \brief Index-accelerated reverse-kNN over an SS-tree (the filter-refine
/// shape of Lian & Chen [22]): per candidate S, dominator candidates are
/// pulled best-first from the tree — a subtree can contain a dominator of
/// (Sq w.r.t. S) only if its cheapest possible MaxDist to S is below
/// MaxDist(Sq, S) — and the scan stops at k dominators or at the bound.
/// Returns exactly RknnFilter's answers; `nodes_visited` counts traversal
/// work. Entry ids must be the tree's bulk-load positions.
struct RknnIndexStats {
  uint64_t dominance_checks = 0;
  uint64_t candidates_pruned = 0;
  uint64_t nodes_visited = 0;
  uint64_t candidates_deadline_skipped = 0;
};

/// Deadline cancellation is at candidate granularity (see RknnResult);
/// the node budget applies to the cumulative `nodes_visited` count.
struct RknnIndexResult {
  std::vector<uint64_t> answers;
  Completeness completeness = Completeness::kExact;
  RknnIndexStats stats;
};

class SsTree;  // from index/ss_tree.h

RknnIndexResult RknnSearch(const SsTree& tree, const Hypersphere& sq,
                           size_t k, const DominanceCriterion& criterion,
                           const Deadline& deadline = Deadline::Unbounded());

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_RKNN_H_
