// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// kNN searchers (paper Definition 2) over the alternative indexes —
// R*-tree, VP-tree and M-tree — sharing the SS-tree searcher's best-known
// list and pruning semantics (query/best_known_list.h). All four indexes
// therefore return identical answer sets for the same criterion and
// options; they differ only in traversal cost, which is what the
// index-comparison ablation benchmark measures.

#ifndef HYPERDOM_QUERY_INDEX_KNN_H_
#define HYPERDOM_QUERY_INDEX_KNN_H_

#include "common/deadline.h"
#include "dominance/criterion.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/vp_tree.h"
#include "query/knn_types.h"

namespace hyperdom {

class BestKnownList;

/// kNN over an R*-tree. Subtree bound: MinDist(node box, Sq).
KnnResult RStarKnnSearch(const RStarTree& tree, const Hypersphere& sq,
                         const DominanceCriterion& criterion,
                         const KnnOptions& options);

/// kNN over a VP-tree. Subtree bound: the triangle-inequality band around
/// the vantage point, corrected by the subtree's largest data radius.
KnnResult VpTreeKnnSearch(const VpTree& tree, const Hypersphere& sq,
                          const DominanceCriterion& criterion,
                          const KnnOptions& options);

/// kNN over an M-tree. Subtree bound: MinDist(covering ball, Sq).
KnnResult MTreeKnnSearch(const MTree& tree, const Hypersphere& sq,
                         const DominanceCriterion& criterion,
                         const KnnOptions& options);

// Traversal cores without finalization: each runs its index's search for
// `sq` into an externally owned list/stats/guard, so a caller can merge
// several per-shard lists (BestKnownList::MergeFrom) before the final-Sk
// filter. The list's criterion/k/mode define the pruning; `stats` must be
// the object the list was built with. The SS-tree counterpart is
// KnnSearchInto (query/knn.h).

void RStarKnnSearchInto(const RStarTree& tree, const Hypersphere& sq,
                        SearchStrategy strategy, BestKnownList* list,
                        KnnStats* stats, TraversalGuard* guard);

void VpTreeKnnSearchInto(const VpTree& tree, const Hypersphere& sq,
                         SearchStrategy strategy, BestKnownList* list,
                         KnnStats* stats, TraversalGuard* guard);

void MTreeKnnSearchInto(const MTree& tree, const Hypersphere& sq,
                        SearchStrategy strategy, BestKnownList* list,
                        KnnStats* stats, TraversalGuard* guard);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_INDEX_KNN_H_
