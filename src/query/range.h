// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Range queries over uncertain objects: "which objects lie within distance
// `range` of the (uncertain) query region?" Under object uncertainty the
// answer splits into two sets,
//   * certain:  MaxDist(S, Sq) <= range — every realization qualifies;
//   * possible: MinDist(S, Sq) <= range — some realization qualifies
// (certain is a subset of possible). This is the range counterpart of the
// paper's kNN Definition 2 and a staple of the uncertain-database systems
// the paper cites ([6, 8]); it needs only the Min/MaxDist machinery, no
// dominance.

#ifndef HYPERDOM_QUERY_RANGE_H_
#define HYPERDOM_QUERY_RANGE_H_

#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "index/overlay.h"
#include "index/ss_tree.h"

namespace hyperdom {

/// Counters describing one range query.
struct RangeStats {
  uint64_t nodes_visited = 0;
  uint64_t nodes_pruned = 0;
  uint64_t entries_accessed = 0;
  uint64_t nodes_deadline_skipped = 0;
};

/// Result of a range query.
struct RangeResult {
  /// Objects entirely within range (every realization qualifies).
  std::vector<DataEntry> certain;
  /// Objects that may be within range, INCLUDING the certain ones.
  std::vector<DataEntry> possible;
  /// kBestEffort when the deadline expired; both sets are then subsets of
  /// the exact answer (membership tests are per-entry, so every reported
  /// entry is individually certain).
  Completeness completeness = Completeness::kExact;
  RangeStats stats;
};

/// Runs the range query over an SS-tree. `range` must be >= 0. An expired
/// `deadline` stops the traversal; the partial answer is flagged. A
/// non-null `overlay` (index/overlay.h) hides tombstoned base slots and
/// contributes its delta rows, each tested directly with Min/MaxDist; the
/// whole call runs under an epoch guard.
RangeResult RangeSearch(const SsTree& tree, const Hypersphere& sq,
                        double range,
                        const Deadline& deadline = Deadline::Unbounded(),
                        const SearchOverlay* overlay = nullptr);

/// Reference evaluation by linear scan.
RangeResult RangeLinearScan(const std::vector<Hypersphere>& data,
                            const Hypersphere& sq, double range);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_RANGE_H_
