// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/knn_metrics.h"

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "obs/metrics.h"

namespace hyperdom {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The registry handles for one index label, resolved once per tag (the tag
// is a runtime value, so the macros' per-call-site statics don't apply).
struct KnnInstruments {
  obs::Counter* queries;
  obs::Counter* best_effort;
  obs::Counter* nodes_visited;
  obs::Counter* nodes_pruned;
  obs::Counter* entries_accessed;
  obs::Counter* dominance_checks;
  obs::Counter* pruned_case2;
  obs::Counter* pruned_case3;
  obs::Counter* removed_case1;
  obs::Counter* uncertain_verdicts;
  obs::Counter* deadline_skipped;
  obs::Histogram* duration;
};

const KnnInstruments& InstrumentsFor(std::string_view tag) {
  static std::mutex mu;
  static std::map<std::string, KnnInstruments, std::less<>>* const cache =
      new std::map<std::string, KnnInstruments, std::less<>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(tag);
  if (it == cache->end()) {
    auto& reg = obs::MetricsRegistry::Instance();
    KnnInstruments in;
    in.queries = reg.GetCounter(obs::kKnnQueries, "index", tag);
    in.best_effort = reg.GetCounter(obs::kKnnBestEffort, "index", tag);
    in.nodes_visited = reg.GetCounter(obs::kKnnNodesVisited, "index", tag);
    in.nodes_pruned = reg.GetCounter(obs::kKnnNodesPruned, "index", tag);
    in.entries_accessed =
        reg.GetCounter(obs::kKnnEntriesAccessed, "index", tag);
    in.dominance_checks =
        reg.GetCounter(obs::kKnnDominanceChecks, "index", tag);
    in.pruned_case2 = reg.GetCounter(obs::kKnnPrunedCase2, "index", tag);
    in.pruned_case3 = reg.GetCounter(obs::kKnnPrunedCase3, "index", tag);
    in.removed_case1 = reg.GetCounter(obs::kKnnRemovedCase1, "index", tag);
    in.uncertain_verdicts =
        reg.GetCounter(obs::kKnnUncertainVerdicts, "index", tag);
    in.deadline_skipped =
        reg.GetCounter(obs::kKnnDeadlineSkippedNodes, "index", tag);
    in.duration = reg.GetHistogram(obs::kKnnQueryDuration, "index", tag);
    it = cache->emplace(std::string(tag), in).first;
  }
  return it->second;
}

}  // namespace

KnnQueryRecorder::KnnQueryRecorder(std::string_view index_tag)
    : tag_(index_tag), start_ns_(NowNs()), span_("knn/query") {
  if (span_.active()) span_.Annotate("index", index_tag);
}

void KnnQueryRecorder::Publish(const KnnResult& result) {
  const uint64_t elapsed_ns = static_cast<uint64_t>(NowNs() - start_ns_);
  const KnnStats& s = result.stats;
  const KnnInstruments& in = InstrumentsFor(tag_);
  in.queries->Add(1);
  if (result.completeness == Completeness::kBestEffort) {
    in.best_effort->Add(1);
  }
  in.nodes_visited->Add(s.nodes_visited);
  in.nodes_pruned->Add(s.nodes_pruned);
  in.entries_accessed->Add(s.entries_accessed);
  in.dominance_checks->Add(s.dominance_checks);
  in.pruned_case2->Add(s.pruned_case2);
  in.pruned_case3->Add(s.pruned_case3);
  in.removed_case1->Add(s.removed_case1);
  in.uncertain_verdicts->Add(s.uncertain_verdicts);
  in.deadline_skipped->Add(s.nodes_deadline_skipped);
  in.duration->Record(elapsed_ns);
  if (span_.active()) {
    span_.Annotate("nodes_visited", s.nodes_visited);
    span_.Annotate("nodes_pruned", s.nodes_pruned);
    span_.Annotate("entries_accessed", s.entries_accessed);
    span_.Annotate("dominance_checks", s.dominance_checks);
    span_.Annotate("nodes_deadline_skipped", s.nodes_deadline_skipped);
    span_.Annotate("answers", static_cast<uint64_t>(result.answers.size()));
    span_.Annotate("best_effort",
                   result.completeness == Completeness::kBestEffort
                       ? std::string_view("true")
                       : std::string_view("false"));
  }
}

}  // namespace hyperdom

#endif  // HYPERDOM_OBSERVABILITY_ENABLED
