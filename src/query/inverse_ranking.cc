// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/inverse_ranking.h"

#include <cassert>

namespace hyperdom {

RankInterval InverseRanking(const std::vector<Hypersphere>& data,
                            size_t target, const Hypersphere& sq,
                            const DominanceCriterion& criterion) {
  assert(target < data.size());
  const Hypersphere& st = data[target];
  const double target_maxdist = MaxDist(st, sq);

  RankInterval interval;
  for (size_t j = 0; j < data.size(); ++j) {
    if (j == target) continue;
    // Dom(S_j, S_t, Sq) requires MaxDist(S_j, Sq) < MaxDist(S_t, Sq)
    // (cheap necessary condition; see query/dominating.cc).
    if (MaxDist(data[j], sq) < target_maxdist &&
        criterion.Dominates(data[j], st, sq)) {
      ++interval.certainly_closer;
      continue;  // an object cannot be both closer and farther
    }
    if (target_maxdist < MaxDist(data[j], sq) &&
        criterion.Dominates(st, data[j], sq)) {
      ++interval.certainly_farther;
    }
  }
  interval.best_rank = 1 + interval.certainly_closer;
  interval.worst_rank =
      static_cast<uint64_t>(data.size()) - interval.certainly_farther;
  return interval;
}

}  // namespace hyperdom
