// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The paper's best-known list L (Section 6), factored out so that every
// index (SS-tree, R*-tree, VP-tree, M-tree) and the linear scan share one
// implementation of the case-1/2/3 maintenance rules and of the final-Sk
// filter that makes the answer exactly Definition 2 (see DESIGN.md,
// "kNN answer semantics").

#ifndef HYPERDOM_QUERY_BEST_KNOWN_LIST_H_
#define HYPERDOM_QUERY_BEST_KNOWN_LIST_H_

#include <vector>

#include "dominance/criterion.h"
#include "query/knn_types.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// \brief Entries found so far, kept sorted by ascending MaxDist to the
/// query, with the paper's maintenance rules:
///   case 1 (distmax <= distk): insert, evict entries the new Sk dominates;
///   case 2 (distmin <= distk < distmax): keep only if not dominated by Sk;
///   case 3 (distmin > distk): drop (Lemma 9).
/// In deferred mode (the default) dominance-pruned entries are parked and
/// re-checked against the FINAL Sk by TakeAnswers(), which makes the
/// surviving set exactly the Definition-2 answer when the criterion is
/// correct and sound.
///
/// The list works on non-owning EntryView handles: a traversal resolves its
/// index payloads (StoredEntry) against the tree's SphereStore and hands the
/// views in. Every view must stay valid until the list is consumed — store
/// rows qualify (the store only moves on insert, and queries never insert);
/// answers are materialized into owning DataEntry values only at the end.
class BestKnownList {
 public:
  /// Neither pointer is owned; both must outlive the list.
  BestKnownList(const DominanceCriterion* criterion, const Hypersphere* sq,
                size_t k, KnnPruningMode mode, KnnStats* stats);

  /// The current pruning bound distk (+inf until k entries are known).
  /// Non-increasing over the lifetime of the list.
  double DistK() const;

  /// Applies the maintenance rules to a newly accessed entry. The view must
  /// outlive the list (see class comment).
  void Access(const EntryView& entry);

  /// Batched Access over a leaf-scan block: computes every entry's
  /// MinDist/MaxDist bounds with one fused batched kernel call
  /// (geometry/hypersphere.h), then applies the maintenance rules in
  /// order. Equivalent to calling Access(entries[i]) for i in [0, count)
  /// — same answers, same stats — because the rules themselves are
  /// sequentially dependent (each entry is judged against the distk its
  /// predecessors produced) and stay serial; only the O(d) distance work
  /// batches.
  void AccessBatch(const EntryView* entries, size_t count);

  /// Absorbs another list built over the same (criterion, sq, k, mode):
  /// every surviving item of `other` is replayed through the maintenance
  /// rules of this list (bounds recomputed with the same batched kernel, so
  /// the values are bit-identical to the originals), and `other`'s parked
  /// entries are spliced into this list's deferred set. `other` is left
  /// empty.
  ///
  /// Merge invariant (the scatter-gather contract, pinned by
  /// tests/bkl_merge_test.cc): in kDeferred mode, feeding a candidate
  /// stream through any partition into per-part lists and folding them
  /// with MergeFrom yields answers bit-identical to feeding the whole
  /// stream through one list. Dropping an entry shard-locally is globally
  /// safe — case 3 needs distmin > local interim distk >= global final
  /// distk, and case 2 parks rather than drops — so the merged candidate
  /// multiset still contains every Definition-2 answer, and the final-Sk
  /// filter is order-independent.
  void MergeFrom(BestKnownList&& other);

  /// Final filter against the final Sk; consumes the list. Answers are
  /// ordered by ascending MaxDist to the query.
  std::vector<DataEntry> TakeAnswers();

  /// Best-effort variant used when a deadline cut the traversal short.
  /// `pending_bound` is the minimum MinDist over the subtrees the traversal
  /// skipped (TraversalGuard::pending_bound()). Returns only entries whose
  /// membership in the exact Definition-2 answer is certain: because
  /// dominance implies a strictly smaller MaxDist, the exact distk can
  /// never drop below L = min(DistK(), pending_bound), so every seen entry
  /// with MaxDist <= L belongs to the exact answer (docs/robustness.md §7).
  /// Consumes the list; answers ordered by ascending MaxDist.
  std::vector<DataEntry> TakeAnswersWithin(double pending_bound);

 private:
  struct Item {
    EntryView entry;
    double maxdist;
  };

  /// One counted criterion call, three-valued: true only for a certified
  /// kDominates. kUncertain counts in stats and answers false, so an
  /// uncertain dominance can never prune an entry (conservative direction
  /// for error-aware criteria; plain bool criteria are unaffected).
  bool CertainlyDominates(const SphereView& sa, const SphereView& sb);

  /// Batched counterpart: fills batch_verdicts_[i] for (sa, sbs[i], sq)
  /// via DominanceCriterion::DecideVerdictBatch and applies the same
  /// counting rules as `count` serial CertainlyDominates calls.
  void BatchCertainlyDominates(SphereView sa, const SphereView* sbs,
                               size_t count);

  /// The maintenance rules with both bounds precomputed (exactly the
  /// values MinDist/MaxDist(entry.sphere, sq) would return).
  void AccessBounded(const EntryView& entry, double distmin, double distmax);

  void InsertSorted(const EntryView& entry, double distmax);
  /// Removes every entry beyond position k that the current Sk dominates;
  /// with `park` they are kept aside for the final re-check. The sweep
  /// judges every tail entry against the same Sk with no early exit, so
  /// the verdicts are evaluated as one DecideVerdictBatch block.
  void EvictDominated(bool park);

  const DominanceCriterion* criterion_;
  const Hypersphere* sq_;
  SphereView sq_view_;
  size_t k_;
  KnnPruningMode mode_;
  KnnStats* stats_;
  std::vector<Item> items_;
  std::vector<EntryView> deferred_;
  // Scratch for the batched kernels, reused across calls to keep the
  // query loop allocation-free in steady state.
  std::vector<SphereView> batch_views_;
  std::vector<double> batch_min_;
  std::vector<double> batch_max_;
  std::vector<Verdict> batch_verdicts_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_BEST_KNOWN_LIST_H_
