// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/best_known_list.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "geometry/kernel_core.h"

namespace hyperdom {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

BestKnownList::BestKnownList(const DominanceCriterion* criterion,
                             const Hypersphere* sq, size_t k,
                             KnnPruningMode mode, KnnStats* stats)
    : criterion_(criterion), sq_(sq), sq_view_(sq->view()), k_(k),
      mode_(mode), stats_(stats) {
  assert(criterion_ != nullptr && sq_ != nullptr && stats_ != nullptr);
  assert(k_ >= 1);
}

double BestKnownList::DistK() const {
  return items_.size() < k_ ? kInf : items_[k_ - 1].maxdist;
}

void BestKnownList::Access(const EntryView& entry) {
  // One center distance serves both bounds; the combines are the same
  // force-inline spellings MinDist/MaxDist use (geometry/kernel_core.h),
  // so the values are bit-identical to the separate kernel calls.
  const double d = DistSpan(entry.sphere.center, sq_view_.center,
                            entry.sphere.dim);
  AccessBounded(entry,
                kernel_core::CombineMinDist(d, entry.sphere.radius,
                                            sq_view_.radius),
                kernel_core::CombineMaxDist(d, entry.sphere.radius,
                                            sq_view_.radius));
}

void BestKnownList::AccessBatch(const EntryView* entries, size_t count) {
  if (count == 0) return;
  batch_views_.resize(count);
  for (size_t i = 0; i < count; ++i) batch_views_[i] = entries[i].sphere;
  batch_min_.resize(count);
  batch_max_.resize(count);
  BatchedMinMaxDist(batch_views_.data(), count, sq_view_, batch_min_.data(),
                    batch_max_.data());
  // The maintenance rules are inherently serial — each entry is judged
  // against the distk its predecessors produced — so only the distance
  // work above batches. Same accept/prune decisions, same stats, same
  // final list as `count` Access() calls in the same order.
  for (size_t i = 0; i < count; ++i) {
    AccessBounded(entries[i], batch_min_[i], batch_max_[i]);
  }
}

void BestKnownList::AccessBounded(const EntryView& entry, double distmin,
                                  double distmax) {
  ++stats_->entries_accessed;
  if (items_.size() < k_) {
    InsertSorted(entry, distmax);
    return;
  }
  const double distk = items_[k_ - 1].maxdist;
  if (distmin > distk) {  // case 3: cheap distance prune (Lemma 9)
    ++stats_->pruned_case3;
    return;
  }
  if (distmax <= distk) {  // case 1: the top-k set changes
    InsertSorted(entry, distmax);
    EvictDominated(/*park=*/mode_ == KnnPruningMode::kDeferred);
    return;
  }
  // case 2: the dominance operator decides.
  if (CertainlyDominates(items_[k_ - 1].entry.sphere, entry.sphere)) {
    ++stats_->pruned_case2;
    // The interim Sk may not be the final Sk; park the entry so the final
    // filter can resurrect it (kDeferred keeps Definition 2 exact).
    if (mode_ == KnnPruningMode::kDeferred) deferred_.push_back(entry);
  } else {
    InsertSorted(entry, distmax);
  }
}

void BestKnownList::MergeFrom(BestKnownList&& other) {
  assert(criterion_ == other.criterion_);
  assert(k_ == other.k_ && mode_ == other.mode_);
  const size_t n = other.items_.size();
  if (n > 0) {
    // Local scratch: AccessBounded can reach EvictDominated, which
    // clobbers the member batch buffers mid-loop.
    std::vector<SphereView> views(n);
    for (size_t i = 0; i < n; ++i) views[i] = other.items_[i].entry.sphere;
    std::vector<double> mins(n);
    std::vector<double> maxs(n);
    BatchedMinMaxDist(views.data(), n, sq_view_, mins.data(), maxs.data());
    for (size_t i = 0; i < n; ++i) {
      AccessBounded(other.items_[i].entry, mins[i], maxs[i]);
    }
  }
  deferred_.insert(deferred_.end(), other.deferred_.begin(),
                   other.deferred_.end());
  other.items_.clear();
  other.deferred_.clear();
}

std::vector<DataEntry> BestKnownList::TakeAnswers() {
  if (items_.size() > k_) EvictDominated(/*park=*/false);
  if (items_.size() >= k_ && !deferred_.empty()) {
    // Every parked entry is re-checked against the same final Sk with no
    // early exit — one DecideVerdictBatch block.
    const SphereView sk = items_[k_ - 1].entry.sphere;
    const size_t n = deferred_.size();
    batch_views_.resize(n);
    for (size_t i = 0; i < n; ++i) batch_views_[i] = deferred_[i].sphere;
    BatchCertainlyDominates(sk, batch_views_.data(), n);
    for (size_t i = 0; i < n; ++i) {
      if (batch_verdicts_[i] != Verdict::kDominates) {
        InsertSorted(deferred_[i], MaxDist(deferred_[i].sphere, sq_view_));
      }
    }
  }
  std::vector<DataEntry> out;
  out.reserve(items_.size());
  for (const auto& item : items_) {
    out.push_back(DataEntry{MaterializeSphere(item.entry.sphere),
                            item.entry.id});
  }
  return out;
}

std::vector<DataEntry> BestKnownList::TakeAnswersWithin(
    double pending_bound) {
  // Compute the certainty bound L from the interim DistK BEFORE the final
  // filter runs: TakeAnswers() may revive parked entries, but the exact
  // distk is already known to be >= min(interim distk, pending_bound).
  const double certain = std::min(DistK(), pending_bound);
  std::vector<DataEntry> all = TakeAnswers();
  const size_t n = all.size();
  batch_views_.resize(n);
  for (size_t i = 0; i < n; ++i) batch_views_[i] = all[i].sphere.view();
  batch_max_.resize(n);
  BatchedMaxDist(batch_views_.data(), n, sq_view_, batch_max_.data());
  std::vector<DataEntry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (batch_max_[i] <= certain) {
      out.push_back(std::move(all[i]));
    }
  }
  return out;
}

bool BestKnownList::CertainlyDominates(const SphereView& sa,
                                       const SphereView& sb) {
  ++stats_->dominance_checks;
  const Verdict v = criterion_->DecideVerdict(sa, sb, sq_view_);
  if (v == Verdict::kUncertain) {
    // Conservative direction: an uncertain dominance must never prune —
    // keeping the entry can only add work, dropping it can lose an answer.
    ++stats_->uncertain_verdicts;
    return false;
  }
  return v == Verdict::kDominates;
}

void BestKnownList::BatchCertainlyDominates(SphereView sa,
                                            const SphereView* sbs,
                                            size_t count) {
  batch_verdicts_.resize(count);
  criterion_->DecideVerdictBatch(sa, sbs, count, sq_view_,
                                 batch_verdicts_.data());
  stats_->dominance_checks += count;
  for (size_t i = 0; i < count; ++i) {
    if (batch_verdicts_[i] == Verdict::kUncertain) {
      ++stats_->uncertain_verdicts;
    }
  }
}

void BestKnownList::InsertSorted(const EntryView& entry, double distmax) {
  Item item{entry, distmax};
  auto pos = std::upper_bound(
      items_.begin(), items_.end(), distmax,
      [](double v, const Item& it) { return v < it.maxdist; });
  items_.insert(pos, item);
}

void BestKnownList::EvictDominated(bool park) {
  if (items_.size() <= k_) return;
  const SphereView sk = items_[k_ - 1].entry.sphere;
  const size_t tail = items_.size() - k_;
  batch_views_.resize(tail);
  for (size_t i = 0; i < tail; ++i) {
    batch_views_[i] = items_[k_ + i].entry.sphere;
  }
  BatchCertainlyDominates(sk, batch_views_.data(), tail);
  auto keep = items_.begin() + static_cast<std::ptrdiff_t>(k_);
  for (size_t i = 0; i < tail; ++i) {
    auto it = items_.begin() + static_cast<std::ptrdiff_t>(k_ + i);
    if (batch_verdicts_[i] != Verdict::kDominates) {
      if (keep != it) *keep = *it;
      ++keep;
    } else {
      ++stats_->removed_case1;
      if (park) deferred_.push_back(it->entry);
    }
  }
  items_.erase(keep, items_.end());
}

}  // namespace hyperdom
