// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/best_known_list.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace hyperdom {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

BestKnownList::BestKnownList(const DominanceCriterion* criterion,
                             const Hypersphere* sq, size_t k,
                             KnnPruningMode mode, KnnStats* stats)
    : criterion_(criterion), sq_(sq), sq_view_(sq->view()), k_(k),
      mode_(mode), stats_(stats) {
  assert(criterion_ != nullptr && sq_ != nullptr && stats_ != nullptr);
  assert(k_ >= 1);
}

double BestKnownList::DistK() const {
  return items_.size() < k_ ? kInf : items_[k_ - 1].maxdist;
}

void BestKnownList::Access(const EntryView& entry) {
  ++stats_->entries_accessed;
  const double distmax = MaxDist(entry.sphere, sq_view_);
  if (items_.size() < k_) {
    InsertSorted(entry, distmax);
    return;
  }
  const double distk = items_[k_ - 1].maxdist;
  const double distmin = MinDist(entry.sphere, sq_view_);
  if (distmin > distk) {  // case 3: cheap distance prune (Lemma 9)
    ++stats_->pruned_case3;
    return;
  }
  if (distmax <= distk) {  // case 1: the top-k set changes
    InsertSorted(entry, distmax);
    EvictDominated(/*park=*/mode_ == KnnPruningMode::kDeferred);
    return;
  }
  // case 2: the dominance operator decides.
  if (CertainlyDominates(items_[k_ - 1].entry.sphere, entry.sphere)) {
    ++stats_->pruned_case2;
    // The interim Sk may not be the final Sk; park the entry so the final
    // filter can resurrect it (kDeferred keeps Definition 2 exact).
    if (mode_ == KnnPruningMode::kDeferred) deferred_.push_back(entry);
  } else {
    InsertSorted(entry, distmax);
  }
}

std::vector<DataEntry> BestKnownList::TakeAnswers() {
  if (items_.size() > k_) EvictDominated(/*park=*/false);
  if (items_.size() >= k_ && !deferred_.empty()) {
    const SphereView sk = items_[k_ - 1].entry.sphere;
    std::vector<EntryView> revived;
    for (const auto& entry : deferred_) {
      if (!CertainlyDominates(sk, entry.sphere)) {
        revived.push_back(entry);
      }
    }
    for (const auto& entry : revived) {
      InsertSorted(entry, MaxDist(entry.sphere, sq_view_));
    }
  }
  std::vector<DataEntry> out;
  out.reserve(items_.size());
  for (const auto& item : items_) {
    out.push_back(DataEntry{MaterializeSphere(item.entry.sphere),
                            item.entry.id});
  }
  return out;
}

std::vector<DataEntry> BestKnownList::TakeAnswersWithin(
    double pending_bound) {
  // Compute the certainty bound L from the interim DistK BEFORE the final
  // filter runs: TakeAnswers() may revive parked entries, but the exact
  // distk is already known to be >= min(interim distk, pending_bound).
  const double certain = std::min(DistK(), pending_bound);
  std::vector<DataEntry> all = TakeAnswers();
  std::vector<DataEntry> out;
  out.reserve(all.size());
  for (auto& entry : all) {
    if (MaxDist(entry.sphere, *sq_) <= certain) {
      out.push_back(std::move(entry));
    }
  }
  return out;
}

bool BestKnownList::CertainlyDominates(const SphereView& sa,
                                       const SphereView& sb) {
  ++stats_->dominance_checks;
  const Verdict v = criterion_->DecideVerdict(sa, sb, sq_view_);
  if (v == Verdict::kUncertain) {
    // Conservative direction: an uncertain dominance must never prune —
    // keeping the entry can only add work, dropping it can lose an answer.
    ++stats_->uncertain_verdicts;
    return false;
  }
  return v == Verdict::kDominates;
}

void BestKnownList::InsertSorted(const EntryView& entry, double distmax) {
  Item item{entry, distmax};
  auto pos = std::upper_bound(
      items_.begin(), items_.end(), distmax,
      [](double v, const Item& it) { return v < it.maxdist; });
  items_.insert(pos, item);
}

void BestKnownList::EvictDominated(bool park) {
  if (items_.size() <= k_) return;
  const SphereView sk = items_[k_ - 1].entry.sphere;
  auto keep = items_.begin() + static_cast<std::ptrdiff_t>(k_);
  for (auto it = keep; it != items_.end(); ++it) {
    if (!CertainlyDominates(sk, it->entry.sphere)) {
      if (keep != it) *keep = *it;
      ++keep;
    } else {
      ++stats_->removed_case1;
      if (park) deferred_.push_back(it->entry);
    }
  }
  items_.erase(keep, items_.end());
}

}  // namespace hyperdom
