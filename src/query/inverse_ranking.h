// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Inverse ranking queries on hyperspheres — another dominance-powered
// application named in the paper (Sections 1 and 6; Lian & Chen [23]
// studied the hyperrectangle case). Given a query hypersphere Sq and a
// target object S_t, the query asks which ranks S_t can possibly take when
// all objects are ordered by distance to the (uncertain) query point.
//
// Dominance pins the rank from both sides:
//   * every object that dominates S_t w.r.t. Sq is CERTAINLY closer, so
//     best_rank  = 1 + #{ j : Dom(S_j, S_t, Sq) };
//   * every object that S_t dominates is CERTAINLY farther, so
//     worst_rank = N - #{ j : Dom(S_t, S_j, Sq) }.
// With a correct criterion the interval always contains every achievable
// rank; with Hyperbola it is the tightest interval derivable from pairwise
// dominance alone.

#ifndef HYPERDOM_QUERY_INVERSE_RANKING_H_
#define HYPERDOM_QUERY_INVERSE_RANKING_H_

#include <cstdint>
#include <vector>

#include "dominance/criterion.h"

namespace hyperdom {

/// The possible-rank interval of one object (1-based, inclusive).
struct RankInterval {
  uint64_t best_rank = 1;
  uint64_t worst_rank = 1;
  uint64_t certainly_closer = 0;   ///< objects dominating the target
  uint64_t certainly_farther = 0;  ///< objects the target dominates
};

/// \brief Computes the rank interval of `data[target]` w.r.t. `sq`.
/// O(N) dominance tests with a MinMax-style cheap reject. Requires
/// target < data.size().
RankInterval InverseRanking(const std::vector<Hypersphere>& data,
                            size_t target, const Hypersphere& sq,
                            const DominanceCriterion& criterion);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_INVERSE_RANKING_H_
