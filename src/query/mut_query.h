// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Query entry points over the mutable SS-tree (index/mutable_ss_tree.h):
// each call pins one consistent version of the store, runs the
// corresponding static-tree search through the version's overlay, and
// reports which version it answered at — the handle the torture test (and
// any read-your-writes client) uses to compare against a serial replay of
// the mutation log.

#ifndef HYPERDOM_QUERY_MUT_QUERY_H_
#define HYPERDOM_QUERY_MUT_QUERY_H_

#include <cstdint>

#include "dominance/criterion.h"
#include "index/mutable_ss_tree.h"
#include "query/knn.h"
#include "query/range.h"

namespace hyperdom {

/// A query answer stamped with the store version it is exact at.
template <typename ResultT>
struct Versioned {
  ResultT result;
  uint64_t version = 0;
};

/// kNN against the mutable tree: pins a version, searches base + delta
/// through the overlay. The answer is exact for the pinned version
/// (subject to the criterion, as with the static searcher).
Versioned<KnnResult> MutableKnn(const MutableSsTree& tree,
                                const DominanceCriterion& criterion,
                                const KnnOptions& options,
                                const Hypersphere& sq);

/// Range query against the mutable tree, same pinning contract.
Versioned<RangeResult> MutableRange(
    const MutableSsTree& tree, const Hypersphere& sq, double range,
    const Deadline& deadline = Deadline::Unbounded());

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_MUT_QUERY_H_
