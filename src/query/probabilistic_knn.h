// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Probability-threshold kNN over uncertain objects (the query family of
// the paper's references [2, 3, 7, 19, 25]): return every object whose
// probability of ranking among the k nearest neighbors of the uncertain
// query is at least tau, under the uniform-in-ball independence model.
//
// Role of the dominance operator: an object S is CERTAINLY outside the
// top k iff at least k other objects dominate it w.r.t. Sq — in every
// realization those k objects all beat S. Counting dominators with a
// correct criterion therefore prunes candidates with provably zero
// probability, and with Hyperbola the count is exact. The surviving
// candidates are scored by Monte Carlo over whole-world realizations (one
// sampled point per object and per query each round, top-k credited).
//
// Note this certainly-out set is NOT the complement of the paper's
// Definition-2 answer: being dominated by Sk alone rules out at most one
// competitor, while zero probability needs k of them.

#ifndef HYPERDOM_QUERY_PROBABILISTIC_KNN_H_
#define HYPERDOM_QUERY_PROBABILISTIC_KNN_H_

#include <cstdint>
#include <vector>

#include "dominance/criterion.h"

namespace hyperdom {

/// One scored candidate of a probabilistic kNN query.
struct ProbabilisticCandidate {
  uint64_t id = 0;           ///< index into the dataset
  double probability = 0.0;  ///< estimated P[object ranks in the top k]
};

/// Options for ProbabilisticKnn.
struct ProbabilisticKnnOptions {
  size_t k = 10;
  /// Minimum membership probability for the answer set, in [0, 1].
  double tau = 0.5;
  /// Monte-Carlo rounds (whole-world realizations).
  uint64_t samples = 400;
  uint64_t seed = 0xFACADE;
};

/// Result of a probabilistic kNN query.
struct ProbabilisticKnnResult {
  /// Candidates with probability >= tau, sorted by descending probability
  /// (ties by ascending id).
  std::vector<ProbabilisticCandidate> answers;
  /// Objects that survived the >= k-dominators pruning and were scored.
  uint64_t candidates_sampled = 0;
  /// Objects pruned with provably zero probability.
  uint64_t candidates_pruned = 0;
  uint64_t dominance_checks = 0;
};

/// \brief Runs the threshold query: prunes objects with >= k dominators
/// (provably probability zero under a correct `criterion`), then
/// Monte-Carlo-scores the survivors. Requires options.k >= 1,
/// 0 <= tau <= 1, samples >= 1.
ProbabilisticKnnResult ProbabilisticKnn(const std::vector<Hypersphere>& data,
                                        const Hypersphere& sq,
                                        const DominanceCriterion& criterion,
                                        const ProbabilisticKnnOptions& options);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_PROBABILISTIC_KNN_H_
