// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shared types of the kNN machinery: traversal strategy, pruning-mode
// semantics, per-query counters and results. Split out of knn.h so the
// best-known list and the per-index searchers can share them.

#ifndef HYPERDOM_QUERY_KNN_TYPES_H_
#define HYPERDOM_QUERY_KNN_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/deadline.h"
#include "index/entry.h"

namespace hyperdom {

/// Index traversal strategies (paper Section 7.2).
enum class SearchStrategy {
  kDepthFirst,  ///< DF of Roussopoulos et al. [26]
  kBestFirst,   ///< HS of Hjaltason & Samet [15]
};

/// How case-2 dominance prunes are applied (see DESIGN.md, "kNN answer
/// semantics"): Definition 2 filters by the FINAL Sk, but the paper's
/// Section-6 pseudocode discards case-2 entries against the INTERIM Sk —
/// and interim dominance does not imply final dominance, so the verbatim
/// algorithm can under-return even with an exact criterion.
enum class KnnPruningMode {
  /// Park case-2-dominated entries and re-check them against the final Sk.
  /// With a correct+sound criterion the result equals Definition 2 exactly
  /// (recall 100%, matching the paper's measured claim). The default.
  kDeferred,
  /// The paper's pseudocode verbatim: discard on interim dominance. Kept
  /// for the ablation benchmark that quantifies the difference.
  kEager,
};

/// Counters describing one query execution.
struct KnnStats {
  uint64_t nodes_visited = 0;      ///< index nodes expanded
  uint64_t nodes_pruned = 0;       ///< subtrees cut by the distk bound
  uint64_t entries_accessed = 0;   ///< data entries reaching list maintenance
  uint64_t dominance_checks = 0;   ///< criterion invocations
  uint64_t pruned_case2 = 0;       ///< entries dropped by dominance (case 2)
  uint64_t pruned_case3 = 0;       ///< entries dropped by distance (case 3)
  uint64_t removed_case1 = 0;      ///< list entries evicted after insert
  uint64_t uncertain_verdicts = 0; ///< kUncertain verdicts (never pruned on)
  uint64_t nodes_deadline_skipped = 0;  ///< subtrees cut by deadline expiry
};

/// Result of a kNN query.
struct KnnResult {
  /// The answer set, ordered by ascending MaxDist to the query.
  /// When `completeness` is kBestEffort this is a certified subset of the
  /// exact Definition-2 answer (see docs/robustness.md §7).
  std::vector<DataEntry> answers;
  Completeness completeness = Completeness::kExact;
  KnnStats stats;
};

/// Options shared by every index's kNN searcher.
struct KnnOptions {
  size_t k = 10;
  SearchStrategy strategy = SearchStrategy::kBestFirst;
  KnnPruningMode pruning_mode = KnnPruningMode::kDeferred;
  /// Per-query time/work budget; unbounded by default. On expiry the
  /// searcher stops descending and returns a flagged best-effort answer.
  Deadline deadline;
};

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_KNN_TYPES_H_
