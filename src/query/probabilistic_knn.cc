// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/probabilistic_knn.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "common/rng.h"
#include "geometry/sampling.h"

namespace hyperdom {

ProbabilisticKnnResult ProbabilisticKnn(
    const std::vector<Hypersphere>& data, const Hypersphere& sq,
    const DominanceCriterion& criterion,
    const ProbabilisticKnnOptions& options) {
  assert(options.k >= 1);
  assert(options.tau >= 0.0 && options.tau <= 1.0);
  assert(options.samples >= 1);
  const size_t n = data.size();

  ProbabilisticKnnResult result;
  if (n == 0) return result;

  // Phase 1 — dominance pruning: an object with >= k dominators is beaten
  // by k objects in EVERY realization, so its probability is exactly zero.
  // Probe likely dominators (nearest by MaxDist to the candidate) first
  // and use the necessary condition MaxDist(T, S-as-query)... the cheap
  // reject from query/rknn.cc: T can dominate S only if
  // MaxDist(T, Sq) < MaxDist(S, Sq).
  std::vector<std::pair<double, size_t>> by_maxdist(n);
  for (size_t i = 0; i < n; ++i) {
    by_maxdist[i] = {MaxDist(data[i], sq), i};
  }
  std::sort(by_maxdist.begin(), by_maxdist.end());

  std::vector<bool> alive(n, false);
  std::vector<size_t> candidates;
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t i = by_maxdist[rank].second;
    if (rank < options.k) {
      // Fewer than k objects can even potentially dominate it.
      alive[i] = true;
      candidates.push_back(i);
      continue;
    }
    size_t dominators = 0;
    for (size_t prev = 0; prev < rank && dominators < options.k; ++prev) {
      const size_t j = by_maxdist[prev].second;
      ++result.dominance_checks;
      if (criterion.Dominates(data[j], data[i], sq)) ++dominators;
    }
    if (dominators < options.k) {
      alive[i] = true;
      candidates.push_back(i);
    } else {
      ++result.candidates_pruned;
    }
  }
  result.candidates_sampled = candidates.size();

  // Phase 2 — Monte Carlo over whole-world realizations.
  Rng base(options.seed);
  Rng rng_q = base.Fork(0);
  Rng rng_obj = base.Fork(1);
  std::vector<uint64_t> hits(n, 0);
  std::vector<double> dists(n);
  std::vector<size_t> order(n);
  for (uint64_t round = 0; round < options.samples; ++round) {
    const Point q = SampleInBall(&rng_q, sq);
    for (size_t i = 0; i < n; ++i) {
      dists[i] = SquaredDist(SampleInBall(&rng_obj, data[i]), q);
    }
    // Credit the k nearest realizations of this round.
    std::iota(order.begin(), order.end(), 0);
    const size_t k = std::min(options.k, n);
    std::nth_element(order.begin(), order.begin() + (k - 1), order.end(),
                     [&](size_t a, size_t b) { return dists[a] < dists[b]; });
    for (size_t rank = 0; rank < k; ++rank) ++hits[order[rank]];
  }

  for (size_t i : candidates) {
    const double p = static_cast<double>(hits[i]) /
                     static_cast<double>(options.samples);
    if (p >= options.tau) {
      result.answers.push_back(
          ProbabilisticCandidate{static_cast<uint64_t>(i), p});
    }
  }
  std::sort(result.answers.begin(), result.answers.end(),
            [](const ProbabilisticCandidate& a,
               const ProbabilisticCandidate& b) {
              if (a.probability != b.probability) {
                return a.probability > b.probability;
              }
              return a.id < b.id;
            });
  return result;
}

}  // namespace hyperdom
