// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The kNN query on hyperspheres (paper Section 6, Definition 2).
//
// Given a query hypersphere Sq and a dataset D of hyperspheres, the answer
// is the set of hyperspheres NOT dominated w.r.t. Sq by Sk, where Sk is the
// hypersphere with the k-th smallest MaxDist to Sq. (Under object
// uncertainty more than k objects can be possible k-nearest neighbors; the
// answer is every object that cannot be ruled out.)
//
// The searcher adapts the classical index-based kNN algorithms — DF, the
// depth-first traversal of Roussopoulos et al. [26], and HS, the best-first
// traversal of Hjaltason & Samet [15] — to hyperspheres by maintaining the
// paper's best-known list L (query/best_known_list.h). Subtrees are pruned
// when MinDist(node, Sq) > distk. The dominance criterion is pluggable;
// with a correct+sound criterion (Hyperbola) the result matches
// Definition 2 exactly, with merely-correct criteria it is a superset
// (lower precision), never a subset.
//
// KnnSearcher runs over the SS-tree; the alternative indexes have their own
// searchers (query/index_knn.h) built on the same list.

#ifndef HYPERDOM_QUERY_KNN_H_
#define HYPERDOM_QUERY_KNN_H_

#include <vector>

#include "common/deadline.h"
#include "dominance/criterion.h"
#include "index/overlay.h"
#include "index/ss_tree.h"
#include "query/knn_types.h"

namespace hyperdom {

class BestKnownList;

/// \brief Index-based kNN search over the SS-tree with a pluggable
/// dominance criterion.
///
/// The searcher borrows the criterion (not owned); it must outlive the
/// searcher. Thread-compatible: concurrent Search() calls are safe.
class KnnSearcher {
 public:
  KnnSearcher(const DominanceCriterion* criterion, KnnOptions options);

  /// Runs the query against an SS-tree.
  KnnResult Search(const SsTree& tree, const Hypersphere& sq) const;

  /// \brief Runs the query against an SS-tree through a mutability
  /// overlay (index/overlay.h): tombstoned base slots are skipped and the
  /// overlay's delta rows are scored exhaustively before the traversal
  /// (tightening distk early; the answer set is traversal-order
  /// independent). Null overlay behaves exactly like the two-argument
  /// form. The whole call runs under an epoch guard.
  KnnResult Search(const SsTree& tree, const Hypersphere& sq,
                   const SearchOverlay* overlay) const;

  const KnnOptions& options() const { return options_; }

 private:
  const DominanceCriterion* criterion_;
  KnnOptions options_;
};

/// \brief Traversal core without finalization: runs the SS-tree search for
/// `sq` into an externally owned list/stats/guard (the overlay's delta rows,
/// if any, are scored up front exactly as in KnnSearcher::Search). The
/// caller finalizes with TakeAnswers()/TakeAnswersWithin() — or merges
/// several per-shard lists first (BestKnownList::MergeFrom), which is what
/// the scatter-gather engine (src/shard/) does. The list's criterion/k/mode
/// define the pruning; `stats` must be the object the list was built with.
void KnnSearchInto(const SsTree& tree, const Hypersphere& sq,
                   SearchStrategy strategy, const SearchOverlay* overlay,
                   BestKnownList* list, KnnStats* stats,
                   TraversalGuard* guard);

/// \brief Reference evaluation of Definition 2 by linear scan: find distk
/// and Sk exactly, then keep every hypersphere not dominated by Sk.
///
/// `criterion` decides the dominance filter (use Hyperbola or the oracle
/// for exact ground truth). Ids in the result index into `data`.
KnnResult KnnLinearScan(const std::vector<Hypersphere>& data,
                        const Hypersphere& sq, size_t k,
                        const DominanceCriterion& criterion);

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_KNN_H_
