// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/index_knn.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "query/best_known_list.h"
#include "query/knn_metrics.h"

namespace hyperdom {

namespace {

// ---------------------------------------------------------------------------
// Generic DF / HS drivers over any node type given a bound and an expander.
// `min_dist(node)` must lower-bound MinDist(S, Sq) for every data sphere S
// in the node's subtree; `visit(node, emit_entries, emit_child)` must emit
// the node's own entries (as contiguous EntryView blocks, so a whole leaf
// scores through one batched BestKnownList::AccessBatch call) and its
// children.
//
// Every dominance decision funnels through BestKnownList, which asks the
// criterion for a three-valued verdict and never prunes on kUncertain — so
// the searchers below stay exact under an error-aware criterion without any
// per-index handling.
// ---------------------------------------------------------------------------

template <typename Node, typename MinDistFn, typename VisitFn>
void GenericDepthFirst(const Node* node, double bound,
                       const MinDistFn& min_dist, const VisitFn& visit,
                       BestKnownList* list, KnnStats* stats,
                       TraversalGuard* guard) {
  // distk shrinks while siblings are processed, so the bound is re-checked
  // here, at descent time, rather than where the child was enumerated.
  if (bound > list->DistK()) {
    ++stats->nodes_pruned;
    return;
  }
  if (guard->ShouldStop(stats->nodes_visited)) {
    ++stats->nodes_deadline_skipped;
    guard->NoteSkipped(bound);
    return;
  }
  ++stats->nodes_visited;
  std::vector<std::pair<double, const Node*>> order;
  visit(
      node,
      [&](const EntryView* rows, size_t n) { list->AccessBatch(rows, n); },
      [&](const Node* child) { order.emplace_back(min_dist(child), child); });
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [child_bound, child] : order) {
    GenericDepthFirst(child, child_bound, min_dist, visit, list, stats,
                      guard);
  }
}

template <typename Node, typename MinDistFn, typename VisitFn>
void GenericBestFirst(const Node* root, const MinDistFn& min_dist,
                      const VisitFn& visit, BestKnownList* list,
                      KnnStats* stats, TraversalGuard* guard) {
  using QueueItem = std::pair<double, const Node*>;
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.first > b.first;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(
      cmp);
  heap.emplace(min_dist(root), root);
  while (!heap.empty()) {
    const auto [bound, node] = heap.top();
    heap.pop();
    if (bound > list->DistK()) {
      stats->nodes_pruned += 1 + heap.size();
      break;
    }
    if (guard->ShouldStop(stats->nodes_visited)) {
      // The popped node carries the smallest bound left in the queue, so
      // it alone determines the pending bound for the abandoned frontier.
      guard->NoteSkipped(bound);
      stats->nodes_deadline_skipped += 1 + heap.size();
      break;
    }
    ++stats->nodes_visited;
    visit(
        node,
        [&](const EntryView* rows, size_t n) { list->AccessBatch(rows, n); },
        [&](const Node* child) { heap.emplace(min_dist(child), child); });
  }
}

template <typename Root, typename MinDistFn, typename VisitFn>
void RunSearchInto(const Root* root, SearchStrategy strategy,
                   const MinDistFn& min_dist, const VisitFn& visit,
                   BestKnownList* list, KnnStats* stats,
                   TraversalGuard* guard) {
  if (root == nullptr) return;
  if (strategy == SearchStrategy::kDepthFirst) {
    GenericDepthFirst(root, min_dist(root), min_dist, visit, list, stats,
                      guard);
  } else {
    GenericBestFirst(root, min_dist, visit, list, stats, guard);
  }
}

// Shared finalization: the final-Sk filter, or the proven-subset filter
// when a deadline cut the traversal short.
void Finalize(BestKnownList* list, TraversalGuard* guard, KnnResult* result) {
  if (guard->expired()) {
    result->completeness = Completeness::kBestEffort;
    result->answers = list->TakeAnswersWithin(guard->pending_bound());
  } else {
    result->answers = list->TakeAnswers();
  }
}

template <typename SearchIntoFn, typename Tree>
KnnResult RunSearch(const Tree& tree, const Hypersphere& sq,
                    const DominanceCriterion& criterion,
                    const KnnOptions& options, std::string_view index_tag,
                    const SearchIntoFn& search_into) {
  KnnQueryRecorder recorder(index_tag);
  KnnResult result;
  if (tree.root() == nullptr) {
    recorder.Publish(result);
    return result;
  }
  BestKnownList list(&criterion, &sq, options.k, options.pruning_mode,
                     &result.stats);
  TraversalGuard guard(options.deadline);
  search_into(tree, sq, options.strategy, &list, &result.stats, &guard);
  Finalize(&list, &guard, &result);
  recorder.Publish(result);
  return result;
}

}  // namespace

void RStarKnnSearchInto(const RStarTree& tree, const Hypersphere& sq,
                        SearchStrategy strategy, BestKnownList* list,
                        KnnStats* stats, TraversalGuard* guard) {
  if (tree.root() == nullptr) return;
  auto min_dist = [&](const RStarTreeNode* node) {
    return MinDist(node->mbr(), sq);
  };
  const SphereStore& store = tree.store();
  std::vector<EntryView> leaf_scratch;
  auto visit = [&store, &leaf_scratch](const RStarTreeNode* node,
                                       auto&& emit_entries,
                                       auto&& emit_child) {
    if (node->is_leaf()) {
      leaf_scratch.clear();
      for (const auto& entry : node->entries()) {
        leaf_scratch.push_back(store.Resolve(entry));
      }
      emit_entries(leaf_scratch.data(), leaf_scratch.size());
    } else {
      for (const auto& child : node->children()) emit_child(child.get());
    }
  };
  RunSearchInto(tree.root(), strategy, min_dist, visit, list, stats, guard);
}

KnnResult RStarKnnSearch(const RStarTree& tree, const Hypersphere& sq,
                         const DominanceCriterion& criterion,
                         const KnnOptions& options) {
  return RunSearch(tree, sq, criterion, options, "rstar",
                   RStarKnnSearchInto);
}

void MTreeKnnSearchInto(const MTree& tree, const Hypersphere& sq,
                        SearchStrategy strategy, BestKnownList* list,
                        KnnStats* stats, TraversalGuard* guard) {
  if (tree.root() == nullptr) return;
  auto min_dist = [&](const MTreeNode* node) {
    const double d = Dist(node->pivot(), sq.center()) -
                     node->covering_radius() - sq.radius();
    return d > 0.0 ? d : 0.0;
  };
  const SphereStore& store = tree.store();
  std::vector<EntryView> leaf_scratch;
  auto visit = [&store, &leaf_scratch](const MTreeNode* node,
                                       auto&& emit_entries,
                                       auto&& emit_child) {
    if (node->is_leaf()) {
      leaf_scratch.clear();
      for (const auto& entry : node->entries()) {
        leaf_scratch.push_back(store.Resolve(entry));
      }
      emit_entries(leaf_scratch.data(), leaf_scratch.size());
    } else {
      for (const auto& child : node->children()) emit_child(child.get());
    }
  };
  RunSearchInto(tree.root(), strategy, min_dist, visit, list, stats, guard);
}

KnnResult MTreeKnnSearch(const MTree& tree, const Hypersphere& sq,
                         const DominanceCriterion& criterion,
                         const KnnOptions& options) {
  return RunSearch(tree, sq, criterion, options, "m", MTreeKnnSearchInto);
}

void VpTreeKnnSearchInto(const VpTree& tree, const Hypersphere& sq,
                         SearchStrategy strategy, BestKnownList* list,
                         KnnStats* stats, TraversalGuard* guard) {
  // A VP-tree child's bound depends on its distance band relative to ITS
  // PARENT's vantage point, so bounds are computed at emission time and
  // carried alongside the node.
  struct BoundedNode {
    const VpTreeNode* node;
    double bound;  // lower bound on MinDist(S, Sq) for S in the subtree
  };

  if (tree.root() == nullptr) return;

  const SphereStore& store = tree.store();
  std::vector<EntryView> leaf_scratch;
  auto expand = [&](const VpTreeNode* node, auto&& emit_bounded) {
    if (node->is_leaf()) {
      // Whole bucket through one batched call.
      leaf_scratch.clear();
      for (const auto& entry : node->bucket()) {
        leaf_scratch.push_back(store.Resolve(entry));
      }
      list->AccessBatch(leaf_scratch.data(), leaf_scratch.size());
      return;
    }
    // The vantage is a single routing entry, not a block.
    list->Access(store.Resolve(node->vantage()));
    const double dvp = DistSpan(sq.center().data(),
                                store.center(node->vantage().slot),
                                store.dim());
    auto child_bound = [&](const VpTreeNode* child, double lo, double hi) {
      // Triangle inequality: any subtree center c has
      // Dist(c, cq) >= max(0, dvp - hi, lo - dvp); subtract the subtree's
      // fattest radius and the query radius for sphere MinDist.
      const double center_lb = std::max({0.0, dvp - hi, lo - dvp});
      const double b = center_lb - child->max_radius() - sq.radius();
      return b > 0.0 ? b : 0.0;
    };
    if (node->inside() != nullptr) {
      emit_bounded(BoundedNode{node->inside(),
                               child_bound(node->inside(), node->inside_lo(),
                                           node->inside_hi())});
    }
    if (node->outside() != nullptr) {
      emit_bounded(BoundedNode{
          node->outside(), child_bound(node->outside(), node->outside_lo(),
                                       node->outside_hi())});
    }
  };

  if (strategy == SearchStrategy::kBestFirst) {
    auto cmp = [](const BoundedNode& a, const BoundedNode& b) {
      return a.bound > b.bound;
    };
    std::priority_queue<BoundedNode, std::vector<BoundedNode>, decltype(cmp)>
        heap(cmp);
    heap.push(BoundedNode{tree.root(), 0.0});
    while (!heap.empty()) {
      const BoundedNode top = heap.top();
      heap.pop();
      if (top.bound > list->DistK()) {
        stats->nodes_pruned += 1 + heap.size();
        break;
      }
      if (guard->ShouldStop(stats->nodes_visited)) {
        guard->NoteSkipped(top.bound);
        stats->nodes_deadline_skipped += 1 + heap.size();
        break;
      }
      ++stats->nodes_visited;
      expand(top.node, [&](const BoundedNode& child) { heap.push(child); });
    }
  } else {
    // Depth-first with nearer-bound-first child ordering.
    std::vector<BoundedNode> stack;
    stack.push_back(BoundedNode{tree.root(), 0.0});
    while (!stack.empty()) {
      const BoundedNode top = stack.back();
      stack.pop_back();
      if (top.bound > list->DistK()) {
        ++stats->nodes_pruned;
        continue;
      }
      if (guard->ShouldStop(stats->nodes_visited)) {
        // Sticky: the rest of the stack drains through here, each frame
        // contributing its own bound to the pending bound.
        guard->NoteSkipped(top.bound);
        ++stats->nodes_deadline_skipped;
        continue;
      }
      ++stats->nodes_visited;
      std::vector<BoundedNode> children;
      expand(top.node,
             [&](const BoundedNode& child) { children.push_back(child); });
      // Push the farther child first so the nearer one is expanded next.
      std::sort(children.begin(), children.end(),
                [](const BoundedNode& a, const BoundedNode& b) {
                  return a.bound > b.bound;
                });
      for (const auto& child : children) stack.push_back(child);
    }
  }
}

KnnResult VpTreeKnnSearch(const VpTree& tree, const Hypersphere& sq,
                          const DominanceCriterion& criterion,
                          const KnnOptions& options) {
  return RunSearch(tree, sq, criterion, options, "vp", VpTreeKnnSearchInto);
}

}  // namespace hyperdom
