// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Incremental nearest-neighbor iteration over an SS-tree — Hjaltason &
// Samet's "distance browsing" ([15], the paper's HS strategy) exposed as a
// public iterator: entries stream out in non-decreasing MinDist order to
// the query, each produced lazily, so callers that stop after a handful of
// results pay only for what they consume. This is the primitive the HS
// kNN search specializes; it is also what applications use when the
// stopping rule is theirs (e.g. "read neighbors until two certain ones").

#ifndef HYPERDOM_QUERY_NN_ITERATOR_H_
#define HYPERDOM_QUERY_NN_ITERATOR_H_

#include <optional>
#include <queue>
#include <vector>

#include "common/deadline.h"
#include "index/ss_tree.h"

namespace hyperdom {

/// \brief Lazy best-first stream of index entries by ascending MinDist to
/// the query sphere.
///
/// The tree must outlive and not mutate under the iterator.
class NearestNeighborIterator {
 public:
  /// One streamed result.
  struct Item {
    DataEntry entry;
    /// MinDist(entry.sphere, query) — non-decreasing across Next() calls.
    double min_dist = 0.0;
  };

  /// An expired `deadline` makes Next() return nullopt permanently (the
  /// budget counts node expansions, not entries produced); expired()
  /// distinguishes that from genuine exhaustion, and PendingBound() stays
  /// a valid floor on everything the cut-off traversal did not stream.
  NearestNeighborIterator(const SsTree* tree, Hypersphere query,
                          Deadline deadline = Deadline::Unbounded());

  /// The next nearest entry, or nullopt when the tree is exhausted or the
  /// deadline expired (see expired()).
  std::optional<Item> Next();

  /// Lower bound on every future Next() result's min_dist (infinity once
  /// exhausted). Usable as an external stopping rule.
  double PendingBound() const;

  /// Entries produced so far.
  size_t produced() const { return produced_; }

  /// True once the deadline has cut the stream short.
  bool expired() const { return guard_.expired(); }

 private:
  // The classical two-kind priority queue: nodes carry the MinDist of
  // their region, entries their own MinDist. Entry items hold the store
  // handle by value and are materialized only when streamed out.
  struct QueueItem {
    double dist;
    const SsTreeNode* node;  // null for entry items
    bool is_entry;
    SsTreeEntry entry;  // valid only when is_entry
  };
  struct Compare {
    bool operator()(const QueueItem& a, const QueueItem& b) const {
      return a.dist > b.dist;  // min-heap
    }
  };

  const SsTree* tree_;
  Hypersphere query_;
  TraversalGuard guard_;  // owns its Deadline by value
  std::priority_queue<QueueItem, std::vector<QueueItem>, Compare> heap_;
  size_t produced_ = 0;
  uint64_t nodes_expanded_ = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_QUERY_NN_ITERATOR_H_
