// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/dominating.h"

#include <algorithm>
#include <cassert>

namespace hyperdom {

std::vector<DominatingScore> TopKDominating(
    const std::vector<Hypersphere>& data, const Hypersphere& sq, size_t k,
    const DominanceCriterion& criterion) {
  assert(k >= 1);
  std::vector<DominatingScore> scores(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    scores[i].id = static_cast<uint64_t>(i);
    const double maxdist_i = MaxDist(data[i], sq);
    for (size_t j = 0; j < data.size(); ++j) {
      if (i == j) continue;
      // Necessary condition for Dom(i, j, sq): even the farthest point of
      // S_i beats the nearest point of... at minimum S_i's worst case must
      // not exceed S_j's worst case; cheap reject before the criterion.
      if (maxdist_i >= MaxDist(data[j], sq)) continue;
      if (criterion.Dominates(data[i], data[j], sq)) ++scores[i].score;
    }
  }
  std::sort(scores.begin(), scores.end(),
            [](const DominatingScore& a, const DominatingScore& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.id < b.id;
            });
  if (scores.size() > k) scores.resize(k);
  return scores;
}

}  // namespace hyperdom
