// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/nn_iterator.h"

#include <limits>

namespace hyperdom {

NearestNeighborIterator::NearestNeighborIterator(const SsTree* tree,
                                                 Hypersphere query)
    : tree_(tree), query_(std::move(query)) {
  if (tree_ != nullptr && tree_->root() != nullptr) {
    heap_.push(QueueItem{MinDist(tree_->root()->bounding_sphere(), query_),
                         tree_->root(), nullptr});
  }
}

std::optional<NearestNeighborIterator::Item> NearestNeighborIterator::Next() {
  while (!heap_.empty()) {
    const QueueItem top = heap_.top();
    heap_.pop();
    if (top.entry != nullptr) {
      ++produced_;
      return Item{*top.entry, top.dist};
    }
    const SsTreeNode* node = top.node;
    if (node->is_leaf()) {
      for (const auto& entry : node->entries()) {
        heap_.push(QueueItem{MinDist(entry.sphere, query_), nullptr, &entry});
      }
    } else {
      for (const auto& child : node->children()) {
        heap_.push(QueueItem{MinDist(child->bounding_sphere(), query_),
                             child.get(), nullptr});
      }
    }
  }
  return std::nullopt;
}

double NearestNeighborIterator::PendingBound() const {
  return heap_.empty() ? std::numeric_limits<double>::infinity()
                       : heap_.top().dist;
}

}  // namespace hyperdom
