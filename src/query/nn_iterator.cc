// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/nn_iterator.h"

#include <limits>

namespace hyperdom {

NearestNeighborIterator::NearestNeighborIterator(const SsTree* tree,
                                                 Hypersphere query,
                                                 Deadline deadline)
    : tree_(tree), query_(std::move(query)), guard_(deadline) {
  if (tree_ != nullptr && tree_->root() != nullptr) {
    heap_.push(QueueItem{MinDist(tree_->root()->bounding_sphere(), query_),
                         tree_->root(), false, SsTreeEntry{}});
  }
}

std::optional<NearestNeighborIterator::Item> NearestNeighborIterator::Next() {
  if (guard_.expired()) return std::nullopt;
  const SphereStore& store = tree_->store();
  while (!heap_.empty()) {
    const QueueItem top = heap_.top();
    if (!top.is_entry && guard_.ShouldStop(nodes_expanded_)) {
      // Leave the node in the heap so PendingBound() keeps reporting a
      // valid floor on everything the cut-off stream did not produce.
      guard_.NoteSkipped(top.dist);
      return std::nullopt;
    }
    heap_.pop();
    if (top.is_entry) {
      ++produced_;
      return Item{DataEntry{store.Materialize(top.entry.slot), top.entry.id},
                  top.dist};
    }
    ++nodes_expanded_;
    const SsTreeNode* node = top.node;
    if (node->is_leaf()) {
      for (const auto& entry : node->entries()) {
        heap_.push(QueueItem{MinDist(store.view(entry.slot), query_.view()),
                             nullptr, true, entry});
      }
    } else {
      for (const auto& child : node->children()) {
        heap_.push(QueueItem{MinDist(child->bounding_sphere(), query_),
                             child.get(), false, SsTreeEntry{}});
      }
    }
  }
  return std::nullopt;
}

double NearestNeighborIterator::PendingBound() const {
  return heap_.empty() ? std::numeric_limits<double>::infinity()
                       : heap_.top().dist;
}

}  // namespace hyperdom
