// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/range.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/epoch.h"

namespace hyperdom {

namespace {

void RangeRecursive(const SsTreeNode* node, const SphereStore& store,
                    const Hypersphere& sq, double range,
                    const SearchOverlay* overlay, RangeResult* result,
                    TraversalGuard* guard) {
  if (MinDist(node->bounding_sphere(), sq) > range) {
    ++result->stats.nodes_pruned;
    return;
  }
  if (guard->ShouldStop(result->stats.nodes_visited)) {
    ++result->stats.nodes_deadline_skipped;
    return;
  }
  ++result->stats.nodes_visited;
  if (node->is_leaf()) {
    for (const auto& entry : node->entries()) {
      if (overlay != nullptr && !overlay->VisibleBase(entry.slot)) continue;
      ++result->stats.entries_accessed;
      const SphereView view = store.view(entry.slot);
      if (MinDist(view, sq.view()) <= range) {
        result->possible.push_back(
            DataEntry{MaterializeSphere(view), entry.id});
        if (MaxDist(view, sq.view()) <= range) {
          result->certain.push_back(result->possible.back());
        }
      }
    }
    return;
  }
  for (const auto& child : node->children()) {
    RangeRecursive(child.get(), store, sq, range, overlay, result, guard);
  }
}

}  // namespace

RangeResult RangeSearch(const SsTree& tree, const Hypersphere& sq,
                        double range, const Deadline& deadline,
                        const SearchOverlay* overlay) {
  assert(range >= 0.0);
  // Pins the reclamation epoch: overlay-referenced store versions stay
  // alive for the duration of the query (storage/epoch.h).
  EpochManager::Guard epoch_guard;
  HYPERDOM_SPAN(span, "range/query");
  HYPERDOM_COUNTER_INC(obs::kRangeQueries);
  RangeResult result;
  // Delta rows are outside the tree; membership is a direct per-row test.
  if (overlay != nullptr) {
    overlay->ForEachExtra([&](const EntryView& e) {
      ++result.stats.entries_accessed;
      if (MinDist(e.sphere, sq.view()) <= range) {
        result.possible.push_back(DataEntry{MaterializeSphere(e.sphere), e.id});
        if (MaxDist(e.sphere, sq.view()) <= range) {
          result.certain.push_back(result.possible.back());
        }
      }
    });
  }
  if (tree.root() == nullptr) return result;
  TraversalGuard guard(deadline);
  RangeRecursive(tree.root(), tree.store(), sq, range, overlay, &result,
                 &guard);
  if (guard.expired()) result.completeness = Completeness::kBestEffort;
  HYPERDOM_SPAN_ANNOTATE(span, "nodes_visited", result.stats.nodes_visited);
  HYPERDOM_SPAN_ANNOTATE(span, "certain",
                         static_cast<uint64_t>(result.certain.size()));
  return result;
}

RangeResult RangeLinearScan(const std::vector<Hypersphere>& data,
                            const Hypersphere& sq, double range) {
  assert(range >= 0.0);
  RangeResult result;
  for (size_t i = 0; i < data.size(); ++i) {
    ++result.stats.entries_accessed;
    if (MinDist(data[i], sq) <= range) {
      result.possible.push_back(DataEntry{data[i], static_cast<uint64_t>(i)});
      if (MaxDist(data[i], sq) <= range) {
        result.certain.push_back(DataEntry{data[i], static_cast<uint64_t>(i)});
      }
    }
  }
  return result;
}

}  // namespace hyperdom
