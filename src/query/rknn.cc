// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/rknn.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "index/ss_tree.h"
#include "storage/epoch.h"

namespace hyperdom {

RknnResult RknnFilter(const std::vector<Hypersphere>& data,
                      const Hypersphere& sq, size_t k,
                      const DominanceCriterion& criterion,
                      const Deadline& deadline) {
  assert(k >= 1);
  EpochManager::Guard epoch_guard;  // one pin for the whole RkNN pipeline
  RknnResult result;
  TraversalGuard guard(deadline);
  for (size_t cand = 0; cand < data.size(); ++cand) {
    // Cancellation is at candidate granularity: a candidate is either
    // fully counted or not reported at all, so a partial answer set is
    // still a subset of the exact one.
    if (guard.ShouldStop(cand)) {
      result.stats.candidates_deadline_skipped += data.size() - cand;
      break;
    }
    const Hypersphere& s = data[cand];
    // Probe the other objects nearest to the candidate first: they are the
    // likeliest dominators, so the k-count saturates early.
    std::vector<std::pair<double, size_t>> order;
    order.reserve(data.size() - 1);
    for (size_t other = 0; other < data.size(); ++other) {
      if (other == cand) continue;
      order.emplace_back(MaxDist(data[other], s), other);
    }
    std::sort(order.begin(), order.end());

    size_t dominators = 0;
    for (const auto& [maxdist, other] : order) {
      // Once even the closest possible placement of Sq beats `maxdist`,
      // no further object can dominate Sq w.r.t. s; stop scanning.
      if (maxdist >= MaxDist(sq, s)) break;
      ++result.stats.dominance_checks;
      if (criterion.Dominates(data[other], sq, s)) {
        if (++dominators >= k) break;
      }
    }
    if (dominators >= k) {
      ++result.stats.candidates_pruned;
    } else {
      result.answers.push_back(static_cast<uint64_t>(cand));
    }
  }
  if (guard.expired()) result.completeness = Completeness::kBestEffort;
  return result;
}

namespace {

// Lower bound, over entries T inside `region`, of MaxDist(T, s): the
// closest any T's center can be is MinDist(region-ball, s-center) and its
// radius can be 0, so  lb = max(0, Dist(c_region, c_s) - r_region) + r_s.
double CheapestMaxDist(const Hypersphere& region, const SphereView& s) {
  const double center_gap =
      DistSpan(region.center().data(), s.center, s.dim) - region.radius();
  return (center_gap > 0.0 ? center_gap : 0.0) + s.radius;
}

// Counts dominators of (sq w.r.t. candidate) via a best-first traversal,
// stopping at k. `self_id` is excluded from the count.
size_t CountDominators(const SsTree& tree, const Hypersphere& sq,
                       const SphereView& candidate, uint64_t self_id,
                       size_t k, const DominanceCriterion& criterion,
                       RknnIndexStats* stats) {
  const double bound = MaxDist(sq.view(), candidate);
  const SphereStore& store = tree.store();
  using QueueItem = std::pair<double, const SsTreeNode*>;
  auto cmp = [](const QueueItem& a, const QueueItem& b) {
    return a.first > b.first;
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, decltype(cmp)> heap(
      cmp);
  heap.emplace(CheapestMaxDist(tree.root()->bounding_sphere(), candidate),
               tree.root());
  size_t dominators = 0;
  while (!heap.empty() && dominators < k) {
    const auto [lb, node] = heap.top();
    heap.pop();
    // Dominance of sq w.r.t. the candidate requires MaxDist(T, candidate)
    // < MaxDist(sq, candidate); nothing under this node can qualify.
    if (lb >= bound) break;
    ++stats->nodes_visited;
    if (node->is_leaf()) {
      for (const auto& entry : node->entries()) {
        if (entry.id == self_id) continue;
        const SphereView view = store.view(entry.slot);
        if (MaxDist(view, candidate) >= bound) continue;
        ++stats->dominance_checks;
        if (criterion.Dominates(view, sq.view(), candidate)) {
          if (++dominators >= k) break;
        }
      }
    } else {
      for (const auto& child : node->children()) {
        const double child_lb =
            CheapestMaxDist(child->bounding_sphere(), candidate);
        if (child_lb < bound) heap.emplace(child_lb, child.get());
      }
    }
  }
  return dominators;
}

}  // namespace

RknnIndexResult RknnSearch(const SsTree& tree, const Hypersphere& sq,
                           size_t k, const DominanceCriterion& criterion,
                           const Deadline& deadline) {
  assert(k >= 1);
  EpochManager::Guard epoch_guard;  // one pin for the whole RkNN pipeline
  RknnIndexResult result;
  if (tree.root() == nullptr) return result;
  TraversalGuard guard(deadline);

  // Enumerate every candidate entry once (handles by value — they stay
  // valid independent of node storage).
  std::vector<const SsTreeNode*> stack = {tree.root()};
  std::vector<SsTreeEntry> candidates;
  while (!stack.empty()) {
    const SsTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& entry : node->entries()) candidates.push_back(entry);
    } else {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }

  const SphereStore& store = tree.store();
  size_t processed = 0;
  for (const SsTreeEntry& cand : candidates) {
    // Candidate-granular cancellation: an interrupted dominator count
    // could undercount and wrongly admit the candidate, so the deadline
    // is only polled between candidates (see rknn.h).
    if (guard.ShouldStop(result.stats.nodes_visited)) {
      result.stats.candidates_deadline_skipped = candidates.size() - processed;
      break;
    }
    const size_t dominators =
        CountDominators(tree, sq, store.view(cand.slot), cand.id, k,
                        criterion, &result.stats);
    if (dominators >= k) {
      ++result.stats.candidates_pruned;
    } else {
      result.answers.push_back(cand.id);
    }
    ++processed;
  }
  std::sort(result.answers.begin(), result.answers.end());
  if (guard.expired()) result.completeness = Completeness::kBestEffort;
  return result;
}

}  // namespace hyperdom
