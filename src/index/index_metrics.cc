// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/index_metrics.h"

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

#include <chrono>

#include "obs/metrics.h"

namespace hyperdom {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

IndexBuildRecorder::IndexBuildRecorder(std::string_view index_tag,
                                       std::string_view method)
    : tag_(index_tag), start_ns_(NowNs()), span_("index/build") {
  if (span_.active()) {
    span_.Annotate("index", index_tag);
    span_.Annotate("method", method);
  }
}

void IndexBuildRecorder::Finish(size_t entries) {
  const uint64_t elapsed_ns = static_cast<uint64_t>(NowNs() - start_ns_);
  // Builds are rare (one per index per run), so resolving the labelled
  // handles through the registry each time is fine.
  auto& reg = obs::MetricsRegistry::Instance();
  reg.GetCounter(obs::kIndexBuilds, "index", tag_)->Add(1);
  reg.GetHistogram(obs::kIndexBuildDuration, "index", tag_)
      ->Record(elapsed_ns);
  reg.GetGauge(obs::kIndexSize, "index", tag_)
      ->Set(static_cast<double>(entries));
  if (span_.active()) {
    span_.Annotate("entries", static_cast<uint64_t>(entries));
  }
}

}  // namespace hyperdom

#endif  // HYPERDOM_OBSERVABILITY_ENABLED
