// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// A vantage-point tree (Yianilos / Chiueh [10] — the paper cites VP-trees
// among the hypersphere-friendly metric indexes) adapted to hypersphere
// data: centers are indexed in the metric-tree fashion, and every subtree
// additionally records the largest data radius underneath it so that node
// distance bounds stay valid for spheres, not just points.
//
// Build: static and recursive. Each node keeps one vantage entry; the
// remaining entries are split at the median of their center distance to
// the vantage point into an inside and an outside subtree. Each child link
// stores the exact [min, max] band of center distances in that subtree, so
//   MinDist(subtree, Sq) >= max(0, max(d(vp,cq) - hi, lo - d(vp,cq)))
//                           - max_radius(subtree) - rq,
// by the triangle inequality. The tree is immutable after Build().

#ifndef HYPERDOM_INDEX_VP_TREE_H_
#define HYPERDOM_INDEX_VP_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/entry.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// VP-tree payloads are columnar-store handles.
using VpTreeEntry = StoredEntry;

/// Tuning options for VpTree.
struct VpTreeOptions {
  /// Subtrees at or below this size become flat leaf buckets.
  size_t leaf_size = 16;
};

/// \brief VP-tree node; public for traversal by searchers and tests.
class VpTreeNode {
 public:
  /// The vantage entry stored at this node (unset for leaf buckets);
  /// resolved via VpTree::store().
  const VpTreeEntry& vantage() const { return vantage_; }
  bool is_leaf() const { return is_leaf_; }
  /// Bucket payload: store handles; valid only when is_leaf().
  const std::vector<VpTreeEntry>& bucket() const { return bucket_; }

  const VpTreeNode* inside() const { return inside_.get(); }
  const VpTreeNode* outside() const { return outside_.get(); }

  /// Band of center distances to the vantage point in the inside/outside
  /// subtree: [lo, hi]. Valid only when the subtree exists.
  double inside_lo() const { return inside_lo_; }
  double inside_hi() const { return inside_hi_; }
  double outside_lo() const { return outside_lo_; }
  double outside_hi() const { return outside_hi_; }

  /// Largest data-sphere radius in this node's whole subtree (including
  /// the vantage/bucket entries).
  double max_radius() const { return max_radius_; }
  /// Number of data entries in this subtree.
  size_t subtree_size() const { return subtree_size_; }

 private:
  friend class VpTree;

  bool is_leaf_ = false;
  VpTreeEntry vantage_;
  std::vector<VpTreeEntry> bucket_;
  std::unique_ptr<VpTreeNode> inside_;
  std::unique_ptr<VpTreeNode> outside_;
  double inside_lo_ = 0.0, inside_hi_ = 0.0;
  double outside_lo_ = 0.0, outside_hi_ = 0.0;
  double max_radius_ = 0.0;
  size_t subtree_size_ = 0;
};

/// \brief The (static) VP-tree index.
class VpTree {
 public:
  explicit VpTree(VpTreeOptions options = {});

  /// Builds the tree over `spheres`; ids are positions in the vector.
  /// Replaces any previous contents. Fails on inconsistent dimensions.
  Status Build(const std::vector<Hypersphere>& spheres);

  /// Build() with caller-chosen entry ids (`ids[i]` labels `spheres[i]`;
  /// sizes must match). Used by sharded builds, where each shard indexes a
  /// subset of the dataset but answers must carry the global ids.
  Status BuildWithIds(const std::vector<Hypersphere>& spheres,
                      const std::vector<uint64_t>& ids);

  const VpTreeNode* root() const { return root_.get(); }

  /// The columnar sphere storage backing every entry; rebuilt by Build().
  const SphereStore& store() const { return *store_; }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  const VpTreeOptions& options() const { return options_; }

  /// \brief Validates structural invariants for tests: distance bands are
  /// respected by every subtree entry, max_radius covers all radii, and
  /// subtree counts are consistent.
  Status CheckInvariants() const;

  /// \brief Writes the tree to `out` in a compact binary format (host
  /// endianness, same-machine cache format — see vp_tree.cc). Used by the
  /// checksummed snapshot envelope (index/snapshot.h).
  Status Serialize(std::ostream& out) const;

  /// \brief Reads a tree written by Serialize() into `*out` (replacing its
  /// contents). Derived per-node data (max radii, subtree counts) is
  /// recomputed and CheckInvariants() re-verified, so a successful load is
  /// structurally sound even against a corrupted stream. Reads both the
  /// current columnar format (v2) and the legacy inline-entry format (v1),
  /// migrating the latter into a fresh SphereStore.
  static Status Deserialize(std::istream& in, VpTree* out);

 private:
  Status BuildRecursive(std::vector<VpTreeEntry> items,
                        std::unique_ptr<VpTreeNode>* out);
  /// Reads one legacy (v1) inline-entry node record, migrating its spheres
  /// into `store`.
  static Status LoadNodeV1(std::istream& in, size_t dim, size_t leaf_size,
                           size_t depth, SphereStore* store,
                           std::unique_ptr<VpTreeNode>* out_node);
  /// Reads one v2 slot-reference node record against a loaded store.
  static Status LoadNodeV2(std::istream& in, const SphereStore& store,
                           size_t leaf_size, size_t depth,
                           std::unique_ptr<VpTreeNode>* out_node);

  VpTreeOptions options_;
  /// Columnar coordinate arena for every entry in the tree.
  std::shared_ptr<SphereStore> store_;
  std::unique_ptr<VpTreeNode> root_;
  size_t size_ = 0;
  size_t dim_ = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_VP_TREE_H_
