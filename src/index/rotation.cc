// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/rotation.h"

#include <algorithm>
#include <vector>

#include "common/fault.h"
#include "common/io.h"
#include "index/snapshot.h"
#include "index/ss_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

namespace {

constexpr char kCurrentName[] = "CURRENT";
/// Generations kept behind the newest one, so a torn CURRENT update can
/// still fall back to a fully written predecessor.
constexpr uint64_t kKeepGenerations = 2;

// op=rotate|rotate_fallback under the shared snapshot-ops counter
// (label assembly mirrors RecordSnapshotOp in snapshot.cc).
[[maybe_unused]] void RecordRotateOp([[maybe_unused]] const char* op,
                                     [[maybe_unused]] bool ok) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  auto& reg = obs::MetricsRegistry::Instance();
  std::string name(obs::kSnapshotOps.name);
  name.append("{op=\"").append(op);
  name.append("\",result=\"").append(ok ? "ok" : "error").append("\"}");
  reg.GetCounter(std::move(name), obs::kSnapshotOps.help)->Add(1);
#endif
}

}  // namespace

SnapshotRotator::SnapshotRotator(std::string dir, std::string base_name)
    : dir_(std::move(dir)), base_(std::move(base_name)) {}

std::string SnapshotRotator::GenerationPath(uint64_t seq) const {
  return dir_ + "/" + base_ + "." + std::to_string(seq) + ".hdsp";
}

std::string SnapshotRotator::CurrentPath() const {
  return dir_ + "/" + kCurrentName;
}

bool SnapshotRotator::ParseGeneration(const std::string& name,
                                      uint64_t* seq) const {
  const std::string prefix = base_ + ".";
  const std::string suffix = ".hdsp";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    if (value > (~0ull - 9) / 10) return false;  // overflow
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *seq = value;
  return true;
}

uint64_t SnapshotRotator::CurrentSeq() const {
  Result<std::string> body = ReadFileToString(CurrentPath());
  if (!body.ok()) return 0;
  std::string name = body.ValueOrDie();
  // Trim the trailing newline (and any stray whitespace).
  while (!name.empty() &&
         (name.back() == '\n' || name.back() == '\r' || name.back() == ' ')) {
    name.pop_back();
  }
  uint64_t seq = 0;
  return ParseGeneration(name, &seq) ? seq : 0;
}

Status SnapshotRotator::Persist(const SsTree& tree, uint64_t* published_seq) {
  HYPERDOM_SPAN(span, "snapshot/rotate");
  const uint64_t next = CurrentSeq() + 1;
  const std::string gen = GenerationPath(next);
  HYPERDOM_SPAN_ANNOTATE(span, "generation", std::to_string(next));

  Status status = SaveSnapshot(tree, gen);
  if (status.ok()) {
    status = HYPERDOM_FAULT_POINT_STATUS("snapshot/rotate");
    if (status.ok()) {
      // Swing CURRENT with the same tmp+rename discipline: a crash here
      // leaves either the old manifest (previous generation serves) or
      // the new one (the generation above is fully written and synced).
      const std::string tmp = CurrentPath() + ".tmp";
      status = WriteStringToFile(
          tmp, base_ + "." + std::to_string(next) + ".hdsp\n");
      if (status.ok()) status = RenameFile(tmp, CurrentPath());
      if (!status.ok()) (void)RemoveFile(tmp);
    }
    if (!status.ok()) {
      // The new generation is not referenced by any manifest; remove it
      // so a failed rotation leaves no debris behind.
      (void)RemoveFile(gen);
    }
  }

  RecordRotateOp("rotate", status.ok());
  HYPERDOM_SPAN_ANNOTATE(span, "result", status.ok() ? "ok" : "error");
  if (!status.ok()) return status;

  if (published_seq != nullptr) *published_seq = next;
  Prune(next);
  return Status::OK();
}

void SnapshotRotator::Prune(uint64_t newest) const {
  Result<std::vector<std::string>> entries = ListDirectory(dir_);
  if (!entries.ok()) return;  // best-effort
  for (const std::string& name : entries.ValueOrDie()) {
    uint64_t seq = 0;
    if (!ParseGeneration(name, &seq)) continue;
    if (seq + kKeepGenerations <= newest) {
      (void)RemoveFile(dir_ + "/" + name);
    }
  }
}

Status SnapshotRotator::LoadLatest(SsTree* out, uint64_t* seq_out) const {
  HYPERDOM_SPAN(span, "snapshot/load_latest");

  // Fast path: the generation CURRENT names.
  const uint64_t current = CurrentSeq();
  if (current != 0) {
    Status status = LoadSnapshot(GenerationPath(current), out);
    if (status.ok()) {
      if (seq_out != nullptr) *seq_out = current;
      return Status::OK();
    }
    HYPERDOM_SPAN_ANNOTATE(span, "manifest_generation_failed",
                           status.message());
  }

  // Fallback: newest generation on disk that verifies. Reached when the
  // manifest is missing/corrupt (torn rotation, fresh directory) or the
  // generation it names failed its checksum.
  Result<std::vector<std::string>> entries = ListDirectory(dir_);
  if (!entries.ok()) return entries.status();
  std::vector<uint64_t> seqs;
  for (const std::string& name : entries.ValueOrDie()) {
    uint64_t seq = 0;
    if (ParseGeneration(name, &seq) && seq != current) seqs.push_back(seq);
  }
  std::sort(seqs.rbegin(), seqs.rend());
  for (uint64_t seq : seqs) {
    if (LoadSnapshot(GenerationPath(seq), out).ok()) {
      RecordRotateOp("rotate_fallback", true);
      HYPERDOM_SPAN_ANNOTATE(span, "fallback_generation",
                             std::to_string(seq));
      if (seq_out != nullptr) *seq_out = seq;
      return Status::OK();
    }
  }
  RecordRotateOp("rotate_fallback", false);
  return Status::NotFound("no loadable snapshot generation in '" + dir_ +
                          "'");
}

}  // namespace hyperdom
