// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/mutable_ss_tree.h"

#include <bit>
#include <cassert>
#include <string>
#include <unordered_set>
#include <utility>

#include "common/fault.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

namespace {

// Publishes one mutation attempt under op=insert|remove and
// result=ok|conflict|error. Mirrors RecordSnapshotOp (index/snapshot.cc);
// mutations are per-row, but the registry lookup is one hash probe and
// the macro compiles out entirely without observability.
[[maybe_unused]] void RecordMutation([[maybe_unused]] const char* op,
                                     [[maybe_unused]] const Status& status) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  const char* result = status.ok() ? "ok"
                       : status.code() == StatusCode::kConflict ? "conflict"
                                                                : "error";
  auto& reg = obs::MetricsRegistry::Instance();
  std::string name(obs::kStoreMutations.name);
  name.append("{op=\"").append(op);
  name.append("\",result=\"").append(result).append("\"}");
  reg.GetCounter(std::move(name), obs::kStoreMutations.help)->Add(1);
#endif
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal state

/// One fixed-capacity chunk of the delta log. The store is reserved at
/// construction and never grows past its capacity, so row addresses are
/// stable for the slab's lifetime — the property that lets readers
/// resolve rows while the writer appends (storage/sphere_store.h,
/// "Single-writer/multi-reader appends").
struct MutableSsTree::DeltaSlab {
  DeltaSlab(size_t dim, size_t cap)
      : store(dim),
        ids(new uint64_t[cap]),
        deleted_at(new std::atomic<uint64_t>[cap]()),
        capacity(cap) {
    store.Reserve(cap);
  }

  SphereStore store;
  std::unique_ptr<uint64_t[]> ids;
  /// 0 = live; otherwise the version at which the delete was published.
  std::unique_ptr<std::atomic<uint64_t>[]> deleted_at;
  const size_t capacity;
};

/// The append-only insert log: geometrically growing slabs (slab s holds
/// 256 << s rows), addressed by a flat row number. Shared by every
/// TreeVersion published since the last compaction; a version only
/// exposes rows below its `delta_rows` watermark.
struct MutableSsTree::DeltaLog {
  static constexpr size_t kSlabBase = 256;
  /// 24 slabs cover kSlabBase * (2^24 - 1) ~ 4.3e9 rows.
  static constexpr size_t kMaxSlabs = 24;

  explicit DeltaLog(size_t d) : dim(d) {}
  ~DeltaLog() {
    for (auto& slot : slabs) delete slot.load(std::memory_order_relaxed);
  }
  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Flat row -> (slab, offset). Slab s starts at kSlabBase * (2^s - 1).
  static void Locate(uint64_t row, size_t* slab, size_t* offset) {
    const uint64_t t = row / kSlabBase + 1;
    *slab = static_cast<size_t>(std::bit_width(t)) - 1;
    *offset = static_cast<size_t>(row - kSlabBase * ((1ull << *slab) - 1));
  }

  // Writer side (serialized by MutableSsTree::writer_mu_).
  void Append(uint64_t row, const Hypersphere& sphere, uint64_t id) {
    size_t s = 0;
    size_t off = 0;
    Locate(row, &s, &off);
    assert(s < kMaxSlabs && "delta log full");
    DeltaSlab* slab = slabs[s].load(std::memory_order_relaxed);
    if (slab == nullptr) {
      slab = new DeltaSlab(dim, kSlabBase << s);
      slabs[s].store(slab, std::memory_order_release);
    }
    const uint32_t added = slab->store.Add(sphere);
    assert(added == off);
    (void)added;
    slab->ids[off] = id;
  }

  void SetDeletedAt(uint64_t row, uint64_t version) {
    size_t s = 0;
    size_t off = 0;
    Locate(row, &s, &off);
    slabs[s].load(std::memory_order_relaxed)->deleted_at[off].store(
        version, std::memory_order_release);
  }

  // Reader side: callers only pass rows below their version's watermark,
  // which were fully written before that version was published.
  uint64_t DeletedAt(uint64_t row) const {
    size_t s = 0;
    size_t off = 0;
    Locate(row, &s, &off);
    return slabs[s].load(std::memory_order_acquire)->deleted_at[off].load(
        std::memory_order_acquire);
  }

  EntryView Row(uint64_t row) const {
    size_t s = 0;
    size_t off = 0;
    Locate(row, &s, &off);
    const DeltaSlab* slab = slabs[s].load(std::memory_order_acquire);
    return EntryView{slab->store.view(static_cast<uint32_t>(off)),
                     slab->ids[off], static_cast<uint32_t>(row)};
  }

  const size_t dim;
  std::atomic<DeltaSlab*> slabs[kMaxSlabs] = {};
};

/// An immutable bulk-loaded tree plus mutable per-slot tombstone words.
/// Everything except `deleted_at` is frozen after construction.
struct MutableSsTree::BaseState {
  BaseState(size_t dim, const SsTreeOptions& opts) : tree(dim, opts) {}

  uint64_t DeletedAt(uint32_t slot) const {
    return deleted_at == nullptr
               ? 0
               : deleted_at[slot].load(std::memory_order_acquire);
  }

  SsTree tree;
  /// slot -> external id (parallel to the tree's store; build-time fixed).
  std::vector<uint64_t> slot_ids;
  /// Per-slot tombstone version; null for an empty base.
  std::unique_ptr<std::atomic<uint64_t>[]> deleted_at;
};

/// One published state of the index. Immutable once published except for
/// the tombstone words, whose version-valued encoding keeps every
/// published version's visible set stable (see the header comment).
struct MutableSsTree::TreeVersion {
  uint64_t version = 0;
  std::shared_ptr<BaseState> base;
  std::shared_ptr<DeltaLog> delta;
  /// Rows of `delta` this version covers.
  uint64_t delta_rows = 0;
  uint64_t live = 0;
  uint64_t tombstones = 0;
};

namespace {

/// Row visibility at a pinned version: live, or deleted strictly after
/// the version was published.
inline bool VisibleAt(uint64_t deleted_at, uint64_t version) {
  return deleted_at == 0 || deleted_at > version;
}

}  // namespace

// ---------------------------------------------------------------------------
// ReadView

MutableSsTree::ReadView::ReadView(const MutableSsTree* tree)
    // Member order matters: guard_ pins the epoch BEFORE head_ is loaded
    // (the reader half of the protocol in storage/epoch.h).
    : guard_(), v_(tree->head_.load(std::memory_order_seq_cst)) {}

uint64_t MutableSsTree::ReadView::version() const {
  return static_cast<const TreeVersion*>(v_)->version;
}

const SsTree& MutableSsTree::ReadView::tree() const {
  return static_cast<const TreeVersion*>(v_)->base->tree;
}

size_t MutableSsTree::ReadView::live_size() const {
  return static_cast<const TreeVersion*>(v_)->live;
}

size_t MutableSsTree::ReadView::delta_rows() const {
  return static_cast<const TreeVersion*>(v_)->delta_rows;
}

bool MutableSsTree::ReadView::VisibleBase(uint32_t slot) const {
  const auto* v = static_cast<const TreeVersion*>(v_);
  return VisibleAt(v->base->DeletedAt(slot), v->version);
}

void MutableSsTree::ReadView::ForEachExtra(
    const std::function<void(const EntryView&)>& fn) const {
  const auto* v = static_cast<const TreeVersion*>(v_);
  for (uint64_t row = 0; row < v->delta_rows; ++row) {
    if (VisibleAt(v->delta->DeletedAt(row), v->version)) fn(v->delta->Row(row));
  }
}

void MutableSsTree::ReadView::ForEachExtraBlock(
    const std::function<void(const EntryView*, size_t)>& fn) const {
  const auto* v = static_cast<const TreeVersion*>(v_);
  // Same rows, same order as ForEachExtra, but the slabs are walked
  // directly: flat row numbers are consumed in order, so the per-row
  // Locate of DeltaLog::Row() collapses into one slab-pointer load per
  // slab. The gathered views stay valid while this view is pinned (slab
  // rows never move), so handing one block over the whole delta is safe.
  std::vector<EntryView> rows;
  rows.reserve(static_cast<size_t>(v->delta_rows));
  uint64_t row = 0;
  for (size_t s = 0; s < DeltaLog::kMaxSlabs && row < v->delta_rows; ++s) {
    const DeltaSlab* slab =
        v->delta->slabs[s].load(std::memory_order_acquire);
    const uint64_t slab_rows = uint64_t{DeltaLog::kSlabBase} << s;
    for (uint64_t off = 0; off < slab_rows && row < v->delta_rows;
         ++off, ++row) {
      if (!VisibleAt(slab->deleted_at[off].load(std::memory_order_acquire),
                     v->version)) {
        continue;
      }
      rows.push_back(EntryView{slab->store.view(static_cast<uint32_t>(off)),
                               slab->ids[off], static_cast<uint32_t>(row)});
    }
  }
  fn(rows.data(), rows.size());
}

void MutableSsTree::ReadView::CollectLive(std::vector<Hypersphere>* spheres,
                                          std::vector<uint64_t>* ids) const {
  const auto* v = static_cast<const TreeVersion*>(v_);
  spheres->clear();
  ids->clear();
  spheres->reserve(v->live);
  ids->reserve(v->live);
  const SphereStore& store = v->base->tree.store();
  for (uint32_t slot = 0; slot < store.size(); ++slot) {
    if (!VisibleBase(slot)) continue;
    spheres->push_back(store.Materialize(slot));
    ids->push_back(v->base->slot_ids[slot]);
  }
  ForEachExtra([&](const EntryView& e) {
    spheres->push_back(Hypersphere(
        Point(e.sphere.center, e.sphere.center + e.sphere.dim),
        e.sphere.radius));
    ids->push_back(e.id);
  });
}

MutableSsTree::ReadView MutableSsTree::Pin() const { return ReadView(this); }

// ---------------------------------------------------------------------------
// Construction / destruction

MutableSsTree::MutableSsTree(size_t dim, MutableSsTreeOptions options)
    : dim_(dim), options_(std::move(options)) {
  auto* v = new TreeVersion;
  v->base = std::make_shared<BaseState>(dim_, options_.tree);
  v->delta = std::make_shared<DeltaLog>(dim_);
  head_.store(v, std::memory_order_seq_cst);
}

MutableSsTree::~MutableSsTree() {
  // Readers must not outlive the tree (standard container contract), but
  // retired versions may still be inside a grace period — hand the head
  // to the epoch manager too and let it reclaim what it can now; the
  // manager frees any remainder at process exit.
  const TreeVersion* v = head_.exchange(nullptr, std::memory_order_seq_cst);
  EpochManager::Global().Retire(v);
  EpochManager::Global().ReclaimExpired();
}

// ---------------------------------------------------------------------------
// Writer paths

Status MutableSsTree::Insert(const Hypersphere& sphere, uint64_t id) {
  Status status;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    status = InsertLocked(sphere, id);
  }
  RecordMutation("insert", status);
  if (status.ok() && options_.auto_compact && ShouldAutoCompact()) {
    // Best-effort: a failed background compaction (injected fault, bad
    // allocation) leaves the current version serving; the next mutation
    // past the threshold retries.
    (void)Compact();
  }
  return status;
}

Status MutableSsTree::InsertLocked(const Hypersphere& sphere, uint64_t id) {
  if (frozen_.load(std::memory_order_relaxed)) {
    return Status::Conflict("store is frozen for drain");
  }
  if (compacting_) return Status::Conflict("compaction in progress");
  if (sphere.dim() != dim_) {
    return Status::InvalidArgument("sphere dimensionality " +
                                   std::to_string(sphere.dim()) +
                                   " does not match store dimensionality " +
                                   std::to_string(dim_));
  }
  if (locs_.count(id) != 0) {
    return Status::InvalidArgument("id " + std::to_string(id) +
                                   " is already live");
  }
  HYPERDOM_FAULT_POINT("store/insert");

  const TreeVersion* cur = head_.load(std::memory_order_relaxed);
  const uint64_t row = cur->delta_rows;
  cur->delta->Append(row, sphere, id);

  auto* next = new TreeVersion(*cur);
  next->version = cur->version + 1;
  next->delta_rows = row + 1;
  next->live = cur->live + 1;
  locs_[id] = Loc{true, row};
  PublishLocked(next);
  return Status::OK();
}

Status MutableSsTree::Remove(uint64_t id) {
  Status status;
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    status = RemoveLocked(id);
  }
  RecordMutation("remove", status);
  if (status.ok() && options_.auto_compact && ShouldAutoCompact()) {
    (void)Compact();
  }
  return status;
}

Status MutableSsTree::RemoveLocked(uint64_t id) {
  if (frozen_.load(std::memory_order_relaxed)) {
    return Status::Conflict("store is frozen for drain");
  }
  if (compacting_) return Status::Conflict("compaction in progress");
  auto it = locs_.find(id);
  if (it == locs_.end()) {
    return Status::NotFound("id " + std::to_string(id) + " is not live");
  }

  const TreeVersion* cur = head_.load(std::memory_order_relaxed);
  const uint64_t death = cur->version + 1;
  // Publish order: the tombstone word first, then the version that makes
  // it effective. A reader pinned at cur->version may observe either
  // value of the word — both decode to "visible" at its version, so its
  // answer set is unaffected (version-valued tombstones, header comment).
  if (it->second.in_delta) {
    cur->delta->SetDeletedAt(it->second.index, death);
  } else {
    cur->base->deleted_at[it->second.index].store(death,
                                                  std::memory_order_release);
  }

  auto* next = new TreeVersion(*cur);
  next->version = death;
  next->live = cur->live - 1;
  next->tombstones = cur->tombstones + 1;
  locs_.erase(it);
  PublishLocked(next);
  return Status::OK();
}

Status MutableSsTree::Build(const std::vector<Hypersphere>& spheres,
                            const std::vector<uint64_t>& ids) {
  if (ids.size() != spheres.size()) {
    return Status::InvalidArgument("ids and spheres must have equal sizes");
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(ids.size());
  for (uint64_t id : ids) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("duplicate id " + std::to_string(id));
    }
  }

  std::lock_guard<std::mutex> lock(writer_mu_);
  if (frozen_.load(std::memory_order_relaxed)) {
    return Status::Conflict("store is frozen for drain");
  }
  if (compacting_) return Status::Conflict("compaction in progress");

  auto base = std::make_shared<BaseState>(dim_, options_.tree);
  HYPERDOM_RETURN_NOT_OK(base->tree.BulkLoadStrWithIds(spheres, ids));
  base->slot_ids = ids;
  const size_t n = base->tree.store().size();
  if (n > 0) base->deleted_at.reset(new std::atomic<uint64_t>[n]());

  const TreeVersion* cur = head_.load(std::memory_order_relaxed);
  auto* next = new TreeVersion;
  next->version = cur->version + 1;
  next->base = std::move(base);
  next->delta = std::make_shared<DeltaLog>(dim_);
  next->live = ids.size();

  locs_.clear();
  locs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    locs_[ids[i]] = Loc{false, i};
  }
  PublishLocked(next);
  return Status::OK();
}

Status MutableSsTree::BuildFromTree(const SsTree& tree) {
  if (tree.dim() != dim_) {
    return Status::InvalidArgument("tree dimensionality does not match store");
  }
  std::vector<Hypersphere> spheres;
  std::vector<uint64_t> ids;
  spheres.reserve(tree.size());
  ids.reserve(tree.size());
  if (tree.root() != nullptr) {
    std::vector<const SsTreeNode*> stack{tree.root()};
    while (!stack.empty()) {
      const SsTreeNode* node = stack.back();
      stack.pop_back();
      if (node->is_leaf()) {
        for (const SsTreeEntry& entry : node->entries()) {
          spheres.push_back(tree.store().Materialize(entry.slot));
          ids.push_back(entry.id);
        }
      } else {
        for (const auto& child : node->children()) stack.push_back(child.get());
      }
    }
  }
  return Build(spheres, ids);
}

Status MutableSsTree::Compact() {
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    if (frozen_.load(std::memory_order_relaxed)) {
      return Status::Conflict("store is frozen for drain");
    }
    if (compacting_) {
      return Status::Conflict("compaction already in progress");
    }
    compacting_ = true;
  }

  HYPERDOM_SPAN(span, "store/compact");
  [[maybe_unused]] Stopwatch watch;
  Status status = CompactBuild();
  {
    std::lock_guard<std::mutex> lock(writer_mu_);
    compacting_ = false;
  }
  HYPERDOM_SPAN_ANNOTATE(span, "result", status.ok() ? "ok" : "error");
  HYPERDOM_COUNTER_INC_L(obs::kStoreCompactions, "result",
                         status.ok() ? "ok" : "error");
  HYPERDOM_HISTOGRAM_RECORD(obs::kStoreCompactionDuration, watch.ElapsedNs());
  return status;
}

Status MutableSsTree::CompactBuild() {
  // Runs with writer_mu_ RELEASED but compacting_ set: every mutation is
  // rejected with kConflict, so the head version and all visibility
  // words are stable and the gather below needs no synchronization
  // beyond the pin.
  std::vector<Hypersphere> spheres;
  std::vector<uint64_t> ids;
  {
    ReadView view = Pin();
    view.CollectLive(&spheres, &ids);
  }
  HYPERDOM_FAULT_POINT("store/compact");
  if (options_.compaction_hook) options_.compaction_hook();

  auto base = std::make_shared<BaseState>(dim_, options_.tree);
  HYPERDOM_RETURN_NOT_OK(base->tree.BulkLoadStrWithIds(spheres, ids));
  base->slot_ids = ids;
  const size_t n = base->tree.store().size();
  if (n > 0) base->deleted_at.reset(new std::atomic<uint64_t>[n]());

  auto* next = new TreeVersion;
  next->base = std::move(base);
  next->delta = std::make_shared<DeltaLog>(dim_);
  next->live = ids.size();

  std::lock_guard<std::mutex> lock(writer_mu_);
  const TreeVersion* cur = head_.load(std::memory_order_relaxed);
  next->version = cur->version + 1;
  locs_.clear();
  locs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    locs_[ids[i]] = Loc{false, i};
  }
  PublishLocked(next);
  return Status::OK();
}

void MutableSsTree::Freeze() {
  // Taken under the writer mutex so that when Freeze() returns, no
  // mutation is mid-flight — the drain guarantee the server relies on.
  std::lock_guard<std::mutex> lock(writer_mu_);
  frozen_.store(true, std::memory_order_relaxed);
}

void MutableSsTree::Thaw() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  frozen_.store(false, std::memory_order_relaxed);
}

bool MutableSsTree::frozen() const {
  return frozen_.load(std::memory_order_relaxed);
}

void MutableSsTree::PublishLocked(const TreeVersion* next) {
  const TreeVersion* old = head_.exchange(next, std::memory_order_seq_cst);
  EpochManager::Global().Retire(old);
  UpdateGauges(*next);
}

void MutableSsTree::UpdateGauges(const TreeVersion& v) {
  HYPERDOM_GAUGE_SET(obs::kStoreLive, static_cast<double>(v.live));
  HYPERDOM_GAUGE_SET(obs::kStoreTombstones, static_cast<double>(v.tombstones));
  HYPERDOM_GAUGE_SET(
      obs::kStoreEpochLag,
      static_cast<double>(EpochManager::Global().EpochLag()));
}

bool MutableSsTree::ShouldAutoCompact() const {
  ReadView view = Pin();
  const auto* v = static_cast<const TreeVersion*>(view.v_);
  if (v->delta_rows >= options_.compact_min_delta) return true;
  return v->tombstones > 0 &&
         static_cast<double>(v->tombstones) >=
             options_.compact_tombstone_ratio *
                 static_cast<double>(v->live + 1);
}

// ---------------------------------------------------------------------------
// Read-side accessors (each pins briefly for a consistent snapshot)

uint64_t MutableSsTree::version() const { return Pin().version(); }

size_t MutableSsTree::live_size() const { return Pin().live_size(); }

size_t MutableSsTree::tombstones() const {
  ReadView view = Pin();
  return static_cast<const TreeVersion*>(view.v_)->tombstones;
}

size_t MutableSsTree::delta_rows() const { return Pin().delta_rows(); }

}  // namespace hyperdom
