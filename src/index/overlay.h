// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// A visibility overlay threaded through the SS-tree query drivers by the
// live-mutability layer (index/mutable_ss_tree.h). The base tree a query
// traverses is immutable; mutations live beside it as tombstones over the
// base slots plus an append-only delta of freshly inserted rows. The
// overlay tells a traversal which base slots to skip and hands it the
// extra rows to score, so one set of search kernels serves both the
// static and the mutable index.
//
// Correctness note for pruning: deletions leave the base tree's bounding
// spheres untouched, so every node bound stays a covering superset of the
// visible rows beneath it — MinDist against a stale bound can only
// under-estimate, never over-estimate, which means no visible answer is
// ever pruned. Extra (delta) rows are outside the tree entirely and are
// scored exhaustively by the driver before traversal.

#ifndef HYPERDOM_INDEX_OVERLAY_H_
#define HYPERDOM_INDEX_OVERLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "storage/sphere_store.h"

namespace hyperdom {

/// \brief Query-time view adjustments over an immutable base tree.
/// Implemented by MutableSsTree::ReadView; query drivers (query/knn.cc,
/// query/range.cc) accept an optional overlay and fall back to
/// "everything visible, nothing extra" when it is null.
class SearchOverlay {
 public:
  virtual ~SearchOverlay() = default;

  /// Whether the base-tree row in `slot` is visible at this view's
  /// version (false once a delete of that row has been published at or
  /// before the pinned version).
  virtual bool VisibleBase(uint32_t slot) const = 0;

  /// Invokes `fn` for every extra (delta-inserted, still visible) row.
  /// Views handed out stay valid while the overlay is alive, like
  /// SphereStore views.
  virtual void ForEachExtra(
      const std::function<void(const EntryView&)>& fn) const = 0;

  /// Block form of ForEachExtra for batched scoring: hands the same rows,
  /// in the same order, as one or more contiguous EntryView blocks (the
  /// pointer is valid only for the duration of the callback). The default
  /// gathers everything through ForEachExtra and emits a single block;
  /// implementations with contiguous internal storage (MutableSsTree's
  /// delta slabs) override it to skip the per-row indirection.
  virtual void ForEachExtraBlock(
      const std::function<void(const EntryView*, size_t)>& fn) const {
    std::vector<EntryView> rows;
    ForEachExtra([&rows](const EntryView& e) { rows.push_back(e); });
    fn(rows.data(), rows.size());
  }
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_OVERLAY_H_
