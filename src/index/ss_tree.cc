// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/ss_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>
#include <sstream>

#include "common/fault.h"
#include "common/io.h"
#include "common/str_util.h"
#include "geometry/min_ball.h"
#include "index/index_metrics.h"

namespace hyperdom {

namespace {

// Relative slack used by the invariant checker when verifying coverage;
// bounding radii are accumulated in floating point.
constexpr double kCoverageSlack = 1e-7;

Point Centroid(const Point& center_sum, size_t count) {
  return Scale(center_sum, 1.0 / static_cast<double>(count));
}

// Exact (bitwise ==) match of a stored row against a caller sphere; the
// Delete() contract is "this exact id and sphere".
bool EntryMatches(const SphereStore& store, const StoredEntry& e,
                  const Hypersphere& sphere, uint64_t id) {
  if (e.id != id) return false;
  const SphereView v = store.view(e.slot);
  if (v.radius != sphere.radius()) return false;
  const double* c = sphere.center().data();
  for (size_t i = 0; i < v.dim; ++i) {
    if (v.center[i] != c[i]) return false;
  }
  return true;
}

}  // namespace

SsTree::SsTree(size_t dim, SsTreeOptions options)
    : dim_(dim), options_(options),
      store_(std::make_shared<SphereStore>(dim)) {}

Status SsTree::ValidateOptions() const {
  if (options_.max_entries < 4) {
    return Status::InvalidArgument("SsTreeOptions.max_entries must be >= 4");
  }
  if (!(options_.min_fill_ratio > 0.0) || options_.min_fill_ratio > 0.5) {
    return Status::InvalidArgument(
        "SsTreeOptions.min_fill_ratio must be in (0, 0.5]");
  }
  return Status::OK();
}

Status SsTree::Insert(const Hypersphere& sphere, uint64_t id) {
  HYPERDOM_RETURN_NOT_OK(ValidateOptions());
  if (sphere.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch: tree is " +
                                   std::to_string(dim_) + "-d, sphere is " +
                                   std::to_string(sphere.dim()) + "-d");
  }
  const uint32_t slot = store_->Add(sphere);
  return InsertStored(SsTreeEntry{slot, id});
}

Status SsTree::InsertStored(const SsTreeEntry& entry) {
  HYPERDOM_FAULT_POINT("ss_tree/insert");
  if (root_ == nullptr) {
    root_ = std::make_unique<SsTreeNode>(/*is_leaf=*/true);
    root_->center_sum_ = Point(dim_, 0.0);
  }
  std::unique_ptr<SsTreeNode> split_off;
  HYPERDOM_RETURN_NOT_OK(InsertRecursive(root_.get(), entry, &split_off));
  if (split_off != nullptr) {
    // Grow a new root above the two halves.
    auto new_root = std::make_unique<SsTreeNode>(/*is_leaf=*/false);
    new_root->center_sum_ = Add(root_->center_sum_, split_off->center_sum_);
    new_root->count_ = root_->count_ + split_off->count_;
    new_root->children_.push_back(std::move(root_));
    new_root->children_.push_back(std::move(split_off));
    RefreshBoundingSphere(new_root.get());
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status SsTree::BulkLoad(const std::vector<Hypersphere>& spheres) {
  IndexBuildRecorder recorder("ss", "bulk_load");
  for (size_t i = 0; i < spheres.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(Insert(spheres[i], static_cast<uint64_t>(i)));
  }
  recorder.Finish(size_);
  return Status::OK();
}

void SsTree::RebuildNodeStats(SsTreeNode* node) {
  node->center_sum_ = Point(dim_, 0.0);
  node->count_ = 0;
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      AddInPlaceSpan(node->center_sum_.data(), store_->center(e.slot), dim_);
    }
    node->count_ = node->entries_.size();
  } else {
    for (const auto& child : node->children_) {
      node->center_sum_ = Add(node->center_sum_, child->center_sum_);
      node->count_ += child->count_;
    }
  }
  RefreshBoundingSphere(node);
}

void SsTree::StrTile(std::vector<SsTreeEntry>* entries, size_t lo, size_t hi,
                     size_t dim_index, size_t leaf_capacity,
                     std::vector<std::unique_ptr<SsTreeNode>>* leaves) {
  const size_t n = hi - lo;
  if (n <= leaf_capacity) {
    auto leaf = std::make_unique<SsTreeNode>(/*is_leaf=*/true);
    leaf->entries_.assign(entries->begin() + lo, entries->begin() + hi);
    RebuildNodeStats(leaf.get());
    leaves->push_back(std::move(leaf));
    return;
  }
  const SphereStore& store = *store_;
  std::sort(entries->begin() + lo, entries->begin() + hi,
            [dim_index, &store](const SsTreeEntry& a, const SsTreeEntry& b) {
              return store.center(a.slot)[dim_index] <
                     store.center(b.slot)[dim_index];
            });
  const size_t remaining_dims = dim_ - std::min(dim_index, dim_ - 1);
  const double pages = static_cast<double>(n) / leaf_capacity;
  size_t slabs =
      remaining_dims <= 1
          ? n / leaf_capacity + (n % leaf_capacity != 0 ? 1 : 0)
          : static_cast<size_t>(
                std::ceil(std::pow(pages, 1.0 / remaining_dims)));
  slabs = std::max<size_t>(2, std::min(slabs, n / 2));
  const size_t slab_size = (n + slabs - 1) / slabs;
  const size_t next_dim = dim_index + 1 < dim_ ? dim_index + 1 : dim_index;
  for (size_t start = lo; start < hi; start += slab_size) {
    StrTile(entries, start, std::min(start + slab_size, hi), next_dim,
            leaf_capacity, leaves);
  }
}

Status SsTree::BulkLoadStr(const std::vector<Hypersphere>& spheres) {
  return BulkLoadStrWithIds(spheres, {});
}

Status SsTree::BulkLoadStrWithIds(const std::vector<Hypersphere>& spheres,
                                  const std::vector<uint64_t>& ids) {
  IndexBuildRecorder recorder("ss", "str_pack");
  HYPERDOM_RETURN_NOT_OK(ValidateOptions());
  if (!ids.empty() && ids.size() != spheres.size()) {
    return Status::InvalidArgument("ids and spheres must have equal sizes");
  }
  HYPERDOM_FAULT_POINT("ss_tree/str_pack");
  root_.reset();
  size_ = 0;
  store_ = std::make_shared<SphereStore>(dim_);
  if (spheres.empty()) {
    recorder.Finish(0);
    return Status::OK();
  }

  std::vector<SsTreeEntry> entries;
  entries.reserve(spheres.size());
  store_->Reserve(spheres.size());
  for (size_t i = 0; i < spheres.size(); ++i) {
    if (spheres[i].dim() != dim_) {
      return Status::InvalidArgument(
          "all spheres must share the tree's dimensionality");
    }
    const uint32_t slot = store_->Add(spheres[i]);
    entries.push_back(SsTreeEntry{
        slot, ids.empty() ? static_cast<uint64_t>(i) : ids[i]});
  }

  // Pack at ~85% occupancy: full packing turns every subsequent insert
  // into a cascade of splits.
  const size_t capacity = std::max<size_t>(
      2,
      static_cast<size_t>(0.85 * static_cast<double>(options_.max_entries)));
  std::vector<std::unique_ptr<SsTreeNode>> level;
  StrTile(&entries, 0, entries.size(), 0, capacity, &level);

  // Pack levels bottom-up; consecutive nodes are spatially coherent thanks
  // to the tiling order.
  while (level.size() > 1) {
    std::vector<std::unique_ptr<SsTreeNode>> parents;
    for (size_t start = 0; start < level.size(); start += capacity) {
      auto parent = std::make_unique<SsTreeNode>(/*is_leaf=*/false);
      const size_t end = std::min(start + capacity, level.size());
      for (size_t i = start; i < end; ++i) {
        parent->children_.push_back(std::move(level[i]));
      }
      RebuildNodeStats(parent.get());
      parents.push_back(std::move(parent));
    }
    // Avoid a single-child non-root chain: if the last parent ended up
    // with one child while siblings exist, rebalance by moving one over.
    if (parents.size() > 1 && parents.back()->children_.size() < 2) {
      auto& prev = parents[parents.size() - 2];
      parents.back()->children_.insert(parents.back()->children_.begin(),
                                       std::move(prev->children_.back()));
      prev->children_.pop_back();
      RebuildNodeStats(prev.get());
      RebuildNodeStats(parents.back().get());
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
  size_ = spheres.size();
  recorder.Finish(size_);
  return Status::OK();
}

Status SsTree::Delete(const Hypersphere& sphere, uint64_t id) {
  if (root_ == nullptr) return Status::NotFound("tree is empty");
  if (sphere.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch");
  }

  // Locate the leaf containing the exact (sphere, id) entry, keeping the
  // path; containment pruning bounds the search.
  std::vector<SsTreeNode*> path;
  size_t entry_index = 0;
  {
    struct Frame {
      SsTreeNode* node;
      size_t next_child;
    };
    std::vector<Frame> stack = {{root_.get(), 0}};
    bool found = false;
    while (!stack.empty() && !found) {
      Frame& frame = stack.back();
      SsTreeNode* node = frame.node;
      const Hypersphere& bound = node->bounding_;
      const double slack =
          1e-7 * (1.0 + bound.radius() + Norm(bound.center()));
      if (frame.next_child == 0 &&
          Dist(bound.center(), sphere.center()) + sphere.radius() >
              bound.radius() + slack) {
        stack.pop_back();
        continue;
      }
      if (node->is_leaf_) {
        for (size_t i = 0; i < node->entries_.size(); ++i) {
          if (EntryMatches(*store_, node->entries_[i], sphere, id)) {
            entry_index = i;
            found = true;
            break;
          }
        }
        if (!found) {
          stack.pop_back();
          continue;
        }
      } else {
        if (frame.next_child < node->children_.size()) {
          SsTreeNode* child = node->children_[frame.next_child].get();
          ++frame.next_child;
          stack.push_back({child, 0});
          continue;
        }
        stack.pop_back();
        continue;
      }
      // Found: materialize the path from the stack frames.
      for (const Frame& f : stack) path.push_back(f.node);
    }
    if (path.empty()) return Status::NotFound("no such entry");
  }

  // Remove the entry and update the bookkeeping along the path. The store
  // slot is abandoned (the arena is append-only); only the handle goes.
  SsTreeNode* leaf = path.back();
  const uint32_t removed_slot = leaf->entries_[entry_index].slot;
  leaf->entries_.erase(leaf->entries_.begin() +
                       static_cast<std::ptrdiff_t>(entry_index));
  for (SsTreeNode* node : path) {
    SubInPlaceSpan(node->center_sum_.data(), store_->center(removed_slot),
                   dim_);
    node->count_ -= 1;
  }
  --size_;

  // Dissolve underflowing non-root nodes bottom-up, collecting residents
  // for reinsertion.
  std::vector<SsTreeEntry> orphans;
  for (size_t level_i = path.size(); level_i-- > 1;) {
    SsTreeNode* node = path[level_i];
    const size_t occupancy =
        node->is_leaf_ ? node->entries_.size() : node->children_.size();
    if (occupancy >= 2) break;
    // Collect every entry beneath `node`.
    std::vector<SsTreeEntry> residents;
    std::vector<SsTreeNode*> walk = {node};
    while (!walk.empty()) {
      SsTreeNode* cur = walk.back();
      walk.pop_back();
      if (cur->is_leaf_) {
        for (const auto& e : cur->entries_) residents.push_back(e);
      } else {
        for (auto& child : cur->children_) walk.push_back(child.get());
      }
    }
    // Detach from the parent and subtract the residents from the
    // remaining ancestors.
    SsTreeNode* parent = path[level_i - 1];
    for (auto it = parent->children_.begin(); it != parent->children_.end();
         ++it) {
      if (it->get() == node) {
        parent->children_.erase(it);
        break;
      }
    }
    for (size_t a = 0; a < level_i; ++a) {
      for (const auto& e : residents) {
        SubInPlaceSpan(path[a]->center_sum_.data(), store_->center(e.slot),
                       dim_);
        path[a]->count_ -= 1;
      }
    }
    path.resize(level_i);  // the dissolved node is gone
    for (const auto& e : residents) orphans.push_back(e);
  }

  // Refresh bounds bottom-up along the surviving path.
  for (size_t level_i = path.size(); level_i-- > 0;) {
    if (path[level_i]->count_ > 0) RefreshBoundingSphere(path[level_i]);
  }

  // Root shrinkage: collapse single-child internal roots, drop an empty
  // root leaf.
  while (root_ != nullptr && !root_->is_leaf_ &&
         root_->children_.size() == 1) {
    root_ = std::move(root_->children_.front());
  }
  if (root_ != nullptr && root_->is_leaf_ && root_->entries_.empty()) {
    root_.reset();
  }

  // Reinsert the dissolved residents through the stored-entry path (their
  // spheres already live in the store; re-adding would duplicate slots).
  // Each InsertStored() increments size_, but the residents were never
  // subtracted from it.
  for (const auto& orphan : orphans) {
    --size_;
    HYPERDOM_RETURN_NOT_OK(InsertStored(orphan));
  }
  return Status::OK();
}

Status SsTree::InsertRecursive(SsTreeNode* node, const SsTreeEntry& entry,
                               std::unique_ptr<SsTreeNode>* split_off) {
  const double* entry_center = store_->center(entry.slot);
  AddInPlaceSpan(node->center_sum_.data(), entry_center, dim_);
  node->count_ += 1;

  if (node->is_leaf_) {
    node->entries_.push_back(entry);
  } else {
    // Cheapest-centroid rule: descend into the child whose centroid is
    // nearest the new sphere's center.
    SsTreeNode* best = nullptr;
    double best_dist = std::numeric_limits<double>::infinity();
    for (const auto& child : node->children_) {
      const Point centroid = Centroid(child->center_sum_, child->count_);
      const double d = SquaredDistSpan(centroid.data(), entry_center, dim_);
      if (d < best_dist) {
        best_dist = d;
        best = child.get();
      }
    }
    std::unique_ptr<SsTreeNode> child_split;
    HYPERDOM_RETURN_NOT_OK(InsertRecursive(best, entry, &child_split));
    if (child_split != nullptr) {
      node->children_.push_back(std::move(child_split));
    }
  }

  const size_t occupancy =
      node->is_leaf_ ? node->entries_.size() : node->children_.size();
  if (occupancy > options_.max_entries) {
    HYPERDOM_RETURN_NOT_OK(SplitNode(node, split_off));
  }
  RefreshBoundingSphere(node);
  return Status::OK();
}

void SsTree::RefreshBoundingSphere(SsTreeNode* node) {
  if (options_.bounding_policy == SsTreeBoundingPolicy::kMinBall) {
    // Near-minimal enclosing ball of the node's regions. The centroid
    // bookkeeping (center_sum_/count_) stays untouched — it still drives
    // the insertion descent and the split keys.
    std::vector<Hypersphere> regions;
    if (node->is_leaf_) {
      regions.reserve(node->entries_.size());
      for (const auto& e : node->entries_) {
        regions.push_back(store_->Materialize(e.slot));
      }
    } else {
      regions.reserve(node->children_.size());
      for (const auto& child : node->children_) {
        regions.push_back(child->bounding_);
      }
    }
    node->bounding_ = MinBallOfSpheres(regions);
    return;
  }

  const Point center = Centroid(node->center_sum_, node->count_);
  double radius = 0.0;
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      radius = std::max(radius,
                        DistSpan(center.data(), store_->center(e.slot), dim_) +
                            store_->radius(e.slot));
    }
  } else {
    for (const auto& child : node->children_) {
      radius = std::max(radius, Dist(center, child->bounding_.center()) +
                                    child->bounding_.radius());
    }
  }
  node->bounding_ = Hypersphere(center, radius);
}

std::vector<bool> SsTree::ChoosePartition(const std::vector<Point>& keys) const {
  const size_t n = keys.size();
  const size_t min_fill = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(options_.min_fill_ratio *
                                       static_cast<double>(n))));
  std::vector<bool> to_sibling(n, false);

  if (options_.split_policy == SsTreeSplitPolicy::kTwoMeans) {
    // SS+-style split: 2-means over the keys, seeded by the farthest pair.
    size_t pa = 0, pb = 1;
    double farthest = -1.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        const double d = SquaredDist(keys[i], keys[j]);
        if (d > farthest) {
          farthest = d;
          pa = i;
          pb = j;
        }
      }
    }
    Point mean_a = keys[pa];
    Point mean_b = keys[pb];
    for (int iter = 0; iter < 8; ++iter) {
      bool changed = false;
      for (size_t i = 0; i < n; ++i) {
        const bool sibling_side =
            SquaredDist(keys[i], mean_b) < SquaredDist(keys[i], mean_a);
        if (sibling_side != to_sibling[i]) {
          to_sibling[i] = sibling_side;
          changed = true;
        }
      }
      if (!changed && iter > 0) break;
      // Recompute the means; degenerate empty sides keep the previous one.
      Point sum_a(dim_, 0.0), sum_b(dim_, 0.0);
      size_t count_a = 0, count_b = 0;
      for (size_t i = 0; i < n; ++i) {
        if (to_sibling[i]) {
          sum_b = Add(sum_b, keys[i]);
          ++count_b;
        } else {
          sum_a = Add(sum_a, keys[i]);
          ++count_a;
        }
      }
      if (count_a > 0) mean_a = Scale(sum_a, 1.0 / count_a);
      if (count_b > 0) mean_b = Scale(sum_b, 1.0 / count_b);
    }
    // Min-fill backstop: move the items nearest the other mean across.
    auto side_count = [&](bool sibling_side) {
      size_t c = 0;
      for (bool flag : to_sibling) {
        if (flag == sibling_side) ++c;
      }
      return c;
    };
    auto top_up = [&](bool sibling_side, const Point& target_mean) {
      while (side_count(sibling_side) < min_fill) {
        size_t best_idx = n;
        double best_dist = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < n; ++i) {
          if (to_sibling[i] == sibling_side) continue;
          const double d = SquaredDist(keys[i], target_mean);
          if (d < best_dist) {
            best_dist = d;
            best_idx = i;
          }
        }
        to_sibling[best_idx] = sibling_side;
      }
    };
    top_up(true, mean_b);
    top_up(false, mean_a);
    return to_sibling;
  }

  // White & Jain's original: highest-variance coordinate, minimum summed
  // variance cut.
  size_t split_dim = 0;
  double best_var = -1.0;
  for (size_t d = 0; d < dim_; ++d) {
    double sum = 0.0, sum_sq = 0.0;
    for (const auto& k : keys) {
      sum += k[d];
      sum_sq += k[d] * k[d];
    }
    const double mean = sum / static_cast<double>(n);
    const double var = sum_sq / static_cast<double>(n) - mean * mean;
    if (var > best_var) {
      best_var = var;
      split_dim = d;
    }
  }

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a][split_dim] < keys[b][split_dim];
  });

  std::vector<double> prefix_sum(n + 1, 0.0), prefix_sq(n + 1, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double v = keys[order[i]][split_dim];
    prefix_sum[i + 1] = prefix_sum[i] + v;
    prefix_sq[i + 1] = prefix_sq[i] + v * v;
  }
  auto side_var = [&](size_t lo, size_t hi) {  // [lo, hi)
    const double cnt = static_cast<double>(hi - lo);
    const double mean = (prefix_sum[hi] - prefix_sum[lo]) / cnt;
    return (prefix_sq[hi] - prefix_sq[lo]) / cnt - mean * mean;
  };
  size_t best_cut = min_fill;
  double best_cost = std::numeric_limits<double>::infinity();
  for (size_t cut = min_fill; cut + min_fill <= n; ++cut) {
    const double cost = side_var(0, cut) + side_var(cut, n);
    if (cost < best_cost) {
      best_cost = cost;
      best_cut = cut;
    }
  }
  for (size_t i = best_cut; i < n; ++i) to_sibling[order[i]] = true;
  return to_sibling;
}

Status SsTree::SplitNode(SsTreeNode* node,
                         std::unique_ptr<SsTreeNode>* out_sibling) {
  // The split allocates a sibling node — the spot where a real allocation
  // or I/O failure would surface in a paged implementation.
  HYPERDOM_FAULT_POINT("ss_tree/split");
  // Split keys: entry centers for leaves, child centroids for internals.
  std::vector<Point> keys;
  const size_t n =
      node->is_leaf_ ? node->entries_.size() : node->children_.size();
  keys.reserve(n);
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      const double* c = store_->center(e.slot);
      keys.emplace_back(c, c + dim_);
    }
  } else {
    for (const auto& child : node->children_) {
      keys.push_back(Centroid(child->center_sum_, child->count_));
    }
  }

  const std::vector<bool> to_sibling = ChoosePartition(keys);

  auto sibling = std::make_unique<SsTreeNode>(node->is_leaf_);
  sibling->center_sum_ = Point(dim_, 0.0);
  if (node->is_leaf_) {
    std::vector<SsTreeEntry> left, right;
    for (size_t i = 0; i < n; ++i) {
      (to_sibling[i] ? right : left).push_back(node->entries_[i]);
    }
    node->entries_ = std::move(left);
    sibling->entries_ = std::move(right);
    node->center_sum_ = Point(dim_, 0.0);
    node->count_ = node->entries_.size();
    for (const auto& e : node->entries_) {
      AddInPlaceSpan(node->center_sum_.data(), store_->center(e.slot), dim_);
    }
    sibling->count_ = sibling->entries_.size();
    for (const auto& e : sibling->entries_) {
      AddInPlaceSpan(sibling->center_sum_.data(), store_->center(e.slot),
                     dim_);
    }
  } else {
    std::vector<std::unique_ptr<SsTreeNode>> left, right;
    for (size_t i = 0; i < n; ++i) {
      (to_sibling[i] ? right : left).push_back(
          std::move(node->children_[i]));
    }
    node->children_ = std::move(left);
    sibling->children_ = std::move(right);
    node->center_sum_ = Point(dim_, 0.0);
    node->count_ = 0;
    for (const auto& child : node->children_) {
      node->center_sum_ = Add(node->center_sum_, child->center_sum_);
      node->count_ += child->count_;
    }
    sibling->count_ = 0;
    for (const auto& child : sibling->children_) {
      sibling->center_sum_ = Add(sibling->center_sum_, child->center_sum_);
      sibling->count_ += child->count_;
    }
  }
  RefreshBoundingSphere(node);
  RefreshBoundingSphere(sibling.get());
  *out_sibling = std::move(sibling);
  return Status::OK();
}

size_t SsTree::Height() const {
  size_t h = 0;
  for (const SsTreeNode* node = root_.get(); node != nullptr;
       node = node->is_leaf() ? nullptr : node->children().front().get()) {
    ++h;
  }
  return h;
}

namespace {

Status CheckNode(const SsTreeNode* node, const SphereStore& store,
                 const SsTreeOptions& options, bool is_root, size_t depth,
                 size_t* leaf_depth, size_t* entry_total) {
  const Hypersphere& bound = node->bounding_sphere();
  const double slack =
      kCoverageSlack * (1.0 + bound.radius() + Norm(bound.center()));

  const size_t occupancy = node->is_leaf() ? node->entries().size()
                                           : node->children().size();
  if (occupancy > options.max_entries) {
    return Status::Corruption("node occupancy exceeds max_entries");
  }
  if (!is_root && occupancy < 2) {
    return Status::Corruption("non-root node with fewer than 2 items");
  }

  if (node->is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    size_t count = 0;
    for (const auto& e : node->entries()) {
      if (e.slot >= store.size()) {
        return Status::Corruption("entry slot out of store range");
      }
      if (DistSpan(bound.center().data(), store.center(e.slot), store.dim()) +
              store.radius(e.slot) >
          bound.radius() + slack) {
        return Status::Corruption("leaf entry escapes bounding sphere");
      }
      ++count;
    }
    if (count != node->subtree_size()) {
      return Status::Corruption("leaf count mismatch");
    }
    *entry_total += count;
    return Status::OK();
  }

  size_t child_total = 0;
  for (const auto& child : node->children()) {
    const Hypersphere& cb = child->bounding_sphere();
    if (Dist(bound.center(), cb.center()) + cb.radius() >
        bound.radius() + slack) {
      return Status::Corruption("child sphere escapes parent sphere");
    }
    HYPERDOM_RETURN_NOT_OK(CheckNode(child.get(), store, options,
                                     /*is_root=*/false, depth + 1, leaf_depth,
                                     entry_total));
    child_total += child->subtree_size();
  }
  if (child_total != node->subtree_size()) {
    return Status::Corruption("internal subtree count mismatch");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Persistence. Binary layout (all integers little-endian host-width types,
// doubles in IEEE host representation — a same-machine cache format):
//   magic "HDSS" + u32 version
//   u64 dim, u64 size, u64 max_entries, f64 min_fill_ratio, u32 split_policy,
//   u32 bounding_policy
//   v3 (current): the SphereStore blob (storage/sphere_store.cc), then
//     recursive node records:
//       u8 is_leaf
//       leaf:     u64 entry_count, then per entry: u32 slot, u64 id
//       internal: u64 child_count, then the child records
//   v2 (legacy, load-only): recursive node records with inline entries
//     (per entry: f64 center[dim], f64 radius, u64 id); migrated into a
//     fresh SphereStore on load.
// Centroids and bounding spheres are recomputed on load. Abandoned store
// slots (from Delete) are serialized too: slots must stay stable.
// ---------------------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'H', 'D', 'S', 'S'};
constexpr uint32_t kFormatVersion = 3;
constexpr uint32_t kLegacyFormatVersion = 2;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void SaveNode(std::ostream& out, const SsTreeNode* node) {
  const uint8_t is_leaf = node->is_leaf() ? 1 : 0;
  WritePod(out, is_leaf);
  if (node->is_leaf()) {
    WritePod(out, static_cast<uint64_t>(node->entries().size()));
    for (const auto& e : node->entries()) {
      WritePod(out, e.slot);
      WritePod(out, e.id);
    }
  } else {
    WritePod(out, static_cast<uint64_t>(node->children().size()));
    for (const auto& child : node->children()) {
      SaveNode(out, child.get());
    }
  }
}

}  // namespace

Status SsTree::Serialize(std::ostream& out) const {
  HYPERDOM_FAULT_POINT("ss_tree/serialize");
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kFormatVersion);
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(size_));
  WritePod(out, static_cast<uint64_t>(options_.max_entries));
  WritePod(out, options_.min_fill_ratio);
  WritePod(out, static_cast<uint32_t>(options_.split_policy));
  WritePod(out, static_cast<uint32_t>(options_.bounding_policy));
  HYPERDOM_RETURN_NOT_OK(store_->SerializeTo(out));
  if (root_ != nullptr) SaveNode(out, root_.get());
  out.flush();
  if (!out) return Status::IOError("SS-tree serialization stream failed");
  return Status::OK();
}

Status SsTree::Save(const std::string& path) const {
  // Serialize to memory, then write through the hardened EINTR/partial-
  // write loop in common/io so failures carry errno-mapped messages.
  std::ostringstream out(std::ios::binary);
  HYPERDOM_RETURN_NOT_OK(Serialize(out));
  return WriteStringToFile(path, out.str());
}

// Loads one legacy (v2) node record with inline entries, migrating each
// sphere into `store`; derived per-node data (centroids, bounds) is
// recomputed by the caller (SsTree::Deserialize).
Status SsTree::LoadNodeV2(std::istream& in, size_t dim, size_t max_entries,
                          size_t depth, SphereStore* store,
                          std::unique_ptr<SsTreeNode>* out_node) {
  // Depth bound: a valid tree over 2^64 entries is far shallower than 64
  // levels at fanout >= 2; deeper means a corrupt or adversarial file.
  if (depth > 64) return Status::Corruption("node nesting too deep");
  uint8_t is_leaf = 0;
  if (!ReadPod(in, &is_leaf) || is_leaf > 1) {
    return Status::Corruption("bad node tag");
  }
  auto node = std::make_unique<SsTreeNode>(is_leaf == 1);
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::Corruption("truncated node");
  if (count == 0 || count > max_entries) {
    return Status::Corruption("node occupancy out of range");
  }
  if (is_leaf == 1) {
    node->entries_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      Point center(dim);
      for (size_t d = 0; d < dim; ++d) {
        if (!ReadPod(in, &center[d])) {
          return Status::Corruption("truncated entry");
        }
        if (!std::isfinite(center[d])) {
          return Status::Corruption("non-finite coordinate");
        }
      }
      double radius = 0.0;
      uint64_t id = 0;
      if (!ReadPod(in, &radius) || !ReadPod(in, &id)) {
        return Status::Corruption("truncated entry");
      }
      if (!std::isfinite(radius) || radius < 0.0) {
        return Status::Corruption("bad radius");
      }
      const uint32_t slot = store->Add(center.data(), dim, radius);
      node->entries_.push_back(SsTreeEntry{slot, id});
    }
  } else {
    node->children_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      std::unique_ptr<SsTreeNode> child;
      HYPERDOM_RETURN_NOT_OK(
          LoadNodeV2(in, dim, max_entries, depth + 1, store, &child));
      node->children_.push_back(std::move(child));
    }
  }
  *out_node = std::move(node);
  return Status::OK();
}

// Loads one v3 node record of slot references against the already-loaded
// store.
Status SsTree::LoadNodeV3(std::istream& in, const SphereStore& store,
                          size_t max_entries, size_t depth,
                          std::unique_ptr<SsTreeNode>* out_node) {
  if (depth > 64) return Status::Corruption("node nesting too deep");
  uint8_t is_leaf = 0;
  if (!ReadPod(in, &is_leaf) || is_leaf > 1) {
    return Status::Corruption("bad node tag");
  }
  auto node = std::make_unique<SsTreeNode>(is_leaf == 1);
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::Corruption("truncated node");
  if (count == 0 || count > max_entries) {
    return Status::Corruption("node occupancy out of range");
  }
  if (is_leaf == 1) {
    node->entries_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t slot = 0;
      uint64_t id = 0;
      if (!ReadPod(in, &slot) || !ReadPod(in, &id)) {
        return Status::Corruption("truncated entry");
      }
      if (slot >= store.size()) {
        return Status::Corruption("entry slot out of store range");
      }
      node->entries_.push_back(SsTreeEntry{slot, id});
    }
  } else {
    node->children_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      std::unique_ptr<SsTreeNode> child;
      HYPERDOM_RETURN_NOT_OK(
          LoadNodeV3(in, store, max_entries, depth + 1, &child));
      node->children_.push_back(std::move(child));
    }
  }
  *out_node = std::move(node);
  return Status::OK();
}

Status SsTree::Load(const std::string& path, SsTree* out) {
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  std::istringstream in(file.TakeValue(), std::ios::binary);
  return Deserialize(in, out);
}

Status SsTree::Deserialize(std::istream& in, SsTree* out) {
  HYPERDOM_FAULT_POINT("ss_tree/deserialize");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad magic: not an SS-tree file");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) ||
      (version != kFormatVersion && version != kLegacyFormatVersion)) {
    return Status::NotSupported("unsupported SS-tree format version");
  }
  uint64_t dim = 0, size = 0, max_entries = 0;
  double min_fill_ratio = 0.0;
  uint32_t split_policy = 0;
  uint32_t bounding_policy = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &size) || !ReadPod(in, &max_entries) ||
      !ReadPod(in, &min_fill_ratio) || !ReadPod(in, &split_policy) ||
      !ReadPod(in, &bounding_policy)) {
    return Status::Corruption("truncated header");
  }
  if (dim == 0 || max_entries < 4 || split_policy > 1 || bounding_policy > 1) {
    return Status::Corruption("bad header fields");
  }

  SsTreeOptions options;
  options.max_entries = max_entries;
  options.min_fill_ratio = min_fill_ratio;
  options.split_policy = static_cast<SsTreeSplitPolicy>(split_policy);
  options.bounding_policy = static_cast<SsTreeBoundingPolicy>(bounding_policy);
  SsTree tree(dim, options);
  if (version == kFormatVersion) {
    SphereStore store;
    HYPERDOM_RETURN_NOT_OK(SphereStore::DeserializeFrom(in, &store));
    if (store.size() > 0 && store.dim() != dim) {
      return Status::Corruption("store dimensionality mismatch");
    }
    *tree.store_ = std::move(store);
  }
  if (size > 0) {
    if (version == kFormatVersion) {
      HYPERDOM_RETURN_NOT_OK(LoadNodeV3(in, *tree.store_, max_entries,
                                        /*depth=*/0, &tree.root_));
    } else {
      HYPERDOM_RETURN_NOT_OK(LoadNodeV2(in, dim, max_entries, /*depth=*/0,
                                        tree.store_.get(), &tree.root_));
    }
    // Recompute derived per-node data bottom-up.
    struct Rebuilder {
      SsTree* tree;
      size_t dim;
      Status Run(SsTreeNode* node) {
        node->center_sum_ = Point(dim, 0.0);
        node->count_ = 0;
        if (node->is_leaf_) {
          for (const auto& e : node->entries_) {
            AddInPlaceSpan(node->center_sum_.data(),
                           tree->store_->center(e.slot), dim);
          }
          node->count_ = node->entries_.size();
        } else {
          for (auto& child : node->children_) {
            HYPERDOM_RETURN_NOT_OK(Run(child.get()));
            node->center_sum_ = Add(node->center_sum_, child->center_sum_);
            node->count_ += child->count_;
          }
        }
        tree->RefreshBoundingSphere(node);
        return Status::OK();
      }
    };
    Rebuilder rebuilder{&tree, dim};
    HYPERDOM_RETURN_NOT_OK(rebuilder.Run(tree.root_.get()));
    if (tree.root_->count_ != size) {
      return Status::Corruption("entry count does not match header");
    }
    tree.size_ = size;
  }
  HYPERDOM_RETURN_NOT_OK(tree.CheckInvariants());
  *out = std::move(tree);
  return Status::OK();
}

Status SsTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty root but nonzero size");
  }
  size_t leaf_depth = 0;
  size_t entry_total = 0;
  HYPERDOM_RETURN_NOT_OK(CheckNode(root_.get(), *store_, options_,
                                   /*is_root=*/true,
                                   /*depth=*/1, &leaf_depth, &entry_total));
  if (entry_total != size_) {
    return Status::Corruption("total entry count mismatch: tree says " +
                              std::to_string(size_) + ", walk found " +
                              std::to_string(entry_total));
  }
  return Status::OK();
}

}  // namespace hyperdom
