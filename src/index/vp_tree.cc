// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/vp_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hyperdom {

VpTree::VpTree(VpTreeOptions options) : options_(options) {}

Status VpTree::Build(const std::vector<Hypersphere>& spheres) {
  root_.reset();
  size_ = 0;
  dim_ = 0;
  if (options_.leaf_size < 1) {
    return Status::InvalidArgument("VpTreeOptions.leaf_size must be >= 1");
  }
  if (spheres.empty()) return Status::OK();
  dim_ = spheres.front().dim();
  std::vector<DataEntry> items;
  items.reserve(spheres.size());
  for (size_t i = 0; i < spheres.size(); ++i) {
    if (spheres[i].dim() != dim_) {
      return Status::InvalidArgument(
          "all spheres must share one dimensionality");
    }
    items.push_back(DataEntry{spheres[i], static_cast<uint64_t>(i)});
  }
  root_ = BuildRecursive(std::move(items));
  size_ = spheres.size();
  return Status::OK();
}

std::unique_ptr<VpTreeNode> VpTree::BuildRecursive(
    std::vector<DataEntry> items) {
  auto node = std::make_unique<VpTreeNode>();
  node->subtree_size_ = items.size();
  for (const auto& item : items) {
    node->max_radius_ = std::max(node->max_radius_, item.sphere.radius());
  }

  if (items.size() <= options_.leaf_size) {
    node->is_leaf_ = true;
    node->bucket_ = std::move(items);
    return node;
  }

  // Vantage point: the last item (the vector order is caller-random; a
  // deterministic choice keeps builds reproducible).
  node->vantage_ = std::move(items.back());
  items.pop_back();

  // Distances of the remaining centers to the vantage center.
  std::vector<std::pair<double, size_t>> dist_order(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    dist_order[i] = {
        Dist(items[i].sphere.center(), node->vantage_.sphere.center()), i};
  }
  std::sort(dist_order.begin(), dist_order.end());

  const size_t half = items.size() / 2;
  std::vector<DataEntry> inside_items, outside_items;
  inside_items.reserve(half);
  outside_items.reserve(items.size() - half);
  for (size_t i = 0; i < dist_order.size(); ++i) {
    auto& target = i < half ? inside_items : outside_items;
    target.push_back(std::move(items[dist_order[i].second]));
  }

  if (!inside_items.empty()) {
    node->inside_lo_ = dist_order.front().first;
    node->inside_hi_ = dist_order[half - 1].first;
    node->inside_ = BuildRecursive(std::move(inside_items));
  }
  if (!outside_items.empty()) {
    node->outside_lo_ = dist_order[half].first;
    node->outside_hi_ = dist_order.back().first;
    node->outside_ = BuildRecursive(std::move(outside_items));
  }
  return node;
}

namespace {

Status CheckNode(const VpTreeNode* node, size_t* entry_total) {
  if (node->is_leaf()) {
    for (const auto& e : node->bucket()) {
      if (e.sphere.radius() > node->max_radius() + 1e-12) {
        return Status::Corruption("bucket radius exceeds max_radius");
      }
    }
    *entry_total += node->bucket().size();
    return Status::OK();
  }

  if (node->vantage().sphere.radius() > node->max_radius() + 1e-12) {
    return Status::Corruption("vantage radius exceeds max_radius");
  }
  size_t children_total = 1;  // the vantage entry itself

  struct Side {
    const VpTreeNode* child;
    double lo;
    double hi;
  };
  const Side sides[2] = {
      {node->inside(), node->inside_lo(), node->inside_hi()},
      {node->outside(), node->outside_lo(), node->outside_hi()},
  };
  for (const Side& side : sides) {
    if (side.child == nullptr) continue;
    if (side.child->max_radius() > node->max_radius() + 1e-12) {
      return Status::Corruption("child max_radius exceeds parent's");
    }
    // Every entry in the child subtree must respect the distance band.
    std::vector<const VpTreeNode*> stack = {side.child};
    while (!stack.empty()) {
      const VpTreeNode* cur = stack.back();
      stack.pop_back();
      auto check_entry = [&](const DataEntry& e) {
        const double d =
            Dist(e.sphere.center(), node->vantage().sphere.center());
        const double slack = 1e-9 * (1.0 + d);
        if (d < side.lo - slack || d > side.hi + slack) {
          return Status::Corruption("entry violates distance band");
        }
        return Status::OK();
      };
      if (cur->is_leaf()) {
        for (const auto& e : cur->bucket()) {
          HYPERDOM_RETURN_NOT_OK(check_entry(e));
        }
      } else {
        HYPERDOM_RETURN_NOT_OK(check_entry(cur->vantage()));
        if (cur->inside() != nullptr) stack.push_back(cur->inside());
        if (cur->outside() != nullptr) stack.push_back(cur->outside());
      }
    }
    HYPERDOM_RETURN_NOT_OK(CheckNode(side.child, &children_total));
  }
  if (children_total != node->subtree_size()) {
    return Status::Corruption("subtree count mismatch");
  }
  *entry_total += children_total;
  return Status::OK();
}

}  // namespace

Status VpTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty root but nonzero size");
  }
  size_t entry_total = 0;
  HYPERDOM_RETURN_NOT_OK(CheckNode(root_.get(), &entry_total));
  if (entry_total != size_) {
    return Status::Corruption("total entry count mismatch");
  }
  return Status::OK();
}

}  // namespace hyperdom
