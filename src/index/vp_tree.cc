// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/vp_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>

#include "common/fault.h"
#include "index/index_metrics.h"

namespace hyperdom {

VpTree::VpTree(VpTreeOptions options)
    : options_(options), store_(std::make_shared<SphereStore>()) {}

Status VpTree::Build(const std::vector<Hypersphere>& spheres) {
  return BuildWithIds(spheres, {});
}

Status VpTree::BuildWithIds(const std::vector<Hypersphere>& spheres,
                            const std::vector<uint64_t>& ids) {
  IndexBuildRecorder recorder("vp", "build");
  root_.reset();
  size_ = 0;
  dim_ = 0;
  store_ = std::make_shared<SphereStore>();
  if (options_.leaf_size < 1) {
    return Status::InvalidArgument("VpTreeOptions.leaf_size must be >= 1");
  }
  // An empty id vector means "ids are positions" (the Build() behavior).
  if (!ids.empty() && ids.size() != spheres.size()) {
    return Status::InvalidArgument("ids must be empty or match spheres");
  }
  if (spheres.empty()) {
    recorder.Finish(0);
    return Status::OK();
  }
  HYPERDOM_FAULT_POINT("vp_tree/build");
  dim_ = spheres.front().dim();
  store_ = std::make_shared<SphereStore>(dim_);
  store_->Reserve(spheres.size());
  std::vector<VpTreeEntry> items;
  items.reserve(spheres.size());
  for (size_t i = 0; i < spheres.size(); ++i) {
    if (spheres[i].dim() != dim_) {
      return Status::InvalidArgument(
          "all spheres must share one dimensionality");
    }
    const uint32_t slot = store_->Add(spheres[i]);
    const uint64_t id = ids.empty() ? static_cast<uint64_t>(i) : ids[i];
    items.push_back(VpTreeEntry{slot, id});
  }
  HYPERDOM_RETURN_NOT_OK(BuildRecursive(std::move(items), &root_));
  size_ = spheres.size();
  recorder.Finish(size_);
  return Status::OK();
}

Status VpTree::BuildRecursive(std::vector<VpTreeEntry> items,
                              std::unique_ptr<VpTreeNode>* out) {
  // Node allocation — where a paged build would touch storage.
  HYPERDOM_FAULT_POINT("vp_tree/build_node");
  auto node = std::make_unique<VpTreeNode>();
  node->subtree_size_ = items.size();
  for (const auto& item : items) {
    node->max_radius_ = std::max(node->max_radius_, store_->radius(item.slot));
  }

  if (items.size() <= options_.leaf_size) {
    node->is_leaf_ = true;
    node->bucket_ = std::move(items);
    *out = std::move(node);
    return Status::OK();
  }

  // Vantage point: the last item (the vector order is caller-random; a
  // deterministic choice keeps builds reproducible).
  node->vantage_ = items.back();
  items.pop_back();

  // Distances of the remaining centers to the vantage center.
  const double* vantage_center = store_->center(node->vantage_.slot);
  std::vector<std::pair<double, size_t>> dist_order(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    dist_order[i] = {
        DistSpan(store_->center(items[i].slot), vantage_center, dim_), i};
  }
  std::sort(dist_order.begin(), dist_order.end());

  const size_t half = items.size() / 2;
  std::vector<VpTreeEntry> inside_items, outside_items;
  inside_items.reserve(half);
  outside_items.reserve(items.size() - half);
  for (size_t i = 0; i < dist_order.size(); ++i) {
    auto& target = i < half ? inside_items : outside_items;
    target.push_back(items[dist_order[i].second]);
  }

  if (!inside_items.empty()) {
    node->inside_lo_ = dist_order.front().first;
    node->inside_hi_ = dist_order[half - 1].first;
    HYPERDOM_RETURN_NOT_OK(
        BuildRecursive(std::move(inside_items), &node->inside_));
  }
  if (!outside_items.empty()) {
    node->outside_lo_ = dist_order[half].first;
    node->outside_hi_ = dist_order.back().first;
    HYPERDOM_RETURN_NOT_OK(
        BuildRecursive(std::move(outside_items), &node->outside_));
  }
  *out = std::move(node);
  return Status::OK();
}

namespace {

Status CheckNode(const VpTreeNode* node, const SphereStore& store,
                 size_t* entry_total) {
  if (node->is_leaf()) {
    for (const auto& e : node->bucket()) {
      if (e.slot >= store.size()) {
        return Status::Corruption("bucket slot out of store range");
      }
      if (store.radius(e.slot) > node->max_radius() + 1e-12) {
        return Status::Corruption("bucket radius exceeds max_radius");
      }
    }
    *entry_total += node->bucket().size();
    return Status::OK();
  }

  if (node->vantage().slot >= store.size()) {
    return Status::Corruption("vantage slot out of store range");
  }
  if (store.radius(node->vantage().slot) > node->max_radius() + 1e-12) {
    return Status::Corruption("vantage radius exceeds max_radius");
  }
  size_t children_total = 1;  // the vantage entry itself

  struct Side {
    const VpTreeNode* child;
    double lo;
    double hi;
  };
  const Side sides[2] = {
      {node->inside(), node->inside_lo(), node->inside_hi()},
      {node->outside(), node->outside_lo(), node->outside_hi()},
  };
  const double* vantage_center = store.center(node->vantage().slot);
  for (const Side& side : sides) {
    if (side.child == nullptr) continue;
    if (side.child->max_radius() > node->max_radius() + 1e-12) {
      return Status::Corruption("child max_radius exceeds parent's");
    }
    // Every entry in the child subtree must respect the distance band.
    std::vector<const VpTreeNode*> stack = {side.child};
    while (!stack.empty()) {
      const VpTreeNode* cur = stack.back();
      stack.pop_back();
      auto check_entry = [&](const VpTreeEntry& e) {
        if (e.slot >= store.size()) {
          return Status::Corruption("entry slot out of store range");
        }
        const double d =
            DistSpan(store.center(e.slot), vantage_center, store.dim());
        const double slack = 1e-9 * (1.0 + d);
        if (d < side.lo - slack || d > side.hi + slack) {
          return Status::Corruption("entry violates distance band");
        }
        return Status::OK();
      };
      if (cur->is_leaf()) {
        for (const auto& e : cur->bucket()) {
          HYPERDOM_RETURN_NOT_OK(check_entry(e));
        }
      } else {
        HYPERDOM_RETURN_NOT_OK(check_entry(cur->vantage()));
        if (cur->inside() != nullptr) stack.push_back(cur->inside());
        if (cur->outside() != nullptr) stack.push_back(cur->outside());
      }
    }
    HYPERDOM_RETURN_NOT_OK(CheckNode(side.child, store, &children_total));
  }
  if (children_total != node->subtree_size()) {
    return Status::Corruption("subtree count mismatch");
  }
  *entry_total += children_total;
  return Status::OK();
}

}  // namespace

Status VpTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty root but nonzero size");
  }
  size_t entry_total = 0;
  HYPERDOM_RETURN_NOT_OK(CheckNode(root_.get(), *store_, &entry_total));
  if (entry_total != size_) {
    return Status::Corruption("total entry count mismatch");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Persistence. Same conventions as the SS-tree format (ss_tree.cc): host
// endianness, a same-machine cache format, derived data recomputed on load.
//   magic "HDVP" + u32 version
//   u64 dim, u64 size, u64 leaf_size
//   v2 (current): the SphereStore blob (storage/sphere_store.cc), then
//     recursive node records (present iff size > 0):
//       u8 is_leaf
//       leaf:     u64 bucket_count, then per entry: u32 slot, u64 id
//       internal: the vantage entry (u32 slot, u64 id), then per side
//                 (inside, outside): u8 present, and when present f64 lo,
//                 f64 hi, child record
//   v1 (legacy, load-only): node records with inline entries (f64
//     center[dim], f64 radius, u64 id); migrated into a fresh SphereStore
//     on load.
// ---------------------------------------------------------------------------

namespace {

constexpr char kVpMagic[4] = {'H', 'D', 'V', 'P'};
constexpr uint32_t kVpFormatVersion = 2;
constexpr uint32_t kVpLegacyFormatVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

void SaveEntry(std::ostream& out, const VpTreeEntry& e) {
  WritePod(out, e.slot);
  WritePod(out, e.id);
}

Status ReadEntryV2(std::istream& in, const SphereStore& store,
                   VpTreeEntry* out) {
  uint32_t slot = 0;
  uint64_t id = 0;
  if (!ReadPod(in, &slot) || !ReadPod(in, &id)) {
    return Status::Corruption("truncated entry");
  }
  if (slot >= store.size()) {
    return Status::Corruption("entry slot out of store range");
  }
  *out = VpTreeEntry{slot, id};
  return Status::OK();
}

// Reads one legacy inline entry, migrating the sphere into `store`.
Status ReadEntryV1(std::istream& in, size_t dim, SphereStore* store,
                   VpTreeEntry* out) {
  Point center(dim);
  for (size_t d = 0; d < dim; ++d) {
    if (!ReadPod(in, &center[d])) return Status::Corruption("truncated entry");
    if (!std::isfinite(center[d])) {
      return Status::Corruption("non-finite coordinate");
    }
  }
  double radius = 0.0;
  uint64_t id = 0;
  if (!ReadPod(in, &radius) || !ReadPod(in, &id)) {
    return Status::Corruption("truncated entry");
  }
  if (!std::isfinite(radius) || radius < 0.0) {
    return Status::Corruption("bad radius");
  }
  const uint32_t slot = store->Add(center.data(), dim, radius);
  *out = VpTreeEntry{slot, id};
  return Status::OK();
}

void SaveVpNode(std::ostream& out, const VpTreeNode* node) {
  const uint8_t is_leaf = node->is_leaf() ? 1 : 0;
  WritePod(out, is_leaf);
  if (node->is_leaf()) {
    WritePod(out, static_cast<uint64_t>(node->bucket().size()));
    for (const auto& e : node->bucket()) SaveEntry(out, e);
    return;
  }
  SaveEntry(out, node->vantage());
  const struct {
    const VpTreeNode* child;
    double lo;
    double hi;
  } sides[2] = {
      {node->inside(), node->inside_lo(), node->inside_hi()},
      {node->outside(), node->outside_lo(), node->outside_hi()},
  };
  for (const auto& side : sides) {
    const uint8_t present = side.child != nullptr ? 1 : 0;
    WritePod(out, present);
    if (present) {
      WritePod(out, side.lo);
      WritePod(out, side.hi);
      SaveVpNode(out, side.child);
    }
  }
}

}  // namespace

Status VpTree::Serialize(std::ostream& out) const {
  HYPERDOM_FAULT_POINT("vp_tree/serialize");
  out.write(kVpMagic, sizeof(kVpMagic));
  WritePod(out, kVpFormatVersion);
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(size_));
  WritePod(out, static_cast<uint64_t>(options_.leaf_size));
  HYPERDOM_RETURN_NOT_OK(store_->SerializeTo(out));
  if (root_ != nullptr) SaveVpNode(out, root_.get());
  out.flush();
  if (!out) return Status::IOError("VP-tree serialization stream failed");
  return Status::OK();
}

Status VpTree::LoadNodeV1(std::istream& in, size_t dim, size_t leaf_size,
                          size_t depth, SphereStore* store,
                          std::unique_ptr<VpTreeNode>* out_node) {
  // A valid build halves the item count per level, so any honest tree is
  // far shallower than 128 levels; deeper means a corrupt file.
  if (depth > 128) return Status::Corruption("node nesting too deep");
  uint8_t is_leaf = 0;
  if (!ReadPod(in, &is_leaf) || is_leaf > 1) {
    return Status::Corruption("bad node tag");
  }
  auto node = std::make_unique<VpTreeNode>();
  if (is_leaf == 1) {
    node->is_leaf_ = true;
    uint64_t count = 0;
    if (!ReadPod(in, &count)) return Status::Corruption("truncated node");
    if (count == 0 || count > leaf_size) {
      return Status::Corruption("bucket size out of range");
    }
    node->bucket_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      VpTreeEntry e;
      HYPERDOM_RETURN_NOT_OK(ReadEntryV1(in, dim, store, &e));
      node->max_radius_ = std::max(node->max_radius_, store->radius(e.slot));
      node->bucket_.push_back(e);
    }
    node->subtree_size_ = node->bucket_.size();
    *out_node = std::move(node);
    return Status::OK();
  }

  HYPERDOM_RETURN_NOT_OK(ReadEntryV1(in, dim, store, &node->vantage_));
  node->max_radius_ = store->radius(node->vantage_.slot);
  node->subtree_size_ = 1;
  struct Side {
    std::unique_ptr<VpTreeNode>* child;
    double* lo;
    double* hi;
  };
  const Side sides[2] = {
      {&node->inside_, &node->inside_lo_, &node->inside_hi_},
      {&node->outside_, &node->outside_lo_, &node->outside_hi_},
  };
  for (const Side& side : sides) {
    uint8_t present = 0;
    if (!ReadPod(in, &present) || present > 1) {
      return Status::Corruption("bad side tag");
    }
    if (present == 0) continue;
    if (!ReadPod(in, side.lo) || !ReadPod(in, side.hi)) {
      return Status::Corruption("truncated band");
    }
    if (!std::isfinite(*side.lo) || !std::isfinite(*side.hi) ||
        *side.lo < 0.0 || *side.hi < *side.lo) {
      return Status::Corruption("bad distance band");
    }
    HYPERDOM_RETURN_NOT_OK(
        LoadNodeV1(in, dim, leaf_size, depth + 1, store, side.child));
    node->max_radius_ =
        std::max(node->max_radius_, (*side.child)->max_radius_);
    node->subtree_size_ += (*side.child)->subtree_size_;
  }
  if (node->inside_ == nullptr && node->outside_ == nullptr) {
    return Status::Corruption("internal node without children");
  }
  *out_node = std::move(node);
  return Status::OK();
}

Status VpTree::LoadNodeV2(std::istream& in, const SphereStore& store,
                          size_t leaf_size, size_t depth,
                          std::unique_ptr<VpTreeNode>* out_node) {
  if (depth > 128) return Status::Corruption("node nesting too deep");
  uint8_t is_leaf = 0;
  if (!ReadPod(in, &is_leaf) || is_leaf > 1) {
    return Status::Corruption("bad node tag");
  }
  auto node = std::make_unique<VpTreeNode>();
  if (is_leaf == 1) {
    node->is_leaf_ = true;
    uint64_t count = 0;
    if (!ReadPod(in, &count)) return Status::Corruption("truncated node");
    if (count == 0 || count > leaf_size) {
      return Status::Corruption("bucket size out of range");
    }
    node->bucket_.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      VpTreeEntry e;
      HYPERDOM_RETURN_NOT_OK(ReadEntryV2(in, store, &e));
      node->max_radius_ = std::max(node->max_radius_, store.radius(e.slot));
      node->bucket_.push_back(e);
    }
    node->subtree_size_ = node->bucket_.size();
    *out_node = std::move(node);
    return Status::OK();
  }

  HYPERDOM_RETURN_NOT_OK(ReadEntryV2(in, store, &node->vantage_));
  node->max_radius_ = store.radius(node->vantage_.slot);
  node->subtree_size_ = 1;
  struct Side {
    std::unique_ptr<VpTreeNode>* child;
    double* lo;
    double* hi;
  };
  const Side sides[2] = {
      {&node->inside_, &node->inside_lo_, &node->inside_hi_},
      {&node->outside_, &node->outside_lo_, &node->outside_hi_},
  };
  for (const Side& side : sides) {
    uint8_t present = 0;
    if (!ReadPod(in, &present) || present > 1) {
      return Status::Corruption("bad side tag");
    }
    if (present == 0) continue;
    if (!ReadPod(in, side.lo) || !ReadPod(in, side.hi)) {
      return Status::Corruption("truncated band");
    }
    if (!std::isfinite(*side.lo) || !std::isfinite(*side.hi) ||
        *side.lo < 0.0 || *side.hi < *side.lo) {
      return Status::Corruption("bad distance band");
    }
    HYPERDOM_RETURN_NOT_OK(
        LoadNodeV2(in, store, leaf_size, depth + 1, side.child));
    node->max_radius_ =
        std::max(node->max_radius_, (*side.child)->max_radius_);
    node->subtree_size_ += (*side.child)->subtree_size_;
  }
  if (node->inside_ == nullptr && node->outside_ == nullptr) {
    return Status::Corruption("internal node without children");
  }
  *out_node = std::move(node);
  return Status::OK();
}

Status VpTree::Deserialize(std::istream& in, VpTree* out) {
  HYPERDOM_FAULT_POINT("vp_tree/deserialize");
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kVpMagic, sizeof(kVpMagic)) != 0) {
    return Status::Corruption("bad magic: not a VP-tree stream");
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) ||
      (version != kVpFormatVersion && version != kVpLegacyFormatVersion)) {
    return Status::NotSupported("unsupported VP-tree format version");
  }
  uint64_t dim = 0, size = 0, leaf_size = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &size) || !ReadPod(in, &leaf_size)) {
    return Status::Corruption("truncated header");
  }
  if (leaf_size == 0 || (size > 0 && dim == 0)) {
    return Status::Corruption("bad header fields");
  }

  VpTreeOptions options;
  options.leaf_size = leaf_size;
  VpTree tree(options);
  if (version == kVpFormatVersion) {
    SphereStore store;
    HYPERDOM_RETURN_NOT_OK(SphereStore::DeserializeFrom(in, &store));
    if (store.size() > 0 && store.dim() != dim) {
      return Status::Corruption("store dimensionality mismatch");
    }
    *tree.store_ = std::move(store);
  } else if (size > 0) {
    *tree.store_ = SphereStore(dim);
  }
  if (size > 0) {
    if (version == kVpFormatVersion) {
      HYPERDOM_RETURN_NOT_OK(
          LoadNodeV2(in, *tree.store_, leaf_size, /*depth=*/0, &tree.root_));
    } else {
      HYPERDOM_RETURN_NOT_OK(LoadNodeV1(in, dim, leaf_size, /*depth=*/0,
                                        tree.store_.get(), &tree.root_));
    }
    if (tree.root_->subtree_size_ != size) {
      return Status::Corruption("entry count does not match header");
    }
    tree.dim_ = dim;
    tree.size_ = size;
  }
  HYPERDOM_RETURN_NOT_OK(tree.CheckInvariants());
  *out = std::move(tree);
  return Status::OK();
}

}  // namespace hyperdom
