// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// An SS-tree (White & Jain, ICDE 1996 — reference [31] of the paper): a
// height-balanced index whose node regions are hyperspheres rather than
// hyperrectangles, which the paper's Section 7.2 uses to index hypersphere
// datasets for kNN queries.
//
// Implementation summary:
//   * Data spheres live in a tree-owned columnar SphereStore; leaf nodes
//     hold lightweight StoredEntry handles (slot + caller-supplied id),
//     internal nodes hold child nodes. Traversals resolve handles to
//     SphereView spans over the store's contiguous arena.
//   * Every node maintains the centroid of the data centers beneath it
//     (incrementally, via a coordinate sum and a count) and a bounding
//     radius covering all of its data spheres — the SS-tree's defining
//     property that yields compact regions in high dimension.
//   * Insertion descends to the child whose centroid is nearest the new
//     center (White & Jain's cheapest-centroid rule). Overflowing nodes are
//     split by the configured SsTreeSplitPolicy, subject to the options'
//     minimum fill ratio.
//   * Optional extras beyond White & Jain: SS+-style 2-means splits,
//     Welzl min-ball node bounds, STR bulk loading, deletion with
//     underflow dissolution, and binary persistence.

#ifndef HYPERDOM_INDEX_SS_TREE_H_
#define HYPERDOM_INDEX_SS_TREE_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"
#include "index/entry.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// SS-tree leaf entries are columnar-store handles.
using SsTreeEntry = StoredEntry;

/// How an overflowing SS-tree node is split.
enum class SsTreeSplitPolicy {
  /// White & Jain's original: cut the highest-variance coordinate at the
  /// position minimizing the two sides' summed variance.
  kVarianceCut,
  /// The SS+-tree refinement (Kurniawati et al. [20]): a 2-means (Lloyd)
  /// clustering of the item centers, seeded with the farthest pair —
  /// splits can be oblique, yielding rounder, tighter child spheres.
  kTwoMeans,
};

/// How a node's bounding sphere is computed.
enum class SsTreeBoundingPolicy {
  /// White & Jain's original: centered at the centroid of the contained
  /// data centers, radius covering everything. O(items) per refresh.
  kCentroid,
  /// Near-minimal enclosing ball (Welzl over the item centers, inflated to
  /// cover the items' extents; geometry/min_ball.h). Tighter regions and
  /// better query pruning for a costlier build.
  kMinBall,
};

/// Tuning options for SsTree.
struct SsTreeOptions {
  /// Maximum entries (leaf) or children (internal) per node. Must be >= 4.
  size_t max_entries = 24;
  /// Minimum fill ratio enforced by splits, in (0, 0.5].
  double min_fill_ratio = 0.4;
  /// Split algorithm; see SsTreeSplitPolicy.
  SsTreeSplitPolicy split_policy = SsTreeSplitPolicy::kVarianceCut;
  /// Bounding-sphere algorithm; see SsTreeBoundingPolicy.
  SsTreeBoundingPolicy bounding_policy = SsTreeBoundingPolicy::kCentroid;
};

/// \brief SS-tree node. Public so that search strategies (query/knn.cc) and
/// tests can traverse the structure; mutation goes through SsTree.
class SsTreeNode {
 public:
  explicit SsTreeNode(bool is_leaf) : is_leaf_(is_leaf) {}

  bool is_leaf() const { return is_leaf_; }
  /// The node's bounding hypersphere (covers every data sphere beneath it).
  const Hypersphere& bounding_sphere() const { return bounding_; }
  /// Leaf payload: store handles, resolved via SsTree::store(). Valid only
  /// when is_leaf().
  const std::vector<SsTreeEntry>& entries() const { return entries_; }
  /// Children; valid only when !is_leaf().
  const std::vector<std::unique_ptr<SsTreeNode>>& children() const {
    return children_;
  }
  /// Number of data entries in this subtree.
  size_t subtree_size() const { return count_; }

 private:
  friend class SsTree;

  bool is_leaf_;
  Hypersphere bounding_;
  std::vector<SsTreeEntry> entries_;
  std::vector<std::unique_ptr<SsTreeNode>> children_;
  /// Sum of data-sphere centers beneath this node (for the centroid).
  Point center_sum_;
  /// Number of data entries beneath this node.
  size_t count_ = 0;
};

/// \brief The SS-tree index.
class SsTree {
 public:
  /// Creates an empty tree for `dim`-dimensional data. `options` validated
  /// lazily on first insert.
  explicit SsTree(size_t dim, SsTreeOptions options = {});

  /// Inserts one hypersphere. Fails on dimension mismatch or bad options.
  /// A mid-insert failure (only reachable via injected faults today) can
  /// leave the tree with the partial update applied; it stays safe to
  /// read, but callers should rebuild before trusting CheckInvariants().
  Status Insert(const Hypersphere& sphere, uint64_t id);

  /// Bulk-loads by repeated insertion (the paper's experiments build the
  /// index once per dataset).
  Status BulkLoad(const std::vector<Hypersphere>& spheres);

  /// \brief Bulk-loads with Sort-Tile-Recursive packing (Leutenegger et
  /// al.): entries are tiled into spatially coherent leaves by recursive
  /// coordinate sorting, then packed bottom-up. Much faster than repeated
  /// insertion and usually tighter. Replaces any previous contents; ids
  /// are positions in `spheres`.
  Status BulkLoadStr(const std::vector<Hypersphere>& spheres);

  /// BulkLoadStr with caller-supplied ids (`ids[i]` tags `spheres[i]`;
  /// sizes must match). The compaction path of the mutable store uses
  /// this to rebuild a fresh tree while preserving the external ids the
  /// rows were inserted under.
  Status BulkLoadStrWithIds(const std::vector<Hypersphere>& spheres,
                            const std::vector<uint64_t>& ids);

  /// \brief Removes the entry with this exact id and sphere. Underflowing
  /// nodes (fewer than 2 items) are dissolved and their residents
  /// re-inserted, so invariants keep holding. NotFound if absent. The
  /// deleted sphere's store slot is abandoned, not reclaimed (the store is
  /// append-only; see storage/sphere_store.h).
  Status Delete(const Hypersphere& sphere, uint64_t id);

  /// Root node; null while the tree is empty.
  const SsTreeNode* root() const { return root_.get(); }

  /// The columnar sphere storage backing every leaf entry. Stable for the
  /// tree's lifetime; grows only under Insert/BulkLoad.
  const SphereStore& store() const { return *store_; }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  const SsTreeOptions& options() const { return options_; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  size_t Height() const;

  /// \brief Validates structural invariants, for tests:
  /// every data sphere is covered by each ancestor's bounding sphere, node
  /// occupancies respect the limits, all leaves at the same depth, and
  /// subtree counts are consistent. Returns the first violation found.
  Status CheckInvariants() const;

  /// \brief Persists the tree to `path` in the compact binary format
  /// described in ss_tree.cc (host endianness; intended for same-machine
  /// caching of expensive builds, not as an interchange format).
  Status Save(const std::string& path) const;

  /// \brief Loads a tree previously written by Save() into `*out`
  /// (replacing its contents). Derived per-node data (centroids, bounding
  /// spheres) is recomputed, so a successful load always satisfies
  /// CheckInvariants(). Reads both the current columnar format (v3) and
  /// the legacy inline-entry format (v2), migrating the latter into a
  /// fresh SphereStore.
  static Status Load(const std::string& path, SsTree* out);

  /// Stream-level Save(): writes the binary format to `out`. Used by the
  /// checksummed snapshot envelope (index/snapshot.h).
  Status Serialize(std::ostream& out) const;

  /// Stream-level Load(): same validation and derived-data rebuild.
  static Status Deserialize(std::istream& in, SsTree* out);

 private:
  Status ValidateOptions() const;
  /// Inserts an already-stored entry (splits, root growth); shared by
  /// Insert() and the orphan-reinsertion path of Delete(), which must not
  /// re-add the sphere to the store.
  Status InsertStored(const SsTreeEntry& entry);
  /// Descends to the leaf chosen by the cheapest-centroid rule, inserts, and
  /// splits overflowing nodes on the way back up.
  Status InsertRecursive(SsTreeNode* node, const SsTreeEntry& entry,
                         std::unique_ptr<SsTreeNode>* split_off);
  /// Recomputes `node`'s bounding sphere from its centroid and children.
  void RefreshBoundingSphere(SsTreeNode* node);
  /// Splits an overflowing node into `*sibling` (the new right half).
  Status SplitNode(SsTreeNode* node, std::unique_ptr<SsTreeNode>* sibling);
  /// Item partition for the split, by the configured policy: returns, for
  /// each item key, whether it goes to the new sibling.
  std::vector<bool> ChoosePartition(const std::vector<Point>& keys) const;
  /// Reads one legacy (v2) inline-entry node record, migrating its spheres
  /// into `store`.
  static Status LoadNodeV2(std::istream& in, size_t dim, size_t max_entries,
                           size_t depth, SphereStore* store,
                           std::unique_ptr<SsTreeNode>* out_node);
  /// Reads one v3 slot-reference node record against a loaded store.
  static Status LoadNodeV3(std::istream& in, const SphereStore& store,
                           size_t max_entries, size_t depth,
                           std::unique_ptr<SsTreeNode>* out_node);
  /// Recursive STR tiler: packs entries[lo, hi) into leaves.
  void StrTile(std::vector<SsTreeEntry>* entries, size_t lo, size_t hi,
               size_t dim_index, size_t leaf_capacity,
               std::vector<std::unique_ptr<SsTreeNode>>* leaves);
  /// Recomputes a node's centroid bookkeeping and bounding sphere from its
  /// current payload (bulk-load/delete helper).
  void RebuildNodeStats(SsTreeNode* node);

  size_t dim_;
  SsTreeOptions options_;
  /// Columnar coordinate arena for every data sphere in the tree. Shared
  /// ownership so query-side result sets can pin it if they ever need to.
  std::shared_ptr<SphereStore> store_;
  std::unique_ptr<SsTreeNode> root_;
  size_t size_ = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_SS_TREE_H_
