// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/m_tree.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "common/fault.h"
#include "index/index_metrics.h"

namespace hyperdom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kCoverageSlack = 1e-7;

// Far-edge distance of a stored data sphere from a point.
double FarEdge(const Point& pivot, const SphereStore& store,
               const MTreeEntry& entry) {
  return DistSpan(pivot.data(), store.center(entry.slot), pivot.size()) +
         store.radius(entry.slot);
}

// Far-edge distance of a child region from a point.
double FarEdge(const Point& pivot, const MTreeNode& child) {
  return Dist(pivot, child.pivot()) + child.covering_radius();
}

}  // namespace

MTree::MTree(size_t dim, MTreeOptions options)
    : dim_(dim), options_(options),
      store_(std::make_shared<SphereStore>(dim)) {}

Status MTree::ValidateOptions() const {
  if (options_.max_entries < 4) {
    return Status::InvalidArgument("MTreeOptions.max_entries must be >= 4");
  }
  return Status::OK();
}

Status MTree::Insert(const Hypersphere& sphere, uint64_t id) {
  HYPERDOM_RETURN_NOT_OK(ValidateOptions());
  if (sphere.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch: tree is " +
                                   std::to_string(dim_) + "-d, sphere is " +
                                   std::to_string(sphere.dim()) + "-d");
  }
  HYPERDOM_FAULT_POINT("m_tree/insert");
  if (root_ == nullptr) {
    root_ = std::make_unique<MTreeNode>(/*is_leaf=*/true);
    root_->pivot_ = sphere.center();
  }
  const uint32_t slot = store_->Add(sphere);
  std::unique_ptr<MTreeNode> split_off;
  InsertRecursive(root_.get(), MTreeEntry{slot, id}, &split_off);
  if (split_off != nullptr) {
    auto new_root = std::make_unique<MTreeNode>(/*is_leaf=*/false);
    new_root->pivot_ = root_->pivot_;
    new_root->children_.push_back(std::move(root_));
    new_root->children_.push_back(std::move(split_off));
    RefreshCoveringRadius(new_root.get());
    root_ = std::move(new_root);
  }
  ++size_;
  return Status::OK();
}

Status MTree::BulkLoad(const std::vector<Hypersphere>& spheres) {
  IndexBuildRecorder recorder("m", "bulk_load");
  for (size_t i = 0; i < spheres.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(Insert(spheres[i], static_cast<uint64_t>(i)));
  }
  recorder.Finish(size_);
  return Status::OK();
}

void MTree::InsertRecursive(MTreeNode* node, const MTreeEntry& entry,
                            std::unique_ptr<MTreeNode>* split_off) {
  if (node->is_leaf_) {
    node->entries_.push_back(entry);
  } else {
    // Prefer a child already covering the new center (nearest pivot among
    // those); otherwise the child needing the least radius enlargement.
    const double* entry_center = store_->center(entry.slot);
    const double entry_radius = store_->radius(entry.slot);
    MTreeNode* best_covering = nullptr;
    double best_covering_dist = kInf;
    MTreeNode* best_enlarging = nullptr;
    double best_enlargement = kInf;
    for (const auto& child : node->children_) {
      const double d = DistSpan(child->pivot_.data(), entry_center, dim_);
      const double needed = d + entry_radius;
      if (needed <= child->covering_radius_) {
        if (d < best_covering_dist) {
          best_covering_dist = d;
          best_covering = child.get();
        }
      } else if (best_covering == nullptr) {
        const double enlargement = needed - child->covering_radius_;
        if (enlargement < best_enlargement) {
          best_enlargement = enlargement;
          best_enlarging = child.get();
        }
      }
    }
    MTreeNode* chosen =
        best_covering != nullptr ? best_covering : best_enlarging;
    std::unique_ptr<MTreeNode> child_split;
    InsertRecursive(chosen, entry, &child_split);
    if (child_split != nullptr) {
      node->children_.push_back(std::move(child_split));
    }
  }

  const size_t occupancy =
      node->is_leaf_ ? node->entries_.size() : node->children_.size();
  if (occupancy > options_.max_entries) {
    *split_off = SplitNode(node);
  }
  RefreshCoveringRadius(node);
}

void MTree::RefreshCoveringRadius(MTreeNode* node) const {
  double radius = 0.0;
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      radius = std::max(radius, FarEdge(node->pivot_, *store_, e));
    }
  } else {
    for (const auto& child : node->children_) {
      radius = std::max(radius, FarEdge(node->pivot_, *child));
    }
  }
  node->covering_radius_ = radius;
}

std::unique_ptr<MTreeNode> MTree::SplitNode(MTreeNode* node) const {
  // Promotion: the two item centers farthest apart (exact pairwise scan
  // over <= max_entries + 1 items).
  std::vector<Point> keys;
  const size_t n =
      node->is_leaf_ ? node->entries_.size() : node->children_.size();
  keys.reserve(n);
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      const double* c = store_->center(e.slot);
      keys.emplace_back(c, c + dim_);
    }
  } else {
    for (const auto& child : node->children_) keys.push_back(child->pivot_);
  }
  size_t pa = 0, pb = 1;
  double best = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = SquaredDist(keys[i], keys[j]);
      if (d > best) {
        best = d;
        pa = i;
        pb = j;
      }
    }
  }

  // Generalized-hyperplane partition by the nearer promoted pivot, with a
  // min-fill backstop: if one side ends underfull, move its nearest
  // borderline items across (keeps non-root occupancy >= 2).
  auto sibling = std::make_unique<MTreeNode>(node->is_leaf_);
  std::vector<size_t> to_node, to_sibling;
  for (size_t i = 0; i < n; ++i) {
    const double da = SquaredDist(keys[i], keys[pa]);
    const double db = SquaredDist(keys[i], keys[pb]);
    (da <= db ? to_node : to_sibling).push_back(i);
  }
  auto rebalance = [&](std::vector<size_t>* small, std::vector<size_t>* big) {
    while (small->size() < 2 && big->size() > 2) {
      small->push_back(big->back());
      big->pop_back();
    }
  };
  rebalance(&to_node, &to_sibling);
  rebalance(&to_sibling, &to_node);

  node->pivot_ = keys[pa];
  sibling->pivot_ = keys[pb];
  if (node->is_leaf_) {
    std::vector<MTreeEntry> mine, theirs;
    for (size_t i : to_node) mine.push_back(node->entries_[i]);
    for (size_t i : to_sibling) theirs.push_back(node->entries_[i]);
    node->entries_ = std::move(mine);
    sibling->entries_ = std::move(theirs);
  } else {
    std::vector<std::unique_ptr<MTreeNode>> mine, theirs;
    for (size_t i : to_node) mine.push_back(std::move(node->children_[i]));
    for (size_t i : to_sibling) {
      theirs.push_back(std::move(node->children_[i]));
    }
    node->children_ = std::move(mine);
    sibling->children_ = std::move(theirs);
  }
  RefreshCoveringRadius(node);
  RefreshCoveringRadius(sibling.get());
  return sibling;
}

size_t MTree::Height() const {
  size_t h = 0;
  for (const MTreeNode* node = root_.get(); node != nullptr;
       node = node->is_leaf() ? nullptr : node->children().front().get()) {
    ++h;
  }
  return h;
}

namespace {

Status CheckNode(const MTreeNode* node, const SphereStore& store,
                 const MTreeOptions& options, bool is_root, size_t depth,
                 size_t* leaf_depth, size_t* entry_total) {
  const double slack =
      kCoverageSlack * (1.0 + node->covering_radius() + Norm(node->pivot()));
  const size_t occupancy =
      node->is_leaf() ? node->entries().size() : node->children().size();
  if (occupancy > options.max_entries) {
    return Status::Corruption("node occupancy exceeds max_entries");
  }
  if (!is_root && occupancy < 2) {
    return Status::Corruption("non-root node with fewer than 2 items");
  }

  if (node->is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    for (const auto& e : node->entries()) {
      if (e.slot >= store.size()) {
        return Status::Corruption("entry slot out of store range");
      }
      if (FarEdge(node->pivot(), store, e) >
          node->covering_radius() + slack) {
        return Status::Corruption("leaf entry escapes covering radius");
      }
    }
    *entry_total += node->entries().size();
    return Status::OK();
  }

  size_t child_total = 0;
  for (const auto& child : node->children()) {
    if (FarEdge(node->pivot(), *child) > node->covering_radius() + slack) {
      return Status::Corruption("child region escapes covering radius");
    }
    size_t child_entries = 0;
    HYPERDOM_RETURN_NOT_OK(CheckNode(child.get(), store, options,
                                     /*is_root=*/false, depth + 1, leaf_depth,
                                     &child_entries));
    child_total += child_entries;
  }
  *entry_total += child_total;
  return Status::OK();
}

}  // namespace

Status MTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty root but nonzero size");
  }
  size_t leaf_depth = 0;
  size_t entry_total = 0;
  HYPERDOM_RETURN_NOT_OK(CheckNode(root_.get(), *store_, options_,
                                   /*is_root=*/true,
                                   /*depth=*/1, &leaf_depth, &entry_total));
  if (entry_total != size_) {
    return Status::Corruption("total entry count mismatch: tree says " +
                              std::to_string(size_) + ", walk found " +
                              std::to_string(entry_total));
  }
  return Status::OK();
}

}  // namespace hyperdom
