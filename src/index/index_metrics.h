// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Per-build observability for the four index structures: an
// IndexBuildRecorder opens an "index/build" span, times the build, and on
// Finish() publishes hyperdom_index_builds_total{index=},
// hyperdom_index_build_duration_ns{index=} and the
// hyperdom_index_size_entries{index=} gauge. Builds that fail (Status
// error) record the span but not the success counters.
//
// With HYPERDOM_OBSERVABILITY=OFF the recorder is an empty object and
// every method is an inline no-op.

#ifndef HYPERDOM_INDEX_INDEX_METRICS_H_
#define HYPERDOM_INDEX_INDEX_METRICS_H_

#include <cstddef>
#include <string_view>

#include "obs/trace.h"

namespace hyperdom {

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)

/// \brief RAII per-build instrumentation.
///
/// `index_tag` labels the metrics ("ss"|"rstar"|"m"|"vp"); `method`
/// distinguishes build strategies in the span ("bulk_load", "str_pack",
/// "build").
class IndexBuildRecorder {
 public:
  IndexBuildRecorder(std::string_view index_tag, std::string_view method);

  /// Publishes the success counters; call once when the build succeeded.
  void Finish(size_t entries);

 private:
  std::string_view tag_;
  int64_t start_ns_ = 0;
  obs::Span span_;
};

#else

class IndexBuildRecorder {
 public:
  IndexBuildRecorder(std::string_view, std::string_view) {}
  void Finish(size_t) {}
};

#endif  // HYPERDOM_OBSERVABILITY_ENABLED

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_INDEX_METRICS_H_
