// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Crash-safe snapshot rotation: a directory of numbered snapshot
// generations plus a CURRENT manifest naming the newest good one.
//
//   <dir>/<base>.<seq>.hdsp   checksummed snapshot envelope (index/snapshot.h)
//   <dir>/CURRENT             one line: the generation filename
//
// Persist(N+1) while generation N serves:
//
//   1. write <base>.<N+1>.hdsp     (tmp+rename inside SaveSnapshot)
//   2.   -- crash window: "snapshot/rotate" fault site --
//   3. write CURRENT               (tmp+rename)
//   4. prune generations older than N
//
// A failure at any step leaves CURRENT pointing at generation N, which is
// still on disk and still serving — the new generation is removed on a
// step-2 failure so no orphan accumulates. LoadLatest() follows CURRENT;
// if the manifest or the generation it names is missing or corrupt, it
// falls back to scanning the directory for the newest generation that
// verifies, so a torn rotation never takes the service down.

#ifndef HYPERDOM_INDEX_ROTATION_H_
#define HYPERDOM_INDEX_ROTATION_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hyperdom {

class SsTree;

/// \brief Manages the numbered snapshot generations of one SS-tree in one
/// directory. Not thread-safe; callers serialize Persist (the server's
/// snapshot loop is single-threaded).
class SnapshotRotator {
 public:
  /// Generations live in `dir` as `<base_name>.<seq>.hdsp`. The directory
  /// must exist.
  explicit SnapshotRotator(std::string dir, std::string base_name = "store");

  /// \brief Writes the next generation and swings CURRENT to it, pruning
  /// generations older than the previous one (the last two are kept so a
  /// torn CURRENT can still fall back). On failure the previous
  /// generation keeps serving and no partial files are left behind.
  Status Persist(const SsTree& tree, uint64_t* published_seq = nullptr);

  /// \brief Loads the newest loadable generation into `*out`: the one
  /// CURRENT names, or — when the manifest is missing/corrupt or its
  /// generation fails verification — the newest generation on disk that
  /// loads cleanly (counted under op=rotate_fallback).
  Status LoadLatest(SsTree* out, uint64_t* seq = nullptr) const;

  /// The sequence CURRENT names; 0 when there is no manifest yet.
  uint64_t CurrentSeq() const;

  std::string GenerationPath(uint64_t seq) const;
  std::string CurrentPath() const;
  const std::string& dir() const { return dir_; }

 private:
  /// Parses `<base>.<seq>.hdsp`; false when `name` is not a generation.
  bool ParseGeneration(const std::string& name, uint64_t* seq) const;
  /// Best-effort unlink of generations <= `keep_before` minus the last
  /// two.
  void Prune(uint64_t newest) const;

  std::string dir_;
  std::string base_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_ROTATION_H_
