// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Crash-safe, checksummed index snapshots. A snapshot wraps an index's
// binary serialization (SsTree::Serialize / VpTree::Serialize) in a small
// envelope —
//
//   magic "HDSP" | u32 version | u32 kind | u64 payload_size |
//   u32 payload_crc32 | payload bytes
//
// — so that a restart can detect truncation and bit rot before trusting
// the tree structure, and fall back to an O(n log n) rebuild from the raw
// data instead of serving queries off a corrupt index. Saves are atomic at
// the filesystem level: the envelope is written to `<path>.tmp` and
// renamed into place, so a crash mid-write leaves either the previous
// snapshot or none, never a half-written one.
//
// Like the underlying tree formats, the envelope is host-endian — a
// same-machine cache, not an interchange format.

#ifndef HYPERDOM_INDEX_SNAPSHOT_H_
#define HYPERDOM_INDEX_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"

namespace hyperdom {

class SsTree;
class VpTree;

/// Which index structure a snapshot holds.
enum class SnapshotKind : uint32_t {
  kSsTree = 1,
  kVpTree = 2,
};

/// "ss-tree" / "vp-tree".
std::string_view SnapshotKindName(SnapshotKind kind);

/// Envelope facts reported by VerifySnapshot().
struct SnapshotInfo {
  SnapshotKind kind = SnapshotKind::kSsTree;
  uint32_t version = 0;
  uint64_t payload_size = 0;
  /// True iff the payload bytes on disk match the stored checksum.
  bool crc_ok = false;
};

/// \name Save / load, per index type.
/// Load* verifies the checksum before deserializing and reports
/// kCorruption on any mismatch, truncation, or structural violation;
/// a failed load leaves `*out` untouched.
/// @{
Status SaveSnapshot(const SsTree& tree, const std::string& path);
Status SaveSnapshot(const VpTree& tree, const std::string& path);
Status LoadSnapshot(const std::string& path, SsTree* out);
Status LoadSnapshot(const std::string& path, VpTree* out);
/// @}

/// Reads and checks the envelope (magic, version, kind, size, checksum)
/// without deserializing the payload into a tree.
Result<SnapshotInfo> VerifySnapshot(const std::string& path);

/// How LoadSnapshotOrRebuild obtained its tree.
enum class SnapshotLoadOutcome {
  kLoaded,   ///< the snapshot verified and deserialized cleanly
  kRebuilt,  ///< the snapshot was missing/corrupt; rebuilt from `data`
};

/// \name Load with rebuild fallback.
/// Tries LoadSnapshot(); on any failure rebuilds the index from `data`
/// (STR bulk load for the SS-tree, Build() for the VP-tree) and reports
/// kRebuilt. Fails only when the rebuild itself fails (e.g. empty `data`
/// after a corrupt snapshot still yields an empty, valid tree). The load
/// error that triggered a rebuild is returned through `load_error` when
/// non-null.
/// @{
Status LoadSnapshotOrRebuild(const std::string& path,
                             const std::vector<Hypersphere>& data,
                             SsTree* out, SnapshotLoadOutcome* outcome,
                             Status* load_error = nullptr);
Status LoadSnapshotOrRebuild(const std::string& path,
                             const std::vector<Hypersphere>& data,
                             VpTree* out, SnapshotLoadOutcome* outcome,
                             Status* load_error = nullptr);
/// @}

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_SNAPSHOT_H_
