// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/snapshot.h"

#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/io.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

namespace {

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
int64_t SnapshotNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif

// Publishes one snapshot operation: counts it under op=save|load and
// result=ok|error, and records the latency. Snapshot ops are rare, so the
// per-call registry lookup is fine.
[[maybe_unused]] void RecordSnapshotOp([[maybe_unused]] const char* op,
                      [[maybe_unused]] bool ok,
                      [[maybe_unused]] uint64_t elapsed_ns) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  auto& reg = obs::MetricsRegistry::Instance();
  std::string name(obs::kSnapshotOps.name);
  name.append("{op=\"").append(op);
  name.append("\",result=\"").append(ok ? "ok" : "error").append("\"}");
  reg.GetCounter(std::move(name), obs::kSnapshotOps.help)->Add(1);
  reg.GetHistogram(obs::kSnapshotDuration, "op", op)->Record(elapsed_ns);
#endif
}

constexpr char kSnapMagic[4] = {'H', 'D', 'S', 'P'};
// v1 wrapped AoS tree payloads (inline per-entry spheres); v2 wraps
// store-backed payloads (HDSS v3 / HDVP v2). Both are readable: the inner
// tree deserializers are version-gated and migrate v1-era payloads into a
// SphereStore on load.
constexpr uint32_t kSnapVersion = 2;
constexpr uint32_t kSnapLegacyVersion = 1;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ConsumePod(std::string_view* in, T* value) {
  if (in->size() < sizeof(T)) return false;
  std::memcpy(value, in->data(), sizeof(T));
  in->remove_prefix(sizeof(T));
  return true;
}

// Assembles envelope + payload in memory, writes it to `<path>.tmp` via the
// hardened EINTR/partial-write loop in common/io, then renames into place,
// so an interrupted save never replaces a good snapshot with a torn one.
Status WriteEnvelope(const std::string& path, SnapshotKind kind,
                     const std::string& payload) {
  HYPERDOM_FAULT_POINT("snapshot/write");
  std::string body;
  body.reserve(sizeof(kSnapMagic) + 3 * sizeof(uint32_t) + sizeof(uint64_t) +
               payload.size());
  body.append(kSnapMagic, sizeof(kSnapMagic));
  AppendPod(&body, kSnapVersion);
  AppendPod(&body, static_cast<uint32_t>(kind));
  AppendPod(&body, static_cast<uint64_t>(payload.size()));
  AppendPod(&body, Crc32Of(payload.data(), payload.size()));
  body += payload;
  const std::string tmp = path + ".tmp";
  Status written = WriteStringToFile(tmp, body);
  if (!written.ok()) {
    (void)RemoveFile(tmp);  // best-effort cleanup; report the write error
    return written;
  }
  Status renamed = RenameFile(tmp, path);
  if (!renamed.ok()) {
    (void)RemoveFile(tmp);
    return renamed;
  }
  return Status::OK();
}

// Reads and validates the envelope; fills `*info` and, when the header is
// sound, the payload bytes. info->crc_ok reports the checksum comparison.
// The whole file is read first (bounded by the actual file size, so a
// corrupted size field still cannot drive a huge allocation), then the
// declared payload size is checked against the bytes actually present.
Status ReadEnvelope(const std::string& path, SnapshotInfo* info,
                    std::string* payload) {
  HYPERDOM_FAULT_POINT("snapshot/read");
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  std::string_view in(*file);
  char magic[4];
  if (!ConsumePod(&in, &magic) ||
      std::memcmp(magic, kSnapMagic, sizeof(kSnapMagic)) != 0) {
    return Status::Corruption("bad magic: not a hyperdom snapshot");
  }
  uint32_t version = 0;
  if (!ConsumePod(&in, &version)) return Status::Corruption("truncated header");
  if (version != kSnapVersion && version != kSnapLegacyVersion) {
    return Status::NotSupported("unsupported snapshot version " +
                                std::to_string(version));
  }
  uint32_t kind = 0;
  uint64_t payload_size = 0;
  uint32_t crc = 0;
  if (!ConsumePod(&in, &kind) || !ConsumePod(&in, &payload_size) ||
      !ConsumePod(&in, &crc)) {
    return Status::Corruption("truncated header");
  }
  if (kind != static_cast<uint32_t>(SnapshotKind::kSsTree) &&
      kind != static_cast<uint32_t>(SnapshotKind::kVpTree)) {
    return Status::Corruption("unknown snapshot kind " +
                              std::to_string(kind));
  }
  info->kind = static_cast<SnapshotKind>(kind);
  info->version = version;
  info->payload_size = payload_size;
  if (in.size() != payload_size) {
    return Status::Corruption("payload size mismatch: header says " +
                              std::to_string(payload_size) + " bytes");
  }
  info->crc_ok = Crc32Of(in.data(), in.size()) == crc;
  payload->assign(in.data(), in.size());
  return Status::OK();
}

// Shared load path: envelope checks, then the tree's own Deserialize.
template <typename Tree>
Status LoadSnapshotImpl(const std::string& path, SnapshotKind expected,
                        Tree* out) {
  HYPERDOM_SPAN(span, "snapshot/load");
  HYPERDOM_SPAN_ANNOTATE(span, "path", path);
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  const int64_t start_ns = SnapshotNowNs();
#endif
  auto finish = [&](Status status) {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
    RecordSnapshotOp("load", status.ok(),
                     static_cast<uint64_t>(SnapshotNowNs() - start_ns));
#endif
    return status;
  };
  SnapshotInfo info;
  std::string payload;
  Status read = ReadEnvelope(path, &info, &payload);
  if (!read.ok()) return finish(std::move(read));
  if (info.kind != expected) {
    return finish(Status::InvalidArgument(
        "snapshot holds a " + std::string(SnapshotKindName(info.kind)) +
        ", expected a " + std::string(SnapshotKindName(expected))));
  }
  if (!info.crc_ok) {
    return finish(Status::Corruption("snapshot checksum mismatch: " + path));
  }
  std::istringstream in(std::move(payload), std::ios::binary);
  return finish(Tree::Deserialize(in, out));
}

template <typename Tree>
Status SaveSnapshotImpl(const Tree& tree, SnapshotKind kind,
                        const std::string& path) {
  HYPERDOM_SPAN(span, "snapshot/save");
  HYPERDOM_SPAN_ANNOTATE(span, "path", path);
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  const int64_t start_ns = SnapshotNowNs();
#endif
  std::ostringstream payload(std::ios::binary);
  Status status = tree.Serialize(payload);
  if (status.ok()) status = WriteEnvelope(path, kind, payload.str());
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  RecordSnapshotOp("save", status.ok(),
                   static_cast<uint64_t>(SnapshotNowNs() - start_ns));
#endif
  return status;
}

}  // namespace

std::string_view SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kSsTree:
      return "ss-tree";
    case SnapshotKind::kVpTree:
      return "vp-tree";
  }
  return "unknown";
}

Status SaveSnapshot(const SsTree& tree, const std::string& path) {
  return SaveSnapshotImpl(tree, SnapshotKind::kSsTree, path);
}

Status SaveSnapshot(const VpTree& tree, const std::string& path) {
  return SaveSnapshotImpl(tree, SnapshotKind::kVpTree, path);
}

Status LoadSnapshot(const std::string& path, SsTree* out) {
  return LoadSnapshotImpl(path, SnapshotKind::kSsTree, out);
}

Status LoadSnapshot(const std::string& path, VpTree* out) {
  return LoadSnapshotImpl(path, SnapshotKind::kVpTree, out);
}

Result<SnapshotInfo> VerifySnapshot(const std::string& path) {
  SnapshotInfo info;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(ReadEnvelope(path, &info, &payload));
  return info;
}

Status LoadSnapshotOrRebuild(const std::string& path,
                             const std::vector<Hypersphere>& data,
                             SsTree* out, SnapshotLoadOutcome* outcome,
                             Status* load_error) {
  HYPERDOM_SPAN(span, "snapshot/load_or_rebuild");
  const Status loaded = LoadSnapshot(path, out);
  if (load_error != nullptr) *load_error = loaded;
  if (loaded.ok()) {
    *outcome = SnapshotLoadOutcome::kLoaded;
    return Status::OK();
  }
  // Falling back to an O(n log n) rebuild: count it (an operator alert —
  // the snapshot on disk is missing or corrupt) and record why.
  HYPERDOM_COUNTER_INC(obs::kSnapshotRebuildFallback);
  HYPERDOM_SPAN_ANNOTATE(span, "rebuild_fallback", loaded.message());
  SsTree rebuilt(data.empty() ? out->dim() : data.front().dim(),
                 out->options());
  HYPERDOM_RETURN_NOT_OK(rebuilt.BulkLoadStr(data));
  *out = std::move(rebuilt);
  *outcome = SnapshotLoadOutcome::kRebuilt;
  return Status::OK();
}

Status LoadSnapshotOrRebuild(const std::string& path,
                             const std::vector<Hypersphere>& data,
                             VpTree* out, SnapshotLoadOutcome* outcome,
                             Status* load_error) {
  HYPERDOM_SPAN(span, "snapshot/load_or_rebuild");
  const Status loaded = LoadSnapshot(path, out);
  if (load_error != nullptr) *load_error = loaded;
  if (loaded.ok()) {
    *outcome = SnapshotLoadOutcome::kLoaded;
    return Status::OK();
  }
  HYPERDOM_COUNTER_INC(obs::kSnapshotRebuildFallback);
  HYPERDOM_SPAN_ANNOTATE(span, "rebuild_fallback", loaded.message());
  VpTree rebuilt(out->options());
  HYPERDOM_RETURN_NOT_OK(rebuilt.Build(data));
  *out = std::move(rebuilt);
  *outcome = SnapshotLoadOutcome::kRebuilt;
  return Status::OK();
}

}  // namespace hyperdom
