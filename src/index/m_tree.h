// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// An M-tree (Ciaccia, Patella & Zezula, VLDB 1997 — reference [9] of the
// paper) over hypersphere data. Nodes are covering balls around a routing
// center: each node keeps a pivot point and a covering radius no smaller
// than the far edge of every data sphere beneath it, so
//   MinDist(subtree, Sq) >= max(0, Dist(pivot, cq) - covering - rq).
//
// Implementation summary:
//   * Insertion descends into the child whose pivot is nearest the new
//     center among children that already cover it; if none covers it, the
//     child needing the least covering-radius enlargement (the classic
//     M-tree heuristic).
//   * Splits promote the two items farthest apart (exact scan over the
//     <= max_entries+1 items, the M_LB_DIST-style promotion) and partition
//     the rest by the nearer promoted pivot (generalized hyperplane).
//   * Covering radii are recomputed exactly along the insertion path.

#ifndef HYPERDOM_INDEX_M_TREE_H_
#define HYPERDOM_INDEX_M_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "index/entry.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// M-tree leaf entries are columnar-store handles.
using MTreeEntry = StoredEntry;

/// Tuning options for MTree.
struct MTreeOptions {
  /// Maximum entries (leaf) or children (internal) per node. Must be >= 4.
  size_t max_entries = 24;
};

/// \brief M-tree node; public for traversal by searchers and tests.
class MTreeNode {
 public:
  explicit MTreeNode(bool is_leaf) : is_leaf_(is_leaf) {}

  bool is_leaf() const { return is_leaf_; }
  /// The routing center.
  const Point& pivot() const { return pivot_; }
  /// Covering radius: every data sphere beneath lies within this distance
  /// of the pivot (sphere far edge included).
  double covering_radius() const { return covering_radius_; }
  /// The node region as a hypersphere (pivot, covering radius).
  Hypersphere bounding_sphere() const {
    return Hypersphere(pivot_, covering_radius_);
  }
  /// Leaf payload: store handles, resolved via MTree::store(). Valid only
  /// when is_leaf().
  const std::vector<MTreeEntry>& entries() const { return entries_; }
  /// Children; valid only when !is_leaf().
  const std::vector<std::unique_ptr<MTreeNode>>& children() const {
    return children_;
  }

 private:
  friend class MTree;

  bool is_leaf_;
  Point pivot_;
  double covering_radius_ = 0.0;
  std::vector<MTreeEntry> entries_;
  std::vector<std::unique_ptr<MTreeNode>> children_;
};

/// \brief The M-tree index.
class MTree {
 public:
  explicit MTree(size_t dim, MTreeOptions options = {});

  /// Inserts one hypersphere. Fails on dimension mismatch or bad options.
  Status Insert(const Hypersphere& sphere, uint64_t id);

  /// Bulk-loads by repeated insertion; ids are positions in `spheres`.
  Status BulkLoad(const std::vector<Hypersphere>& spheres);

  const MTreeNode* root() const { return root_.get(); }

  /// The columnar sphere storage backing every leaf entry.
  const SphereStore& store() const { return *store_; }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  const MTreeOptions& options() const { return options_; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  size_t Height() const;

  /// \brief Validates structural invariants for tests: covering radii
  /// really cover, occupancies respect limits, leaves share one depth, and
  /// the entry count matches size().
  Status CheckInvariants() const;

 private:
  Status ValidateOptions() const;
  void InsertRecursive(MTreeNode* node, const MTreeEntry& entry,
                       std::unique_ptr<MTreeNode>* split_off);
  /// Recomputes the node's covering radius (pivot unchanged).
  void RefreshCoveringRadius(MTreeNode* node) const;
  /// Splits an overflowing node; may change the node's pivot. Returns the
  /// new sibling.
  std::unique_ptr<MTreeNode> SplitNode(MTreeNode* node) const;

  size_t dim_;
  MTreeOptions options_;
  /// Columnar coordinate arena for every data sphere in the tree.
  std::shared_ptr<SphereStore> store_;
  std::unique_ptr<MTreeNode> root_;
  size_t size_ = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_M_TREE_H_
