// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Online mutability over the SS-tree: live inserts and deletes while
// queries run, with epoch-protected snapshot isolation.
//
// Design (single writer, many readers):
//
//   * The index state is an immutable TreeVersion published through one
//     atomic pointer. A version is {base, delta, watermarks}: `base` is a
//     bulk-loaded SsTree plus a per-slot `deleted_at` array; `delta` is an
//     append-only log of inserted rows in pre-reserved SphereStore slabs
//     (rows never move once written) with its own `deleted_at`.
//   * Every mutation appends or tombstones, then publishes a fresh
//     TreeVersion with version V+1. Tombstones are version-valued: a row
//     with deleted_at = D is visible to a reader pinned at version V iff
//     D == 0 || D > V — so each published version is a consistent prefix
//     of the mutation log, and a pinned reader's answer set never changes
//     underneath it.
//   * Readers pin via MutableSsTree::Pin(): an epoch guard
//     (storage/epoch.h) plus the head TreeVersion pointer. Superseded
//     versions are retired to the epoch manager and freed only after
//     every reader that could hold them has unpinned.
//   * Memory safety of concurrent append: delta slabs are fixed-capacity
//     (SphereStore::Reserve at construction), so the writer's appends
//     never move rows a reader can see; readers only touch rows below
//     their version's `delta_rows` watermark, all written before that
//     version was release-published.
//   * Compaction rewrites the live rows into a freshly bulk-loaded base
//     (preserving external ids) and an empty delta, then publishes it
//     like any other version; readers pinned on the old version keep
//     traversing it until the grace period ends. While a compaction is
//     building, mutations are rejected with kConflict — the store's data
//     is immutable for the duration, so the build needs no locks.
//
// Failure semantics: the `store/insert` and `store/compact` fault sites
// fire before any state is mutated or published, so an injected failure
// always leaves the previous version intact and serving.

#ifndef HYPERDOM_INDEX_MUTABLE_SS_TREE_H_
#define HYPERDOM_INDEX_MUTABLE_SS_TREE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"
#include "index/overlay.h"
#include "index/ss_tree.h"
#include "storage/epoch.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// Tuning for MutableSsTree.
struct MutableSsTreeOptions {
  /// Options for the bulk-loaded base trees (Build and compaction).
  SsTreeOptions tree;
  /// Auto-compaction triggers once the delta holds at least this many
  /// rows...
  size_t compact_min_delta = 4096;
  /// ...or once tombstones exceed this fraction of live rows (whichever
  /// comes first).
  double compact_tombstone_ratio = 0.25;
  /// Master switch for auto-compaction after mutations. Explicit
  /// Compact() calls always work.
  bool auto_compact = true;
  /// Test hook: runs inside Compact() after the live rows are gathered
  /// and before the new version is built — the window in which
  /// concurrent mutations observe kConflict deterministically.
  std::function<void()> compaction_hook;
};

/// \brief An SS-tree supporting live inserts/deletes concurrent with
/// queries. Writer calls (Insert/Remove/Compact/Build/Freeze/Thaw) are
/// serialized internally and safe from any thread; readers use Pin().
class MutableSsTree {
 public:
  explicit MutableSsTree(size_t dim, MutableSsTreeOptions options = {});
  ~MutableSsTree();

  MutableSsTree(const MutableSsTree&) = delete;
  MutableSsTree& operator=(const MutableSsTree&) = delete;

  /// \brief A pinned, immutable view of the index at one version.
  /// Holds an epoch guard: the viewed memory stays alive until the view
  /// is destroyed, and the answer set at this version never changes.
  /// Implements SearchOverlay so the query drivers can skip tombstoned
  /// base slots and score delta rows.
  class ReadView : public SearchOverlay {
   public:
    ReadView(const ReadView&) = delete;
    ReadView& operator=(const ReadView&) = delete;

    /// The mutation-log version this view is pinned at.
    uint64_t version() const;
    /// The immutable base tree (traverse with the overlay).
    const SsTree& tree() const;
    /// Visible rows at this version (base + delta, minus tombstones).
    size_t live_size() const;
    /// Rows in the delta log covered by this view.
    size_t delta_rows() const;

    /// Materializes every visible row (compaction, persistence, and the
    /// torture test's serial reference all consume this).
    void CollectLive(std::vector<Hypersphere>* spheres,
                     std::vector<uint64_t>* ids) const;

    // SearchOverlay:
    bool VisibleBase(uint32_t slot) const override;
    void ForEachExtra(
        const std::function<void(const EntryView&)>& fn) const override;
    /// Block form for batched scoring: walks the delta slabs directly
    /// (one visibility load per row, no per-row slab Locate) and hands
    /// the visible rows to `fn` as a single block, in ForEachExtra order.
    void ForEachExtraBlock(const std::function<void(const EntryView*, size_t)>&
                               fn) const override;

   private:
    friend class MutableSsTree;
    explicit ReadView(const MutableSsTree* tree);

    EpochManager::Guard guard_;  // pinned before head_ is loaded
    const void* v_;              // the pinned TreeVersion
  };

  /// Pins the current version. Cheap (one CAS + one load); hold for the
  /// duration of a query, not longer — pinned views delay reclamation.
  ReadView Pin() const;

  /// \brief Replaces the contents with a bulk-loaded base (empty delta).
  /// `ids[i]` tags `spheres[i]`; ids must be unique. kConflict while
  /// frozen or compacting.
  Status Build(const std::vector<Hypersphere>& spheres,
               const std::vector<uint64_t>& ids);

  /// \brief Rebuilds from an immutable SsTree's rows (snapshot restore
  /// path), preserving the entry ids stored in the tree.
  Status BuildFromTree(const SsTree& tree);

  /// \brief Inserts one row under `id`. InvalidArgument on dimension
  /// mismatch or a duplicate live id; kConflict while frozen or
  /// compacting. On success the row is visible to every view pinned
  /// afterwards, and to none pinned before.
  Status Insert(const Hypersphere& sphere, uint64_t id);

  /// \brief Deletes the live row under `id`. NotFound if absent;
  /// kConflict while frozen or compacting. Publishes a version-valued
  /// tombstone — already-pinned views still see the row.
  Status Remove(uint64_t id);

  /// \brief Rewrites the live rows into a fresh bulk-loaded base and an
  /// empty delta. Concurrent mutations are rejected with kConflict while
  /// the rewrite runs; concurrent queries are unaffected. kConflict if
  /// frozen or if another compaction is already running.
  Status Compact();

  /// Enters drain mode: every subsequent mutation returns kConflict
  /// until Thaw(). Queries keep working. Idempotent.
  void Freeze();
  void Thaw();
  bool frozen() const;

  size_t dim() const { return dim_; }
  /// Current published mutation-log version (0 for a fresh empty tree).
  uint64_t version() const;
  /// Visible rows at the current version.
  size_t live_size() const;
  /// Tombstoned rows awaiting compaction at the current version.
  size_t tombstones() const;
  /// Rows in the current delta log (live + tombstoned).
  size_t delta_rows() const;

  const MutableSsTreeOptions& options() const { return options_; }

 private:
  struct DeltaSlab;
  struct DeltaLog;
  struct BaseState;
  struct TreeVersion;

  /// Writer-side location of a live id.
  struct Loc {
    bool in_delta = false;
    uint64_t index = 0;  // base slot or delta row
  };

  Status InsertLocked(const Hypersphere& sphere, uint64_t id);
  Status RemoveLocked(uint64_t id);
  /// The build phase of Compact(); runs with compacting_ set and the
  /// writer mutex released.
  Status CompactBuild();
  /// Swaps in `next` as the published head and retires the old version.
  /// Caller holds writer_mu_.
  void PublishLocked(const TreeVersion* next);
  /// Refreshes the hyperdom_store_* gauges from `v`.
  static void UpdateGauges(const TreeVersion& v);
  /// Whether the current version has outgrown the compaction thresholds.
  bool ShouldAutoCompact() const;

  const size_t dim_;
  const MutableSsTreeOptions options_;

  /// The published version; readers load it under an epoch guard,
  /// writers exchange it under writer_mu_ (seq_cst, per the protocol in
  /// storage/epoch.h).
  std::atomic<const TreeVersion*> head_;

  mutable std::mutex writer_mu_;
  /// id -> location of the live row (writer-only bookkeeping).
  std::unordered_map<uint64_t, Loc> locs_;
  /// Set while a compaction build runs (guarded by writer_mu_; the build
  /// itself runs with the mutex released).
  bool compacting_ = false;
  std::atomic<bool> frozen_{false};
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_MUTABLE_SS_TREE_H_
