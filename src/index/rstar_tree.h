// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// An R*-tree (Beckmann et al., SIGMOD 1990) over hypersphere data — the
// rectangle-based counterpart the SS-tree line of work ([31], [20], [18])
// measures itself against, and the natural home of the paper's MBR decision
// criterion [14]. Each data sphere is stored under its minimum bounding
// box; node regions are boxes.
//
// Implementation summary (faithful to the classic algorithm, with one
// simplification noted below):
//   * ChooseSubtree: minimum overlap enlargement when the children are
//     leaves (ties: minimum volume enlargement, then minimum volume);
//     minimum volume enlargement otherwise.
//   * Split: R*-tree topological split — the axis minimizing the summed
//     margins over all distributions, then the distribution minimizing
//     overlap (ties: minimum total volume), with a min-fill constraint.
//   * Forced reinsert: on the first leaf overflow per insertion, the 30%
//     of entries farthest from the node's box center are removed and
//     re-inserted (which is what gives the R*-tree its retrofitted balance).
//     Simplification: reinsertion is applied at the leaf level only;
//     internal overflows always split. This keeps the structure exact and
//     costs only a little balance quality.
//
// Append-only, like SsTree: the experiments bulk load then query.

#ifndef HYPERDOM_INDEX_RSTAR_TREE_H_
#define HYPERDOM_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "geometry/mbr.h"
#include "index/entry.h"
#include "storage/sphere_store.h"

namespace hyperdom {

/// R*-tree leaf entries are columnar-store handles.
using RStarTreeEntry = StoredEntry;

/// Tuning options for RStarTree.
struct RStarTreeOptions {
  /// Maximum entries (leaf) or children (internal) per node. Must be >= 4.
  size_t max_entries = 24;
  /// Minimum fill ratio enforced by splits, in (0, 0.5].
  double min_fill_ratio = 0.4;
  /// Fraction of a leaf re-inserted on its first overflow, in [0, 0.5].
  /// 0 disables forced reinsertion.
  double reinsert_fraction = 0.3;
};

/// \brief R*-tree node; public for traversal by searchers and tests.
class RStarTreeNode {
 public:
  explicit RStarTreeNode(bool is_leaf) : is_leaf_(is_leaf) {}

  bool is_leaf() const { return is_leaf_; }
  /// The node's bounding box (covers every data sphere beneath it).
  const Mbr& mbr() const { return mbr_; }
  /// Leaf payload: store handles, resolved via RStarTree::store(). Valid
  /// only when is_leaf().
  const std::vector<RStarTreeEntry>& entries() const { return entries_; }
  /// Children; valid only when !is_leaf().
  const std::vector<std::unique_ptr<RStarTreeNode>>& children() const {
    return children_;
  }

 private:
  friend class RStarTree;

  bool is_leaf_;
  Mbr mbr_;
  std::vector<RStarTreeEntry> entries_;
  std::vector<std::unique_ptr<RStarTreeNode>> children_;
};

/// \brief The R*-tree index.
class RStarTree {
 public:
  explicit RStarTree(size_t dim, RStarTreeOptions options = {});

  /// Inserts one hypersphere. Fails on dimension mismatch or bad options.
  Status Insert(const Hypersphere& sphere, uint64_t id);

  /// Bulk-loads by repeated insertion; ids are positions in `spheres`.
  Status BulkLoad(const std::vector<Hypersphere>& spheres);

  /// Root node; null while the tree is empty.
  const RStarTreeNode* root() const { return root_.get(); }

  /// The columnar sphere storage backing every leaf entry.
  const SphereStore& store() const { return *store_; }

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  const RStarTreeOptions& options() const { return options_; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  size_t Height() const;

  /// \brief Validates structural invariants, for tests: every entry box is
  /// covered by each ancestor box, occupancy limits hold, leaves share one
  /// depth, and the total entry count matches size().
  Status CheckInvariants() const;

 private:
  Status ValidateOptions() const;
  /// Core insertion of an already-stored entry; `allow_reinsert` is false
  /// while draining forced-reinsert orphans (whose spheres already live in
  /// the store and must not be re-added).
  void InsertStored(const RStarTreeEntry& entry, bool allow_reinsert);
  /// Chooses the child of `node` for a new box (R*-tree rules).
  RStarTreeNode* ChooseSubtree(RStarTreeNode* node, const Mbr& box) const;
  /// Recomputes `node`'s box from its payload.
  void RefreshMbr(RStarTreeNode* node) const;
  /// Splits an overflowing node; returns the new right sibling.
  std::unique_ptr<RStarTreeNode> SplitNode(RStarTreeNode* node) const;
  /// Handles an overflowing leaf at the end of `path` (reinsert or split),
  /// propagating internal splits upward. Appends reinsert orphans to
  /// `orphans`.
  void HandleOverflow(std::vector<RStarTreeNode*>* path, bool allow_reinsert,
                      std::vector<RStarTreeEntry>* orphans);

  size_t dim_;
  RStarTreeOptions options_;
  /// Columnar coordinate arena for every data sphere in the tree.
  std::shared_ptr<SphereStore> store_;
  std::unique_ptr<RStarTreeNode> root_;
  size_t size_ = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_RSTAR_TREE_H_
