// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The record every index stores: a data hypersphere plus the caller's id.

#ifndef HYPERDOM_INDEX_ENTRY_H_
#define HYPERDOM_INDEX_ENTRY_H_

#include <cstdint>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// A data entry: a hypersphere plus the caller's identifier.
struct DataEntry {
  Hypersphere sphere;
  uint64_t id = 0;
};

}  // namespace hyperdom

#endif  // HYPERDOM_INDEX_ENTRY_H_
