// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/fault.h"
#include "index/index_metrics.h"

namespace hyperdom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relative slack for the invariant checker's containment tests.
constexpr double kCoverageSlack = 1e-9;

Point BoxCenter(const Mbr& box) {
  Point c(box.dim());
  for (size_t i = 0; i < box.dim(); ++i) c[i] = box.Mid(i);
  return c;
}

/// The classic R*-tree split: returns the item order and the cut position.
struct SplitChoice {
  std::vector<size_t> order;
  size_t cut = 0;
};

SplitChoice ChooseSplit(const std::vector<Mbr>& boxes, size_t min_fill) {
  const size_t n = boxes.size();
  const size_t dim = boxes.front().dim();

  SplitChoice best;
  double best_margin_sum = kInf;
  // Axis selection: minimize the summed margins over all distributions,
  // considering both the sort-by-lower and sort-by-upper orders.
  for (size_t axis = 0; axis < dim; ++axis) {
    for (int by_upper = 0; by_upper < 2; ++by_upper) {
      std::vector<size_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return by_upper ? boxes[a].hi()[axis] < boxes[b].hi()[axis]
                        : boxes[a].lo()[axis] < boxes[b].lo()[axis];
      });
      // Prefix/suffix unions.
      std::vector<Mbr> prefix(n), suffix(n);
      prefix[0] = boxes[order[0]];
      for (size_t i = 1; i < n; ++i) {
        prefix[i] = Union(prefix[i - 1], boxes[order[i]]);
      }
      suffix[n - 1] = boxes[order[n - 1]];
      for (size_t i = n - 1; i-- > 0;) {
        suffix[i] = Union(suffix[i + 1], boxes[order[i]]);
      }
      double margin_sum = 0.0;
      for (size_t cut = min_fill; cut + min_fill <= n; ++cut) {
        margin_sum += Margin(prefix[cut - 1]) + Margin(suffix[cut]);
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best.order = order;
        // Distribution selection along this axis: minimum overlap volume,
        // ties broken by minimum total volume.
        double best_overlap = kInf;
        double best_volume = kInf;
        for (size_t cut = min_fill; cut + min_fill <= n; ++cut) {
          const double overlap = OverlapVolume(prefix[cut - 1], suffix[cut]);
          const double volume = Volume(prefix[cut - 1]) + Volume(suffix[cut]);
          if (overlap < best_overlap ||
              (overlap == best_overlap && volume < best_volume)) {
            best_overlap = overlap;
            best_volume = volume;
            best.cut = cut;
          }
        }
      }
    }
  }
  return best;
}

}  // namespace

RStarTree::RStarTree(size_t dim, RStarTreeOptions options)
    : dim_(dim), options_(options),
      store_(std::make_shared<SphereStore>(dim)) {}

Status RStarTree::ValidateOptions() const {
  if (options_.max_entries < 4) {
    return Status::InvalidArgument("RStarTreeOptions.max_entries must be >= 4");
  }
  if (!(options_.min_fill_ratio > 0.0) || options_.min_fill_ratio > 0.5) {
    return Status::InvalidArgument(
        "RStarTreeOptions.min_fill_ratio must be in (0, 0.5]");
  }
  if (options_.reinsert_fraction < 0.0 || options_.reinsert_fraction > 0.5) {
    return Status::InvalidArgument(
        "RStarTreeOptions.reinsert_fraction must be in [0, 0.5]");
  }
  return Status::OK();
}

Status RStarTree::Insert(const Hypersphere& sphere, uint64_t id) {
  HYPERDOM_RETURN_NOT_OK(ValidateOptions());
  if (sphere.dim() != dim_) {
    return Status::InvalidArgument("dimension mismatch: tree is " +
                                   std::to_string(dim_) + "-d, sphere is " +
                                   std::to_string(sphere.dim()) + "-d");
  }
  HYPERDOM_FAULT_POINT("rstar_tree/insert");
  if (root_ == nullptr) {
    root_ = std::make_unique<RStarTreeNode>(/*is_leaf=*/true);
  }
  const uint32_t slot = store_->Add(sphere);
  InsertStored(RStarTreeEntry{slot, id}, /*allow_reinsert=*/true);
  ++size_;
  return Status::OK();
}

Status RStarTree::BulkLoad(const std::vector<Hypersphere>& spheres) {
  IndexBuildRecorder recorder("rstar", "bulk_load");
  for (size_t i = 0; i < spheres.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(Insert(spheres[i], static_cast<uint64_t>(i)));
  }
  recorder.Finish(size_);
  return Status::OK();
}

void RStarTree::InsertStored(const RStarTreeEntry& entry,
                             bool allow_reinsert) {
  const Mbr box = Mbr::FromSphere(store_->view(entry.slot));
  std::vector<RStarTreeNode*> path;
  RStarTreeNode* node = root_.get();
  while (!node->is_leaf()) {
    path.push_back(node);
    node = ChooseSubtree(node, box);
  }
  path.push_back(node);
  node->entries_.push_back(entry);

  std::vector<RStarTreeEntry> orphans;
  if (node->entries_.size() > options_.max_entries) {
    HandleOverflow(&path, allow_reinsert, &orphans);
  }
  // Refresh boxes bottom-up along the (possibly re-rooted) path.
  for (auto it = path.rbegin(); it != path.rend(); ++it) RefreshMbr(*it);
  RefreshMbr(root_.get());

  for (const auto& orphan : orphans) {
    InsertStored(orphan, /*allow_reinsert=*/false);
  }
}

RStarTreeNode* RStarTree::ChooseSubtree(RStarTreeNode* node,
                                        const Mbr& box) const {
  const auto& children = node->children_;
  assert(!children.empty());
  const bool leaf_level = children.front()->is_leaf();

  RStarTreeNode* best = nullptr;
  double best_primary = kInf;
  double best_enlarge = kInf;
  double best_volume = kInf;
  for (size_t i = 0; i < children.size(); ++i) {
    const Mbr& child_box = children[i]->mbr_;
    const Mbr enlarged = Union(child_box, box);
    const double enlarge = Volume(enlarged) - Volume(child_box);
    double primary = enlarge;
    if (leaf_level) {
      // Minimum overlap enlargement (Beckmann et al.'s leaf-level rule).
      double before = 0.0, after = 0.0;
      for (size_t j = 0; j < children.size(); ++j) {
        if (j == i) continue;
        before += OverlapVolume(child_box, children[j]->mbr_);
        after += OverlapVolume(enlarged, children[j]->mbr_);
      }
      primary = after - before;
    }
    const double volume = Volume(child_box);
    if (primary < best_primary ||
        (primary == best_primary && enlarge < best_enlarge) ||
        (primary == best_primary && enlarge == best_enlarge &&
         volume < best_volume)) {
      best_primary = primary;
      best_enlarge = enlarge;
      best_volume = volume;
      best = children[i].get();
    }
  }
  return best;
}

void RStarTree::RefreshMbr(RStarTreeNode* node) const {
  if (node->is_leaf_) {
    if (node->entries_.empty()) return;
    Mbr box = Mbr::FromSphere(store_->view(node->entries_.front().slot));
    for (size_t i = 1; i < node->entries_.size(); ++i) {
      box.ExtendToCover(Mbr::FromSphere(store_->view(node->entries_[i].slot)));
    }
    node->mbr_ = box;
  } else {
    if (node->children_.empty()) return;
    Mbr box = node->children_.front()->mbr_;
    for (size_t i = 1; i < node->children_.size(); ++i) {
      box.ExtendToCover(node->children_[i]->mbr_);
    }
    node->mbr_ = box;
  }
}

std::unique_ptr<RStarTreeNode> RStarTree::SplitNode(
    RStarTreeNode* node) const {
  std::vector<Mbr> boxes;
  const size_t n =
      node->is_leaf_ ? node->entries_.size() : node->children_.size();
  boxes.reserve(n);
  if (node->is_leaf_) {
    for (const auto& e : node->entries_) {
      boxes.push_back(Mbr::FromSphere(store_->view(e.slot)));
    }
  } else {
    for (const auto& child : node->children_) boxes.push_back(child->mbr_);
  }
  const size_t min_fill = std::max<size_t>(
      2, static_cast<size_t>(std::ceil(options_.min_fill_ratio *
                                       static_cast<double>(n))));
  const SplitChoice choice = ChooseSplit(boxes, min_fill);

  auto sibling = std::make_unique<RStarTreeNode>(node->is_leaf_);
  if (node->is_leaf_) {
    std::vector<RStarTreeEntry> left, right;
    for (size_t i = 0; i < n; ++i) {
      (i < choice.cut ? left : right)
          .push_back(node->entries_[choice.order[i]]);
    }
    node->entries_ = std::move(left);
    sibling->entries_ = std::move(right);
  } else {
    std::vector<std::unique_ptr<RStarTreeNode>> left, right;
    for (size_t i = 0; i < n; ++i) {
      (i < choice.cut ? left : right)
          .push_back(std::move(node->children_[choice.order[i]]));
    }
    node->children_ = std::move(left);
    sibling->children_ = std::move(right);
  }
  RefreshMbr(node);
  RefreshMbr(sibling.get());
  return sibling;
}

void RStarTree::HandleOverflow(std::vector<RStarTreeNode*>* path,
                               bool allow_reinsert,
                               std::vector<RStarTreeEntry>* orphans) {
  RStarTreeNode* leaf = path->back();
  if (allow_reinsert && leaf != root_.get() &&
      options_.reinsert_fraction > 0.0) {
    // Forced reinsert: remove the entries farthest from the node's box
    // center and re-insert them from the top.
    RefreshMbr(leaf);
    const Point center = BoxCenter(leaf->mbr_);
    const size_t p = std::max<size_t>(
        1, static_cast<size_t>(options_.reinsert_fraction *
                               static_cast<double>(leaf->entries_.size())));
    std::vector<size_t> order(leaf->entries_.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return SquaredDistSpan(store_->center(leaf->entries_[a].slot),
                             center.data(), dim_) >
             SquaredDistSpan(store_->center(leaf->entries_[b].slot),
                             center.data(), dim_);
    });
    std::vector<bool> removed(leaf->entries_.size(), false);
    for (size_t i = 0; i < p; ++i) {
      orphans->push_back(leaf->entries_[order[i]]);
      removed[order[i]] = true;
    }
    std::vector<RStarTreeEntry> kept;
    kept.reserve(leaf->entries_.size() - p);
    for (size_t i = 0; i < leaf->entries_.size(); ++i) {
      if (!removed[i]) kept.push_back(leaf->entries_[i]);
    }
    leaf->entries_ = std::move(kept);
    RefreshMbr(leaf);
    return;
  }

  // Split, propagating upward while parents overflow.
  size_t level = path->size() - 1;
  std::unique_ptr<RStarTreeNode> split = SplitNode((*path)[level]);
  while (split != nullptr) {
    if (level == 0) {
      // The split node was the root: grow a new root.
      auto new_root = std::make_unique<RStarTreeNode>(/*is_leaf=*/false);
      new_root->children_.push_back(std::move(root_));
      new_root->children_.push_back(std::move(split));
      RefreshMbr(new_root.get());
      root_ = std::move(new_root);
      break;
    }
    RStarTreeNode* parent = (*path)[level - 1];
    parent->children_.push_back(std::move(split));
    RefreshMbr(parent);
    split = parent->children_.size() > options_.max_entries
                ? SplitNode(parent)
                : nullptr;
    --level;
  }
}

size_t RStarTree::Height() const {
  size_t h = 0;
  for (const RStarTreeNode* node = root_.get(); node != nullptr;
       node = node->is_leaf() ? nullptr : node->children().front().get()) {
    ++h;
  }
  return h;
}

namespace {

Status CheckNode(const RStarTreeNode* node, const SphereStore& store,
                 const RStarTreeOptions& options, bool is_root, size_t depth,
                 size_t* leaf_depth, size_t* entry_total) {
  const size_t occupancy =
      node->is_leaf() ? node->entries().size() : node->children().size();
  if (occupancy > options.max_entries) {
    return Status::Corruption("node occupancy exceeds max_entries");
  }
  if (!is_root && occupancy < 2) {
    return Status::Corruption("non-root node with fewer than 2 items");
  }

  auto covered = [&](const Mbr& inner) {
    const Mbr& outer = node->mbr();
    for (size_t i = 0; i < outer.dim(); ++i) {
      const double slack =
          kCoverageSlack *
          (1.0 + std::abs(outer.lo()[i]) + std::abs(outer.hi()[i]));
      if (inner.lo()[i] < outer.lo()[i] - slack ||
          inner.hi()[i] > outer.hi()[i] + slack) {
        return false;
      }
    }
    return true;
  };

  if (node->is_leaf()) {
    if (*leaf_depth == 0) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("leaves at different depths");
    }
    for (const auto& e : node->entries()) {
      if (e.slot >= store.size()) {
        return Status::Corruption("entry slot out of store range");
      }
      if (!covered(Mbr::FromSphere(store.view(e.slot)))) {
        return Status::Corruption("leaf entry escapes node box");
      }
    }
    *entry_total += node->entries().size();
    return Status::OK();
  }

  for (const auto& child : node->children()) {
    if (!covered(child->mbr())) {
      return Status::Corruption("child box escapes parent box");
    }
    HYPERDOM_RETURN_NOT_OK(CheckNode(child.get(), store, options,
                                     /*is_root=*/false, depth + 1, leaf_depth,
                                     entry_total));
  }
  return Status::OK();
}

}  // namespace

Status RStarTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return size_ == 0 ? Status::OK()
                      : Status::Corruption("empty root but nonzero size");
  }
  size_t leaf_depth = 0;
  size_t entry_total = 0;
  HYPERDOM_RETURN_NOT_OK(CheckNode(root_.get(), *store_, options_,
                                   /*is_root=*/true,
                                   /*depth=*/1, &leaf_depth, &entry_total));
  if (entry_total != size_) {
    return Status::Corruption("total entry count mismatch: tree says " +
                              std::to_string(size_) + ", walk found " +
                              std::to_string(entry_total));
  }
  return Status::OK();
}

}  // namespace hyperdom
