// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Epoch-based memory reclamation for the live-mutability layer: readers
// pin the global epoch for the duration of a query, writers retire
// superseded objects (store versions, node memory) into an epoch-stamped
// list, and retired memory is freed only once every active reader has
// moved past the retire epoch — so an in-flight traversal can keep
// dereferencing a version that was unpublished underneath it.
//
// Protocol (all seq_cst, deliberately — the cost is irrelevant next to a
// query, and the correctness argument below leans on the single total
// order):
//
//   reader:  slot <- epoch.load()            (pin, seq_cst store)
//            p    <- published.load()        (then read the pointer)
//   writer:  old  <- published.exchange(new)
//            E    <- epoch.fetch_add(1)      (bump AFTER unpublish)
//            retire(old, E)
//   reclaim: free r iff every pinned slot value > r.epoch
//
// Why this is safe: suppose a reader still holds `old`. Its pointer load
// returned `old`, so that load precedes the writer's exchange in the
// seq_cst total order; the reader's pin-store precedes its pointer load
// (program order), and the writer's exchange precedes its fetch_add. The
// pinned value was read from `epoch` before all of that, so pin <= E —
// and a pinned slot with value <= E blocks reclamation of anything
// retired at epoch E. A reader that pins AFTER the bump sees the new
// pointer or a pin value > E; either way it never blocks on, nor touches,
// the retired object.
//
// Guards nest (an RkNN query issues kNN subqueries): a thread's first
// guard claims a reader slot, inner guards just bump a thread-local depth
// counter and reuse the outer pin — so the whole outer query observes one
// consistent epoch.
//
// The manager is a process-wide singleton (like FaultRegistry and
// MetricsRegistry): retired objects from every mutable store share the
// slot array and the retire list, and everything still unreclaimed is
// freed when the process exits.

#ifndef HYPERDOM_STORAGE_EPOCH_H_
#define HYPERDOM_STORAGE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace hyperdom {

class EpochManager {
 public:
  /// Number of concurrent reader slots. More pinned readers than slots is
  /// a programming error (asserted); queries release their slot on exit,
  /// so this bounds concurrent queries per process, not total threads.
  static constexpr size_t kMaxReaders = 256;

  /// Slot value meaning "not pinned".
  static constexpr uint64_t kIdle = ~0ull;

  /// The process-wide instance. Destroyed at exit, freeing any retirees
  /// that were still waiting on a grace period.
  static EpochManager& Global();

  /// \brief RAII reader pin. The outermost guard on a thread claims a
  /// slot and pins the current epoch; nested guards reuse it. While any
  /// guard is live on a thread, every object retired at or after the
  /// pinned epoch stays allocated.
  class Guard {
   public:
    Guard();
    ~Guard();
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

    /// The epoch this thread is pinned at (the outermost guard's pin).
    uint64_t pinned_epoch() const;

   private:
    EpochManager* manager_;
  };

  /// Current global epoch (bumped once per retirement batch).
  uint64_t current() const { return epoch_.load(std::memory_order_seq_cst); }

  /// The smallest epoch any active reader is pinned at; kIdle when no
  /// reader is pinned.
  uint64_t MinActiveEpoch() const;

  /// \brief Hands `object` to the reclamation list: bumps the epoch,
  /// stamps the object with the pre-bump value, and opportunistically
  /// frees every retiree whose grace period has passed. `deleter` is
  /// invoked exactly once, at reclaim or at manager destruction.
  void Retire(void* object, void (*deleter)(void*));

  /// Typed convenience: retires `object` with a `delete`-calling deleter.
  template <typename T>
  void Retire(const T* object) {
    Retire(const_cast<T*>(object),
           [](void* p) { delete static_cast<T*>(p); });
  }

  /// Frees every retiree whose epoch has been passed by all active
  /// readers; returns how many were freed. Called automatically by
  /// Retire(); exposed for tests and shutdown paths.
  size_t ReclaimExpired();

  /// Retired objects currently awaiting a grace period (test hook).
  size_t pending() const;

  /// Epochs the slowest active reader is behind the writer (0 when no
  /// reader is pinned). Mirrored into the hyperdom_store_epoch_lag gauge
  /// by the mutable store on every publish.
  uint64_t EpochLag() const;

 private:
  EpochManager() = default;
  ~EpochManager();

  friend class Guard;

  struct alignas(64) Slot {
    std::atomic<uint64_t> pinned{kIdle};
  };

  struct Retiree {
    void* object;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  /// Claims a free slot and pins it at the current epoch; aborts (assert)
  /// when all kMaxReaders slots are taken.
  size_t AcquireSlot();
  void ReleaseSlot(size_t index);

  Slot slots_[kMaxReaders];
  std::atomic<uint64_t> epoch_{1};

  mutable std::mutex retire_mu_;
  std::vector<Retiree> retired_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_STORAGE_EPOCH_H_
