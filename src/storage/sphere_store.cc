// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "storage/sphere_store.h"

#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>

namespace hyperdom {

namespace {

// Cache-line alignment for the coordinate arena: rows of consecutive slots
// share lines cleanly and the base pointer satisfies any vector ISA the
// compiler targets under HYPERDOM_NATIVE.
constexpr size_t kArenaAlign = 64;

double* AllocateArena(size_t doubles) {
  if (doubles == 0) return nullptr;
  // std::aligned_alloc requires the size to be a multiple of the alignment.
  size_t bytes = doubles * sizeof(double);
  bytes = (bytes + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
  void* p = std::aligned_alloc(kArenaAlign, bytes);
  assert(p != nullptr);
  return static_cast<double*>(p);
}

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

SphereStore::SphereStore(const SphereStore& other)
    : dim_(other.dim_),
      size_(other.size_),
      capacity_(other.size_),
      radii_(other.radii_) {
  coords_ = AllocateArena(size_ * dim_);
  if (coords_ != nullptr) {
    std::memcpy(coords_, other.coords_, size_ * dim_ * sizeof(double));
  }
}

SphereStore& SphereStore::operator=(const SphereStore& other) {
  if (this == &other) return *this;
  SphereStore copy(other);
  *this = std::move(copy);
  return *this;
}

SphereStore::SphereStore(SphereStore&& other) noexcept
    : dim_(other.dim_),
      size_(other.size_),
      capacity_(other.capacity_),
      coords_(other.coords_),
      radii_(std::move(other.radii_)) {
  other.size_ = 0;
  other.capacity_ = 0;
  other.coords_ = nullptr;
}

SphereStore& SphereStore::operator=(SphereStore&& other) noexcept {
  if (this == &other) return *this;
  std::free(coords_);
  dim_ = other.dim_;
  size_ = other.size_;
  capacity_ = other.capacity_;
  coords_ = other.coords_;
  radii_ = std::move(other.radii_);
  other.size_ = 0;
  other.capacity_ = 0;
  other.coords_ = nullptr;
  return *this;
}

SphereStore::~SphereStore() { std::free(coords_); }

void SphereStore::GrowTo(size_t min_spheres) {
  if (capacity_ >= min_spheres) return;
  size_t next = capacity_ == 0 ? 16 : capacity_ * 2;
  if (next < min_spheres) next = min_spheres;
  double* grown = AllocateArena(next * dim_);
  if (size_ > 0) {
    std::memcpy(grown, coords_, size_ * dim_ * sizeof(double));
  }
  std::free(coords_);
  coords_ = grown;
  capacity_ = next;
}

void SphereStore::Reserve(size_t n) {
  if (dim_ == 0) return;  // adopt dim on first Add before sizing the arena
  GrowTo(n);
  radii_.reserve(n);
}

uint32_t SphereStore::Add(const Hypersphere& s) {
  return Add(s.center().data(), s.center().size(), s.radius());
}

uint32_t SphereStore::Add(const double* center, size_t dim, double radius) {
  if (dim_ == 0) dim_ = dim;
  assert(dim == dim_ && "SphereStore: dimension mismatch");
  assert(size_ < UINT32_MAX && "SphereStore: slot space exhausted");
  GrowTo(size_ + 1);
  std::memcpy(coords_ + size_ * dim_, center, dim_ * sizeof(double));
  radii_.push_back(radius);
  return static_cast<uint32_t>(size_++);
}

Hypersphere SphereStore::Materialize(uint32_t slot) const {
  const double* row = center(slot);
  return Hypersphere(Point(row, row + dim_), radii_[slot]);
}

Status SphereStore::SerializeTo(std::ostream& out) const {
  WritePod(out, static_cast<uint64_t>(dim_));
  WritePod(out, static_cast<uint64_t>(size_));
  for (size_t i = 0; i < size_; ++i) {
    out.write(reinterpret_cast<const char*>(coords_ + i * dim_),
              static_cast<std::streamsize>(dim_ * sizeof(double)));
    WritePod(out, radii_[i]);
  }
  if (!out) return Status::IOError("sphere store serialization stream failed");
  return Status::OK();
}

Status SphereStore::DeserializeFrom(std::istream& in, SphereStore* out) {
  uint64_t dim = 0;
  uint64_t size = 0;
  if (!ReadPod(in, &dim) || !ReadPod(in, &size)) {
    return Status::Corruption("sphere store header truncated");
  }
  if ((dim == 0 && size > 0) || dim > (1u << 20)) {
    return Status::Corruption("sphere store dimension implausible");
  }
  if (size > (uint64_t{1} << 32)) {
    return Status::Corruption("sphere store size implausible");
  }
  SphereStore store(static_cast<size_t>(dim));
  store.Reserve(static_cast<size_t>(size));
  std::vector<double> row(static_cast<size_t>(dim));
  for (uint64_t i = 0; i < size; ++i) {
    in.read(reinterpret_cast<char*>(row.data()),
            static_cast<std::streamsize>(row.size() * sizeof(double)));
    double radius = 0.0;
    if (!in || !ReadPod(in, &radius)) {
      return Status::Corruption("sphere store record truncated");
    }
    for (double c : row) {
      if (!std::isfinite(c)) {
        return Status::Corruption("sphere store coordinate not finite");
      }
    }
    if (!std::isfinite(radius) || radius < 0.0) {
      return Status::Corruption("sphere store radius invalid");
    }
    store.Add(row.data(), row.size(), radius);
  }
  *out = std::move(store);
  return Status::OK();
}

}  // namespace hyperdom
