// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Columnar (SoA) sphere storage: one flat, 64-byte-aligned, d-strided
// coordinate arena plus a parallel radii array. Spheres live in the store
// as rows addressed by a slot; indexes keep lightweight StoredEntry{slot,
// id} payloads instead of owned Hypersphere copies, and queries resolve
// slots to non-owning SphereView/EntryView handles over contiguous memory.
//
// Why: `Point = std::vector<double>` gives every sphere its own heap
// allocation, so a 10k-sphere workload is 10k+ scattered allocations and
// every O(d) kernel pays a pointer chase before its first multiply. The
// arena removes both: coordinates of consecutive slots are contiguous
// (cache- and prefetcher-friendly, SIMD-ready), and resolving a slot is
// pointer arithmetic. The span kernels in geometry/ run bit-identically on
// store rows and on Hypersphere vectors, so the two layouts are
// interchangeable at the arithmetic level (see docs/performance.md,
// "Data layout").

#ifndef HYPERDOM_STORAGE_SPHERE_STORE_H_
#define HYPERDOM_STORAGE_SPHERE_STORE_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"

namespace hyperdom {

/// \brief The columnar index payload: a slot in a SphereStore plus the
/// caller-supplied id. 12 bytes instead of an owned Hypersphere.
struct StoredEntry {
  uint32_t slot = 0;
  uint64_t id = 0;
};

/// \brief A resolved StoredEntry: the sphere view plus the id. Views stay
/// valid while the backing store is alive and not mutated — traversals over
/// a const index hold them freely.
struct EntryView {
  SphereView sphere;
  uint64_t id = 0;
  uint32_t slot = 0;
};

/// \brief Arena-backed SoA sphere storage.
///
/// Append-only (plus Clear): slots are stable for the lifetime of the
/// store, which is what lets indexes reference spheres by slot across
/// splits, reinserts, and serialization. Deleting an index entry simply
/// abandons its slot — the arena does not compact. Thread-compatible: safe
/// for concurrent reads (the batch engine's worker threads resolve views
/// concurrently); mutation requires external exclusion.
///
/// Single-writer/multi-reader appends: once Reserve(n) has sized the
/// arena, Add() never reallocates until `n` is exceeded, so rows already
/// written stay at stable addresses. The mutability layer
/// (index/mutable_ss_tree.h) exploits this — one writer appends into a
/// pre-reserved store while readers resolve rows below a published-size
/// watermark carried by the store version, never reading a row the
/// watermark does not cover.
class SphereStore {
 public:
  SphereStore() = default;
  /// Creates an empty store for `dim`-dimensional spheres.
  explicit SphereStore(size_t dim) : dim_(dim) {}

  SphereStore(const SphereStore& other);
  SphereStore& operator=(const SphereStore& other);
  SphereStore(SphereStore&& other) noexcept;
  SphereStore& operator=(SphereStore&& other) noexcept;
  ~SphereStore();

  size_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Spheres the arena can hold before the next Add() reallocates (and
  /// invalidates row addresses). See the single-writer note above.
  size_t capacity() const { return capacity_; }

  /// Appends a sphere; returns its slot. A default-constructed store
  /// adopts the first sphere's dimensionality. Dimension mismatches are
  /// asserted in debug builds (callers validate at the API boundary).
  uint32_t Add(const Hypersphere& s);

  /// Appends from a raw coordinate span; returns the slot.
  uint32_t Add(const double* center, size_t dim, double radius);

  /// Row base pointer of `slot`'s coordinates (d contiguous doubles).
  const double* center(uint32_t slot) const { return coords_ + slot * dim_; }
  double radius(uint32_t slot) const { return radii_[slot]; }

  /// Base of the contiguous radii column (size() doubles), parallel to the
  /// coordinate arena — the second operand of the batched span kernels
  /// (geometry/point.h). Invalidated by Add()/Reserve() like center().
  const double* radii_data() const { return radii_.data(); }

  /// Non-owning view of the sphere in `slot`.
  SphereView view(uint32_t slot) const {
    return SphereView{coords_ + slot * dim_, dim_, radii_[slot]};
  }

  /// Resolves an index payload to a view.
  EntryView Resolve(const StoredEntry& e) const {
    return EntryView{view(e.slot), e.id, e.slot};
  }

  /// Materializes an owning Hypersphere (copies the row).
  Hypersphere Materialize(uint32_t slot) const;

  /// Pre-sizes the arena for `n` spheres.
  void Reserve(size_t n);

  /// Drops every sphere (keeps dim and capacity).
  void Clear() { size_ = 0; radii_.clear(); }

  /// \brief Writes `u64 dim | u64 size | per slot: f64 center[dim], f64
  /// radius` to the stream (host representation, matching the index
  /// snapshot formats that embed it).
  Status SerializeTo(std::ostream& out) const;

  /// \brief Reads the SerializeTo layout, replacing `*out`'s contents.
  /// Rejects non-finite coordinates, bad radii, and truncation with
  /// Corruption, and implausible sizes before allocating.
  static Status DeserializeFrom(std::istream& in, SphereStore* out);

 private:
  void GrowTo(size_t min_spheres);

  size_t dim_ = 0;
  size_t size_ = 0;
  size_t capacity_ = 0;  // in spheres
  double* coords_ = nullptr;  // 64-byte aligned, size_ * dim_ doubles used
  std::vector<double> radii_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_STORAGE_SPHERE_STORE_H_
