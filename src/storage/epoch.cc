// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "storage/epoch.h"

#include <cassert>

namespace hyperdom {

namespace {

// Per-thread guard state: the outermost Guard claims a slot, nested
// guards reuse it (depth counting). Thread-local so pin/unpin never
// touches shared state beyond the claimed slot itself.
struct ThreadPin {
  size_t depth = 0;
  size_t slot = 0;
  uint64_t epoch = EpochManager::kIdle;
};

thread_local ThreadPin t_pin;

}  // namespace

EpochManager& EpochManager::Global() {
  // A function-local static (not a leaked heap object): the destructor
  // runs at process exit and frees retirees still waiting on a grace
  // period, so LeakSanitizer stays clean.
  static EpochManager manager;
  return manager;
}

EpochManager::~EpochManager() {
  std::lock_guard<std::mutex> lock(retire_mu_);
  for (const Retiree& r : retired_) r.deleter(r.object);
  retired_.clear();
}

size_t EpochManager::AcquireSlot() {
  for (;;) {
    for (size_t i = 0; i < kMaxReaders; ++i) {
      uint64_t expected = kIdle;
      // Claim with the CURRENT epoch in one CAS; re-read the epoch below
      // in case a writer bumped it between the load and the claim (the
      // safety argument only needs pin <= the value at pointer-load time,
      // but a fresher pin retires memory sooner).
      const uint64_t now = epoch_.load(std::memory_order_seq_cst);
      if (slots_[i].pinned.compare_exchange_strong(
              expected, now, std::memory_order_seq_cst)) {
        return i;
      }
    }
    // All slots taken: more than kMaxReaders concurrent queries. This is
    // far beyond the worker counts anything in the repo spawns; treat it
    // as a programming error rather than spinning silently forever.
    assert(false && "EpochManager: all reader slots in use");
  }
}

void EpochManager::ReleaseSlot(size_t index) {
  slots_[index].pinned.store(kIdle, std::memory_order_seq_cst);
}

EpochManager::Guard::Guard() : manager_(&EpochManager::Global()) {
  if (t_pin.depth++ == 0) {
    t_pin.slot = manager_->AcquireSlot();
    t_pin.epoch =
        manager_->slots_[t_pin.slot].pinned.load(std::memory_order_seq_cst);
  }
}

EpochManager::Guard::~Guard() {
  if (--t_pin.depth == 0) {
    manager_->ReleaseSlot(t_pin.slot);
    t_pin.epoch = kIdle;
  }
}

uint64_t EpochManager::Guard::pinned_epoch() const { return t_pin.epoch; }

uint64_t EpochManager::MinActiveEpoch() const {
  uint64_t min = kIdle;
  for (const Slot& slot : slots_) {
    const uint64_t pinned = slot.pinned.load(std::memory_order_seq_cst);
    if (pinned < min) min = pinned;
  }
  return min;
}

void EpochManager::Retire(void* object, void (*deleter)(void*)) {
  const uint64_t epoch = epoch_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    retired_.push_back(Retiree{object, deleter, epoch});
  }
  ReclaimExpired();
}

size_t EpochManager::ReclaimExpired() {
  // Collect under the lock, delete outside it: a deleter may run
  // arbitrary destructors (tree nodes, arenas) and must not extend the
  // critical section other retiring writers wait on.
  std::vector<Retiree> expired;
  const uint64_t min_active = MinActiveEpoch();
  {
    std::lock_guard<std::mutex> lock(retire_mu_);
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->epoch < min_active) {
        expired.push_back(*it);
      } else {
        *keep++ = *it;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  for (const Retiree& r : expired) r.deleter(r.object);
  return expired.size();
}

size_t EpochManager::pending() const {
  std::lock_guard<std::mutex> lock(retire_mu_);
  return retired_.size();
}

uint64_t EpochManager::EpochLag() const {
  const uint64_t min_active = MinActiveEpoch();
  if (min_active == kIdle) return 0;
  const uint64_t now = current();
  return now > min_active ? now - min_active : 0;
}

}  // namespace hyperdom
