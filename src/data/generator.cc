// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/generator.h"

#include <algorithm>

namespace hyperdom {

std::vector<Hypersphere> GenerateSynthetic(const SyntheticSpec& spec) {
  Rng base(spec.seed);
  Rng center_rng = base.Fork(1);
  Rng radius_rng = base.Fork(2);

  std::vector<Hypersphere> out;
  out.reserve(spec.n);
  for (size_t i = 0; i < spec.n; ++i) {
    Point c(spec.dim);
    for (auto& coord : c) {
      coord = spec.center_distribution == Distribution::kGaussian
                  ? center_rng.Gaussian(spec.center_mean, spec.center_stddev)
                  : center_rng.Uniform(spec.uniform_lo, spec.uniform_hi);
    }
    double r = spec.radius_distribution == Distribution::kGaussian
                   ? radius_rng.Gaussian(
                         spec.radius_mean,
                         spec.radius_mean * spec.radius_sigma_ratio)
                   : radius_rng.Uniform(spec.uniform_lo, spec.uniform_hi);
    out.emplace_back(std::move(c), std::max(0.0, r));
  }
  return out;
}

std::vector<Hypersphere> MakeUncertain(const std::vector<Point>& points,
                                       double radius_mean, double sigma_ratio,
                                       uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypersphere> out;
  out.reserve(points.size());
  for (const Point& p : points) {
    const double r = rng.Gaussian(radius_mean, radius_mean * sigma_ratio);
    out.emplace_back(p, std::max(0.0, r));
  }
  return out;
}

}  // namespace hyperdom
