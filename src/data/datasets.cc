// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/datasets.h"

#include <algorithm>

#include "common/rng.h"

namespace hyperdom {

namespace {

// A per-dimension value range for a stand-in dataset.
struct DimRange {
  double lo;
  double hi;
};

// NBA season statistics: games (0..82), minutes, points, rebounds, assists,
// steals, blocks, turnovers, fouls, FG made/attempted, FT made/attempted,
// 3P made/attempted, offensive rebounds, defensive rebounds. Scales span
// two orders of magnitude, which is the property that matters.
const DimRange kNbaRanges[17] = {
    {0, 82},   {0, 3400}, {0, 2800}, {0, 1500}, {0, 1100}, {0, 250},
    {0, 300},  {0, 350},  {0, 330},  {0, 1100}, {0, 2300}, {0, 800},
    {0, 1000}, {0, 250},  {0, 700},  {0, 450},  {0, 1050},
};

// Corel color histogram features, rescaled to [0, 200] so the paper's
// radius sweep (mu in 5..100) exercises the same overlap regimes as on the
// synthetic data (see DESIGN.md).
const DimRange kColorRanges[9] = {
    {0, 200}, {0, 200}, {0, 200}, {0, 200}, {0, 200},
    {0, 200}, {0, 200}, {0, 200}, {0, 200},
};

// Corel texture (co-occurrence) features, same rescaling.
const DimRange kTextureRanges[16] = {
    {0, 200}, {0, 200}, {0, 200}, {0, 200}, {0, 200}, {0, 200},
    {0, 200}, {0, 200}, {0, 200}, {0, 200}, {0, 200}, {0, 200},
    {0, 200}, {0, 200}, {0, 200}, {0, 200},
};

// USFS RIS / covertype-style attributes: elevation, aspect, slope,
// horizontal/vertical distances to hydrology, distance to roadways,
// hillshade 9am/noon/3pm, distance to fire points.
const DimRange kForestRanges[10] = {
    {1800, 3900}, {0, 360},  {0, 66},   {0, 1400}, {-170, 600},
    {0, 7100},    {0, 254},  {0, 254},  {0, 254},  {0, 7200},
};

struct StandInSpec {
  RealDatasetInfo info;
  const DimRange* ranges;
  size_t num_clusters;
  uint64_t seed;
};

StandInSpec GetSpec(RealDataset dataset) {
  switch (dataset) {
    case RealDataset::kNba:
      return {{"NBA", 17'265, 17}, kNbaRanges, 24, 1};
    case RealDataset::kColor:
      return {{"Color", 68'040, 9}, kColorRanges, 40, 2};
    case RealDataset::kTexture:
      return {{"Texture", 68'040, 16}, kTextureRanges, 40, 3};
    case RealDataset::kForest:
      return {{"Forest", 82'012, 10}, kForestRanges, 32, 4};
  }
  // Out-of-enum values (a corrupted config, a bad cast) fall back to the
  // NBA spec instead of aborting the process; callers that need the error
  // reported use ValidateRealDataset()/LoadRealStandInChecked().
  return {{"NBA", 17'265, 17}, kNbaRanges, 24, 1};
}

}  // namespace

Status ValidateRealDataset(RealDataset dataset) {
  switch (dataset) {
    case RealDataset::kNba:
    case RealDataset::kColor:
    case RealDataset::kTexture:
    case RealDataset::kForest:
      return Status::OK();
  }
  return Status::InvalidArgument(
      "unknown RealDataset value " +
      std::to_string(static_cast<int>(dataset)));
}

RealDatasetInfo GetRealDatasetInfo(RealDataset dataset) {
  return GetSpec(dataset).info;
}

const std::vector<RealDataset>& AllRealDatasets() {
  static const std::vector<RealDataset> kAll = {
      RealDataset::kNba, RealDataset::kForest, RealDataset::kColor,
      RealDataset::kTexture};
  return kAll;
}

std::vector<Point> LoadRealStandIn(RealDataset dataset, size_t sample_n) {
  const StandInSpec spec = GetSpec(dataset);
  const size_t n =
      sample_n > 0 ? std::min(sample_n, spec.info.n) : spec.info.n;
  const size_t d = spec.info.dim;

  Rng base(spec.seed * 0x9E3779B97F4A7C15ULL + 17);
  Rng cluster_rng = base.Fork(1);
  Rng point_rng = base.Fork(2);

  // Cluster means uniform inside the per-dimension ranges; per-cluster,
  // per-dimension stddevs between 2% and 15% of the range width (real
  // feature data is tightly clustered on some axes and diffuse on others).
  struct Cluster {
    Point mean;
    Point stddev;
    double weight;
  };
  std::vector<Cluster> clusters(spec.num_clusters);
  double weight_sum = 0.0;
  for (size_t c = 0; c < clusters.size(); ++c) {
    clusters[c].mean.resize(d);
    clusters[c].stddev.resize(d);
    for (size_t i = 0; i < d; ++i) {
      const double width = spec.ranges[i].hi - spec.ranges[i].lo;
      clusters[c].mean[i] =
          cluster_rng.Uniform(spec.ranges[i].lo, spec.ranges[i].hi);
      clusters[c].stddev[i] = cluster_rng.Uniform(0.02, 0.15) * width;
    }
    // Zipf-ish weights: a few big clusters, a long tail.
    clusters[c].weight = 1.0 / static_cast<double>(c + 1);
    weight_sum += clusters[c].weight;
  }

  std::vector<Point> out;
  out.reserve(n);
  for (size_t j = 0; j < n; ++j) {
    // Pick a cluster by weight.
    double pick = point_rng.NextDouble() * weight_sum;
    size_t c = 0;
    while (c + 1 < clusters.size() && pick > clusters[c].weight) {
      pick -= clusters[c].weight;
      ++c;
    }
    Point p(d);
    for (size_t i = 0; i < d; ++i) {
      const double v =
          point_rng.Gaussian(clusters[c].mean[i], clusters[c].stddev[i]);
      p[i] = std::clamp(v, spec.ranges[i].lo, spec.ranges[i].hi);
    }
    out.push_back(std::move(p));
  }
  return out;
}

Result<std::vector<Point>> LoadRealStandInChecked(RealDataset dataset,
                                                  size_t sample_n) {
  HYPERDOM_RETURN_NOT_OK(ValidateRealDataset(dataset));
  return LoadRealStandIn(dataset, sample_n);
}

}  // namespace hyperdom
