// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Synthetic dataset generation following the paper's Section 7 protocol:
// centers drawn per-coordinate from Gaussian(100, 25) or Uniform[0, 200],
// radii drawn from Gaussian(mu, mu/4) or Uniform[0, 200] (clamped at zero —
// radii are non-negative by definition). Everything is seeded and
// deterministic.

#ifndef HYPERDOM_DATA_GENERATOR_H_
#define HYPERDOM_DATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/hypersphere.h"

namespace hyperdom {

/// Sampling families used in the paper's Figure 12 ("G" / "U").
enum class Distribution {
  kGaussian,
  kUniform,
};

/// Parameters of a synthetic dataset (paper Table 2 defaults in bold there:
/// mu = 10, N = 100k, d = 4).
struct SyntheticSpec {
  size_t n = 100'000;
  size_t dim = 4;
  Distribution center_distribution = Distribution::kGaussian;
  Distribution radius_distribution = Distribution::kGaussian;
  /// Gaussian centers: per-coordinate mean/stddev.
  double center_mean = 100.0;
  double center_stddev = 25.0;
  /// Average radius mu; Gaussian radii use sigma = mu * radius_sigma_ratio.
  double radius_mean = 10.0;
  double radius_sigma_ratio = 0.25;
  /// Uniform sampling range for both coordinates and radii.
  double uniform_lo = 0.0;
  double uniform_hi = 200.0;
  uint64_t seed = 0x5EEDD00DULL;
};

/// Generates `spec.n` hyperspheres in `spec.dim` dimensions.
std::vector<Hypersphere> GenerateSynthetic(const SyntheticSpec& spec);

/// \brief Wraps existing points into uncertain objects: each point becomes
/// the center of a hypersphere with radius ~ Gaussian(radius_mean,
/// radius_mean * sigma_ratio), clamped at zero — the paper's recipe for the
/// real datasets.
std::vector<Hypersphere> MakeUncertain(const std::vector<Point>& points,
                                       double radius_mean, double sigma_ratio,
                                       uint64_t seed);

}  // namespace hyperdom

#endif  // HYPERDOM_DATA_GENERATOR_H_
