// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Deterministic stand-ins for the four real datasets of the paper's
// Section 7. The originals (NBA season statistics, the two Corel image
// feature sets, and the USFS Forest/RIS data) are not redistributable here,
// so each is replaced by a same-size, same-dimensionality synthetic dataset
// with the structure that matters to the experiments: clustered,
// anisotropic point clouds with heterogeneous per-dimension scales. See
// DESIGN.md ("Substitutions") for the full rationale. Every stand-in is a
// fixed-seed mixture of Gaussians, so all runs see identical data.

#ifndef HYPERDOM_DATA_DATASETS_H_
#define HYPERDOM_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/point.h"

namespace hyperdom {

/// The paper's four real datasets.
enum class RealDataset {
  kNba,      ///< 17,265 x 17 — player season statistics
  kColor,    ///< 68,040 x  9 — Corel color features
  kTexture,  ///< 68,040 x 16 — Corel texture features
  kForest,   ///< 82,012 x 10 — USFS RIS / covertype-style attributes
};

/// Static facts about a dataset.
struct RealDatasetInfo {
  std::string name;
  size_t n = 0;
  size_t dim = 0;
};

/// Rejects values outside the RealDataset enum (a corrupted or miscast
/// value, e.g. from a config file) with kInvalidArgument.
Status ValidateRealDataset(RealDataset dataset);

/// Name/cardinality/dimensionality (matches the paper's description).
/// Out-of-enum values fall back to the NBA spec; use ValidateRealDataset()
/// or LoadRealStandInChecked() where an error report is wanted.
RealDatasetInfo GetRealDatasetInfo(RealDataset dataset);

/// All four datasets in the paper's Figure 10 order.
const std::vector<RealDataset>& AllRealDatasets();

/// \brief Materializes the stand-in point cloud for `dataset`.
///
/// Pass `sample_n` > 0 to cap the number of points (keeps unit tests fast);
/// 0 means the full paper-size cloud. Out-of-enum values fall back to the
/// NBA spec (see LoadRealStandInChecked for the reporting variant).
std::vector<Point> LoadRealStandIn(RealDataset dataset, size_t sample_n = 0);

/// Status-reporting variant of LoadRealStandIn(): kInvalidArgument on an
/// out-of-enum `dataset` value instead of the former assert/abort.
Result<std::vector<Point>> LoadRealStandInChecked(RealDataset dataset,
                                                  size_t sample_n = 0);

}  // namespace hyperdom

#endif  // HYPERDOM_DATA_DATASETS_H_
