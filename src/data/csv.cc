// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/csv.h"

#include <cstdio>
#include <string_view>

#include "common/fault.h"
#include "common/io.h"
#include "common/str_util.h"

namespace hyperdom {

Status SaveSpheresCsv(const std::string& path,
                      const std::vector<Hypersphere>& spheres) {
  size_t dim = spheres.empty() ? 0 : spheres.front().dim();
  for (const auto& s : spheres) {
    if (s.dim() != dim) {
      return Status::InvalidArgument(
          "all spheres in a CSV file must share one dimensionality");
    }
  }
  HYPERDOM_FAULT_POINT("csv/open_write");
  // Assemble the whole file in memory, then hand it to the hardened
  // EINTR/partial-write loop in common/io: one syscall path to audit, and
  // an errno-mapped Status ("write '<path>': No space left on device")
  // instead of a generic stream failure.
  std::string body = "# hyperdom spheres: c_1,...,c_d,radius\n";
  char buf[64];
  for (const auto& s : spheres) {
    HYPERDOM_FAULT_POINT("csv/write_row");
    for (double c : s.center()) {
      std::snprintf(buf, sizeof(buf), "%.17g,", c);
      body += buf;
    }
    std::snprintf(buf, sizeof(buf), "%.17g\n", s.radius());
    body += buf;
  }
  return WriteStringToFile(path, body);
}

Result<std::vector<Hypersphere>> LoadSpheresCsv(const std::string& path) {
  HYPERDOM_FAULT_POINT("csv/open_read");
  Result<std::string> file = ReadFileToString(path);
  if (!file.ok()) return file.status();
  std::vector<Hypersphere> spheres;
  size_t dim = 0;
  size_t line_no = 0;
  std::string_view rest(*file);
  while (!rest.empty()) {
    const size_t eol = rest.find('\n');
    const std::string_view line =
        eol == std::string_view::npos ? rest : rest.substr(0, eol);
    rest.remove_prefix(eol == std::string_view::npos ? rest.size() : eol + 1);
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    HYPERDOM_FAULT_POINT("csv/parse_row");
    const std::vector<std::string> fields = Split(stripped, ',');
    if (fields.size() < 2) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": need at least one coordinate and a radius");
    }
    std::vector<double> values(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      if (!ParseDouble(fields[i], &values[i])) {
        return Status::Corruption("line " + std::to_string(line_no) +
                                  ": bad number '" + fields[i] + "'");
      }
    }
    const double radius = values.back();
    values.pop_back();
    // Validate before construction: the Hypersphere constructor asserts the
    // same invariants, and corrupt rows (nan/inf coordinates, negative
    // radius) must surface as kCorruption, not propagate NaN downstream.
    if (const Status invalid = Hypersphere::Validate(values, radius);
        !invalid.ok()) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                invalid.message());
    }
    if (dim == 0) {
      dim = values.size();
    } else if (values.size() != dim) {
      return Status::Corruption("line " + std::to_string(line_no) +
                                ": inconsistent dimensionality");
    }
    spheres.emplace_back(std::move(values), radius);
  }
  return spheres;
}

}  // namespace hyperdom
