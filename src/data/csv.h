// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// CSV persistence for hypersphere datasets. Format: one sphere per line,
// `c_1,c_2,...,c_d,radius`, with an optional `# comment` header. All
// spheres in a file must share one dimensionality.

#ifndef HYPERDOM_DATA_CSV_H_
#define HYPERDOM_DATA_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"

namespace hyperdom {

/// Writes `spheres` to `path`, overwriting. Fails with an errno-mapped
/// IOError if the file cannot be created or written (EINTR and partial
/// writes are retried) or InvalidArgument on mixed dimensionalities.
Status SaveSpheresCsv(const std::string& path,
                      const std::vector<Hypersphere>& spheres);

/// Reads spheres from `path`. Fails with NotFound on a missing file, an
/// errno-mapped IOError on other read failures, Corruption on malformed
/// rows (bad number, inconsistent dimensionality, negative radius).
Result<std::vector<Hypersphere>> LoadSpheresCsv(const std::string& path);

}  // namespace hyperdom

#endif  // HYPERDOM_DATA_CSV_H_
