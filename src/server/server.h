// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The hyperdom query server: a blocking-accept loop feeding the exec
// ThreadPool through a bounded admission queue, speaking HDNP frames
// (server/protocol.h) over TCP.
//
// Robustness contract — every request either completes exactly, degrades
// to a certified-subset kBestEffort answer, or is shed with an explicit
// error frame; the server never hangs on a request and a misbehaving
// client never takes it down:
//
//   * Deadline propagation. A client budget becomes a Deadline at
//     ADMISSION time, so time spent queued counts against it; the query
//     drivers return flagged best-effort subsets on expiry (robustness.md
//     §7), which flow back as normal responses, not errors.
//   * Admission control. The request queue is bounded; when it is full
//     (or the server is draining) the request is answered immediately
//     with kOverloaded — the connection stays open, memory stays bounded.
//   * Hardened connection loop. Truncated frames, CRC mismatches,
//     oversized or malformed payloads get a kProtocolError frame and the
//     connection is closed (a byte stream cannot be resynced); slow
//     clients are bounded by poll timeouts; EINTR/partial transfers are
//     retried; writes cannot raise SIGPIPE (net.h).
//   * Graceful drain. Stop() closes the listener, wakes every connection
//     with a read-side shutdown, lets in-flight queries finish and their
//     responses flush, then joins all threads. Requests that race the
//     drain are shed with kOverloaded.
//
// Fault sites server/accept, server/read, server/write, server/enqueue
// make each failure edge deterministically testable.

#ifndef HYPERDOM_SERVER_SERVER_H_
#define HYPERDOM_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "dominance/criterion.h"
#include "exec/thread_pool.h"
#include "index/ss_tree.h"
#include "server/protocol.h"

namespace hyperdom {

class MutableSsTree;

namespace shard {
class ShardedStore;
}  // namespace shard

namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = pick an ephemeral port (read back via port())
  /// Query workers; 0 = hardware concurrency.
  size_t worker_threads = 0;
  /// Admission-queue bound: requests beyond this are shed (kOverloaded).
  size_t queue_capacity = 128;
  /// Connections beyond this are told kOverloaded and closed at accept.
  size_t max_connections = 256;
  /// Per-frame payload cap, enforced before allocation.
  uint64_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Bound on each socket read/write wait (slow-client defense).
  int io_timeout_ms = 5000;
  /// Highest HDNP version this server accepts. Default: everything this
  /// build understands. Set to kProtocolVersion to emulate a v1-only peer
  /// (interop tests exercise the client's downgrade path against it).
  uint32_t max_protocol_version = kProtocolVersionMax;
  /// kNN latency (admission to response) at or above which one
  /// hyperdom-slowlog-v1 record is emitted. 0 disables the slow-query log.
  uint64_t slow_query_micros = 0;
  /// Runs inside Stop() immediately after the server flips to draining and
  /// BEFORE the listener closes. The admin plane hooks this to flip
  /// /readyz to 503 while the query port still accepts, so load balancers
  /// stop routing before connections start failing.
  std::function<void()> drain_begin_hook;
  /// Test-only: runs at the start of every worker drain loop (lets tests
  /// park workers to fill the queue deterministically).
  std::function<void()> worker_start_hook;
};

/// \brief Counters mirrored into obs metrics, readable directly in tests
/// (and when observability is compiled out).
struct ServerCounters {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<int64_t> active_connections{0};
  std::atomic<uint64_t> requests_served{0};
  std::atomic<uint64_t> requests_shed{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> best_effort_responses{0};
  std::atomic<uint64_t> slow_queries{0};
};

/// \brief The query server. Borrows the tree and criterion (not owned);
/// both must outlive it. Start() returns once the listener is live;
/// Stop() (or the destructor) drains gracefully.
class Server {
 public:
  Server(const SsTree* tree, const DominanceCriterion* criterion,
         ServerOptions options);

  /// \brief Mutable mode: serves kNN against the mutable tree's pinned
  /// snapshots AND accepts insert/remove frames, which flow through the
  /// same admission queue, deadline accounting, and shed policy as
  /// queries. Read-only servers answer mutation frames with
  /// kNotSupported.
  Server(MutableSsTree* tree, const DominanceCriterion* criterion,
         ServerOptions options);

  /// \brief Sharded mode: kNN requests scatter across the store's shards
  /// and gather through the merged best-known list, so answers are
  /// bit-identical to a single unsharded index (src/shard/). The scatter
  /// runs serially on the worker thread — workers already ARE the pool,
  /// and a worker waiting on its own pool would deadlock. Mutation frames
  /// get kNotSupported.
  Server(const shard::ShardedStore* store, const DominanceCriterion* criterion,
         ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and spins up the accept loop + workers.
  Status Start();

  /// Graceful drain: stop accepting, finish in-flight queries, flush
  /// their responses, join everything. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// True once Stop() has begun refusing new work.
  bool draining() const { return draining_.load(); }

  /// Current admission-queue depth (racy-but-consistent monitoring read;
  /// the admin plane's background tick samples this into the
  /// hyperdom_server_queue_depth gauge).
  size_t QueueDepth() const;

  const ServerCounters& counters() const { return counters_; }

 private:
  struct Connection;

  struct Work {
    FrameKind kind = FrameKind::kKnnRequest;
    KnnRequest request;        // valid when kind == kKnnRequest
    InsertRequest insert;      // valid when kind == kInsertRequest
    RemoveRequest remove;      // valid when kind == kRemoveRequest
    Deadline deadline;  // built at admission: queue wait burns budget
    std::chrono::steady_clock::time_point admitted;
    // Wire context: the response (including errors) is encoded at the
    // request's version, echoing its request ID (0 under v1).
    uint32_t wire_version = kProtocolVersion;
    uint64_t request_id = 0;
    std::promise<std::string> response;  // an encoded HDNP frame
  };

  // Bounded MPMC admission queue.
  bool TryEnqueue(std::unique_ptr<Work> work);
  std::unique_ptr<Work> Dequeue();  // null once closed and empty
  void CloseQueue();

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  void WorkerLoop();
  std::string ProcessRequest(Work& work);
  std::string ProcessKnn(Work& work);
  std::string ProcessMutation(Work& work);
  // Severs every live (non-retired) connection's read side so their
  // threads wind down.
  void ShutdownConnections();

  // Exactly one of the three backends is non-null, per the ctor used.
  const SsTree* tree_;
  MutableSsTree* mutable_tree_;
  const shard::ShardedStore* sharded_store_ = nullptr;
  const DominanceCriterion* criterion_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> draining_{false};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_ready_;
  std::deque<std::unique_ptr<Work>> queue_;
  bool queue_closed_ = false;

  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> workers_;

  struct Connection {
    // Guarded by conns_mu_ after the thread starts. The connection thread
    // owns the close: it retires the entry (fd = -1, then close) under
    // conns_mu_ before setting `finished`, so ShutdownConnections never
    // touches a descriptor the kernel may have recycled.
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};
  };
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  ServerCounters counters_;
};

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_SERVER_H_
