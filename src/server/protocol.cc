// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "server/protocol.h"

#include <cassert>
#include <cstring>

#include "common/crc32.h"

namespace hyperdom {
namespace server {

namespace {

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

// Bounds-checked sequential reader over a payload. Every Consume* checks
// the remaining size first, so a truncated payload fails cleanly instead
// of reading past the buffer.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes) : rest_(bytes) {}

  template <typename T>
  bool Consume(T* value) {
    if (rest_.size() < sizeof(T)) return false;
    std::memcpy(value, rest_.data(), sizeof(T));
    rest_.remove_prefix(sizeof(T));
    return true;
  }

  bool ConsumeDoubles(size_t count, std::vector<double>* out) {
    // Compare by division: `count` comes straight off the wire, and
    // count * sizeof(double) can wrap for count >= 2^61, which would let
    // the size check pass and resize() throw past vector::max_size.
    if (count > rest_.size() / sizeof(double)) return false;
    out->resize(count);
    std::memcpy(out->data(), rest_.data(), count * sizeof(double));
    rest_.remove_prefix(count * sizeof(double));
    return true;
  }

  bool ConsumeBytes(size_t count, std::string* out) {
    if (rest_.size() < count) return false;
    out->assign(rest_.data(), count);
    rest_.remove_prefix(count);
    return true;
  }

  bool empty() const { return rest_.empty(); }

 private:
  std::string_view rest_;
};

Status Malformed(const char* what) {
  return Status::ProtocolError(std::string("malformed payload: ") + what);
}

bool KnownKind(uint32_t kind) {
  return kind >= static_cast<uint32_t>(FrameKind::kKnnRequest) &&
         kind <= static_cast<uint32_t>(FrameKind::kMutateResponse);
}

// The wire form of a StatusCode. The enum's numeric values are not part of
// any stability contract, so the mapping is explicit in both directions.
uint32_t StatusCodeToWire(StatusCode code) {
  return static_cast<uint32_t>(code);
}

bool WireToStatusCode(uint32_t wire, StatusCode* out) {
  if (wire > static_cast<uint32_t>(StatusCode::kConflict)) return false;
  *out = static_cast<StatusCode>(wire);
  return *out != StatusCode::kOk;
}

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kIOError:
      return Status::IOError(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kCorruption:
      return Status::Corruption(std::move(msg));
    case StatusCode::kNotSupported:
      return Status::NotSupported(std::move(msg));
    case StatusCode::kOverloaded:
      return Status::Overloaded(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kProtocolError:
      return Status::ProtocolError(std::move(msg));
    case StatusCode::kConflict:
      return Status::Conflict(std::move(msg));
    case StatusCode::kOk:
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(msg));
}

}  // namespace

Deadline DeadlineFromRequest(const KnnRequest& request) {
  Deadline deadline;
  if (request.budget_micros > 0) {
    deadline = Deadline::AfterDuration(
        std::chrono::microseconds(request.budget_micros));
  }
  if (request.node_budget > 0) deadline.SetNodeBudget(request.node_budget);
  return deadline;
}

std::string EncodeFrame(FrameKind kind, std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  AppendPod(&frame, kProtocolVersion);
  AppendPod(&frame, static_cast<uint32_t>(kind));
  AppendPod(&frame, static_cast<uint64_t>(payload.size()));
  AppendPod(&frame, Crc32Of(payload.data(), payload.size()));
  frame.append(payload);
  return frame;
}

std::string EncodeFrameV2(FrameKind kind, uint64_t request_id,
                          std::string_view payload) {
  std::string prefixed;
  prefixed.reserve(sizeof(request_id) + payload.size());
  AppendPod(&prefixed, request_id);
  prefixed.append(payload);
  std::string frame;
  frame.reserve(kFrameHeaderSize + prefixed.size());
  frame.append(kFrameMagic, sizeof(kFrameMagic));
  AppendPod(&frame, kProtocolVersionV2);
  AppendPod(&frame, static_cast<uint32_t>(kind));
  AppendPod(&frame, static_cast<uint64_t>(prefixed.size()));
  AppendPod(&frame, Crc32Of(prefixed.data(), prefixed.size()));
  frame.append(prefixed);
  return frame;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view bytes,
                                      uint64_t max_payload_bytes,
                                      uint32_t max_version) {
  if (bytes.size() != kFrameHeaderSize) {
    return Status::ProtocolError("truncated frame header: " +
                                 std::to_string(bytes.size()) + " of " +
                                 std::to_string(kFrameHeaderSize) + " bytes");
  }
  ByteReader in(bytes);
  char magic[4];
  in.Consume(&magic);
  if (std::memcmp(magic, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::ProtocolError("bad magic: not a hyperdom frame");
  }
  uint32_t version = 0;
  uint32_t kind = 0;
  FrameHeader header;
  in.Consume(&version);
  in.Consume(&kind);
  in.Consume(&header.payload_size);
  in.Consume(&header.payload_crc);
  if (version < kProtocolVersion || version > max_version) {
    return Status::ProtocolError("unsupported protocol version " +
                                 std::to_string(version));
  }
  header.version = version;
  if (!KnownKind(kind)) {
    return Status::ProtocolError("unknown frame kind " + std::to_string(kind));
  }
  header.kind = static_cast<FrameKind>(kind);
  if (header.payload_size > max_payload_bytes) {
    return Status::ProtocolError(
        "payload size " + std::to_string(header.payload_size) +
        " exceeds limit " + std::to_string(max_payload_bytes));
  }
  return header;
}

Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload) {
  if (Crc32Of(payload.data(), payload.size()) != header.payload_crc) {
    return Status::ProtocolError("payload checksum mismatch");
  }
  return Status::OK();
}

Status ExtractRequestId(const FrameHeader& header, std::string_view* payload,
                        uint64_t* request_id) {
  *request_id = 0;
  if (header.version < kProtocolVersionV2) return Status::OK();
  if (payload->size() < sizeof(uint64_t)) {
    return Status::ProtocolError(
        "v2 payload shorter than its request-id prefix");
  }
  std::memcpy(request_id, payload->data(), sizeof(uint64_t));
  payload->remove_prefix(sizeof(uint64_t));
  return Status::OK();
}

std::string EncodeKnnRequest(const KnnRequest& request) {
  std::string payload;
  const size_t dim = request.query.dim();
  payload.reserve(3 * sizeof(uint64_t) + 2 * sizeof(uint32_t) +
                  (dim + 1) * sizeof(double));
  AppendPod(&payload, request.budget_micros);
  AppendPod(&payload, request.node_budget);
  AppendPod(&payload, request.k);
  AppendPod(&payload, static_cast<uint32_t>(request.strategy));
  AppendPod(&payload, static_cast<uint64_t>(dim));
  for (double c : request.query.center()) AppendPod(&payload, c);
  AppendPod(&payload, request.query.radius());
  return payload;
}

Result<KnnRequest> DecodeKnnRequest(std::string_view payload) {
  ByteReader in(payload);
  KnnRequest request;
  uint32_t strategy = 0;
  uint64_t dim = 0;
  if (!in.Consume(&request.budget_micros) ||
      !in.Consume(&request.node_budget) || !in.Consume(&request.k) ||
      !in.Consume(&strategy) || !in.Consume(&dim)) {
    return Malformed("truncated knn request header");
  }
  if (strategy > static_cast<uint32_t>(SearchStrategy::kBestFirst)) {
    return Malformed("unknown search strategy");
  }
  request.strategy = static_cast<SearchStrategy>(strategy);
  if (request.k == 0) return Malformed("k must be positive");
  if (dim == 0) return Malformed("query dimensionality must be positive");
  // dim is a raw wire value (it can lie — even overflow count*8):
  // ConsumeDoubles checks it against the bytes actually present before
  // allocating, so a lying dim fails cleanly here.
  std::vector<double> center;
  double radius = 0.0;
  if (!in.ConsumeDoubles(dim, &center) || !in.Consume(&radius)) {
    return Malformed("truncated query sphere");
  }
  if (!in.empty()) return Malformed("trailing bytes after knn request");
  if (const Status invalid = Hypersphere::Validate(center, radius);
      !invalid.ok()) {
    return Status::ProtocolError("invalid query sphere: " + invalid.message());
  }
  request.query = Hypersphere(std::move(center), radius);
  return request;
}

std::string EncodeKnnResponse(const KnnResponse& response) {
  std::string payload;
  const size_t dim =
      response.answers.empty() ? 0 : response.answers.front().sphere.dim();
  payload.reserve(sizeof(uint32_t) + 2 * sizeof(uint64_t) +
                  response.answers.size() *
                      (sizeof(uint64_t) + (dim + 1) * sizeof(double)));
  AppendPod(&payload, static_cast<uint32_t>(response.completeness));
  AppendPod(&payload, static_cast<uint64_t>(dim));
  AppendPod(&payload, static_cast<uint64_t>(response.answers.size()));
  for (const DataEntry& entry : response.answers) {
    AppendPod(&payload, entry.id);
    for (double c : entry.sphere.center()) AppendPod(&payload, c);
    AppendPod(&payload, entry.sphere.radius());
  }
  return payload;
}

Result<KnnResponse> DecodeKnnResponse(std::string_view payload) {
  ByteReader in(payload);
  KnnResponse response;
  uint32_t completeness = 0;
  uint64_t dim = 0;
  uint64_t count = 0;
  if (!in.Consume(&completeness) || !in.Consume(&dim) || !in.Consume(&count)) {
    return Malformed("truncated knn response header");
  }
  if (completeness > static_cast<uint32_t>(Completeness::kBestEffort)) {
    return Malformed("unknown completeness tag");
  }
  response.completeness = static_cast<Completeness>(completeness);
  // Entries are parsed one at a time, so `count` never drives an
  // allocation larger than the bytes actually present.
  for (uint64_t i = 0; i < count; ++i) {
    DataEntry entry;
    std::vector<double> center;
    double radius = 0.0;
    if (!in.Consume(&entry.id) || !in.ConsumeDoubles(dim, &center) ||
        !in.Consume(&radius)) {
      return Malformed("truncated knn response entry");
    }
    if (const Status invalid = Hypersphere::Validate(center, radius);
        !invalid.ok()) {
      return Status::ProtocolError("invalid answer sphere: " +
                                   invalid.message());
    }
    entry.sphere = Hypersphere(std::move(center), radius);
    response.answers.push_back(std::move(entry));
  }
  if (!in.empty()) return Malformed("trailing bytes after knn response");
  return response;
}

std::string EncodeInsertRequest(const InsertRequest& request) {
  std::string payload;
  const size_t dim = request.sphere.dim();
  payload.reserve(3 * sizeof(uint64_t) + (dim + 1) * sizeof(double));
  AppendPod(&payload, request.budget_micros);
  AppendPod(&payload, request.id);
  AppendPod(&payload, static_cast<uint64_t>(dim));
  for (double c : request.sphere.center()) AppendPod(&payload, c);
  AppendPod(&payload, request.sphere.radius());
  return payload;
}

Result<InsertRequest> DecodeInsertRequest(std::string_view payload) {
  ByteReader in(payload);
  InsertRequest request;
  uint64_t dim = 0;
  if (!in.Consume(&request.budget_micros) || !in.Consume(&request.id) ||
      !in.Consume(&dim)) {
    return Malformed("truncated insert request header");
  }
  if (dim == 0) return Malformed("sphere dimensionality must be positive");
  // As in DecodeKnnRequest: dim is untrusted; ConsumeDoubles checks it
  // against the bytes present before allocating.
  std::vector<double> center;
  double radius = 0.0;
  if (!in.ConsumeDoubles(dim, &center) || !in.Consume(&radius)) {
    return Malformed("truncated insert sphere");
  }
  if (!in.empty()) return Malformed("trailing bytes after insert request");
  if (const Status invalid = Hypersphere::Validate(center, radius);
      !invalid.ok()) {
    return Status::ProtocolError("invalid insert sphere: " +
                                 invalid.message());
  }
  request.sphere = Hypersphere(std::move(center), radius);
  return request;
}

std::string EncodeRemoveRequest(const RemoveRequest& request) {
  std::string payload;
  payload.reserve(2 * sizeof(uint64_t));
  AppendPod(&payload, request.budget_micros);
  AppendPod(&payload, request.id);
  return payload;
}

Result<RemoveRequest> DecodeRemoveRequest(std::string_view payload) {
  ByteReader in(payload);
  RemoveRequest request;
  if (!in.Consume(&request.budget_micros) || !in.Consume(&request.id)) {
    return Malformed("truncated remove request");
  }
  if (!in.empty()) return Malformed("trailing bytes after remove request");
  return request;
}

std::string EncodeMutateResponse(const MutateResponse& response) {
  std::string payload;
  payload.reserve(2 * sizeof(uint64_t));
  AppendPod(&payload, response.version);
  AppendPod(&payload, response.live);
  return payload;
}

Result<MutateResponse> DecodeMutateResponse(std::string_view payload) {
  ByteReader in(payload);
  MutateResponse response;
  if (!in.Consume(&response.version) || !in.Consume(&response.live)) {
    return Malformed("truncated mutate response");
  }
  if (!in.empty()) return Malformed("trailing bytes after mutate response");
  return response;
}

std::string EncodeErrorResponse(const Status& status) {
  assert(!status.ok() && "error frames carry failures only");
  std::string payload;
  payload.reserve(2 * sizeof(uint32_t) + status.message().size());
  AppendPod(&payload, StatusCodeToWire(status.code()));
  AppendPod(&payload, static_cast<uint32_t>(status.message().size()));
  payload.append(status.message());
  return payload;
}

Status DecodeErrorResponse(std::string_view payload, Status* decoded) {
  ByteReader in(payload);
  uint32_t wire_code = 0;
  uint32_t msg_len = 0;
  if (!in.Consume(&wire_code) || !in.Consume(&msg_len)) {
    return Malformed("truncated error response");
  }
  StatusCode code = StatusCode::kInternal;
  if (!WireToStatusCode(wire_code, &code)) {
    return Malformed("unknown status code in error response");
  }
  std::string message;
  if (!in.ConsumeBytes(msg_len, &message)) {
    return Malformed("truncated error message");
  }
  if (!in.empty()) return Malformed("trailing bytes after error response");
  *decoded = MakeStatus(code, std::move(message));
  return Status::OK();
}

}  // namespace server
}  // namespace hyperdom
