// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The live admin plane: a minimal, dependency-free HTTP/1.0 responder on
// a second port, built on the same hardened net.h IO as the query path
// (poll-bounded reads and writes, EINTR-safe, slow-client timeout).
//
// Endpoints (GET only; anything else is 405, unknown paths 404):
//
//   /metrics       Prometheus text exposition (RenderPrometheus)
//   /metrics.json  JSON export, schema hyperdom-metrics-v1 (RenderJson)
//   /healthz       liveness: 200 "ok" while the process serves
//   /readyz        readiness: 200 "ready", or 503 "draining" once
//                  SetReady(false) — the query server's drain_begin_hook
//                  flips it BEFORE the query listener closes, so load
//                  balancers stop routing ahead of connection failures
//   /statusz       JSON: uptime, build info, store version/epoch lag,
//                  admission-queue depth, in-flight connections
//   /tracez        the recent-span ring buffer in Chrome trace format
//
// Hardening: the request buffer is capped (431 beyond the cap), a
// malformed request line gets 400, and every reject is counted in
// hyperdom_admin_http_errors_total — a corrupt or hostile admin request
// never reaches the query path, it costs one bounded admin read.
//
// A background tick (AdminOptions::tick_interval_ms) re-samples the
// admission-queue depth and epoch lag into their gauges, so a scrape sees
// fresh values even when traffic (and therefore the enqueue/retire call
// sites that normally set them) has stalled.
//
// Connection model: accept loop + inline handling, one request per
// connection (Connection: close). The admin plane is an operator surface,
// not a data plane — a stalled scraper delays the next scrape by at most
// io_timeout_ms and touches nothing on the query path.

#ifndef HYPERDOM_SERVER_ADMIN_H_
#define HYPERDOM_SERVER_ADMIN_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"

namespace hyperdom {
namespace server {

struct AdminOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  ///< 0 = ephemeral (read back via port())
  /// Bound on each socket read/write wait (slow-scraper defense).
  int io_timeout_ms = 2000;
  /// Request cap: headers beyond this get 431 and the connection closes.
  size_t max_request_bytes = 8192;
  /// Gauge re-sample period; 0 disables the background tick.
  int tick_interval_ms = 1000;
  /// Free-form build identification shown in /statusz.
  std::string build_info;
};

/// \brief Admin-plane counters, readable directly in tests.
struct AdminCounters {
  std::atomic<uint64_t> requests{0};     ///< 200-answered requests
  std::atomic<uint64_t> http_errors{0};  ///< 400/404/405/431 rejects
  std::atomic<uint64_t> ticks{0};        ///< background gauge samples
};

/// \brief The admin HTTP server.
///
/// Decoupled from Server by a bundle of sampling callbacks, so it can
/// front a read-only server, a mutable one, or a test harness with no
/// query server at all. Every callback is optional (absent = reported 0).
class AdminServer {
 public:
  /// Live-state sources sampled per request (/statusz) and per tick.
  /// Callbacks must be thread-safe; they run on admin-plane threads.
  struct Sources {
    std::function<size_t()> queue_depth;          ///< admission queue
    std::function<int64_t()> active_connections;  ///< query-plane conns
    std::function<uint64_t()> requests_served;
    std::function<uint64_t()> store_version;  ///< published store version
    std::function<uint64_t()> store_live;     ///< live rows
    std::function<size_t()> shards;  ///< shard count; 0/absent = unsharded
  };

  AdminServer(AdminOptions options, Sources sources);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Binds, listens, spins up the accept loop and the sampling tick.
  Status Start();

  /// Stops accepting, joins the accept and tick threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start(); resolves port 0 requests).
  uint16_t port() const { return port_; }

  /// Readiness as served by /readyz. Starts true; the query server's
  /// drain_begin_hook calls SetReady(false) when Stop() begins.
  void SetReady(bool ready) { ready_.store(ready); }
  bool ready() const { return ready_.load(); }

  const AdminCounters& counters() const { return counters_; }

 private:
  void AcceptLoop();
  void TickLoop();
  void HandleConnection(int fd);
  void SampleGauges();
  std::string RenderStatusz() const;

  AdminOptions options_;
  Sources sources_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> started_{false};
  std::atomic<bool> ready_{true};
  std::chrono::steady_clock::time_point started_at_;

  std::thread accept_thread_;
  std::thread tick_thread_;
  std::mutex tick_mu_;
  std::condition_variable tick_cv_;
  bool tick_stop_ = false;

  AdminCounters counters_;
};

/// Minimal HTTP response as seen by AdminHttpGet.
struct HttpResponse {
  int status_code = 0;
  std::string body;
};

/// The curl-equivalent client: one HTTP/1.0 GET against host:port,
/// whole-call bounded by timeout_ms. Used by tests, the load generator,
/// and anyone without curl on the box.
Result<HttpResponse> AdminHttpGet(const std::string& host, uint16_t port,
                                  const std::string& target, int timeout_ms);

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_ADMIN_H_
