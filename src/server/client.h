// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Fault-tolerant client for the hyperdom query server. Wraps one TCP
// connection with:
//
//   * configurable connect and per-IO timeouts (poll-bounded, EINTR-safe);
//   * connection retry with bounded exponential backoff plus deterministic
//     jitter (seeded Rng, so a test's retry schedule reproduces exactly);
//   * transparent retry of idempotent requests after transport failures
//     (connect refused, reset, EOF) and after kOverloaded responses —
//     kNN queries are read-only, so re-sending is always safe;
//   * NO retry on kProtocolError (a malformed exchange will not improve)
//     or on client-side IO timeout (the caller's time budget is spent —
//     kDeadlineExceeded goes back to the caller, who owns the tradeoff).
//
// Thread-compatible: one Client per thread; concurrent calls on one
// instance are not supported.

#ifndef HYPERDOM_SERVER_CLIENT_H_
#define HYPERDOM_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "server/protocol.h"

namespace hyperdom {
namespace server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Bound on each read/write wait. A server still computing past this is
  /// reported as kDeadlineExceeded (the request may complete server-side).
  int io_timeout_ms = 10000;
  /// Total tries per request (first attempt + retries). Minimum 1.
  int max_attempts = 4;
  /// Backoff before retry t is min(base << t, max), jittered to a uniform
  /// draw from [half, full] so synchronized clients desynchronize.
  int backoff_base_ms = 10;
  int backoff_max_ms = 2000;
  uint64_t jitter_seed = 0x5EEDu;
  /// Per-frame payload cap enforced on responses, pre-allocation.
  uint64_t max_payload_bytes = kDefaultMaxPayloadBytes;
  /// Highest HDNP version to speak (and accept). The default sends v2
  /// frames carrying a request ID; against a v1-only server the first
  /// kProtocolError rejection triggers a transparent, sticky downgrade to
  /// v1 (no request IDs, no desync). Set to kProtocolVersion to emulate a
  /// v1-only client.
  uint32_t max_protocol_version = kProtocolVersionMax;
};

/// \brief One logical connection to a hyperdom server, reconnecting and
/// retrying per the options above.
class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Liveness probe (retried like any idempotent request).
  Status Ping();

  /// Runs one kNN query. Exact or best-effort per the server's deadline
  /// handling; kOverloaded only after every attempt was shed.
  Result<KnnResponse> Knn(const KnnRequest& request);

  /// \name Mutations. Retried on the same transport-failure/kOverloaded
  /// policy as queries, which makes delivery AT-LEAST-ONCE: if the
  /// connection dies after the server applied the mutation but before the
  /// ack arrived, the retry re-sends it. Ids make this detectable — a
  /// re-applied Insert comes back kInvalidArgument (duplicate id) and a
  /// re-applied Remove comes back kNotFound, either of which the caller
  /// may treat as "already applied". kConflict (store frozen or
  /// compacting) is returned as-is, not retried.
  /// @{
  Result<MutateResponse> Insert(const InsertRequest& request);
  Result<MutateResponse> Remove(const RemoveRequest& request);
  /// @}

  /// Drops the connection (the next request reconnects).
  void Close();

  /// Attempts consumed by the last request (for tests and the load gen).
  int last_attempts() const { return last_attempts_; }

  /// Request ID the last request was sent under (echoed by the server on
  /// its response frame and annotated on both sides' spans). 0 when the
  /// request went out as v1 (no IDs on that wire).
  uint64_t last_request_id() const { return last_request_id_; }

 private:
  Status EnsureConnected();
  /// One send/receive exchange on the live connection. kind_out receives
  /// the response frame kind; the payload (request-ID prefix already
  /// stripped) goes to payload_out; the response's wire version and
  /// echoed ID go to version_out / echoed_id_out.
  Status Exchange(const std::string& frame, FrameKind* kind_out,
                  std::string* payload_out, uint32_t* version_out,
                  uint64_t* echoed_id_out);
  /// Full request with retry/backoff: encodes `payload` per attempt at the
  /// negotiated wire version (downgrading once on a v1-only peer), checks
  /// the echoed request ID, and on success returns the response (kind +
  /// payload) of the final attempt.
  Status Call(FrameKind request_kind, const std::string& request_payload,
              FrameKind* kind_out, std::string* payload_out);
  void Backoff(int attempt);
  uint64_t NextRequestId();
  /// The version the next frame goes out at.
  uint32_t WireVersion() const;

  ClientOptions options_;
  Rng jitter_;
  int fd_ = -1;
  int last_attempts_ = 0;
  uint64_t next_request_id_ = 1;
  uint64_t last_request_id_ = 0;
  // Version negotiation state: sticky downgrade after a v1-only peer
  // rejects a v2 header; confirmation pins v2 so a later genuine
  // kProtocolError can never silently drop the IDs.
  bool peer_v1_only_ = false;
  bool v2_confirmed_ = false;
};

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_CLIENT_H_
