// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Fault-tolerant client for the hyperdom query server. Wraps one TCP
// connection with:
//
//   * configurable connect and per-IO timeouts (poll-bounded, EINTR-safe);
//   * connection retry with bounded exponential backoff plus deterministic
//     jitter (seeded Rng, so a test's retry schedule reproduces exactly);
//   * transparent retry of idempotent requests after transport failures
//     (connect refused, reset, EOF) and after kOverloaded responses —
//     kNN queries are read-only, so re-sending is always safe;
//   * NO retry on kProtocolError (a malformed exchange will not improve)
//     or on client-side IO timeout (the caller's time budget is spent —
//     kDeadlineExceeded goes back to the caller, who owns the tradeoff).
//
// Thread-compatible: one Client per thread; concurrent calls on one
// instance are not supported.

#ifndef HYPERDOM_SERVER_CLIENT_H_
#define HYPERDOM_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "server/protocol.h"

namespace hyperdom {
namespace server {

struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int connect_timeout_ms = 2000;
  /// Bound on each read/write wait. A server still computing past this is
  /// reported as kDeadlineExceeded (the request may complete server-side).
  int io_timeout_ms = 10000;
  /// Total tries per request (first attempt + retries). Minimum 1.
  int max_attempts = 4;
  /// Backoff before retry t is min(base << t, max), jittered to a uniform
  /// draw from [half, full] so synchronized clients desynchronize.
  int backoff_base_ms = 10;
  int backoff_max_ms = 2000;
  uint64_t jitter_seed = 0x5EEDu;
  /// Per-frame payload cap enforced on responses, pre-allocation.
  uint64_t max_payload_bytes = kDefaultMaxPayloadBytes;
};

/// \brief One logical connection to a hyperdom server, reconnecting and
/// retrying per the options above.
class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Liveness probe (retried like any idempotent request).
  Status Ping();

  /// Runs one kNN query. Exact or best-effort per the server's deadline
  /// handling; kOverloaded only after every attempt was shed.
  Result<KnnResponse> Knn(const KnnRequest& request);

  /// \name Mutations. Retried on the same transport-failure/kOverloaded
  /// policy as queries, which makes delivery AT-LEAST-ONCE: if the
  /// connection dies after the server applied the mutation but before the
  /// ack arrived, the retry re-sends it. Ids make this detectable — a
  /// re-applied Insert comes back kInvalidArgument (duplicate id) and a
  /// re-applied Remove comes back kNotFound, either of which the caller
  /// may treat as "already applied". kConflict (store frozen or
  /// compacting) is returned as-is, not retried.
  /// @{
  Result<MutateResponse> Insert(const InsertRequest& request);
  Result<MutateResponse> Remove(const RemoveRequest& request);
  /// @}

  /// Drops the connection (the next request reconnects).
  void Close();

  /// Attempts consumed by the last request (for tests and the load gen).
  int last_attempts() const { return last_attempts_; }

 private:
  Status EnsureConnected();
  /// One send/receive exchange on the live connection. kind_out receives
  /// the response frame kind; the payload goes to payload_out.
  Status Exchange(const std::string& frame, FrameKind* kind_out,
                  std::string* payload_out);
  /// Full request with retry/backoff; on success returns the response
  /// (kind + payload) of the final attempt.
  Status Call(const std::string& frame, FrameKind* kind_out,
              std::string* payload_out);
  void Backoff(int attempt);

  ClientOptions options_;
  Rng jitter_;
  int fd_ = -1;
  int last_attempts_ = 0;
};

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_CLIENT_H_
