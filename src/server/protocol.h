// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The hyperdom network protocol (HDNP): length-prefixed binary frames in
// the HDSP snapshot-envelope idiom — magic | version | kind | payload_size
// | payload_crc32 | payload. Layout is host-endian, like the snapshot
// format: this is a same-machine / same-architecture protocol, and the
// doubles it carries must round-trip bit-identically (the loopback e2e
// test asserts answers equal the direct KnnSearcher's bit for bit).
//
// Every decoder is hardened for untrusted input: the header is validated
// (magic, version, kind, size cap) BEFORE the payload is allocated or
// read, the CRC is compared before any payload field is parsed, and the
// payload readers bounds-check every field, so a truncated, bit-flipped,
// or adversarial frame yields Status::ProtocolError — never a crash, an
// over-allocation, or a silently wrong answer.

#ifndef HYPERDOM_SERVER_PROTOCOL_H_
#define HYPERDOM_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "index/entry.h"
#include "query/knn_types.h"

namespace hyperdom {
namespace server {

/// Frame type tags on the wire.
enum class FrameKind : uint32_t {
  kKnnRequest = 1,
  kKnnResponse = 2,
  kErrorResponse = 3,
  kPingRequest = 4,
  kPongResponse = 5,
  // Mutability (protocol version 1 extension: old peers reject the kinds
  // as unknown, which the client surfaces as a clean ProtocolError).
  kInsertRequest = 6,
  kRemoveRequest = 7,
  kMutateResponse = 8,
};

inline constexpr char kFrameMagic[4] = {'H', 'D', 'N', 'P'};
inline constexpr uint32_t kProtocolVersion = 1;

/// Protocol version 2: identical 24-byte header, but the payload begins
/// with a u64 request ID (client-generated, echoed verbatim on EVERY
/// response frame including errors and sheds, so client and server logs,
/// spans, and slow-query records correlate). The CRC covers the prefixed
/// payload. A v1 peer rejects version 2 at the header check with
/// kProtocolError — the client downgrades and retries as v1, so mixed
/// fleets interoperate with no request IDs and no desync.
inline constexpr uint32_t kProtocolVersionV2 = 2;

/// Highest version this build understands. Receivers accept 1..max.
inline constexpr uint32_t kProtocolVersionMax = kProtocolVersionV2;

/// Fixed wire size of the frame header: magic(4) + version(4) + kind(4) +
/// payload_size(8) + payload_crc32(4).
inline constexpr size_t kFrameHeaderSize = 24;

/// Default cap a receiver enforces on the declared payload size, checked
/// before any allocation. Far above any real request/response here, far
/// below anything that could OOM the process.
inline constexpr uint64_t kDefaultMaxPayloadBytes = 16ull << 20;

/// A validated frame header (magic already checked and stripped).
struct FrameHeader {
  uint32_t version = kProtocolVersion;
  FrameKind kind = FrameKind::kPingRequest;
  uint64_t payload_size = 0;
  uint32_t payload_crc = 0;
};

/// One kNN query as sent by a client. A zero budget means unbounded.
struct KnnRequest {
  uint64_t budget_micros = 0;  ///< wall-clock budget; 0 = unbounded
  uint64_t node_budget = 0;    ///< node-visit budget; 0 = unbounded
  uint32_t k = 10;
  SearchStrategy strategy = SearchStrategy::kBestFirst;
  Hypersphere query;
};

/// The answer set for one kNN request.
struct KnnResponse {
  Completeness completeness = Completeness::kExact;
  std::vector<DataEntry> answers;
};

/// Inserts one sphere under a caller-chosen id. A zero budget means
/// unbounded; the deadline covers queue wait, like kNN requests.
struct InsertRequest {
  uint64_t budget_micros = 0;
  uint64_t id = 0;
  Hypersphere sphere;
};

/// Deletes the live row under `id`.
struct RemoveRequest {
  uint64_t budget_micros = 0;
  uint64_t id = 0;
};

/// Acknowledges an applied mutation: the store version it published and
/// the live-row count after it.
struct MutateResponse {
  uint64_t version = 0;
  uint64_t live = 0;
};

/// Builds the client-side Deadline implied by a request's budgets.
Deadline DeadlineFromRequest(const KnnRequest& request);

/// Assembles a complete version-1 frame (header + payload) ready to write.
std::string EncodeFrame(FrameKind kind, std::string_view payload);

/// Assembles a version-2 frame: the payload is prefixed with `request_id`
/// and the CRC covers the prefixed bytes.
std::string EncodeFrameV2(FrameKind kind, uint64_t request_id,
                          std::string_view payload);

/// Validates `bytes` (exactly kFrameHeaderSize of them) as a frame header:
/// magic, version in [1, max_version], known kind, and payload_size <=
/// max_payload_bytes. Returns kProtocolError otherwise. Runs BEFORE the
/// payload is read, so a corrupt size field never drives an allocation.
/// Pass max_version = kProtocolVersion to emulate a v1-only peer.
Result<FrameHeader> DecodeFrameHeader(
    std::string_view bytes, uint64_t max_payload_bytes,
    uint32_t max_version = kProtocolVersionMax);

/// Splits the request-ID prefix off a CRC-verified payload according to
/// the frame version: v1 leaves `*payload` untouched and sets
/// `*request_id` to 0; v2 strips the leading u64 (kProtocolError when the
/// payload is shorter than the prefix).
Status ExtractRequestId(const FrameHeader& header, std::string_view* payload,
                        uint64_t* request_id);

/// Compares the payload bytes against the header CRC; kProtocolError on
/// mismatch (a bit flip anywhere in the payload).
Status VerifyPayloadCrc(const FrameHeader& header, std::string_view payload);

/// \name Payload codecs. Encoders are infallible; decoders bounds-check
/// every field and return kProtocolError on malformed input.
/// @{
std::string EncodeKnnRequest(const KnnRequest& request);
Result<KnnRequest> DecodeKnnRequest(std::string_view payload);

std::string EncodeKnnResponse(const KnnResponse& response);
Result<KnnResponse> DecodeKnnResponse(std::string_view payload);

std::string EncodeInsertRequest(const InsertRequest& request);
Result<InsertRequest> DecodeInsertRequest(std::string_view payload);

std::string EncodeRemoveRequest(const RemoveRequest& request);
Result<RemoveRequest> DecodeRemoveRequest(std::string_view payload);

std::string EncodeMutateResponse(const MutateResponse& response);
Result<MutateResponse> DecodeMutateResponse(std::string_view payload);

/// Error payloads carry (status code, message). Encoding a non-error
/// status is a caller bug (asserted).
std::string EncodeErrorResponse(const Status& status);

/// Parses an error payload into `*decoded` (the remote failure). Returns
/// OK when parsing succeeded; kProtocolError when the payload itself is
/// malformed.
Status DecodeErrorResponse(std::string_view payload, Status* decoded);
/// @}

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_PROTOCOL_H_
