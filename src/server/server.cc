// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "server/server.h"

#include <utility>

#include "common/fault.h"
#include "index/mutable_ss_tree.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/mut_query.h"
#include "server/net.h"
#include "shard/sharded_query.h"
#include "shard/sharded_store.h"
#include "storage/epoch.h"

namespace hyperdom {
namespace server {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// The mutation deadline counterpart of DeadlineFromRequest: mutations
/// carry only a wall-clock budget.
Deadline DeadlineFromBudget(uint64_t budget_micros) {
  Deadline deadline;
  if (budget_micros > 0) {
    deadline = Deadline::AfterDuration(std::chrono::microseconds(budget_micros));
  }
  return deadline;
}

// Encodes a response at the requester's wire version: v2 responses (and
// v2 error/shed frames) echo the request ID so both sides' logs and spans
// correlate; v1 peers get plain v1 frames.
std::string EncodeReply(uint32_t version, uint64_t request_id, FrameKind kind,
                        std::string_view payload) {
  if (version >= kProtocolVersionV2) {
    return EncodeFrameV2(kind, request_id, payload);
  }
  return EncodeFrame(kind, payload);
}

}  // namespace

Server::Server(const SsTree* tree, const DominanceCriterion* criterion,
               ServerOptions options)
    : tree_(tree),
      mutable_tree_(nullptr),
      criterion_(criterion),
      options_(std::move(options)) {}

Server::Server(MutableSsTree* tree, const DominanceCriterion* criterion,
               ServerOptions options)
    : tree_(nullptr),
      mutable_tree_(tree),
      criterion_(criterion),
      options_(std::move(options)) {}

Server::Server(const shard::ShardedStore* store,
               const DominanceCriterion* criterion, ServerOptions options)
    : tree_(nullptr),
      mutable_tree_(nullptr),
      sharded_store_(store),
      criterion_(criterion),
      options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_.load()) return Status::Internal("server already started");
  Result<int> listener =
      ListenOn(options_.host, options_.port, /*backlog=*/128);
  if (!listener.ok()) return listener.status();
  listen_fd_ = *listener;
  Result<uint16_t> port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseSocket(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  started_.store(true);
  draining_.store(false);
  const size_t workers = ThreadPool::ResolveThreads(options_.worker_threads);
  workers_ = std::make_unique<ThreadPool>(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_->Submit([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_.exchange(false)) return;
  // Drain sequence. Order matters:
  // 1. Refuse new work: requests racing the drain are shed (kOverloaded).
  draining_.store(true);
  // 1b. Tell the admin plane (readiness flips to 503) while the query
  //     listener still accepts, so load balancers drain ahead of failure.
  if (options_.drain_begin_hook) options_.drain_begin_hook();
  HYPERDOM_LOG(obs::LogLevel::kInfo, "server", 0, "drain started",
               obs::LogField::U64("port", port_));
  // 2. Wake the accept loop (shutdown, not close: on Linux only shutdown
  //    reliably interrupts a blocked accept), join it, then release the fd.
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  // 3. Wake every connection blocked on a read: they see EOF, finish
  //    writing any in-flight response (the write side stays open), and
  //    wind down. Join WITHOUT holding conns_mu_ — each winding-down
  //    thread takes the lock to retire its fd, and would deadlock against
  //    a join that held it.
  ShutdownConnections();
  std::list<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
  // 4. Let the workers drain what was already admitted, then exit. Every
  //    queued Work still gets processed and its promise fulfilled —
  //    in-flight queries finish, nothing is dropped after admission.
  CloseQueue();
  if (workers_) {
    workers_->Wait();
    workers_.reset();
  }
}

bool Server::TryEnqueue(std::unique_ptr<Work> work) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (queue_closed_ || draining_.load() ||
        queue_.size() >= options_.queue_capacity) {
      return false;
    }
    queue_.push_back(std::move(work));
    HYPERDOM_GAUGE_SET(obs::kServerQueueDepth,
                       static_cast<double>(queue_.size()));
  }
  queue_ready_.notify_one();
  return true;
}

std::unique_ptr<Server::Work> Server::Dequeue() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_ready_.wait(lock, [this] { return queue_closed_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;  // closed and drained
  std::unique_ptr<Work> work = std::move(queue_.front());
  queue_.pop_front();
  HYPERDOM_GAUGE_SET(obs::kServerQueueDepth,
                     static_cast<double>(queue_.size()));
  return work;
}

size_t Server::QueueDepth() const {
  std::lock_guard<std::mutex> lock(queue_mu_);
  return queue_.size();
}

void Server::CloseQueue() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_closed_ = true;
  }
  queue_ready_.notify_all();
}

void Server::AcceptLoop() {
  for (;;) {
    Result<int> accepted = AcceptConnection(listen_fd_);
    if (!accepted.ok()) return;  // listener closed: drain in progress
    const int fd = *accepted;
    if (const Status fault = HYPERDOM_FAULT_POINT_STATUS("server/accept");
        !fault.ok()) {
      // An injected accept-path failure: the connection is dropped before
      // any protocol exchange, exactly like a transient accept error.
      CloseSocket(fd);
      continue;
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    HYPERDOM_COUNTER_INC(obs::kServerConnections);
    bool over_limit = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap finished connection threads so a long-lived server does not
      // accumulate one zombie thread per past client.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->finished.load()) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
      over_limit = conns_.size() >= options_.max_connections;
      if (!over_limit) {
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        conn->thread = std::thread([this, raw] { ConnectionLoop(raw); });
        conns_.push_back(std::move(conn));
      }
    }
    if (over_limit) {
      // Best-effort shed notice, written OUTSIDE conns_mu_: the write can
      // block for up to one io timeout on a stalled peer, and must not
      // stall other accepts or Stop() for that long.
      counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
      HYPERDOM_COUNTER_INC(obs::kServerShed);
      const std::string frame =
          EncodeFrame(FrameKind::kErrorResponse,
                      EncodeErrorResponse(Status::Overloaded(
                          "connection limit reached, try again later")));
      WriteFull(fd, frame.data(), frame.size(), options_.io_timeout_ms);
      CloseSocket(fd);
    }
  }
}

void Server::ConnectionLoop(Connection* conn) {
  const int fd = conn->fd;
  const int64_t active =
      counters_.active_connections.fetch_add(1, std::memory_order_relaxed) + 1;
  HYPERDOM_GAUGE_SET(obs::kServerActiveConnections,
                     static_cast<double>(active));
  // One frame per iteration. Any condition that could desynchronize the
  // byte stream (bad header, CRC mismatch, malformed payload) is answered
  // with a best-effort error frame and the connection is closed; transient
  // per-request conditions (overload) keep the connection open.
  // Wire context of the frame currently being served: error and shed
  // frames are encoded at the peer's version, echoing its request ID.
  // Reset before each header read — failures before the ID is known
  // (bad header, truncated payload) fall back to v1 with ID 0.
  uint32_t wire_version = kProtocolVersion;
  uint64_t request_id = 0;
  auto fail_connection = [&](const Status& error) {
    counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    HYPERDOM_COUNTER_INC(obs::kServerProtocolErrors);
    HYPERDOM_LOG(obs::LogLevel::kWarn, "server", request_id,
                 "connection failed",
                 obs::LogField::Str("error", error.message()));
    const std::string frame = EncodeReply(wire_version, request_id,
                                          FrameKind::kErrorResponse,
                                          EncodeErrorResponse(error));
    WriteFull(fd, frame.data(), frame.size(), options_.io_timeout_ms);
  };
  // The loop body is a try block: no decode or encode path is expected to
  // throw, but if one ever does (e.g. bad_alloc building a response frame)
  // it must cost this one connection, not the process — the exception
  // would otherwise escape the connection thread and terminate.
  for (;;) try {
    wire_version = kProtocolVersion;
    request_id = 0;
    char header_bytes[kFrameHeaderSize];
    bool clean_eof = false;
    Status read = ReadFull(fd, header_bytes, sizeof(header_bytes),
                           options_.io_timeout_ms, &clean_eof);
    if (read.ok()) read = HYPERDOM_FAULT_POINT_STATUS("server/read");
    if (!read.ok()) {
      // Clean EOF: the client is done. A timeout (slow client) or a
      // truncated header: drop the connection — a half-frame cannot be
      // resynced. Either way the thread exits and resources are reclaimed.
      if (!clean_eof) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        HYPERDOM_COUNTER_INC(obs::kServerProtocolErrors);
      }
      break;
    }
    Result<FrameHeader> header = DecodeFrameHeader(
        std::string_view(header_bytes, sizeof(header_bytes)),
        options_.max_payload_bytes, options_.max_protocol_version);
    if (!header.ok()) {
      fail_connection(header.status());
      break;
    }
    // payload_size is already capped by DecodeFrameHeader, so this
    // allocation is bounded.
    std::string payload(header->payload_size, '\0');
    if (header->payload_size > 0) {
      Status body = ReadFull(fd, payload.data(), payload.size(),
                             options_.io_timeout_ms);
      if (body.ok()) body = HYPERDOM_FAULT_POINT_STATUS("server/read");
      if (!body.ok()) {
        fail_connection(Status::ProtocolError("truncated frame payload: " +
                                              body.message()));
        break;
      }
    }
    if (Status crc = VerifyPayloadCrc(*header, payload); !crc.ok()) {
      fail_connection(crc);
      break;
    }
    // v2 payloads carry a request-ID prefix; from here on every reply on
    // this frame (response, error, shed) echoes it at the peer's version.
    std::string_view body(payload);
    wire_version = header->version;
    if (Status split = ExtractRequestId(*header, &body, &request_id);
        !split.ok()) {
      fail_connection(split);
      break;
    }

    std::string response_frame;
    bool close_after_reply = false;
    // Shared admission path for every queued request kind: deadline
    // starts at admission (queue wait burns budget), shed requests get
    // an immediate kOverloaded with the connection kept open, and an
    // admitted request's promise is always fulfilled by a worker (even
    // during drain the queue is processed to empty), so the wait cannot
    // hang.
    auto submit = [&](std::unique_ptr<Work> work) -> std::string {
      work->admitted = std::chrono::steady_clock::now();
      work->wire_version = wire_version;
      work->request_id = request_id;
      std::future<std::string> response = work->response.get_future();
      const bool admitted = HYPERDOM_FAULT_POINT_STATUS("server/enqueue").ok() &&
                            TryEnqueue(std::move(work));
      if (!admitted) {
        // Load shedding is per-request, not per-connection: answer
        // kOverloaded immediately and keep reading.
        counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
        HYPERDOM_COUNTER_INC(obs::kServerShed);
        return EncodeReply(wire_version, request_id,
                           FrameKind::kErrorResponse,
                           EncodeErrorResponse(Status::Overloaded(
                               "request queue full, try again later")));
      }
      return response.get();
    };
    auto reject_malformed = [&](const Status& error) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      HYPERDOM_COUNTER_INC(obs::kServerProtocolErrors);
      HYPERDOM_LOG(obs::LogLevel::kWarn, "server", request_id,
                   "malformed request",
                   obs::LogField::Str("error", error.message()));
      response_frame = EncodeReply(wire_version, request_id,
                                   FrameKind::kErrorResponse,
                                   EncodeErrorResponse(error));
      close_after_reply = true;
    };
    switch (header->kind) {
      case FrameKind::kPingRequest:
        response_frame = EncodeReply(wire_version, request_id,
                                     FrameKind::kPongResponse, {});
        HYPERDOM_COUNTER_INC_L(obs::kServerRequests, "kind", "ping");
        break;
      case FrameKind::kKnnRequest: {
        Result<KnnRequest> request = DecodeKnnRequest(body);
        if (!request.ok()) {
          reject_malformed(request.status());
          break;
        }
        auto work = std::make_unique<Work>();
        work->kind = FrameKind::kKnnRequest;
        work->request = request.TakeValue();
        work->deadline = DeadlineFromRequest(work->request);
        response_frame = submit(std::move(work));
        break;
      }
      case FrameKind::kInsertRequest: {
        Result<InsertRequest> request = DecodeInsertRequest(body);
        if (!request.ok()) {
          reject_malformed(request.status());
          break;
        }
        auto work = std::make_unique<Work>();
        work->kind = FrameKind::kInsertRequest;
        work->insert = request.TakeValue();
        work->deadline = DeadlineFromBudget(work->insert.budget_micros);
        response_frame = submit(std::move(work));
        break;
      }
      case FrameKind::kRemoveRequest: {
        Result<RemoveRequest> request = DecodeRemoveRequest(body);
        if (!request.ok()) {
          reject_malformed(request.status());
          break;
        }
        auto work = std::make_unique<Work>();
        work->kind = FrameKind::kRemoveRequest;
        work->remove = request.TakeValue();
        work->deadline = DeadlineFromBudget(work->remove.budget_micros);
        response_frame = submit(std::move(work));
        break;
      }
      default:
        // Structurally valid but not something clients may send.
        response_frame = EncodeReply(
            wire_version, request_id, FrameKind::kErrorResponse,
            EncodeErrorResponse(Status::ProtocolError(
                "unexpected frame kind on a server connection")));
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        HYPERDOM_COUNTER_INC(obs::kServerProtocolErrors);
        close_after_reply = true;
        break;
    }

    Status written = HYPERDOM_FAULT_POINT_STATUS("server/write");
    if (written.ok()) {
      written = WriteFull(fd, response_frame.data(), response_frame.size(),
                          options_.io_timeout_ms);
    }
    if (!written.ok() || close_after_reply) break;
  } catch (const std::exception& e) {
    fail_connection(
        Status::Internal(std::string("request handling failed: ") + e.what()));
    break;
  } catch (...) {
    fail_connection(Status::Internal("request handling failed"));
    break;
  }
  // Retire the fd under conns_mu_, publishing fd = -1 BEFORE the close:
  // Stop()'s ShutdownConnections skips retired entries, so it can never
  // shutdown(2) a closed descriptor the kernel may have recycled for an
  // unrelated socket.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn->fd = -1;
    CloseSocket(fd);
  }
  conn->finished.store(true);
  const int64_t remaining =
      counters_.active_connections.fetch_sub(1, std::memory_order_relaxed) - 1;
  HYPERDOM_GAUGE_SET(obs::kServerActiveConnections,
                     static_cast<double>(remaining));
}

void Server::WorkerLoop() {
  if (options_.worker_start_hook) options_.worker_start_hook();
  while (std::unique_ptr<Work> work = Dequeue()) {
    // Exception boundary: a throw out of ProcessRequest (e.g. bad_alloc
    // encoding a large response) must fail this one request with a
    // kInternal frame, not escape the worker thread and terminate the
    // process. The promise is always fulfilled, so no connection hangs.
    std::string frame;
    try {
      frame = ProcessRequest(*work);
    } catch (const std::exception& e) {
      HYPERDOM_LOG(obs::LogLevel::kError, "server", work->request_id,
                   "request processing threw",
                   obs::LogField::Str("what", e.what()));
      frame = EncodeReply(
          work->wire_version, work->request_id, FrameKind::kErrorResponse,
          EncodeErrorResponse(Status::Internal(
              std::string("request processing failed: ") + e.what())));
    } catch (...) {
      HYPERDOM_LOG(obs::LogLevel::kError, "server", work->request_id,
                   "request processing threw");
      frame = EncodeReply(
          work->wire_version, work->request_id, FrameKind::kErrorResponse,
          EncodeErrorResponse(Status::Internal("request processing failed")));
    }
    work->response.set_value(std::move(frame));
  }
}

std::string Server::ProcessRequest(Work& work) {
  switch (work.kind) {
    case FrameKind::kKnnRequest:
      return ProcessKnn(work);
    case FrameKind::kInsertRequest:
    case FrameKind::kRemoveRequest:
      return ProcessMutation(work);
    default:
      // ConnectionLoop only enqueues the kinds above.
      return EncodeReply(
          work.wire_version, work.request_id, FrameKind::kErrorResponse,
          EncodeErrorResponse(Status::Internal("unexpected work kind")));
  }
}

std::string Server::ProcessKnn(Work& work) {
  HYPERDOM_SPAN(span, "server/request");
  HYPERDOM_SPAN_ANNOTATE(span, "k", std::to_string(work.request.k));
  if (work.request_id != 0) {
    HYPERDOM_SPAN_ANNOTATE(span, "request_id", work.request_id);
  }
  KnnOptions options;
  options.k = work.request.k;
  options.strategy = work.request.strategy;
  options.deadline = work.deadline;
  KnnResult result;
  uint64_t pinned_version = 0;
  if (sharded_store_ != nullptr) {
    // Scatter serially (null pool): this worker is already a pool thread,
    // and a worker blocking on its own pool's tasks deadlocks.
    Result<KnnResult> sharded =
        shard::ShardedKnn(*sharded_store_, work.request.query, *criterion_,
                          options, /*pool=*/nullptr);
    if (!sharded.ok()) {
      counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
      HYPERDOM_COUNTER_INC_L(obs::kServerRequests, "kind", "knn");
      return EncodeReply(work.wire_version, work.request_id,
                         FrameKind::kErrorResponse,
                         EncodeErrorResponse(sharded.status()));
    }
    result = sharded.TakeValue();
  } else if (mutable_tree_ != nullptr) {
    // Mutable mode: the searcher runs against a pinned, immutable
    // version of the store, so concurrent inserts/removes cannot skew
    // this answer.
    Versioned<KnnResult> versioned =
        MutableKnn(*mutable_tree_, *criterion_, options, work.request.query);
    pinned_version = versioned.version;
    result = std::move(versioned.result);
  } else {
    const KnnSearcher searcher(criterion_, options);
    result = searcher.Search(*tree_, work.request.query);
  }
  counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
  HYPERDOM_COUNTER_INC_L(obs::kServerRequests, "kind", "knn");
  if (result.completeness == Completeness::kBestEffort) {
    counters_.best_effort_responses.fetch_add(1, std::memory_order_relaxed);
    HYPERDOM_COUNTER_INC(obs::kServerBestEffort);
    HYPERDOM_SPAN_EVENT_CURRENT("best_effort");
  }
  const uint64_t elapsed_ns =
      NowNs() -
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              work.admitted.time_since_epoch())
              .count());
  HYPERDOM_HISTOGRAM_RECORD(obs::kServerRequestDuration, elapsed_ns);
  const uint64_t threshold_ns = options_.slow_query_micros * 1000;
  if (threshold_ns != 0 && elapsed_ns >= threshold_ns) {
    counters_.slow_queries.fetch_add(1, std::memory_order_relaxed);
    obs::SlowQueryRecord slow;
    slow.request_id = work.request_id;
    slow.latency_ns = elapsed_ns;
    slow.threshold_ns = threshold_ns;
    slow.index_kind = sharded_store_ != nullptr
                          ? "sharded_ss"
                          : (mutable_tree_ != nullptr ? "mutable_ss" : "ss");
    slow.k = work.request.k;
    slow.nodes_visited = result.stats.nodes_visited;
    slow.nodes_pruned = result.stats.nodes_pruned;
    slow.entries_accessed = result.stats.entries_accessed;
    slow.dominance_checks = result.stats.dominance_checks;
    slow.pruned_case2 = result.stats.pruned_case2;
    slow.pruned_case3 = result.stats.pruned_case3;
    slow.uncertain_verdicts = result.stats.uncertain_verdicts;
    slow.nodes_deadline_skipped = result.stats.nodes_deadline_skipped;
    slow.completeness =
        result.completeness == Completeness::kExact ? 1.0 : 0.0;
    slow.store_version = pinned_version;
    slow.epoch_lag = EpochManager::Global().EpochLag();
    obs::LogSlowQuery(slow);
  }
  KnnResponse response;
  response.completeness = result.completeness;
  response.answers = result.answers;
  return EncodeReply(work.wire_version, work.request_id,
                     FrameKind::kKnnResponse, EncodeKnnResponse(response));
}

std::string Server::ProcessMutation(Work& work) {
  HYPERDOM_SPAN(span, "server/request");
  const bool is_insert = work.kind == FrameKind::kInsertRequest;
  const char* kind_label = is_insert ? "insert" : "remove";
  HYPERDOM_SPAN_ANNOTATE(span, "kind", kind_label);
  if (work.request_id != 0) {
    HYPERDOM_SPAN_ANNOTATE(span, "request_id", work.request_id);
  }
  HYPERDOM_COUNTER_INC_L(obs::kServerRequests, "kind", kind_label);
  if (mutable_tree_ == nullptr) {
    return EncodeReply(
        work.wire_version, work.request_id, FrameKind::kErrorResponse,
        EncodeErrorResponse(Status::NotSupported(
            "server is read-only: mutation frames are not accepted")));
  }
  // Unlike queries, a mutation cannot degrade to a partial answer: if the
  // budget burned away in the queue, refuse it un-applied so the client's
  // deadline semantics stay exact (apply-or-error, never late-apply).
  if (work.deadline.WallExpired()) {
    counters_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    HYPERDOM_COUNTER_INC(obs::kServerShed);
    return EncodeReply(work.wire_version, work.request_id,
                       FrameKind::kErrorResponse,
                       EncodeErrorResponse(Status::DeadlineExceeded(
                           "mutation budget exhausted before apply")));
  }
  Status applied =
      is_insert ? mutable_tree_->Insert(work.insert.sphere, work.insert.id)
                : mutable_tree_->Remove(work.remove.id);
  const uint64_t elapsed_ns =
      NowNs() -
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              work.admitted.time_since_epoch())
              .count());
  HYPERDOM_HISTOGRAM_RECORD(obs::kServerRequestDuration, elapsed_ns);
  if (!applied.ok()) {
    return EncodeReply(work.wire_version, work.request_id,
                       FrameKind::kErrorResponse,
                       EncodeErrorResponse(applied));
  }
  counters_.requests_served.fetch_add(1, std::memory_order_relaxed);
  MutateResponse response;
  response.version = mutable_tree_->version();
  response.live = mutable_tree_->live_size();
  return EncodeReply(work.wire_version, work.request_id,
                     FrameKind::kMutateResponse,
                     EncodeMutateResponse(response));
}

void Server::ShutdownConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto& conn : conns_) {
    // Skip retired entries (fd already closed by the connection thread):
    // a shutdown(2) on a closed fd number could hit an unrelated socket
    // the kernel recycled it for.
    if (conn->fd >= 0) ShutdownRead(conn->fd);
  }
}

}  // namespace server
}  // namespace hyperdom
