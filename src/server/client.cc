// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "server/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/trace.h"
#include "server/net.h"

namespace hyperdom {
namespace server {

namespace {

// Transport failures worth a reconnect-and-retry: the TCP connection died
// or never came up. Timeouts are excluded — the caller's budget is spent.
bool IsRetryableTransport(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kNotFound;
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(std::move(options)),
      jitter_(options_.jitter_seed),
      // Spread clients across the ID space so concurrent clients' IDs stay
      // distinct in merged traces; deterministic in the seed.
      next_request_id_(options_.jitter_seed * 0x9E3779B97F4A7C15ull + 1) {}

uint64_t Client::NextRequestId() {
  uint64_t id = next_request_id_++;
  if (id == 0) id = next_request_id_++;  // 0 means "no ID" on the wire
  return id;
}

uint32_t Client::WireVersion() const {
  if (peer_v1_only_) return kProtocolVersion;
  return std::min(options_.max_protocol_version, kProtocolVersionMax);
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    CloseSocket(fd_);
    fd_ = -1;
  }
}

Status Client::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  Result<int> fd = ConnectWithTimeout(options_.host, options_.port,
                                      options_.connect_timeout_ms);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  return Status::OK();
}

Status Client::Exchange(const std::string& frame, FrameKind* kind_out,
                        std::string* payload_out, uint32_t* version_out,
                        uint64_t* echoed_id_out) {
  *version_out = kProtocolVersion;
  *echoed_id_out = 0;
  HYPERDOM_RETURN_NOT_OK(
      WriteFull(fd_, frame.data(), frame.size(), options_.io_timeout_ms));
  char header_bytes[kFrameHeaderSize];
  HYPERDOM_RETURN_NOT_OK(ReadFull(fd_, header_bytes, sizeof(header_bytes),
                                  options_.io_timeout_ms));
  Result<FrameHeader> header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)),
      options_.max_payload_bytes, options_.max_protocol_version);
  if (!header.ok()) return header.status();
  payload_out->assign(header->payload_size, '\0');
  if (header->payload_size > 0) {
    HYPERDOM_RETURN_NOT_OK(ReadFull(fd_, payload_out->data(),
                                    payload_out->size(),
                                    options_.io_timeout_ms));
  }
  HYPERDOM_RETURN_NOT_OK(VerifyPayloadCrc(*header, *payload_out));
  std::string_view body(*payload_out);
  HYPERDOM_RETURN_NOT_OK(ExtractRequestId(*header, &body, echoed_id_out));
  if (header->version >= kProtocolVersionV2) {
    payload_out->erase(0, sizeof(uint64_t));
  }
  *version_out = header->version;
  *kind_out = header->kind;
  return Status::OK();
}

void Client::Backoff(int attempt) {
  const int64_t base = options_.backoff_base_ms;
  const int64_t cap = std::max<int64_t>(1, options_.backoff_max_ms);
  // min(base << attempt, cap), shift guarded against overflow.
  int64_t full = cap;
  if (attempt < 31 && base > 0 && (base << attempt) < cap) {
    full = base << attempt;
  }
  // Jitter: uniform in [full/2, full], deterministic in the seed, so a
  // retry storm from many clients spreads out instead of synchronizing.
  const int64_t wait = full <= 1
                           ? full
                           : full / 2 + static_cast<int64_t>(jitter_.UniformU64(
                                            static_cast<uint64_t>(
                                                full - full / 2 + 1)));
  if (wait > 0) std::this_thread::sleep_for(std::chrono::milliseconds(wait));
}

Status Client::Call(FrameKind request_kind, const std::string& request_payload,
                    FrameKind* kind_out, std::string* payload_out) {
  HYPERDOM_SPAN(span, "client/call");
  const int attempts = std::max(1, options_.max_attempts);
  // One ID per logical request: retries of the same call re-send it, so
  // both sides' spans and logs reconcile every attempt into one story.
  const uint64_t request_id = NextRequestId();
  bool id_annotated = false;
  Status last = Status::Internal("no attempt made");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    last_attempts_ = attempt + 1;
    if (attempt > 0) Backoff(attempt - 1);
    Status connected = EnsureConnected();
    if (!connected.ok()) {
      last = std::move(connected);
      if (!IsRetryableTransport(last) &&
          last.code() != StatusCode::kDeadlineExceeded) {
        return last;  // e.g. InvalidArgument host — retrying cannot help
      }
      // Connect timeouts ARE retried: no request was in flight, so the
      // no-retry-on-timeout rule (which protects the caller's IO budget)
      // does not apply yet.
      continue;
    }
    // Encoded per attempt: the wire version can change once, when a
    // v1-only peer forces the downgrade below.
    const bool sent_v2 = WireVersion() >= kProtocolVersionV2;
    last_request_id_ = sent_v2 ? request_id : 0;
    if (sent_v2 && !id_annotated) {
      HYPERDOM_SPAN_ANNOTATE(span, "request_id", request_id);
      id_annotated = true;
    }
    const std::string frame =
        sent_v2 ? EncodeFrameV2(request_kind, request_id, request_payload)
                : EncodeFrame(request_kind, request_payload);
    uint32_t response_version = kProtocolVersion;
    uint64_t echoed_id = 0;
    Status exchanged = Exchange(frame, kind_out, payload_out,
                                &response_version, &echoed_id);
    if (exchanged.ok()) {
      if (sent_v2 && response_version >= kProtocolVersionV2) {
        if (echoed_id != request_id) {
          // The stream answered some other request: resync is impossible.
          Close();
          return Status::ProtocolError(
              "response echoed request id " + std::to_string(echoed_id) +
              ", expected " + std::to_string(request_id));
        }
        v2_confirmed_ = true;
      }
      // A shed response is an application-level "try again later".
      if (*kind_out == FrameKind::kErrorResponse) {
        Status remote;
        HYPERDOM_RETURN_NOT_OK(DecodeErrorResponse(*payload_out, &remote));
        if (remote.code() == StatusCode::kProtocolError && sent_v2 &&
            !v2_confirmed_) {
          // A v1-only peer rejected the v2 header (and closed the
          // connection, which cannot be resynced). Downgrade for the rest
          // of this client's life and re-send as v1; the attempt is not
          // consumed — the server processed nothing.
          peer_v1_only_ = true;
          Close();
          --attempt;
          continue;
        }
        if (remote.code() == StatusCode::kOverloaded) {
          last = std::move(remote);
          continue;  // connection stays up; back off and re-send
        }
        return remote;  // a definitive remote failure
      }
      return Status::OK();
    }
    last = std::move(exchanged);
    Close();  // the stream may be desynchronized; always reconnect
    if (last.code() == StatusCode::kProtocolError) return last;
    if (last.code() == StatusCode::kDeadlineExceeded) return last;
    if (!IsRetryableTransport(last)) return last;
  }
  return last;
}

Status Client::Ping() {
  FrameKind kind = FrameKind::kPingRequest;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(Call(FrameKind::kPingRequest, {}, &kind, &payload));
  if (kind != FrameKind::kPongResponse) {
    return Status::ProtocolError("unexpected response to ping");
  }
  return Status::OK();
}

Result<KnnResponse> Client::Knn(const KnnRequest& request) {
  FrameKind kind = FrameKind::kKnnRequest;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(Call(FrameKind::kKnnRequest,
                              EncodeKnnRequest(request), &kind, &payload));
  if (kind != FrameKind::kKnnResponse) {
    return Status::ProtocolError("unexpected response kind to knn request");
  }
  return DecodeKnnResponse(payload);
}

Result<MutateResponse> Client::Insert(const InsertRequest& request) {
  FrameKind kind = FrameKind::kInsertRequest;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(Call(FrameKind::kInsertRequest,
                              EncodeInsertRequest(request), &kind, &payload));
  if (kind != FrameKind::kMutateResponse) {
    return Status::ProtocolError("unexpected response kind to insert request");
  }
  return DecodeMutateResponse(payload);
}

Result<MutateResponse> Client::Remove(const RemoveRequest& request) {
  FrameKind kind = FrameKind::kRemoveRequest;
  std::string payload;
  HYPERDOM_RETURN_NOT_OK(Call(FrameKind::kRemoveRequest,
                              EncodeRemoveRequest(request), &kind, &payload));
  if (kind != FrameKind::kMutateResponse) {
    return Status::ProtocolError("unexpected response kind to remove request");
  }
  return DecodeMutateResponse(payload);
}

}  // namespace server
}  // namespace hyperdom
