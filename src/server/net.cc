// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "server/net.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/io.h"

namespace hyperdom {
namespace server {

namespace {

// Bounded wait for one poll event. Returns OK when the event (or an
// error/hangup, which the subsequent read/write will surface) is ready.
Status PollOne(int fd, short events, int timeout_ms, const char* op) {
  for (;;) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = events;
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n > 0) return Status::OK();
    if (n == 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (errno == EINTR) continue;
    return ErrnoToStatus(errno, "poll", op);
  }
}

// The deadline `timeout_ms` from now. ReadFull/WriteFull budget their
// timeout across the WHOLE transfer, not per poll wait — otherwise a peer
// dripping one byte per window holds the thread (and a connection slot)
// indefinitely mid-frame.
std::chrono::steady_clock::time_point TransferDeadline(int timeout_ms) {
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(timeout_ms);
}

// Milliseconds left until `deadline`, clamped at zero (poll(fd, 0) still
// reports already-ready events, so data that raced the deadline is
// consumed; only an actual wait is refused).
int RemainingMs(std::chrono::steady_clock::time_point deadline) {
  const long long left =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now())
          .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, INT_MAX));
}

Status ParseHost(const std::string& host, struct sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: '" + host +
                                   "' (the server binds numeric addresses; "
                                   "use 127.0.0.1 for loopback)");
  }
  return Status::OK();
}

}  // namespace

Result<int> ListenOn(const std::string& host, uint16_t port, int backlog) {
  struct sockaddr_in addr {};
  HYPERDOM_RETURN_NOT_OK(ParseHost(host, &addr));
  addr.sin_port = htons(port);
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoToStatus(errno, "socket", host);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    CloseSocket(fd);
    return ErrnoToStatus(err, "bind", host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    CloseSocket(fd);
    return ErrnoToStatus(err, "listen", host + ":" + std::to_string(port));
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  struct sockaddr_in addr {};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return ErrnoToStatus(errno, "getsockname", "listener");
  }
  return ntohs(addr.sin_port);
}

Result<int> AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    return ErrnoToStatus(errno, "accept", "listener");
  }
}

Result<int> ConnectWithTimeout(const std::string& host, uint16_t port,
                               int timeout_ms) {
  struct sockaddr_in addr {};
  HYPERDOM_RETURN_NOT_OK(ParseHost(host, &addr));
  addr.sin_port = htons(port);
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoToStatus(errno, "socket", host);
  const std::string target = host + ":" + std::to_string(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0 && errno != EINPROGRESS) {
    const int err = errno;
    CloseSocket(fd);
    return ErrnoToStatus(err, "connect", target);
  }
  if (rc != 0) {
    // Handshake in flight: wait for writability, then read the outcome.
    Status ready = PollOne(fd, POLLOUT, timeout_ms, "connect");
    if (!ready.ok()) {
      CloseSocket(fd);
      return ready;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      const int err = so_error != 0 ? so_error : errno;
      CloseSocket(fd);
      return ErrnoToStatus(err, "connect", target);
    }
  }
  // Back to blocking mode: all subsequent IO is bounded by poll() in
  // ReadFull/WriteFull, not by O_NONBLOCK.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

Status ReadFull(int fd, void* buf, size_t size, int timeout_ms,
                bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  const auto deadline = TransferDeadline(timeout_ms);
  char* out = static_cast<char*>(buf);
  size_t done = 0;
  while (done < size) {
    HYPERDOM_RETURN_NOT_OK(PollOne(fd, POLLIN, RemainingMs(deadline), "read"));
    const ssize_t n = ::recv(fd, out + done, size - done, 0);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (done == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::IOError(done == 0
                                 ? "connection closed by peer"
                                 : "connection closed mid-frame (" +
                                       std::to_string(done) + " of " +
                                       std::to_string(size) + " bytes)");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoToStatus(errno, "read", "socket");
  }
  return Status::OK();
}

Result<size_t> ReadSome(int fd, void* buf, size_t cap, int timeout_ms) {
  const auto deadline = TransferDeadline(timeout_ms);
  for (;;) {
    HYPERDOM_RETURN_NOT_OK(PollOne(fd, POLLIN, RemainingMs(deadline), "read"));
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoToStatus(errno, "read", "socket");
  }
}

Status WriteFull(int fd, const void* buf, size_t size, int timeout_ms) {
  const auto deadline = TransferDeadline(timeout_ms);
  const char* in = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < size) {
    HYPERDOM_RETURN_NOT_OK(
        PollOne(fd, POLLOUT, RemainingMs(deadline), "write"));
    const ssize_t n = ::send(fd, in + done, size - done, MSG_NOSIGNAL);
    if (n >= 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return ErrnoToStatus(errno, "write", "socket");
  }
  return Status::OK();
}

void ShutdownRead(int fd) { ::shutdown(fd, SHUT_RD); }

void ShutdownWrite(int fd) { ::shutdown(fd, SHUT_WR); }

void ShutdownSocket(int fd) { ::shutdown(fd, SHUT_RDWR); }

void CloseSocket(int fd) { ::close(fd); }

}  // namespace server
}  // namespace hyperdom
