// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Thin hardened POSIX socket layer under the server and client. The same
// discipline as common/io, applied to sockets: every primitive retries
// EINTR, finishes partial transfers in a loop, bounds the WHOLE transfer
// with a poll(2)-enforced deadline so a slow, stalled, or byte-dripping
// peer cannot park a thread forever, and maps errno into Status. Writes
// use MSG_NOSIGNAL, so a peer that closed mid-write surfaces as
// EPIPE -> Status, never a process-killing SIGPIPE.

#ifndef HYPERDOM_SERVER_NET_H_
#define HYPERDOM_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace hyperdom {
namespace server {

/// Creates a listening TCP socket bound to host:port (port 0 picks an
/// ephemeral port; read it back with LocalPort). Returns the fd.
Result<int> ListenOn(const std::string& host, uint16_t port, int backlog);

/// The port a bound socket actually listens on.
Result<uint16_t> LocalPort(int fd);

/// Blocking accept, EINTR retried. Fails with an errno-mapped Status once
/// the listener is closed (the server's shutdown signal).
Result<int> AcceptConnection(int listen_fd);

/// Connects to host:port, bounding the TCP handshake by `timeout_ms`
/// (non-blocking connect + poll). kDeadlineExceeded on timeout.
Result<int> ConnectWithTimeout(const std::string& host, uint16_t port,
                               int timeout_ms);

/// Reads exactly `size` bytes or fails with kDeadlineExceeded once
/// `timeout_ms` has elapsed across the whole call (a peer dripping bytes
/// cannot stretch the budget); EINTR and short reads are retried. EOF
/// before any byte arrives sets `*clean_eof` (when non-null) and returns
/// kIOError "connection closed by peer"; EOF mid-buffer is a truncation
/// and leaves the flag clear.
Status ReadFull(int fd, void* buf, size_t size, int timeout_ms,
                bool* clean_eof = nullptr);

/// Reads whatever is available, up to `cap` bytes — at most one recv(2)
/// after a poll-bounded wait. Returns the byte count; 0 means the peer
/// closed cleanly. For delimiter-terminated streams (the admin HTTP
/// plane) where the total length is unknown up front; kDeadlineExceeded
/// once `timeout_ms` elapses with nothing readable.
Result<size_t> ReadSome(int fd, void* buf, size_t cap, int timeout_ms);

/// Writes exactly `size` bytes with MSG_NOSIGNAL; the whole call is
/// bounded by `timeout_ms`, EINTR and partial writes retried.
Status WriteFull(int fd, const void* buf, size_t size, int timeout_ms);

/// Half-closes the read side (wakes a peer thread blocked in ReadFull on
/// this fd with EOF). Used by graceful drain.
void ShutdownRead(int fd);

/// Half-closes the write side: the peer's reads see EOF while our reads
/// keep working. Lets an HTTP/1.0 client signal end-of-request and still
/// collect the response.
void ShutdownWrite(int fd);

/// Full shutdown(SHUT_RDWR). On Linux this is the reliable way to wake a
/// thread blocked in accept(2) on a listening socket — close(2) alone
/// does not — so the server's drain path calls this before closing the
/// listener.
void ShutdownSocket(int fd);

/// close(2); EINTR not retried (Linux releases the fd either way).
void CloseSocket(int fd);

}  // namespace server
}  // namespace hyperdom

#endif  // HYPERDOM_SERVER_NET_H_
