// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "server/admin.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/net.h"
#include "storage/epoch.h"

namespace hyperdom {
namespace server {

namespace {

constexpr std::string_view kContentTypeText = "text/plain; charset=utf-8";
constexpr std::string_view kContentTypeProm =
    "text/plain; version=0.0.4; charset=utf-8";
constexpr std::string_view kContentTypeJson = "application/json";

const char* HttpReason(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

// Best-effort response write: the scraper may be gone; nothing to do then.
void WriteHttp(int fd, int code, std::string_view content_type,
               std::string_view body, int timeout_ms) {
  char head[256];
  int n = std::snprintf(head, sizeof(head),
                        "HTTP/1.0 %d %s\r\n"
                        "Content-Type: %.*s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        code, HttpReason(code),
                        static_cast<int>(content_type.size()),
                        content_type.data(), body.size());
  if (n <= 0) return;
  std::string response(head, static_cast<size_t>(n));
  response.append(body);
  (void)WriteFull(fd, response.data(), response.size(), timeout_ms);
}

// Counter bumps go through literal-label macro instantiations, one per
// endpoint / code (the macros cache a pointer per call site, so labels
// must be literals).
void CountEndpointHit(std::string_view target) {
  if (target == "/metrics") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/metrics");
  } else if (target == "/metrics.json") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/metrics.json");
  } else if (target == "/healthz") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/healthz");
  } else if (target == "/readyz") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/readyz");
  } else if (target == "/statusz") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/statusz");
  } else if (target == "/tracez") {
    HYPERDOM_COUNTER_INC_L(obs::kAdminRequests, "endpoint", "/tracez");
  }
}

void CountHttpError(int code) {
  switch (code) {
    case 400:
      HYPERDOM_COUNTER_INC_L(obs::kAdminHttpErrors, "code", "400");
      break;
    case 404:
      HYPERDOM_COUNTER_INC_L(obs::kAdminHttpErrors, "code", "404");
      break;
    case 405:
      HYPERDOM_COUNTER_INC_L(obs::kAdminHttpErrors, "code", "405");
      break;
    case 431:
      HYPERDOM_COUNTER_INC_L(obs::kAdminHttpErrors, "code", "431");
      break;
    default:
      break;
  }
}

uint64_t SampleU64(const std::function<uint64_t()>& fn) {
  return fn ? fn() : 0;
}

}  // namespace

AdminServer::AdminServer(AdminOptions options, Sources sources)
    : options_(std::move(options)), sources_(std::move(sources)) {}

AdminServer::~AdminServer() { Stop(); }

Status AdminServer::Start() {
  if (started_.load()) return Status::Internal("admin server already started");
  Result<int> listen_fd = ListenOn(options_.host, options_.port, /*backlog=*/16);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;
  Result<uint16_t> port = LocalPort(listen_fd_);
  if (!port.ok()) {
    CloseSocket(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = *port;
  started_.store(true);
  started_at_ = std::chrono::steady_clock::now();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (options_.tick_interval_ms > 0) {
    tick_thread_ = std::thread([this] { TickLoop(); });
  }
  HYPERDOM_LOG(obs::LogLevel::kInfo, "admin", 0, "admin plane listening",
               obs::LogField::U64("port", port_));
  return Status::OK();
}

void AdminServer::Stop() {
  if (!started_.exchange(false)) return;
  // ShutdownSocket is what reliably wakes a thread parked in accept(2).
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    tick_stop_ = true;
  }
  tick_cv_.notify_all();
  if (tick_thread_.joinable()) tick_thread_.join();
  HYPERDOM_LOG(obs::LogLevel::kInfo, "admin", 0, "admin plane stopped",
               obs::LogField::U64("requests",
                                  counters_.requests.load()));
}

void AdminServer::AcceptLoop() {
  while (started_.load()) {
    Result<int> conn = AcceptConnection(listen_fd_);
    if (!conn.ok()) {
      if (!started_.load()) return;  // listener shut down: normal exit
      continue;                      // transient accept failure
    }
    // Inline handling: one bounded request per connection. The admin plane
    // serializes scrapers rather than spawning threads for them.
    HandleConnection(*conn);
    CloseSocket(*conn);
  }
}

void AdminServer::HandleConnection(int fd) {
  std::string request;
  request.reserve(512);
  char chunk[1024];
  // Accumulate until the blank line ending the header block. Tolerates
  // bare-LF clients; rejects oversized or never-terminating requests.
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() > options_.max_request_bytes) {
      counters_.http_errors.fetch_add(1, std::memory_order_relaxed);
      CountHttpError(431);
      WriteHttp(fd, 431, kContentTypeText, "request too large\n",
                options_.io_timeout_ms);
      // close() with unread bytes pending triggers a TCP RST that can
      // destroy the in-flight 431 before the client reads it. Half-close
      // and drain what the client is still sending (bounded) instead.
      ShutdownWrite(fd);
      for (size_t drained = 0; drained < (64u << 10);) {
        Result<size_t> extra =
            ReadSome(fd, chunk, sizeof(chunk), options_.io_timeout_ms);
        if (!extra.ok() || *extra == 0) break;
        drained += *extra;
      }
      return;
    }
    Result<size_t> got =
        ReadSome(fd, chunk, sizeof(chunk), options_.io_timeout_ms);
    if (!got.ok()) return;  // timeout or reset: nobody left to answer
    if (*got == 0) {
      // EOF before the header terminator: truncated request.
      counters_.http_errors.fetch_add(1, std::memory_order_relaxed);
      CountHttpError(400);
      WriteHttp(fd, 400, kContentTypeText, "truncated request\n",
                options_.io_timeout_ms);
      return;
    }
    request.append(chunk, *got);
  }

  // Request line: METHOD SP TARGET SP VERSION.
  const size_t line_end = request.find_first_of("\r\n");
  std::string_view line =
      std::string_view(request).substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp2 == sp1 + 1) {
    counters_.http_errors.fetch_add(1, std::memory_order_relaxed);
    CountHttpError(400);
    WriteHttp(fd, 400, kContentTypeText, "malformed request line\n",
              options_.io_timeout_ms);
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    counters_.http_errors.fetch_add(1, std::memory_order_relaxed);
    CountHttpError(405);
    WriteHttp(fd, 405, kContentTypeText, "only GET is supported\n",
              options_.io_timeout_ms);
    return;
  }
  // Query strings are accepted and ignored.
  if (const size_t q = target.find('?'); q != std::string_view::npos) {
    target = target.substr(0, q);
  }

  std::string body;
  std::string_view content_type = kContentTypeText;
  int code = 200;
  if (target == "/metrics") {
    body = obs::MetricsRegistry::Instance().RenderPrometheus();
    content_type = kContentTypeProm;
  } else if (target == "/metrics.json") {
    body = obs::MetricsRegistry::Instance().RenderJson();
    content_type = kContentTypeJson;
  } else if (target == "/healthz") {
    body = "ok\n";
  } else if (target == "/readyz") {
    if (ready_.load()) {
      body = "ready\n";
    } else {
      code = 503;
      body = "draining\n";
    }
  } else if (target == "/statusz") {
    body = RenderStatusz();
    content_type = kContentTypeJson;
  } else if (target == "/tracez") {
    body = obs::Tracer::Instance().RenderChromeTrace();
    content_type = kContentTypeJson;
  } else {
    counters_.http_errors.fetch_add(1, std::memory_order_relaxed);
    CountHttpError(404);
    WriteHttp(fd, 404, kContentTypeText, "unknown endpoint\n",
              options_.io_timeout_ms);
    return;
  }
  // A 503 /readyz is still an answered request, not an HTTP error: the
  // endpoint did its job (reporting drain), so it counts as a request.
  counters_.requests.fetch_add(1, std::memory_order_relaxed);
  CountEndpointHit(target);
  WriteHttp(fd, code, content_type, body, options_.io_timeout_ms);
}

std::string AdminServer::RenderStatusz() const {
  const double uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_at_)
          .count();
  const size_t queue_depth =
      sources_.queue_depth ? sources_.queue_depth() : 0;
  const int64_t active_connections =
      sources_.active_connections ? sources_.active_connections() : 0;
  char buf[512];
  std::string out = "{";
  std::snprintf(buf, sizeof(buf), "\"uptime_seconds\":%.3f", uptime_seconds);
  out += buf;
  out += ",\"build\":\"" + obs::JsonEscape(options_.build_info) + "\"";
  out += ready_.load() ? ",\"ready\":true" : ",\"ready\":false";
  std::snprintf(buf, sizeof(buf),
                ",\"store\":{\"version\":%" PRIu64 ",\"live\":%" PRIu64
                ",\"epoch_lag\":%" PRIu64 "}",
                SampleU64(sources_.store_version),
                SampleU64(sources_.store_live),
                EpochManager::Global().EpochLag());
  out += buf;
  const size_t shards = sources_.shards ? sources_.shards() : 0;
  std::snprintf(buf, sizeof(buf),
                ",\"server\":{\"queue_depth\":%zu,"
                "\"active_connections\":%lld,\"requests_served\":%" PRIu64
                ",\"shards\":%zu}",
                queue_depth, static_cast<long long>(active_connections),
                SampleU64(sources_.requests_served), shards);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"admin\":{\"requests\":%" PRIu64 ",\"http_errors\":%" PRIu64
                ",\"ticks\":%" PRIu64 "}}",
                counters_.requests.load(), counters_.http_errors.load(),
                counters_.ticks.load());
  out += buf;
  out += "\n";
  return out;
}

void AdminServer::SampleGauges() {
  if (sources_.queue_depth) {
    HYPERDOM_GAUGE_SET(obs::kServerQueueDepth,
                       static_cast<double>(sources_.queue_depth()));
  }
  HYPERDOM_GAUGE_SET(obs::kStoreEpochLag,
                     static_cast<double>(EpochManager::Global().EpochLag()));
  counters_.ticks.fetch_add(1, std::memory_order_relaxed);
}

void AdminServer::TickLoop() {
  std::unique_lock<std::mutex> lock(tick_mu_);
  while (!tick_stop_) {
    tick_cv_.wait_for(lock,
                      std::chrono::milliseconds(options_.tick_interval_ms));
    if (tick_stop_) return;
    lock.unlock();
    SampleGauges();
    lock.lock();
  }
}

Result<HttpResponse> AdminHttpGet(const std::string& host, uint16_t port,
                                  const std::string& target, int timeout_ms) {
  Result<int> fd = ConnectWithTimeout(host, port, timeout_ms);
  if (!fd.ok()) return fd.status();
  const std::string request =
      "GET " + target + " HTTP/1.0\r\nConnection: close\r\n\r\n";
  Status wrote = WriteFull(*fd, request.data(), request.size(), timeout_ms);
  if (!wrote.ok()) {
    CloseSocket(*fd);
    return wrote;
  }
  std::string raw;
  char chunk[4096];
  // HTTP/1.0 + Connection: close means the body ends at EOF.
  for (;;) {
    Result<size_t> got = ReadSome(*fd, chunk, sizeof(chunk), timeout_ms);
    if (!got.ok()) {
      CloseSocket(*fd);
      return got.status();
    }
    if (*got == 0) break;
    raw.append(chunk, *got);
    if (raw.size() > (64u << 20)) {
      CloseSocket(*fd);
      return Status::ProtocolError("admin response exceeds 64 MiB");
    }
  }
  CloseSocket(*fd);
  // Parse "HTTP/1.x CODE REASON".
  const size_t sp = raw.find(' ');
  if (raw.compare(0, 5, "HTTP/") != 0 || sp == std::string::npos) {
    return Status::ProtocolError("malformed HTTP status line");
  }
  HttpResponse response;
  response.status_code = std::atoi(raw.c_str() + sp + 1);
  if (response.status_code < 100 || response.status_code > 599) {
    return Status::ProtocolError("malformed HTTP status code");
  }
  size_t body_start = raw.find("\r\n\r\n");
  size_t delim = 4;
  if (body_start == std::string::npos) {
    body_start = raw.find("\n\n");
    delim = 2;
  }
  if (body_start == std::string::npos) {
    return Status::ProtocolError("HTTP response missing header terminator");
  }
  response.body = raw.substr(body_start + delim);
  return response;
}

}  // namespace server
}  // namespace hyperdom
