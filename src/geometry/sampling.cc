// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/sampling.h"

#include <cmath>

namespace hyperdom {

namespace {

// A Gaussian vector, re-drawn in the (measure-zero) all-zeros case so that
// normalization is always defined.
Point GaussianDirection(Rng* rng, size_t dim) {
  for (;;) {
    Point p(dim);
    double norm_sq = 0.0;
    for (auto& v : p) {
      v = rng->NextGaussian();
      norm_sq += v * v;
    }
    if (norm_sq > 0.0) {
      const double inv = 1.0 / std::sqrt(norm_sq);
      for (auto& v : p) v *= inv;
      return p;
    }
  }
}

}  // namespace

Point SampleUnitBall(Rng* rng, size_t dim) {
  Point direction = GaussianDirection(rng, dim);
  const double radius =
      std::pow(rng->NextDouble(), 1.0 / static_cast<double>(dim));
  return Scale(direction, radius);
}

Point SampleInBall(Rng* rng, const Hypersphere& ball) {
  if (ball.radius() == 0.0) return ball.center();
  return AddScaled(ball.center(), ball.radius(),
                   SampleUnitBall(rng, ball.dim()));
}

Point SampleOnSphere(Rng* rng, const Hypersphere& ball) {
  if (ball.radius() == 0.0) return ball.center();
  return AddScaled(ball.center(), ball.radius(),
                   GaussianDirection(rng, ball.dim()));
}

}  // namespace hyperdom
