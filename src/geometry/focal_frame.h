// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The coordinate transform of paper Section 4.3.1, reduced to its essence.
//
// The paper rotates space so the hyperbola's foci ca, cb land at
// (-alpha, 0, ..., 0) and (+alpha, 0, ..., 0). Every quantity the Hyperbola
// algorithm then needs from the query center cq is
//   * its first transformed coordinate  y1 = <cq - m, u>,
//   * the norm of the remaining d-1 coordinates
//     y2 = sqrt(||cq - m||^2 - y1^2),
// where m is the focus midpoint and u the unit focal axis: the problem is
// rotationally symmetric about that axis. Computing (y1, y2) takes O(d) and
// avoids materializing a d x d rotation, matching the paper's O(d) bound.

#ifndef HYPERDOM_GEOMETRY_FOCAL_FRAME_H_
#define HYPERDOM_GEOMETRY_FOCAL_FRAME_H_

#include <cmath>

#include "geometry/point.h"

namespace hyperdom {

/// \brief The 2-plane frame spanned by the focal axis and the query center.
struct FocalFrame {
  /// Half the focal distance: alpha = Dist(ca, cb) / 2 > 0.
  double alpha = 0.0;
  /// Transformed axial coordinate of cq (negative side is the ca side).
  double y1 = 0.0;
  /// Distance of cq from the focal axis (always >= 0).
  double y2 = 0.0;
  /// Focus midpoint in original coordinates.
  Point mid;
  /// Unit vector from ca toward cb in original coordinates.
  Point axis;
};

/// \brief Builds the frame for foci `ca`, `cb` and query center `cq`.
///
/// Requires ca != cb. The frame satisfies
///   Dist(cq, ca) = sqrt((y1 + alpha)^2 + y2^2),
///   Dist(cq, cb) = sqrt((y1 - alpha)^2 + y2^2).
FocalFrame BuildFocalFrame(const Point& ca, const Point& cb, const Point& cq);

/// \brief Maps 2-plane coordinates (t1, t2) back to original space:
/// mid + t1 * axis + t2 * w, where w is the in-plane unit vector orthogonal
/// to the axis pointing toward cq (t2 >= 0 reaches cq's side).
///
/// When cq lies on the axis (y2 == 0) an arbitrary orthogonal direction is
/// synthesized; by rotational symmetry any choice is equivalent.
Point LiftFromFrame(const FocalFrame& frame, const Point& cq, double t1,
                    double t2);

/// Precision-generic reduction of BuildFocalFrame: just the three scalars
/// (alpha, y1, y2) the Hyperbola predicate needs, computed entirely in T.
/// The certified dominance engine instantiates this at long double to
/// re-derive the frame without double rounding; at T = double it mirrors
/// BuildFocalFrame's operation order exactly.
template <typename T>
struct FocalCoords {
  T alpha = T(0);
  T y1 = T(0);
  T y2 = T(0);
};

/// Span core: foci and query centers given as contiguous coordinate spans.
/// This is the zero-allocation replacement for BuildFocalFrame on the
/// dominance hot paths; the Point overload below delegates here.
template <typename T>
FocalCoords<T> ComputeFocalCoords(const double* ca, const double* cb,
                                  const double* cq, size_t dim) {
  FocalCoords<T> out;
  T focal_sq = T(0);
  for (size_t i = 0; i < dim; ++i) {
    const T diff = T(cb[i]) - T(ca[i]);
    focal_sq += diff * diff;
  }
  const T focal = std::sqrt(focal_sq);
  out.alpha = T(0.5) * focal;
  if (focal == T(0)) return out;
  const T inv = T(1) / focal;
  T y1 = T(0);
  T rel_sq = T(0);
  for (size_t i = 0; i < dim; ++i) {
    const T mid = T(0.5) * (T(ca[i]) + T(cb[i]));
    const T rel = T(cq[i]) - mid;
    const T axis = (T(cb[i]) - T(ca[i])) * inv;
    y1 += rel * axis;
    rel_sq += rel * rel;
  }
  out.y1 = y1;
  const T perp_sq = rel_sq - y1 * y1;
  out.y2 = perp_sq > T(0) ? std::sqrt(perp_sq) : T(0);
  return out;
}

template <typename T>
FocalCoords<T> ComputeFocalCoords(const Point& ca, const Point& cb,
                                  const Point& cq) {
  return ComputeFocalCoords<T>(ca.data(), cb.data(), cq.data(), ca.size());
}

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_FOCAL_FRAME_H_
