// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The force-inline kernel core shared by every spelling of the O(d)
// distance arithmetic: the out-of-line span kernels (geometry/point.cc),
// the always-scalar reference kernels (geometry/scalar_kernels.cc), and
// the inline SphereView kernels (geometry/hypersphere.h). There is exactly
// one definition of each accumulation loop and of each radius-combine
// expression in the library; whoever needs the arithmetic includes this
// header instead of retyping it, so the paths cannot drift bit-wise.
//
// -- The accumulation-order contract (v2) ----------------------------------
//
// Reductions over `dim` coordinates are evaluated in a FIXED order that is
// identical across the portable scalar build, the vectorized
// (HYPERDOM_NATIVE / AVX2) build, and the scalar reference kernels:
//
//   * dim <  kStridedLanes * 2 : plain ascending sequential sum
//                                (acc += term(i) for i = 0..dim-1).
//   * dim >= kStridedLanes * 2 : four strided partial sums, lane j owning
//                                elements 4k + j in ascending k, reduced
//                                as (l0 + l2) + (l1 + l3), then the tail
//                                elements (dim rounded down to a multiple
//                                of 4, onwards) added sequentially.
//
// The strided order is exactly what a 4-lane AVX2 vertical add produces
// (low/high 128-bit halves added pairwise, then the two scalars), so the
// SIMD kernels in point.cc realize the same sum with the same roundings —
// bit-identity between builds holds by construction, not by tolerance.
// Two hard rules keep it true:
//
//   1. No FMA contraction. A fused multiply-add skips the intermediate
//      rounding of the product and changes the sum. The TUs that compile
//      these loops (point.cc, scalar_kernels.cc) are built with
//      -ffp-contract=off (see src/CMakeLists.txt); do not instantiate the
//      accumulation templates from other TUs.
//   2. No reassociation. The compilers this repo supports (GCC/Clang
//      without -ffast-math) never reassociate FP sums; the strided scheme
//      is SIMD-mappable without asking them to.
//
// dim < 8 stays sequential so every value the pre-vectorization library
// produced at small dimensions is preserved exactly (the d = 2/3 exact
// pins in the test suite keep passing unchanged).

#ifndef HYPERDOM_GEOMETRY_KERNEL_CORE_H_
#define HYPERDOM_GEOMETRY_KERNEL_CORE_H_

#include <cstddef>

#if defined(_MSC_VER)
#define HYPERDOM_ALWAYS_INLINE __forceinline
#else
#define HYPERDOM_ALWAYS_INLINE inline __attribute__((always_inline))
#endif

namespace hyperdom {
namespace kernel_core {

/// Lanes of the strided accumulation scheme (one AVX2 register of
/// doubles). Part of the bit-identity contract — changing it changes
/// every reduction at dim >= kStridedCutover.
inline constexpr size_t kStridedLanes = 4;

/// Dimensions below this use the sequential (v1) order.
inline constexpr size_t kStridedCutover = 2 * kStridedLanes;

/// The fixed lane reduction: (l0 + l2) + (l1 + l3). Matches an AVX2
/// horizontal reduction that adds the low and high 128-bit halves first.
HYPERDOM_ALWAYS_INLINE double ReduceLanes(double l0, double l1, double l2,
                                          double l3) {
  return (l0 + l2) + (l1 + l3);
}

/// Fixed-order reduction of term(a[i], b[i]) over i = 0..dim-1 under the
/// v2 contract above. Only instantiate from TUs compiled with
/// -ffp-contract=off (rule 1).
template <typename TermFn>
HYPERDOM_ALWAYS_INLINE double AccumulateSpan(const double* a, const double* b,
                                             size_t dim, TermFn term) {
  if (dim < kStridedCutover) {
    double acc = 0.0;
    for (size_t i = 0; i < dim; ++i) acc += term(a[i], b[i]);
    return acc;
  }
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  const size_t main = dim & ~(kStridedLanes - 1);
  size_t i = 0;
  for (; i < main; i += kStridedLanes) {
    l0 += term(a[i], b[i]);
    l1 += term(a[i + 1], b[i + 1]);
    l2 += term(a[i + 2], b[i + 2]);
    l3 += term(a[i + 3], b[i + 3]);
  }
  double acc = ReduceLanes(l0, l1, l2, l3);
  for (; i < dim; ++i) acc += term(a[i], b[i]);
  return acc;
}

/// Inner-product core under the v2 order.
HYPERDOM_ALWAYS_INLINE double DotCore(const double* a, const double* b,
                                      size_t dim) {
  return AccumulateSpan(a, b, dim,
                        [](double x, double y) { return x * y; });
}

/// Squared-distance core under the v2 order.
HYPERDOM_ALWAYS_INLINE double SquaredDistCore(const double* a, const double* b,
                                              size_t dim) {
  return AccumulateSpan(a, b, dim, [](double x, double y) {
    const double diff = x - y;
    return diff * diff;
  });
}

// -- Radius combines -------------------------------------------------------
// The single spelling of how a center distance and two radii become the
// sphere-to-sphere bounds. The radii grouping (ra + rb) is part of the
// bit-identity contract (symmetric in the arguments). Safe to inline into
// any TU: subtraction/addition chains contain no multiply-add pair, so FP
// contraction cannot alter them.

/// MaxDist(Sa, Sb) = Dist(ca, cb) + (ra + rb)  (paper Eq. (3)).
HYPERDOM_ALWAYS_INLINE double CombineMaxDist(double center_dist, double ra,
                                             double rb) {
  return center_dist + (ra + rb);
}

/// MinDist(Sa, Sb) = max(0, Dist(ca, cb) - (ra + rb))  (paper Eq. (4)).
HYPERDOM_ALWAYS_INLINE double CombineMinDist(double center_dist, double ra,
                                             double rb) {
  const double d = center_dist - (ra + rb);
  return d > 0.0 ? d : 0.0;
}

/// Overlap test on the squared center distance: Dist <= ra + rb.
HYPERDOM_ALWAYS_INLINE bool OverlapFromSquared(double sq_center_dist,
                                               double ra, double rb) {
  const double sum = ra + rb;
  return sq_center_dist <= sum * sum;
}

}  // namespace kernel_core
}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_KERNEL_CORE_H_
