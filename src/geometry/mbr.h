// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Minimum bounding hyperrectangles and the optimal rectangle dominance
// decision of Emrich et al., "Boosting spatial pruning: on optimal pruning
// of MBRs" (SIGMOD 2010) — reference [14] of the paper. The hypersphere MBR
// criterion (Section 2.2) bounds each sphere by its MBR and delegates here.

#ifndef HYPERDOM_GEOMETRY_MBR_H_
#define HYPERDOM_GEOMETRY_MBR_H_

#include <string>

#include "geometry/hypersphere.h"
#include "geometry/point.h"

namespace hyperdom {

/// \brief An axis-aligned box [lo[i], hi[i]] per dimension.
class Mbr {
 public:
  Mbr() = default;

  /// Constructs a box; requires lo[i] <= hi[i] for all i (asserted).
  Mbr(Point lo, Point hi);

  /// The tightest box around a hypersphere: [c - r, c + r] per dimension.
  static Mbr FromSphere(const Hypersphere& s);

  /// Same, from a non-owning sphere view (identical arithmetic).
  static Mbr FromSphere(SphereView s);

  /// The degenerate box around a single point.
  static Mbr FromPoint(const Point& p) { return Mbr(p, p); }

  const Point& lo() const { return lo_; }
  const Point& hi() const { return hi_; }
  size_t dim() const { return lo_.size(); }

  /// Box midpoint on dimension `i`.
  double Mid(size_t i) const { return 0.5 * (lo_[i] + hi_[i]); }
  /// Box half-extent on dimension `i`.
  double HalfExtent(size_t i) const { return 0.5 * (hi_[i] - lo_[i]); }

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff the two boxes share at least one point.
  bool Intersects(const Mbr& other) const;

  /// Grows this box to cover `other`.
  void ExtendToCover(const Mbr& other);

  std::string ToString() const;

 private:
  Point lo_;
  Point hi_;
};

/// Minimum distance between two boxes (0 when they intersect).
double MinDist(const Mbr& a, const Mbr& b);

/// Minimum distance from a box to a point (0 when inside).
double MinDist(const Mbr& a, const Point& p);

/// Minimum distance from a box to a hypersphere (0 when they intersect).
double MinDist(const Mbr& a, const Hypersphere& s);

/// Maximum distance from a box to a point.
double MaxDist(const Mbr& a, const Point& p);

/// The box volume (product of side lengths).
double Volume(const Mbr& a);

/// The box margin (sum of side lengths; the R*-tree split heuristic).
double Margin(const Mbr& a);

/// The volume of the intersection of two boxes (0 when disjoint).
double OverlapVolume(const Mbr& a, const Mbr& b);

/// The smallest box covering both inputs.
Mbr Union(const Mbr& a, const Mbr& b);

/// Maximum distance between two boxes.
double MaxDist(const Mbr& a, const Mbr& b);

/// \brief Largest |a - t| over a in [lo, hi]: the one-dimensional MaxDist
/// component. Exposed for tests.
double MaxDistComponent(double lo, double hi, double t);

/// \brief Smallest |b - t| over b in [lo, hi]: the one-dimensional MinDist
/// component (0 when t is inside the interval). Exposed for tests.
double MinDistComponent(double lo, double hi, double t);

/// \brief Emrich et al.'s DDC_optimal: does box `a` dominate box `b` w.r.t.
/// query box `q`?
///
/// Decides `forall p in q: MaxDist(a, p) < MinDist(b, p)` exactly in O(d):
/// both squared distances are separable sums over dimensions, and the query
/// coordinates vary independently inside a box, so
///   max_{p in q} (MaxDist(a,p)^2 - MinDist(b,p)^2)
///     = sum_i max_{t in [q.lo_i, q.hi_i]} (maxd_i(t)^2 - mind_i(t)^2).
/// Each per-dimension term is piecewise quadratic with convex-or-linear
/// pieces, so its maximum is attained at the interval endpoints or one of at
/// most three breakpoints. Correct and sound for hyperrectangles.
bool RectDominates(const Mbr& a, const Mbr& b, const Mbr& q);

/// \brief DDC_optimal applied to the MBRs of three sphere views, without
/// materializing the boxes.
///
/// Computes each box bound `c[i] ∓ r` on the fly inside the per-dimension
/// loop — the arithmetic is exactly `RectDominates(Mbr::FromSphere(a),
/// Mbr::FromSphere(b), Mbr::FromSphere(q))` with zero allocation.
bool RectDominatesSpheres(SphereView a, SphereView b, SphereView q);

/// Minimum distance from a box to a sphere view (0 when they intersect).
double MinDist(const Mbr& a, SphereView s);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_MBR_H_
