// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Precision-generic implementations of the closed-form real-root solvers
// behind geometry/polynomial.h. The public double-precision API delegates to
// these templates; the certified dominance engine (dominance/certified.h)
// instantiates them at long double as an escalation tier when a double
// verdict lands inside its own error band.
//
// The templates are faithful transcriptions of the original double code:
// instantiated at T = double they perform bit-identical operations, so the
// extensive polynomial/hyperbola test suites pin both precisions at once.
//
// Two API surfaces share one implementation: the `*IntoT` solvers fill a
// caller-owned fixed-capacity RootsT<T> (a degree-n polynomial has at most
// n real roots, so capacity 4 covers every solver here) and never touch the
// heap — this is what the dominance hot paths use to meet their
// zero-allocation contract — while the historical std::vector-returning
// wrappers copy out of a RootsT and remain for callers and tests that want
// the convenient shape.

#ifndef HYPERDOM_GEOMETRY_POLYNOMIAL_KERNEL_H_
#define HYPERDOM_GEOMETRY_POLYNOMIAL_KERNEL_H_

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <limits>
#include <numbers>
#include <vector>

namespace hyperdom {
namespace polynomial_internal {

// Relative tolerance used when collapsing near-identical roots. The
// dominance predicate is decided by comparing distances derived from these
// roots, so a duplicated root is harmless — deduplication just keeps root
// lists tidy for callers and tests.
inline constexpr double kDedupeRelTol = 1e-9;

// Fixed-capacity root container: lives entirely on the caller's stack.
template <typename T, size_t N>
struct SmallRootsT {
  T data[N] = {};  // value-init keeps -Wmaybe-uninitialized quiet
  size_t count = 0;

  void push_back(T v) {
    assert(count < N);
    data[count++] = v;
  }
  void clear() { count = 0; }
  size_t size() const { return count; }
  bool empty() const { return count == 0; }
  T* begin() { return data; }
  T* end() { return data + count; }
  const T* begin() const { return data; }
  const T* end() const { return data + count; }
  T operator[](size_t i) const { return data[i]; }
  T& operator[](size_t i) { return data[i]; }
};

// A quartic has at most four real roots; every solver in this header fits.
template <typename T>
using RootsT = SmallRootsT<T, 4>;

// Tolerance for the relative degree-degeneracy test below. The exact
// `a == 0` test misclassifies near-degenerate polynomials: normalizing by a
// vanishing leading term produces astronomically scaled depressed
// coefficients and spurious or lost roots, while the lower-degree solve
// (whose roots the Newton polish then refines) is well conditioned.
template <typename T>
inline constexpr T kDegenerateLeadingTol =
    T(1024) * std::numeric_limits<T>::epsilon();

// True when the leading coefficient contributes nothing even at the scale
// of the reduced polynomial's roots: |a| * M <= tol * coeff_scale with M a
// Cauchy bound (1 + max|c_i / b|) on those roots. A bare |a| <= tol * scale
// ratio test is NOT enough — it misfires on genuine but badly scaled
// polynomials (Ferrari resolvent cubics carry leading coefficient 8 next
// to a constant term q^2 that can exceed 1e15), and dropping their cubic
// term silently corrupts the quartic factorization downstream.
template <typename T>
bool LeadingCoefficientNegligibleT(T a, T b, std::initializer_list<T> rest) {
  if (a == T(0)) return true;
  if (b == T(0)) return false;  // the reduced polynomial would degenerate too
  T coeff_scale = std::max(std::abs(a), std::abs(b));
  T cauchy = T(1);
  for (T c : rest) {
    coeff_scale = std::max(coeff_scale, std::abs(c));
    cauchy = std::max(cauchy, T(1) + std::abs(c / b));
  }
  return std::abs(a) * cauchy <= kDegenerateLeadingTol<T> * coeff_scale;
}

// Sort + tolerance-dedupe on a fixed-capacity root set. The insertion sort
// yields the same sorted value sequence as std::sort, and the unique pass
// replicates std::unique's keep-first-of-group semantics, so the result is
// identical to the historical vector-based implementation.
template <typename T, size_t N>
void SortAndDedupeSmallT(SmallRootsT<T, N>* roots) {
  for (size_t i = 1; i < roots->count; ++i) {
    T v = roots->data[i];
    size_t j = i;
    while (j > 0 && roots->data[j - 1] > v) {
      roots->data[j] = roots->data[j - 1];
      --j;
    }
    roots->data[j] = v;
  }
  auto nearly_equal = [](T a, T b) {
    const T scale = std::max({T(1), std::abs(a), std::abs(b)});
    return std::abs(a - b) <= T(kDedupeRelTol) * scale;
  };
  size_t out = 0;
  for (size_t i = 0; i < roots->count; ++i) {
    if (out == 0 || !nearly_equal(roots->data[out - 1], roots->data[i])) {
      roots->data[out++] = roots->data[i];
    }
  }
  roots->count = out;
}

template <typename T>
void SortAndDedupeT(std::vector<T>* roots) {
  std::sort(roots->begin(), roots->end());
  auto nearly_equal = [](T a, T b) {
    const T scale = std::max({T(1), std::abs(a), std::abs(b)});
    return std::abs(a - b) <= T(kDedupeRelTol) * scale;
  };
  roots->erase(std::unique(roots->begin(), roots->end(), nearly_equal),
               roots->end());
}

// Horner evaluation over a contiguous coefficient span (highest degree
// first), shared by the vector overloads below.
template <typename T>
T EvaluateSpanT(const T* coeffs, size_t n, T x) {
  T acc = T(0);
  for (size_t i = 0; i < n; ++i) acc = acc * x + coeffs[i];
  return acc;
}

template <typename T>
T EvaluateDerivativeSpanT(const T* coeffs, size_t n, T x) {
  if (n < 2) return T(0);
  T acc = T(0);
  for (size_t i = 0; i + 1 < n; ++i) {
    const T power = static_cast<T>(n - 1 - i);
    acc = acc * x + coeffs[i] * power;
  }
  return acc;
}

template <typename T>
T EvaluateT(const std::vector<T>& coeffs, T x) {
  return EvaluateSpanT(coeffs.data(), coeffs.size(), x);
}

template <typename T>
T EvaluateDerivativeT(const std::vector<T>& coeffs, T x) {
  return EvaluateDerivativeSpanT(coeffs.data(), coeffs.size(), x);
}

template <typename T>
T PolishRootSpanT(const T* coeffs, size_t n, T x0) {
  T x = x0;
  for (int iter = 0; iter < 8; ++iter) {
    const T f = EvaluateSpanT(coeffs, n, x);
    if (f == T(0)) break;
    const T df = EvaluateDerivativeSpanT(coeffs, n, x);
    if (df == T(0)) break;
    const T next = x - f / df;
    if (!std::isfinite(next)) break;
    // Accept only improving steps so polishing can never make a root worse.
    if (std::abs(EvaluateSpanT(coeffs, n, next)) >= std::abs(f)) break;
    x = next;
  }
  return x;
}

template <typename T>
T PolishRootT(const std::vector<T>& coeffs, T x0) {
  return PolishRootSpanT(coeffs.data(), coeffs.size(), x0);
}

template <typename T>
void SolveLinearIntoT(T a, T b, RootsT<T>* out) {
  out->clear();
  if (a == T(0)) return;
  out->push_back(-b / a);
}

template <typename T>
void SolveQuadraticIntoT(T a, T b, T c, RootsT<T>* out) {
  if (a == T(0)) {
    SolveLinearIntoT(b, c, out);
    return;
  }
  out->clear();
  const T disc = b * b - T(4) * a * c;
  if (disc < T(0)) return;
  if (disc == T(0)) {
    out->push_back(-b / (T(2) * a));
    return;
  }
  // Stable form: compute the larger-magnitude root first, derive the other
  // from the product c/a to avoid catastrophic cancellation.
  const T sqrt_disc = std::sqrt(disc);
  const T q = T(-0.5) * (b + (b >= T(0) ? sqrt_disc : -sqrt_disc));
  out->push_back(q / a);
  out->push_back(c / q);
  SortAndDedupeSmallT(out);
}

template <typename T>
void SolveCubicIntoT(T a, T b, T c, T d, RootsT<T>* out) {
  // Relative degeneracy test: a leading term negligible at the scale of
  // the quadratic's roots yields better roots from the quadratic (the
  // third "root" lives near infinity).
  if (LeadingCoefficientNegligibleT(a, b, {c, d})) {
    SolveQuadraticIntoT(b, c, d, out);
    return;
  }
  out->clear();
  // Normalize to x^3 + B x^2 + C x + D.
  const T B = b / a;
  const T C = c / a;
  const T D = d / a;
  // Depress: x = t - B/3  ->  t^3 + p t + q.
  const T shift = B / T(3);
  const T p = C - B * B / T(3);
  const T q = T(2) * B * B * B / T(27) - B * C / T(3) + D;

  const T half_q = T(0.5) * q;
  const T third_p = p / T(3);
  const T disc = half_q * half_q + third_p * third_p * third_p;
  if (disc > T(0)) {
    // One real root (Cardano).
    const T s = std::sqrt(disc);
    const T u = std::cbrt(-half_q + s);
    const T v = std::cbrt(-half_q - s);
    out->push_back(u + v - shift);
  } else if (disc == T(0)) {
    if (half_q == T(0)) {
      out->push_back(-shift);  // Triple root.
    } else {
      const T u = std::cbrt(-half_q);
      out->push_back(T(2) * u - shift);
      out->push_back(-u - shift);
    }
  } else {
    // Three distinct real roots (trigonometric method).
    const T r = std::sqrt(-third_p);
    const T theta = std::acos(std::clamp(
        -half_q / (r * r * r), T(-1), T(1)));
    for (int k = 0; k < 3; ++k) {
      out->push_back(T(2) * r *
                         std::cos((theta + T(2) * std::numbers::pi_v<T> *
                                               static_cast<T>(k)) /
                                  T(3)) -
                     shift);
    }
  }
  // Polish against the original (un-normalized) coefficients.
  const T coeffs[4] = {a, b, c, d};
  for (T& root : *out) root = PolishRootSpanT(coeffs, 4, root);
  SortAndDedupeSmallT(out);
}

template <typename T>
void SolveQuarticIntoT(T a, T b, T c, T d, T e, RootsT<T>* out) {
  // Same relative degeneracy test as the cubic.
  if (LeadingCoefficientNegligibleT(a, b, {c, d, e})) {
    SolveCubicIntoT(b, c, d, e, out);
    return;
  }
  out->clear();
  // Normalize to x^4 + B x^3 + C x^2 + D x + E.
  const T B = b / a;
  const T C = c / a;
  const T D = d / a;
  const T E = e / a;
  // Depress: x = y - B/4  ->  y^4 + p y^2 + q y + r.
  const T shift = B / T(4);
  const T B2 = B * B;
  const T p = C - T(3) * B2 / T(8);
  const T q = D - B * C / T(2) + B2 * B / T(8);
  const T r =
      E - B * D / T(4) + B2 * C / T(16) - T(3) * B2 * B2 / T(256);

  if (std::abs(q) < T(1e-14) * std::max({T(1), std::abs(p), std::abs(r)})) {
    // Biquadratic: y^4 + p y^2 + r = 0.
    RootsT<T> zs;
    SolveQuadraticIntoT(T(1), p, r, &zs);
    for (T z : zs) {
      if (z < T(0)) continue;
      const T y = std::sqrt(z);
      out->push_back(y - shift);
      out->push_back(-y - shift);
    }
  } else {
    // Ferrari: find m > 0 with the resolvent cubic
    //   m^3 + p m^2 + (p^2/4 - r) m - q^2/8 = 0   (m = 2 z - p form folded).
    // Using the standard resolvent for y^4 + p y^2 + q y + r:
    //   8 m^3 + 8 p m^2 + (2 p^2 - 8 r) m - q^2 = 0.
    RootsT<T> ms;
    SolveCubicIntoT(T(8), T(8) * p, T(2) * p * p - T(8) * r, -q * q, &ms);
    T m = std::numeric_limits<T>::quiet_NaN();
    for (T cand : ms) {
      if (cand > T(0) && (!std::isfinite(m) || cand > m)) m = cand;
    }
    if (!std::isfinite(m) || m <= T(0)) {
      // q != 0 guarantees a positive resolvent root in exact arithmetic; if
      // rounding produced none, take the largest root clamped positive.
      m = T(0);
      for (T cand : ms) m = std::max(m, cand);
      if (m <= T(0)) m = T(1e-300);
    }
    // y^4 + p y^2 + q y + r = (y^2 + m' y + s1)(y^2 - m' y + s2) with
    // m' = sqrt(2 m), s_{1,2} = p/2 + m -/+ q / (2 m').
    const T mp = std::sqrt(T(2) * m);
    const T s1 = p / T(2) + m - q / (T(2) * mp);
    const T s2 = p / T(2) + m + q / (T(2) * mp);
    RootsT<T> ys;
    SolveQuadraticIntoT(T(1), mp, s1, &ys);
    for (T y : ys) out->push_back(y - shift);
    SolveQuadraticIntoT(T(1), -mp, s2, &ys);
    for (T y : ys) out->push_back(y - shift);
  }

  const T coeffs[5] = {a, b, c, d, e};
  for (T& root : *out) root = PolishRootSpanT(coeffs, 5, root);
  SortAndDedupeSmallT(out);
}

// -- Historical std::vector wrappers ---------------------------------------

template <typename T>
std::vector<T> SolveLinearT(T a, T b) {
  RootsT<T> r;
  SolveLinearIntoT(a, b, &r);
  return std::vector<T>(r.begin(), r.end());
}

template <typename T>
std::vector<T> SolveQuadraticT(T a, T b, T c) {
  RootsT<T> r;
  SolveQuadraticIntoT(a, b, c, &r);
  return std::vector<T>(r.begin(), r.end());
}

template <typename T>
std::vector<T> SolveCubicT(T a, T b, T c, T d) {
  RootsT<T> r;
  SolveCubicIntoT(a, b, c, d, &r);
  return std::vector<T>(r.begin(), r.end());
}

template <typename T>
std::vector<T> SolveQuarticT(T a, T b, T c, T d, T e) {
  RootsT<T> r;
  SolveQuarticIntoT(a, b, c, d, e, &r);
  return std::vector<T>(r.begin(), r.end());
}

}  // namespace polynomial_internal
}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POLYNOMIAL_KERNEL_H_
