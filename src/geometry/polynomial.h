// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Closed-form real-root solvers for polynomials up to degree four, with
// Newton polishing. The Hyperbola algorithm reduces the minimum-distance
// problem (paper Section 4.3.2) to the quartic of Eq. (14); solving it in
// O(1) is what makes the whole predicate O(d).
//
// Implementations live in polynomial_kernel.h as precision-generic
// templates; this header is the stable double-precision surface. The
// *WithError / *WithBounds entry points additionally certify their results:
// every returned value carries a forward error bound derived from a
// running-error Horner analysis (Higham, "Accuracy and Stability of
// Numerical Algorithms", Alg. 5.1), which the certified dominance engine
// uses to decide when double arithmetic cannot be trusted.

#ifndef HYPERDOM_GEOMETRY_POLYNOMIAL_H_
#define HYPERDOM_GEOMETRY_POLYNOMIAL_H_

#include <cstddef>
#include <vector>

namespace hyperdom {

/// Real roots (ascending, deduplicated) of a*x + b = 0.
/// Degenerate a == 0 yields no roots (the constant polynomial).
std::vector<double> SolveLinear(double a, double b);

/// Real roots (ascending, deduplicated) of a*x^2 + b*x + c = 0.
/// Falls back to the linear solver when a == 0. Uses the numerically stable
/// "q" formulation to avoid cancellation.
std::vector<double> SolveQuadratic(double a, double b, double c);

/// Real roots (ascending, deduplicated) of a*x^3 + b*x^2 + c*x + d = 0.
/// Falls back to the quadratic solver when the leading coefficient is
/// negligible relative to the largest coefficient (see
/// polynomial_internal::kDegenerateLeadingTol). Three-real-root cases use
/// the trigonometric method; single-root cases use Cardano.
std::vector<double> SolveCubic(double a, double b, double c, double d);

/// Real roots (ascending, deduplicated) of
/// a*x^4 + b*x^3 + c*x^2 + d*x + e = 0.
/// Falls back to the cubic solver when the leading coefficient is
/// negligible relative to the largest coefficient. Uses Ferrari's method via
/// the resolvent cubic, then Newton-polishes every root against the original
/// coefficients.
std::vector<double> SolveQuartic(double a, double b, double c, double d,
                                 double e);

/// Horner evaluation; `coeffs` are descending-degree
/// (coeffs[0]*x^(n-1) + ... + coeffs[n-1]).
double EvaluatePolynomial(const std::vector<double>& coeffs, double x);

/// Derivative evaluation under the same descending-degree convention.
double EvaluatePolynomialDerivative(const std::vector<double>& coeffs,
                                    double x);

/// \brief Runs a few Newton iterations of `coeffs` starting from `x0`.
///
/// Returns the (possibly unimproved) final iterate; never diverges to
/// NaN/inf — iteration stops if the step is not finite. Exposed for tests.
double PolishRoot(const std::vector<double>& coeffs, double x0);

/// A Horner evaluation together with a rigorous forward error bound:
/// the exact value of the polynomial at x lies within
/// [value - error_bound, value + error_bound].
struct PolynomialEval {
  double value = 0.0;
  double error_bound = 0.0;
};

/// \brief Horner evaluation with a running forward error bound.
///
/// Implements Higham's running error analysis: alongside the Horner
/// recurrence y <- y*x + c_i it accumulates mu <- mu*|x| + |y| and returns
/// error_bound = u * (2*mu - |y|) with u the unit roundoff. The bound is
/// rigorous for any coefficients and any x (barring overflow, where the
/// bound becomes +inf).
PolynomialEval EvaluatePolynomialWithError(const std::vector<double>& coeffs,
                                           double x);

/// A polished real root together with a conservative error bound on its
/// distance from the nearby exact root. `error_bound` is +inf when the root
/// is too ill-conditioned for the first-order bound to be trusted (root
/// clusters / vanishing derivative) — callers must then escalate precision
/// rather than trust the root.
struct CertifiedRoot {
  double root = 0.0;
  double error_bound = 0.0;
};

/// \brief SolveQuartic plus a per-root forward error bound.
///
/// For each polished root r the bound is (|p(r)| + horner_err(r)) / |p'(r)|,
/// the classic residual/derivative estimate made rigorous by the running
/// error analysis of the residual. When the linear model is invalid —
/// |p'(r)|^2 <= 4 * (|p(r)| + horner_err) * |p''(r)|, i.e. the root is part
/// of a cluster — the bound is +inf.
std::vector<CertifiedRoot> SolveQuarticWithBounds(double a, double b,
                                                  double c, double d,
                                                  double e);

/// Fixed-capacity result of SolveQuarticWithBoundsInto: at most four real
/// roots, caller-owned, no heap allocation.
struct CertifiedRootSet {
  CertifiedRoot roots[4];
  size_t count = 0;

  const CertifiedRoot* begin() const { return roots; }
  const CertifiedRoot* end() const { return roots + count; }
  bool empty() const { return count == 0; }
};

/// \brief SolveQuarticWithBounds into a caller-owned fixed-capacity set.
///
/// Identical arithmetic to the vector-returning overload; this is the form
/// the certified dominance engine calls on its zero-allocation fast path.
void SolveQuarticWithBoundsInto(double a, double b, double c, double d,
                                double e, CertifiedRootSet* out);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POLYNOMIAL_H_
