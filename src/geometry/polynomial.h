// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Closed-form real-root solvers for polynomials up to degree four, with
// Newton polishing. The Hyperbola algorithm reduces the minimum-distance
// problem (paper Section 4.3.2) to the quartic of Eq. (14); solving it in
// O(1) is what makes the whole predicate O(d).

#ifndef HYPERDOM_GEOMETRY_POLYNOMIAL_H_
#define HYPERDOM_GEOMETRY_POLYNOMIAL_H_

#include <vector>

namespace hyperdom {

/// Real roots (ascending, deduplicated) of a*x + b = 0.
/// Degenerate a == 0 yields no roots (the constant polynomial).
std::vector<double> SolveLinear(double a, double b);

/// Real roots (ascending, deduplicated) of a*x^2 + b*x + c = 0.
/// Falls back to the linear solver when a == 0. Uses the numerically stable
/// "q" formulation to avoid cancellation.
std::vector<double> SolveQuadratic(double a, double b, double c);

/// Real roots (ascending, deduplicated) of a*x^3 + b*x^2 + c*x + d = 0.
/// Falls back to the quadratic solver when a == 0. Three-real-root cases use
/// the trigonometric method; single-root cases use Cardano.
std::vector<double> SolveCubic(double a, double b, double c, double d);

/// Real roots (ascending, deduplicated) of
/// a*x^4 + b*x^3 + c*x^2 + d*x + e = 0.
/// Falls back to the cubic solver when a == 0. Uses Ferrari's method via the
/// resolvent cubic, then Newton-polishes every root against the original
/// coefficients.
std::vector<double> SolveQuartic(double a, double b, double c, double d,
                                 double e);

/// Horner evaluation; `coeffs` are descending-degree
/// (coeffs[0]*x^(n-1) + ... + coeffs[n-1]).
double EvaluatePolynomial(const std::vector<double>& coeffs, double x);

/// Derivative evaluation under the same descending-degree convention.
double EvaluatePolynomialDerivative(const std::vector<double>& coeffs,
                                    double x);

/// \brief Runs a few Newton iterations of `coeffs` starting from `x0`.
///
/// Returns the (possibly unimproved) final iterate; never diverges to
/// NaN/inf — iteration stops if the step is not finite. Exposed for tests.
double PolishRoot(const std::vector<double>& coeffs, double x0);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POLYNOMIAL_H_
