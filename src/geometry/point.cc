// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/point.h"

#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace hyperdom {

double DotSpan(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * b[i];
  return acc;
}

double SquaredNormSpan(const double* a, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) acc += a[i] * a[i];
  return acc;
}

double NormSpan(const double* a, size_t dim) {
  return std::sqrt(SquaredNormSpan(a, dim));
}

double SquaredDistSpan(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

double DistSpan(const double* a, const double* b, size_t dim) {
  return std::sqrt(SquaredDistSpan(a, b, dim));
}

void AddInPlaceSpan(double* acc, const double* x, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] += x[i];
}

void SubInPlaceSpan(double* acc, const double* x, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] -= x[i];
}

double Dot(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  return DotSpan(a.data(), b.data(), a.size());
}

double SquaredNorm(const Point& a) {
  return SquaredNormSpan(a.data(), a.size());
}

double Norm(const Point& a) { return std::sqrt(SquaredNorm(a)); }

double SquaredDist(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  return SquaredDistSpan(a.data(), b.data(), a.size());
}

double Dist(const Point& a, const Point& b) {
  return std::sqrt(SquaredDist(a, b));
}

Point Add(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Point Sub(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Point Scale(const Point& a, double s) {
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Point AddScaled(const Point& a, double s, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Point Midpoint(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = 0.5 * (a[i] + b[i]);
  return out;
}

Point Normalized(const Point& a) {
  const double n = Norm(a);
  assert(n > 0.0);
  return Scale(a, 1.0 / n);
}

std::string ToString(const Point& p) {
  std::string out = "(";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(p[i]);
  }
  out += ")";
  return out;
}

}  // namespace hyperdom
