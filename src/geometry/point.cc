// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// This TU is compiled with -ffp-contract=off (src/CMakeLists.txt): the
// kernel_core accumulation templates and the AVX2 mul/add intrinsic pairs
// below must not be fused into FMAs, or the values drift from the portable
// build and the bit-identity contract breaks.

#include "geometry/point.h"

#include <cassert>
#include <cmath>

#include "common/str_util.h"
#include "geometry/kernel_core.h"

// The vectorized path is keyed purely off the target ISA: HYPERDOM_NATIVE
// adds -march=native, and on an AVX2 machine that defines __AVX2__ here.
// Rows in the SphereStore arena are only 64-byte aligned at the arena
// BASE; a row at an odd dim lands on an arbitrary 8-byte boundary, so
// every vector load below is an unaligned load (loadu) by contract.
#if defined(__AVX2__)
#include <immintrin.h>
#define HYPERDOM_KERNELS_AVX2 1
#endif

namespace hyperdom {

namespace {

using kernel_core::kStridedCutover;
using kernel_core::kStridedLanes;

#if defined(HYPERDOM_KERNELS_AVX2)

// Horizontal reduction matching kernel_core::ReduceLanes exactly: the
// 256-bit accumulator holds {l0, l1, l2, l3}; adding the low and high
// 128-bit halves gives {l0+l2, l1+l3}, and the final scalar add produces
// (l0 + l2) + (l1 + l3).
HYPERDOM_ALWAYS_INLINE double ReduceVector(__m256d acc) {
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(pair) +
         _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

// AVX2 realizations of the v2 strided order (only called at
// dim >= kStridedCutover; smaller dims stay on the sequential scalar
// core). Vertical adds accumulate lane j over elements 4k + j in
// ascending k — the same partial sums, in the same order, as the scalar
// strided loop.

HYPERDOM_ALWAYS_INLINE double DotAvx2(const double* a, const double* b,
                                      size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  const size_t main = dim & ~(kStridedLanes - 1);
  size_t i = 0;
  for (; i < main; i += kStridedLanes) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double out = ReduceVector(acc);
  for (; i < dim; ++i) out += a[i] * b[i];
  return out;
}

HYPERDOM_ALWAYS_INLINE double SquaredDistAvx2(const double* a,
                                              const double* b, size_t dim) {
  __m256d acc = _mm256_setzero_pd();
  const size_t main = dim & ~(kStridedLanes - 1);
  size_t i = 0;
  for (; i < main; i += kStridedLanes) {
    const __m256d diff =
        _mm256_sub_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i));
    acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
  }
  double out = ReduceVector(acc);
  for (; i < dim; ++i) {
    const double diff = a[i] - b[i];
    out += diff * diff;
  }
  return out;
}

// Rows interleaved per batched-kernel group. Eight independent
// accumulator chains are needed to cover the FP add pipeline: two vector
// add ports x 4-cycle latency.
constexpr size_t kBatchRows = 8;

// Squared center distances of kBatchRows consecutive rows to q at once.
// Each row owns a private accumulator fed with the exact instruction
// sequence SquaredDistAvx2 uses (same chunk order, same vertical adds,
// same ReduceVector, same sequential tail), so every out[j] is
// bit-identical to a serial call on that row. Only the cross-row schedule
// changes: the serial kernel is bound by the 4-cycle latency of its
// single accumulator's loop-carried add, and eight independent chains
// keep both add ports full instead.
HYPERDOM_ALWAYS_INLINE void SquaredDistAvx2x8(const double* rows, size_t dim,
                                              const double* q, double* out) {
  const double* r0 = rows;
  const double* r1 = rows + dim;
  const double* r2 = rows + 2 * dim;
  const double* r3 = rows + 3 * dim;
  const double* r4 = rows + 4 * dim;
  const double* r5 = rows + 5 * dim;
  const double* r6 = rows + 6 * dim;
  const double* r7 = rows + 7 * dim;
  __m256d a0 = _mm256_setzero_pd();
  __m256d a1 = _mm256_setzero_pd();
  __m256d a2 = _mm256_setzero_pd();
  __m256d a3 = _mm256_setzero_pd();
  __m256d a4 = _mm256_setzero_pd();
  __m256d a5 = _mm256_setzero_pd();
  __m256d a6 = _mm256_setzero_pd();
  __m256d a7 = _mm256_setzero_pd();
  const size_t main = dim & ~(kStridedLanes - 1);
  size_t i = 0;
  for (; i < main; i += kStridedLanes) {
    const __m256d qv = _mm256_loadu_pd(q + i);
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(r0 + i), qv);
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(r1 + i), qv);
    const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(r2 + i), qv);
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(r3 + i), qv);
    a0 = _mm256_add_pd(a0, _mm256_mul_pd(d0, d0));
    a1 = _mm256_add_pd(a1, _mm256_mul_pd(d1, d1));
    a2 = _mm256_add_pd(a2, _mm256_mul_pd(d2, d2));
    a3 = _mm256_add_pd(a3, _mm256_mul_pd(d3, d3));
    const __m256d d4 = _mm256_sub_pd(_mm256_loadu_pd(r4 + i), qv);
    const __m256d d5 = _mm256_sub_pd(_mm256_loadu_pd(r5 + i), qv);
    const __m256d d6 = _mm256_sub_pd(_mm256_loadu_pd(r6 + i), qv);
    const __m256d d7 = _mm256_sub_pd(_mm256_loadu_pd(r7 + i), qv);
    a4 = _mm256_add_pd(a4, _mm256_mul_pd(d4, d4));
    a5 = _mm256_add_pd(a5, _mm256_mul_pd(d5, d5));
    a6 = _mm256_add_pd(a6, _mm256_mul_pd(d6, d6));
    a7 = _mm256_add_pd(a7, _mm256_mul_pd(d7, d7));
  }
  double s0 = ReduceVector(a0);
  double s1 = ReduceVector(a1);
  double s2 = ReduceVector(a2);
  double s3 = ReduceVector(a3);
  double s4 = ReduceVector(a4);
  double s5 = ReduceVector(a5);
  double s6 = ReduceVector(a6);
  double s7 = ReduceVector(a7);
  for (; i < dim; ++i) {
    const double qi = q[i];
    const double t0 = r0[i] - qi;
    const double t1 = r1[i] - qi;
    const double t2 = r2[i] - qi;
    const double t3 = r3[i] - qi;
    s0 += t0 * t0;
    s1 += t1 * t1;
    s2 += t2 * t2;
    s3 += t3 * t3;
    const double t4 = r4[i] - qi;
    const double t5 = r5[i] - qi;
    const double t6 = r6[i] - qi;
    const double t7 = r7[i] - qi;
    s4 += t4 * t4;
    s5 += t5 * t5;
    s6 += t6 * t6;
    s7 += t7 * t7;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
  out[4] = s4;
  out[5] = s5;
  out[6] = s6;
  out[7] = s7;
}

// Packed square roots of the eight non-negative squared distances. IEEE
// 754 requires sqrt to be correctly rounded, so vsqrtpd produces the
// same bits as the scalar std::sqrt the serial path uses (inputs are
// sums of squares, never negative), while retiring four roots per
// instruction instead of one.
HYPERDOM_ALWAYS_INLINE void SqrtX8(const double* sq, double* out) {
  _mm256_storeu_pd(out, _mm256_sqrt_pd(_mm256_loadu_pd(sq)));
  _mm256_storeu_pd(out + 4, _mm256_sqrt_pd(_mm256_loadu_pd(sq + 4)));
}

#endif  // HYPERDOM_KERNELS_AVX2

}  // namespace

const char* KernelDispatchName() {
#if defined(HYPERDOM_KERNELS_AVX2)
  return "avx2";
#else
  return "scalar";
#endif
}

double DotSpan(const double* a, const double* b, size_t dim) {
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) return DotAvx2(a, b, dim);
#endif
  return kernel_core::DotCore(a, b, dim);
}

double SquaredNormSpan(const double* a, size_t dim) {
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) return DotAvx2(a, a, dim);
#endif
  return kernel_core::DotCore(a, a, dim);
}

double NormSpan(const double* a, size_t dim) {
  return std::sqrt(SquaredNormSpan(a, dim));
}

double SquaredDistSpan(const double* a, const double* b, size_t dim) {
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) return SquaredDistAvx2(a, b, dim);
#endif
  return kernel_core::SquaredDistCore(a, b, dim);
}

double DistSpan(const double* a, const double* b, size_t dim) {
  return std::sqrt(SquaredDistSpan(a, b, dim));
}

void BatchedSqDistSpan(const double* rows, size_t dim, size_t count,
                       const double* q, double* out) {
  size_t r = 0;
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) {
    for (; r + kBatchRows <= count; r += kBatchRows) {
      SquaredDistAvx2x8(rows + r * dim, dim, q, out + r);
    }
  }
#endif
  for (; r < count; ++r) {
    out[r] = SquaredDistSpan(rows + r * dim, q, dim);
  }
}

void BatchedMaxDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out) {
  size_t r = 0;
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) {
    double sq[kBatchRows];
    double d[kBatchRows];
    for (; r + kBatchRows <= count; r += kBatchRows) {
      SquaredDistAvx2x8(rows + r * dim, dim, q, sq);
      SqrtX8(sq, d);
      for (size_t j = 0; j < kBatchRows; ++j) {
        out[r + j] = kernel_core::CombineMaxDist(d[j], radii[r + j], qr);
      }
    }
  }
#endif
  for (; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    out[r] = kernel_core::CombineMaxDist(d, radii[r], qr);
  }
}

void BatchedMinDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out) {
  size_t r = 0;
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) {
    double sq[kBatchRows];
    double d[kBatchRows];
    for (; r + kBatchRows <= count; r += kBatchRows) {
      SquaredDistAvx2x8(rows + r * dim, dim, q, sq);
      SqrtX8(sq, d);
      for (size_t j = 0; j < kBatchRows; ++j) {
        out[r + j] = kernel_core::CombineMinDist(d[j], radii[r + j], qr);
      }
    }
  }
#endif
  for (; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    out[r] = kernel_core::CombineMinDist(d, radii[r], qr);
  }
}

void BatchedMinMaxDistSpan(const double* rows, const double* radii,
                           size_t dim, size_t count, const double* q,
                           double qr, double* min_out, double* max_out) {
  size_t r = 0;
#if defined(HYPERDOM_KERNELS_AVX2)
  if (dim >= kStridedCutover) {
    double sq[kBatchRows];
    double d[kBatchRows];
    for (; r + kBatchRows <= count; r += kBatchRows) {
      SquaredDistAvx2x8(rows + r * dim, dim, q, sq);
      SqrtX8(sq, d);
      for (size_t j = 0; j < kBatchRows; ++j) {
        min_out[r + j] = kernel_core::CombineMinDist(d[j], radii[r + j], qr);
        max_out[r + j] = kernel_core::CombineMaxDist(d[j], radii[r + j], qr);
      }
    }
  }
#endif
  for (; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    min_out[r] = kernel_core::CombineMinDist(d, radii[r], qr);
    max_out[r] = kernel_core::CombineMaxDist(d, radii[r], qr);
  }
}

void AddInPlaceSpan(double* acc, const double* x, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] += x[i];
}

void SubInPlaceSpan(double* acc, const double* x, size_t dim) {
  for (size_t i = 0; i < dim; ++i) acc[i] -= x[i];
}

double Dot(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  return DotSpan(a.data(), b.data(), a.size());
}

double SquaredNorm(const Point& a) {
  return SquaredNormSpan(a.data(), a.size());
}

double Norm(const Point& a) { return std::sqrt(SquaredNorm(a)); }

double SquaredDist(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  return SquaredDistSpan(a.data(), b.data(), a.size());
}

double Dist(const Point& a, const Point& b) {
  return std::sqrt(SquaredDist(a, b));
}

Point Add(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Point Sub(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Point Scale(const Point& a, double s) {
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Point AddScaled(const Point& a, double s, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + s * b[i];
  return out;
}

Point Midpoint(const Point& a, const Point& b) {
  assert(a.size() == b.size());
  Point out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = 0.5 * (a[i] + b[i]);
  return out;
}

Point Normalized(const Point& a) {
  const double n = Norm(a);
  assert(n > 0.0);
  return Scale(a, 1.0 / n);
}

std::string ToString(const Point& p) {
  std::string out = "(";
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ", ";
    out += FormatDouble(p[i]);
  }
  out += ")";
  return out;
}

}  // namespace hyperdom
