// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// d-dimensional point arithmetic. Every kernel here is a single pass over
// the coordinates (O(d)); the dominance criteria built on top inherit that
// bound, which is the "efficiency" requirement of the paper (Section 1).

#ifndef HYPERDOM_GEOMETRY_POINT_H_
#define HYPERDOM_GEOMETRY_POINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hyperdom {

/// A d-dimensional point with Euclidean coordinates.
using Point = std::vector<double>;

// -- Span kernels ----------------------------------------------------------
//
// The raw O(d) cores, operating on contiguous `const double*` coordinate
// spans. These are the single source of truth for the arithmetic: the
// Point overloads below and the SphereView/SphereStore layers all delegate
// here, so an AoS `std::vector` caller and a columnar-store caller execute
// bit-identical instruction sequences. Keep each body a single
// plain-indexed loop — the accumulation order is part of the library's
// bit-identity contract (see docs/performance.md, "Data layout").

/// Inner product over `dim` contiguous coordinates.
double DotSpan(const double* a, const double* b, size_t dim);

/// Squared L2 norm over `dim` contiguous coordinates.
double SquaredNormSpan(const double* a, size_t dim);

/// L2 norm over `dim` contiguous coordinates.
double NormSpan(const double* a, size_t dim);

/// Squared Euclidean distance over `dim` contiguous coordinates.
double SquaredDistSpan(const double* a, const double* b, size_t dim);

/// Euclidean distance over `dim` contiguous coordinates.
double DistSpan(const double* a, const double* b, size_t dim);

/// acc[i] += x[i] over `dim` coordinates (index-node running-sum updates).
void AddInPlaceSpan(double* acc, const double* x, size_t dim);

/// acc[i] -= x[i] over `dim` coordinates.
void SubInPlaceSpan(double* acc, const double* x, size_t dim);

// -- Point adapters --------------------------------------------------------

/// Inner product <a, b>. Requires a.size() == b.size().
double Dot(const Point& a, const Point& b);

/// Squared L2 norm of `a`.
double SquaredNorm(const Point& a);

/// L2 norm of `a`.
double Norm(const Point& a);

/// Squared Euclidean distance between `a` and `b` (Eq. (1) squared).
double SquaredDist(const Point& a, const Point& b);

/// Euclidean distance between `a` and `b` (Eq. (1) of the paper).
double Dist(const Point& a, const Point& b);

/// a + b, element-wise.
Point Add(const Point& a, const Point& b);

/// a - b, element-wise.
Point Sub(const Point& a, const Point& b);

/// s * a.
Point Scale(const Point& a, double s);

/// a + s * b (fused form used by generators and the oracle).
Point AddScaled(const Point& a, double s, const Point& b);

/// The midpoint (a + b) / 2.
Point Midpoint(const Point& a, const Point& b);

/// a / ||a||. Requires ||a|| > 0.
Point Normalized(const Point& a);

/// "(x, y, ...)" with 6 significant digits, for diagnostics.
std::string ToString(const Point& p);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POINT_H_
