// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// d-dimensional point arithmetic. Every kernel here is a single pass over
// the coordinates (O(d)); the dominance criteria built on top inherit that
// bound, which is the "efficiency" requirement of the paper (Section 1).

#ifndef HYPERDOM_GEOMETRY_POINT_H_
#define HYPERDOM_GEOMETRY_POINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hyperdom {

/// A d-dimensional point with Euclidean coordinates.
using Point = std::vector<double>;

/// Inner product <a, b>. Requires a.size() == b.size().
double Dot(const Point& a, const Point& b);

/// Squared L2 norm of `a`.
double SquaredNorm(const Point& a);

/// L2 norm of `a`.
double Norm(const Point& a);

/// Squared Euclidean distance between `a` and `b` (Eq. (1) squared).
double SquaredDist(const Point& a, const Point& b);

/// Euclidean distance between `a` and `b` (Eq. (1) of the paper).
double Dist(const Point& a, const Point& b);

/// a + b, element-wise.
Point Add(const Point& a, const Point& b);

/// a - b, element-wise.
Point Sub(const Point& a, const Point& b);

/// s * a.
Point Scale(const Point& a, double s);

/// a + s * b (fused form used by generators and the oracle).
Point AddScaled(const Point& a, double s, const Point& b);

/// The midpoint (a + b) / 2.
Point Midpoint(const Point& a, const Point& b);

/// a / ||a||. Requires ||a|| > 0.
Point Normalized(const Point& a);

/// "(x, y, ...)" with 6 significant digits, for diagnostics.
std::string ToString(const Point& p);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POINT_H_
