// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// d-dimensional point arithmetic. Every kernel here is a single pass over
// the coordinates (O(d)); the dominance criteria built on top inherit that
// bound, which is the "efficiency" requirement of the paper (Section 1).

#ifndef HYPERDOM_GEOMETRY_POINT_H_
#define HYPERDOM_GEOMETRY_POINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace hyperdom {

/// A d-dimensional point with Euclidean coordinates.
using Point = std::vector<double>;

// -- Span kernels ----------------------------------------------------------
//
// The raw O(d) cores, operating on contiguous `const double*` coordinate
// spans. These are the single source of truth for the arithmetic: the
// Point overloads below and the SphereView/SphereStore layers all delegate
// here, so an AoS `std::vector` caller and a columnar-store caller execute
// bit-identical instruction sequences. Every reduction follows the fixed
// accumulation order of geometry/kernel_core.h ("v2": sequential below
// dim 8, four strided lanes above), which is what lets the AVX2 build
// under HYPERDOM_NATIVE return bit-identical values to the portable
// scalar build (see docs/performance.md, "Vectorization").

/// Inner product over `dim` contiguous coordinates.
double DotSpan(const double* a, const double* b, size_t dim);

/// Squared L2 norm over `dim` contiguous coordinates.
double SquaredNormSpan(const double* a, size_t dim);

/// L2 norm over `dim` contiguous coordinates.
double NormSpan(const double* a, size_t dim);

/// Squared Euclidean distance over `dim` contiguous coordinates.
double SquaredDistSpan(const double* a, const double* b, size_t dim);

/// Euclidean distance over `dim` contiguous coordinates.
double DistSpan(const double* a, const double* b, size_t dim);

/// acc[i] += x[i] over `dim` coordinates (index-node running-sum updates).
void AddInPlaceSpan(double* acc, const double* x, size_t dim);

/// acc[i] -= x[i] over `dim` coordinates.
void SubInPlaceSpan(double* acc, const double* x, size_t dim);

/// The compile-time kernel dispatch of this build: "avx2" when the span
/// kernels were compiled against AVX2 intrinsics (HYPERDOM_NATIVE on a
/// machine with AVX2), "scalar" for the portable fallback. Either way the
/// returned VALUES are identical; this only names the instruction path.
const char* KernelDispatchName();

// -- Batched span kernels --------------------------------------------------
//
// One query against a contiguous block of rows — the SphereStore arena
// layout (geometry/sphere rows at stride `dim`, radii in a parallel
// column). These are the leaf-scan/BestKnownList workhorses: the per-call
// overhead is amortized over the block and each row's distance is computed
// exactly once even when both bounds are needed. Each row's result is
// bit-identical to the corresponding one-at-a-time kernel call — batching
// is a scheduling change, not an arithmetic change.

/// out[r] = SquaredDistSpan(rows + r*dim, q, dim) for r in [0, count).
void BatchedSqDistSpan(const double* rows, size_t dim, size_t count,
                       const double* q, double* out);

/// out[r] = MaxDist of row r (radius radii[r]) to the query (center q,
/// radius qr): DistSpan(row, q) + (radii[r] + qr).
void BatchedMaxDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out);

/// out[r] = MinDist of row r to the query: max(0, dist - (radii[r] + qr)).
void BatchedMinDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out);

/// Fused form: computes each row's center distance once and derives both
/// bounds — bit-identical to separate BatchedMinDistSpan /
/// BatchedMaxDistSpan calls at half the distance work.
void BatchedMinMaxDistSpan(const double* rows, const double* radii,
                           size_t dim, size_t count, const double* q,
                           double qr, double* min_out, double* max_out);

// -- Scalar reference kernels ----------------------------------------------
//
// The same kernels, permanently compiled WITHOUT vector instructions
// (geometry/scalar_kernels.cc is built with -fno-tree-vectorize and
// -ffp-contract=off even under HYPERDOM_NATIVE). Two jobs: the in-binary
// baseline for the scalar-vs-SIMD microbenchmark rows, and the reference
// side of the bit-identity tests — in every build, for every input,
// scalar_ref::K(...) must equal K(...) bit-for-bit.
namespace scalar_ref {

double DotSpan(const double* a, const double* b, size_t dim);
double SquaredNormSpan(const double* a, size_t dim);
double NormSpan(const double* a, size_t dim);
double SquaredDistSpan(const double* a, const double* b, size_t dim);
double DistSpan(const double* a, const double* b, size_t dim);
void BatchedSqDistSpan(const double* rows, size_t dim, size_t count,
                       const double* q, double* out);
void BatchedMaxDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out);
void BatchedMinDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out);
void BatchedMinMaxDistSpan(const double* rows, const double* radii,
                           size_t dim, size_t count, const double* q,
                           double qr, double* min_out, double* max_out);

}  // namespace scalar_ref

// -- Point adapters --------------------------------------------------------

/// Inner product <a, b>. Requires a.size() == b.size().
double Dot(const Point& a, const Point& b);

/// Squared L2 norm of `a`.
double SquaredNorm(const Point& a);

/// L2 norm of `a`.
double Norm(const Point& a);

/// Squared Euclidean distance between `a` and `b` (Eq. (1) squared).
double SquaredDist(const Point& a, const Point& b);

/// Euclidean distance between `a` and `b` (Eq. (1) of the paper).
double Dist(const Point& a, const Point& b);

/// a + b, element-wise.
Point Add(const Point& a, const Point& b);

/// a - b, element-wise.
Point Sub(const Point& a, const Point& b);

/// s * a.
Point Scale(const Point& a, double s);

/// a + s * b (fused form used by generators and the oracle).
Point AddScaled(const Point& a, double s, const Point& b);

/// The midpoint (a + b) / 2.
Point Midpoint(const Point& a, const Point& b);

/// a / ||a||. Requires ||a|| > 0.
Point Normalized(const Point& a);

/// "(x, y, ...)" with 6 significant digits, for diagnostics.
std::string ToString(const Point& p);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_POINT_H_
