// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/min_ball.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace hyperdom {

namespace {

// Containment slack: Welzl's recursion is driven by "is p inside the
// current ball", and a hair of slack keeps floating-point boundary points
// from recursing forever.
bool InsideWithSlack(const Hypersphere& ball, const Point& p) {
  const double slack = 1e-9 * (1.0 + ball.radius());
  const double limit = ball.radius() + slack;
  return SquaredDist(ball.center(), p) <= limit * limit;
}

// Solves the k x k system M x = b in place by Gaussian elimination with
// partial pivoting; returns false on (near-)singularity.
bool SolveDense(std::vector<std::vector<double>>* m, std::vector<double>* b) {
  const size_t k = b->size();
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < k; ++row) {
      if (std::abs((*m)[row][col]) > std::abs((*m)[pivot][col])) pivot = row;
    }
    if (std::abs((*m)[pivot][col]) < 1e-12) return false;
    std::swap((*m)[col], (*m)[pivot]);
    std::swap((*b)[col], (*b)[pivot]);
    for (size_t row = col + 1; row < k; ++row) {
      const double factor = (*m)[row][col] / (*m)[col][col];
      for (size_t c = col; c < k; ++c) (*m)[row][c] -= factor * (*m)[col][c];
      (*b)[row] -= factor * (*b)[col];
    }
  }
  for (size_t col = k; col-- > 0;) {
    double acc = (*b)[col];
    for (size_t c = col + 1; c < k; ++c) acc -= (*m)[col][c] * (*b)[c];
    (*b)[col] = acc / (*m)[col][col];
  }
  return true;
}

}  // namespace

Hypersphere BallFromSupport(const std::vector<Point>& support) {
  assert(!support.empty());
  if (support.size() == 1) return Hypersphere(support[0], 0.0);

  // Center x = p0 + sum_j lambda_j (pj - p0); boundary conditions give the
  // Gram system G lambda = b with G_ji = (pj-p0).(pi-p0),
  // b_j = |pj-p0|^2 / 2.
  const Point& p0 = support[0];
  const size_t k = support.size() - 1;
  std::vector<Point> diffs;
  diffs.reserve(k);
  for (size_t j = 1; j < support.size(); ++j) {
    diffs.push_back(Sub(support[j], p0));
  }
  std::vector<std::vector<double>> gram(k, std::vector<double>(k));
  std::vector<double> rhs(k);
  for (size_t j = 0; j < k; ++j) {
    for (size_t i = 0; i < k; ++i) gram[j][i] = Dot(diffs[j], diffs[i]);
    rhs[j] = 0.5 * SquaredNorm(diffs[j]);
  }
  if (!SolveDense(&gram, &rhs)) {
    // Affinely dependent support (e.g. duplicated points): drop the last
    // point and retry — the dropped point is covered by the smaller ball.
    std::vector<Point> reduced(support.begin(), support.end() - 1);
    return BallFromSupport(reduced);
  }
  Point center = p0;
  for (size_t j = 0; j < k; ++j) {
    center = AddScaled(center, rhs[j], diffs[j]);
  }
  const double radius = Dist(center, p0);
  return Hypersphere(std::move(center), radius);
}

namespace {

// "No ball yet" sentinel: radius -1 contains nothing.
struct MaybeBall {
  Hypersphere ball;
  bool valid = false;
};

// Welzl's move-to-front recursion: the smallest ball of points[0..n) with
// every point of `support` on the boundary.
MaybeBall WelzlMtf(std::vector<const Point*>* points, size_t n,
                   std::vector<Point>* support, size_t dim) {
  if (n == 0 || support->size() == dim + 1) {
    if (support->empty()) return MaybeBall{};
    return MaybeBall{BallFromSupport(*support), true};
  }
  const Point* p = (*points)[n - 1];
  MaybeBall result = WelzlMtf(points, n - 1, support, dim);
  if (result.valid && InsideWithSlack(result.ball, *p)) return result;
  support->push_back(*p);
  result = WelzlMtf(points, n - 1, support, dim);
  support->pop_back();
  // Move-to-front: keep hard points early for subsequent calls.
  for (size_t i = n - 1; i > 0; --i) (*points)[i] = (*points)[i - 1];
  (*points)[0] = p;
  return result;
}

}  // namespace

Hypersphere MinBallOfPoints(const std::vector<Point>& points) {
  assert(!points.empty());
  const size_t dim = points.front().size();
  std::vector<const Point*> ptrs(points.size());
  for (size_t i = 0; i < points.size(); ++i) ptrs[i] = &points[i];
  // Deterministic shuffle for the expected-linear-time guarantee.
  Rng rng(0xBA11);
  for (size_t i = ptrs.size(); i > 1; --i) {
    std::swap(ptrs[i - 1], ptrs[rng.UniformU64(i)]);
  }
  std::vector<Point> support;
  const MaybeBall result = WelzlMtf(&ptrs, ptrs.size(), &support, dim);
  assert(result.valid);
  return result.ball;
}

Hypersphere MinBallOfSpheres(const std::vector<Hypersphere>& spheres) {
  assert(!spheres.empty());
  std::vector<Point> centers;
  centers.reserve(spheres.size());
  for (const auto& s : spheres) centers.push_back(s.center());
  const Hypersphere center_ball = MinBallOfPoints(centers);
  double radius = 0.0;
  for (const auto& s : spheres) {
    radius = std::max(radius,
                      Dist(center_ball.center(), s.center()) + s.radius());
  }
  return Hypersphere(center_ball.center(), radius);
}

}  // namespace hyperdom
