// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/hypersphere.h"

#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace hyperdom {

Hypersphere::Hypersphere(Point center, double radius)
    : center_(std::move(center)), radius_(radius) {
  assert(Validate().ok() &&
         "hypersphere needs a finite center and a finite radius >= 0");
}

Status Hypersphere::Validate(const Point& center, double radius) {
  for (size_t i = 0; i < center.size(); ++i) {
    if (!std::isfinite(center[i])) {
      return Status::InvalidArgument("non-finite center coordinate " +
                                     std::to_string(i));
    }
  }
  if (!std::isfinite(radius)) {
    return Status::InvalidArgument("non-finite radius");
  }
  if (radius < 0.0) {
    return Status::InvalidArgument("negative radius");
  }
  return Status::OK();
}

bool Hypersphere::Contains(const Point& p) const {
  return SquaredDist(center_, p) <= radius_ * radius_;
}

bool Hypersphere::ContainsSphere(const Hypersphere& other) const {
  return Dist(center_, other.center_) + other.radius_ <= radius_;
}

std::string Hypersphere::ToString() const {
  return "S(center=" + hyperdom::ToString(center_) +
         ", r=" + FormatDouble(radius_) + ")";
}

double MaxDist(const Hypersphere& a, const Hypersphere& b) {
  return MaxDist(a.view(), b.view());
}

double MinDist(const Hypersphere& a, const Hypersphere& b) {
  return MinDist(a.view(), b.view());
}

double MaxDist(const Hypersphere& a, const Point& p) {
  return MaxDist(a.view(), p.data());
}

double MinDist(const Hypersphere& a, const Point& p) {
  return MinDist(a.view(), p.data());
}

bool Overlaps(const Hypersphere& a, const Hypersphere& b) {
  return Overlaps(a.view(), b.view());
}

void BatchedMaxDist(const SphereView* views, size_t count, SphereView q,
                    double* out) {
  for (size_t i = 0; i < count; ++i) {
    const double d = DistSpan(views[i].center, q.center, q.dim);
    out[i] = kernel_core::CombineMaxDist(d, views[i].radius, q.radius);
  }
}

void BatchedMinMaxDist(const SphereView* views, size_t count, SphereView q,
                       double* min_out, double* max_out) {
  for (size_t i = 0; i < count; ++i) {
    const double d = DistSpan(views[i].center, q.center, q.dim);
    min_out[i] = kernel_core::CombineMinDist(d, views[i].radius, q.radius);
    max_out[i] = kernel_core::CombineMaxDist(d, views[i].radius, q.radius);
  }
}

Hypersphere MaterializeSphere(SphereView v) {
  return Hypersphere(Point(v.center, v.center + v.dim), v.radius);
}

}  // namespace hyperdom
