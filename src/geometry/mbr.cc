// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/mbr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/str_util.h"

namespace hyperdom {

Mbr::Mbr(Point lo, Point hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.size() == hi_.size());
#ifndef NDEBUG
  for (size_t i = 0; i < lo_.size(); ++i) assert(lo_[i] <= hi_[i]);
#endif
}

Mbr Mbr::FromSphere(const Hypersphere& s) { return FromSphere(s.view()); }

Mbr Mbr::FromSphere(SphereView s) {
  Point lo(s.dim);
  Point hi(s.dim);
  for (size_t i = 0; i < s.dim; ++i) {
    lo[i] = s.center[i] - s.radius;
    hi[i] = s.center[i] + s.radius;
  }
  return Mbr(std::move(lo), std::move(hi));
}

bool Mbr::Contains(const Point& p) const {
  assert(p.size() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (p[i] < lo_[i] || p[i] > hi_[i]) return false;
  }
  return true;
}

bool Mbr::Intersects(const Mbr& other) const {
  assert(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    if (hi_[i] < other.lo_[i] || other.hi_[i] < lo_[i]) return false;
  }
  return true;
}

void Mbr::ExtendToCover(const Mbr& other) {
  assert(other.dim() == dim());
  for (size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

std::string Mbr::ToString() const {
  return "Mbr(lo=" + hyperdom::ToString(lo_) +
         ", hi=" + hyperdom::ToString(hi_) + ")";
}

double MaxDistComponent(double lo, double hi, double t) {
  return std::max(std::abs(t - lo), std::abs(t - hi));
}

double MinDistComponent(double lo, double hi, double t) {
  if (t < lo) return lo - t;
  if (t > hi) return t - hi;
  return 0.0;
}

double MinDist(const Mbr& a, const Mbr& b) {
  assert(a.dim() == b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double gap = std::max({0.0, b.lo()[i] - a.hi()[i], a.lo()[i] - b.hi()[i]});
    acc += gap * gap;
  }
  return std::sqrt(acc);
}

double MaxDist(const Mbr& a, const Mbr& b) {
  assert(a.dim() == b.dim());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    double span = std::max(std::abs(b.hi()[i] - a.lo()[i]),
                           std::abs(a.hi()[i] - b.lo()[i]));
    acc += span * span;
  }
  return std::sqrt(acc);
}

double MinDist(const Mbr& a, const Point& p) {
  assert(a.dim() == p.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double gap = MinDistComponent(a.lo()[i], a.hi()[i], p[i]);
    acc += gap * gap;
  }
  return std::sqrt(acc);
}

double MinDist(const Mbr& a, const Hypersphere& s) {
  const double d = MinDist(a, s.center()) - s.radius();
  return d > 0.0 ? d : 0.0;
}

double MinDist(const Mbr& a, SphereView s) {
  assert(a.dim() == s.dim);
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double gap = MinDistComponent(a.lo()[i], a.hi()[i], s.center[i]);
    acc += gap * gap;
  }
  const double d = std::sqrt(acc) - s.radius;
  return d > 0.0 ? d : 0.0;
}

double MaxDist(const Mbr& a, const Point& p) {
  assert(a.dim() == p.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double span = MaxDistComponent(a.lo()[i], a.hi()[i], p[i]);
    acc += span * span;
  }
  return std::sqrt(acc);
}

double Volume(const Mbr& a) {
  double v = 1.0;
  for (size_t i = 0; i < a.dim(); ++i) v *= a.hi()[i] - a.lo()[i];
  return v;
}

double Margin(const Mbr& a) {
  double m = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) m += a.hi()[i] - a.lo()[i];
  return m;
}

double OverlapVolume(const Mbr& a, const Mbr& b) {
  assert(a.dim() == b.dim());
  double v = 1.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    const double lo = std::max(a.lo()[i], b.lo()[i]);
    const double hi = std::min(a.hi()[i], b.hi()[i]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

Mbr Union(const Mbr& a, const Mbr& b) {
  Mbr out = a;
  out.ExtendToCover(b);
  return out;
}

namespace {

// max over t in [qlo, qhi] of maxd_a(t)^2 - mind_b(t)^2, where maxd_a is the
// 1-d MaxDist component to [alo, ahi] and mind_b the 1-d MinDist component
// to [blo, bhi]. The function is piecewise quadratic with convex or linear
// pieces whose breakpoints are the midpoint of [alo, ahi] and the two ends
// of [blo, bhi], so the maximum is attained at a candidate point.
double MaxDimTerm(double alo, double ahi, double blo, double bhi, double qlo,
                  double qhi) {
  auto eval = [&](double t) {
    const double md = MaxDistComponent(alo, ahi, t);
    const double nd = MinDistComponent(blo, bhi, t);
    return md * md - nd * nd;
  };
  double best = std::max(eval(qlo), eval(qhi));
  const double breakpoints[3] = {0.5 * (alo + ahi), blo, bhi};
  for (double t : breakpoints) {
    if (t > qlo && t < qhi) best = std::max(best, eval(t));
  }
  return best;
}

}  // namespace

bool RectDominates(const Mbr& a, const Mbr& b, const Mbr& q) {
  assert(a.dim() == b.dim() && a.dim() == q.dim());
  double total = 0.0;
  for (size_t i = 0; i < a.dim(); ++i) {
    total += MaxDimTerm(a.lo()[i], a.hi()[i], b.lo()[i], b.hi()[i], q.lo()[i],
                        q.hi()[i]);
  }
  // Strict: ties (a point of `q` equidistant) mean no dominance.
  return total < 0.0;
}

bool RectDominatesSpheres(SphereView a, SphereView b, SphereView q) {
  assert(a.dim == b.dim && a.dim == q.dim);
  double total = 0.0;
  for (size_t i = 0; i < a.dim; ++i) {
    // The box bounds c[i] -/+ r, computed exactly as Mbr::FromSphere does.
    total += MaxDimTerm(a.center[i] - a.radius, a.center[i] + a.radius,
                        b.center[i] - b.radius, b.center[i] + b.radius,
                        q.center[i] - q.radius, q.center[i] + q.radius);
  }
  return total < 0.0;
}

}  // namespace hyperdom
