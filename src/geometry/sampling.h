// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Uniform sampling inside hyperspheres — the primitive behind the
// Monte-Carlo dominance-probability estimator (dominance/probability.h)
// and several property tests.

#ifndef HYPERDOM_GEOMETRY_SAMPLING_H_
#define HYPERDOM_GEOMETRY_SAMPLING_H_

#include "common/rng.h"
#include "geometry/hypersphere.h"

namespace hyperdom {

/// \brief A point drawn uniformly from the unit ball in `dim` dimensions:
/// Gaussian direction (rotationally symmetric) scaled by U^(1/dim) (the
/// radial CDF of the uniform ball).
Point SampleUnitBall(Rng* rng, size_t dim);

/// A point drawn uniformly from `ball`.
Point SampleInBall(Rng* rng, const Hypersphere& ball);

/// A point drawn uniformly from the boundary sphere of `ball`.
Point SampleOnSphere(Rng* rng, const Hypersphere& ball);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_SAMPLING_H_
