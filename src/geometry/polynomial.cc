// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/polynomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/polynomial_kernel.h"

namespace hyperdom {

namespace {

// Second-derivative evaluation (descending-degree convention), used to
// detect root clusters where the first-order error bound is invalid.
double EvaluateSecondDerivativeSpan(const double* coeffs, size_t n, double x) {
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i + 2 < n; ++i) {
    const double k = static_cast<double>(n - 1 - i);
    acc = acc * x + coeffs[i] * k * (k - 1.0);
  }
  return acc;
}

// Running-error Horner over a span (the vector entry point below wraps it).
PolynomialEval EvaluateWithErrorSpan(const double* coeffs, size_t n,
                                     double x) {
  PolynomialEval out;
  if (n == 0) return out;
  const double u = 0.5 * std::numeric_limits<double>::epsilon();
  const double ax = std::abs(x);
  double y = coeffs[0];
  double mu = 0.5 * std::abs(y);
  for (size_t i = 1; i < n; ++i) {
    y = y * x + coeffs[i];
    mu = mu * ax + std::abs(y);
  }
  out.value = y;
  out.error_bound = u * (2.0 * mu - std::abs(y));
  if (!std::isfinite(out.error_bound)) {
    out.error_bound = std::numeric_limits<double>::infinity();
  }
  return out;
}

}  // namespace

std::vector<double> SolveLinear(double a, double b) {
  return polynomial_internal::SolveLinearT<double>(a, b);
}

std::vector<double> SolveQuadratic(double a, double b, double c) {
  return polynomial_internal::SolveQuadraticT<double>(a, b, c);
}

std::vector<double> SolveCubic(double a, double b, double c, double d) {
  return polynomial_internal::SolveCubicT<double>(a, b, c, d);
}

std::vector<double> SolveQuartic(double a, double b, double c, double d,
                                 double e) {
  return polynomial_internal::SolveQuarticT<double>(a, b, c, d, e);
}

double EvaluatePolynomial(const std::vector<double>& coeffs, double x) {
  return polynomial_internal::EvaluateT<double>(coeffs, x);
}

double EvaluatePolynomialDerivative(const std::vector<double>& coeffs,
                                    double x) {
  return polynomial_internal::EvaluateDerivativeT<double>(coeffs, x);
}

double PolishRoot(const std::vector<double>& coeffs, double x0) {
  return polynomial_internal::PolishRootT<double>(coeffs, x0);
}

PolynomialEval EvaluatePolynomialWithError(const std::vector<double>& coeffs,
                                           double x) {
  // Higham Alg. 5.1: y_k = y_{k-1}*x + c_k has rounding error bounded by
  // u*(|y_{k-1}*x| + |y_k|) <= u*(mu_k-ish); the recurrence accumulates mu
  // so that the final bound u*(2*mu - |y|) dominates the sum of all
  // per-step errors, each inflated by the factor by which later steps can
  // amplify it.
  return EvaluateWithErrorSpan(coeffs.data(), coeffs.size(), x);
}

void SolveQuarticWithBoundsInto(double a, double b, double c, double d,
                                double e, CertifiedRootSet* out) {
  const double coeffs[5] = {a, b, c, d, e};
  polynomial_internal::RootsT<double> roots;
  polynomial_internal::SolveQuarticIntoT<double>(a, b, c, d, e, &roots);
  out->count = 0;
  const double inf = std::numeric_limits<double>::infinity();
  for (double r : roots) {
    CertifiedRoot cert;
    cert.root = r;
    const PolynomialEval ev = EvaluateWithErrorSpan(coeffs, 5, r);
    // Everything we know about the residual: it lies within
    // |p(r)| + horner_err of zero.
    const double residual = std::abs(ev.value) + ev.error_bound;
    const double dp = std::abs(
        polynomial_internal::EvaluateDerivativeSpanT<double>(coeffs, 5, r));
    const double d2 = std::abs(EvaluateSecondDerivativeSpan(coeffs, 5, r));
    // First-order bound |r - r*| <= residual / |p'(r)| is only valid while
    // the derivative dominates the curvature over that interval:
    // |p'(r)| * delta > (|p''(r)|/2) * delta^2 at delta = bound, i.e.
    // dp^2 > residual * d2 up to the safety factor 4.
    if (dp > 0.0 && std::isfinite(residual) && dp * dp > 4.0 * residual * d2) {
      cert.error_bound = residual / dp;
    } else if (residual == 0.0) {
      cert.error_bound = 0.0;
    } else {
      cert.error_bound = inf;
    }
    out->roots[out->count++] = cert;
  }
}

std::vector<CertifiedRoot> SolveQuarticWithBounds(double a, double b,
                                                  double c, double d,
                                                  double e) {
  CertifiedRootSet set;
  SolveQuarticWithBoundsInto(a, b, c, d, e, &set);
  return std::vector<CertifiedRoot>(set.begin(), set.end());
}

}  // namespace hyperdom
