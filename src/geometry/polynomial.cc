// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/polynomial.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace hyperdom {

namespace {

// Relative tolerance used when collapsing near-identical roots. The
// dominance predicate is decided by comparing distances derived from these
// roots, so a duplicated root is harmless — deduplication just keeps root
// lists tidy for callers and tests.
constexpr double kDedupeRelTol = 1e-9;

void SortAndDedupe(std::vector<double>* roots) {
  std::sort(roots->begin(), roots->end());
  auto nearly_equal = [](double a, double b) {
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    return std::abs(a - b) <= kDedupeRelTol * scale;
  };
  roots->erase(std::unique(roots->begin(), roots->end(), nearly_equal),
               roots->end());
}

}  // namespace

std::vector<double> SolveLinear(double a, double b) {
  if (a == 0.0) return {};
  return {-b / a};
}

std::vector<double> SolveQuadratic(double a, double b, double c) {
  if (a == 0.0) return SolveLinear(b, c);
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return {};
  if (disc == 0.0) return {-b / (2.0 * a)};
  // Stable form: compute the larger-magnitude root first, derive the other
  // from the product c/a to avoid catastrophic cancellation.
  const double sqrt_disc = std::sqrt(disc);
  const double q = -0.5 * (b + (b >= 0.0 ? sqrt_disc : -sqrt_disc));
  std::vector<double> roots = {q / a, c / q};
  SortAndDedupe(&roots);
  return roots;
}

std::vector<double> SolveCubic(double a, double b, double c, double d) {
  if (a == 0.0) return SolveQuadratic(b, c, d);
  // Normalize to x^3 + B x^2 + C x + D.
  const double B = b / a;
  const double C = c / a;
  const double D = d / a;
  // Depress: x = t - B/3  ->  t^3 + p t + q.
  const double shift = B / 3.0;
  const double p = C - B * B / 3.0;
  const double q = 2.0 * B * B * B / 27.0 - B * C / 3.0 + D;

  std::vector<double> roots;
  const double half_q = 0.5 * q;
  const double third_p = p / 3.0;
  const double disc = half_q * half_q + third_p * third_p * third_p;
  if (disc > 0.0) {
    // One real root (Cardano).
    const double s = std::sqrt(disc);
    const double u = std::cbrt(-half_q + s);
    const double v = std::cbrt(-half_q - s);
    roots.push_back(u + v - shift);
  } else if (disc == 0.0) {
    if (half_q == 0.0) {
      roots.push_back(-shift);  // Triple root.
    } else {
      const double u = std::cbrt(-half_q);
      roots.push_back(2.0 * u - shift);
      roots.push_back(-u - shift);
    }
  } else {
    // Three distinct real roots (trigonometric method).
    const double r = std::sqrt(-third_p);
    const double theta = std::acos(std::clamp(
        -half_q / (r * r * r), -1.0, 1.0));
    for (int k = 0; k < 3; ++k) {
      roots.push_back(2.0 * r * std::cos((theta + 2.0 * M_PI * k) / 3.0) -
                      shift);
    }
  }
  // Polish against the original (un-normalized) coefficients.
  const std::vector<double> coeffs = {a, b, c, d};
  for (double& root : roots) root = PolishRoot(coeffs, root);
  SortAndDedupe(&roots);
  return roots;
}

std::vector<double> SolveQuartic(double a, double b, double c, double d,
                                 double e) {
  if (a == 0.0) return SolveCubic(b, c, d, e);
  // Normalize to x^4 + B x^3 + C x^2 + D x + E.
  const double B = b / a;
  const double C = c / a;
  const double D = d / a;
  const double E = e / a;
  // Depress: x = y - B/4  ->  y^4 + p y^2 + q y + r.
  const double shift = B / 4.0;
  const double B2 = B * B;
  const double p = C - 3.0 * B2 / 8.0;
  const double q = D - B * C / 2.0 + B2 * B / 8.0;
  const double r =
      E - B * D / 4.0 + B2 * C / 16.0 - 3.0 * B2 * B2 / 256.0;

  std::vector<double> roots;
  if (std::abs(q) < 1e-14 * std::max({1.0, std::abs(p), std::abs(r)})) {
    // Biquadratic: y^4 + p y^2 + r = 0.
    for (double z : SolveQuadratic(1.0, p, r)) {
      if (z < 0.0) continue;
      const double y = std::sqrt(z);
      roots.push_back(y - shift);
      roots.push_back(-y - shift);
    }
  } else {
    // Ferrari: find m > 0 with the resolvent cubic
    //   m^3 + p m^2 + (p^2/4 - r) m - q^2/8 = 0   (m = 2 z - p form folded).
    // Using the standard resolvent for y^4 + p y^2 + q y + r:
    //   8 m^3 + 8 p m^2 + (2 p^2 - 8 r) m - q^2 = 0.
    std::vector<double> ms =
        SolveCubic(8.0, 8.0 * p, 2.0 * p * p - 8.0 * r, -q * q);
    double m = std::numeric_limits<double>::quiet_NaN();
    for (double cand : ms) {
      if (cand > 0.0 && (!std::isfinite(m) || cand > m)) m = cand;
    }
    if (!std::isfinite(m) || m <= 0.0) {
      // q != 0 guarantees a positive resolvent root in exact arithmetic; if
      // rounding produced none, take the largest root clamped positive.
      m = 0.0;
      for (double cand : ms) m = std::max(m, cand);
      if (m <= 0.0) m = 1e-300;
    }
    // y^4 + p y^2 + q y + r = (y^2 + m' y + s1)(y^2 - m' y + s2) with
    // m' = sqrt(2 m), s_{1,2} = p/2 + m -/+ q / (2 m').
    const double mp = std::sqrt(2.0 * m);
    const double s1 = p / 2.0 + m - q / (2.0 * mp);
    const double s2 = p / 2.0 + m + q / (2.0 * mp);
    for (double y : SolveQuadratic(1.0, mp, s1)) roots.push_back(y - shift);
    for (double y : SolveQuadratic(1.0, -mp, s2)) roots.push_back(y - shift);
  }

  const std::vector<double> coeffs = {a, b, c, d, e};
  for (double& root : roots) root = PolishRoot(coeffs, root);
  SortAndDedupe(&roots);
  return roots;
}

double EvaluatePolynomial(const std::vector<double>& coeffs, double x) {
  double acc = 0.0;
  for (double coef : coeffs) acc = acc * x + coef;
  return acc;
}

double EvaluatePolynomialDerivative(const std::vector<double>& coeffs,
                                    double x) {
  const size_t n = coeffs.size();
  if (n < 2) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i + 1 < n; ++i) {
    const double power = static_cast<double>(n - 1 - i);
    acc = acc * x + coeffs[i] * power;
  }
  return acc;
}

double PolishRoot(const std::vector<double>& coeffs, double x0) {
  double x = x0;
  for (int iter = 0; iter < 8; ++iter) {
    const double f = EvaluatePolynomial(coeffs, x);
    if (f == 0.0) break;
    const double df = EvaluatePolynomialDerivative(coeffs, x);
    if (df == 0.0) break;
    const double next = x - f / df;
    if (!std::isfinite(next)) break;
    // Accept only improving steps so polishing can never make a root worse.
    if (std::abs(EvaluatePolynomial(coeffs, next)) >= std::abs(f)) break;
    x = next;
  }
  return x;
}

}  // namespace hyperdom
