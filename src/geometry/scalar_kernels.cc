// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The always-scalar reference kernels (hyperdom::scalar_ref). This TU is
// compiled with -ffp-contract=off -fno-tree-vectorize -fno-tree-slp-vectorize
// (src/CMakeLists.txt) so that even under HYPERDOM_NATIVE/-march=native it
// executes plain scalar instructions: it is the honest baseline of the
// scalar-vs-SIMD microbenchmark rows and the reference side of the
// bit-identity tests. The arithmetic itself is the kernel_core v2
// accumulation order — identical to the dispatched kernels by
// construction, so scalar_ref::K(...) == K(...) bit-for-bit in every
// build.

#include <cmath>

#include "geometry/kernel_core.h"
#include "geometry/point.h"

namespace hyperdom {
namespace scalar_ref {

double DotSpan(const double* a, const double* b, size_t dim) {
  return kernel_core::DotCore(a, b, dim);
}

double SquaredNormSpan(const double* a, size_t dim) {
  return kernel_core::DotCore(a, a, dim);
}

double NormSpan(const double* a, size_t dim) {
  return std::sqrt(SquaredNormSpan(a, dim));
}

double SquaredDistSpan(const double* a, const double* b, size_t dim) {
  return kernel_core::SquaredDistCore(a, b, dim);
}

double DistSpan(const double* a, const double* b, size_t dim) {
  return std::sqrt(SquaredDistSpan(a, b, dim));
}

void BatchedSqDistSpan(const double* rows, size_t dim, size_t count,
                       const double* q, double* out) {
  for (size_t r = 0; r < count; ++r) {
    out[r] = SquaredDistSpan(rows + r * dim, q, dim);
  }
}

void BatchedMaxDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out) {
  for (size_t r = 0; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    out[r] = kernel_core::CombineMaxDist(d, radii[r], qr);
  }
}

void BatchedMinDistSpan(const double* rows, const double* radii, size_t dim,
                        size_t count, const double* q, double qr,
                        double* out) {
  for (size_t r = 0; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    out[r] = kernel_core::CombineMinDist(d, radii[r], qr);
  }
}

void BatchedMinMaxDistSpan(const double* rows, const double* radii,
                           size_t dim, size_t count, const double* q,
                           double qr, double* min_out, double* max_out) {
  for (size_t r = 0; r < count; ++r) {
    const double d = DistSpan(rows + r * dim, q, dim);
    min_out[r] = kernel_core::CombineMinDist(d, radii[r], qr);
    max_out[r] = kernel_core::CombineMaxDist(d, radii[r], qr);
  }
}

}  // namespace scalar_ref
}  // namespace hyperdom
