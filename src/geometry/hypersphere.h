// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The Hypersphere object of the paper (Section 2.1): a center point and a
// non-negative radius. A point is a hypersphere of radius zero.

#ifndef HYPERDOM_GEOMETRY_HYPERSPHERE_H_
#define HYPERDOM_GEOMETRY_HYPERSPHERE_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "geometry/kernel_core.h"
#include "geometry/point.h"

namespace hyperdom {

/// \brief A non-owning view of a hypersphere: a contiguous coordinate span
/// plus a radius.
///
/// This is the universal argument type of the dominance kernels. It is
/// free to construct from both an AoS `Hypersphere` (whose vector data is
/// contiguous) and a `SphereStore` row, so both storage layouts execute
/// the exact same span kernels in the exact same order — AoS↔SoA
/// bit-identity holds by construction. The view does not own its
/// coordinates; the backing object must outlive every use.
struct SphereView {
  const double* center = nullptr;
  size_t dim = 0;
  double radius = 0.0;
};

/// \brief A closed d-dimensional ball: { x : Dist(x, center) <= radius }.
///
/// Used both as an uncertain-object region (uncertain databases) and as an
/// index bounding region (SS-tree nodes).
class Hypersphere {
 public:
  Hypersphere() = default;

  /// Constructs a hypersphere. `radius` must be >= 0 and every component
  /// (center coordinates and radius) finite; both are asserted in debug
  /// builds. Untrusted inputs should be checked with Validate() first.
  Hypersphere(Point center, double radius);

  /// \brief Checks candidate components before construction.
  ///
  /// Returns InvalidArgument naming the first violation: a non-finite
  /// center coordinate, or a non-finite or negative radius. Loaders wrap
  /// the message into kCorruption with row context (data/csv.cc).
  static Status Validate(const Point& center, double radius);

  /// Validates this sphere's invariants (trivially OK for spheres built
  /// through the asserting constructor, useful after deserialization).
  Status Validate() const { return Validate(center_, radius_); }

  /// A point treated as a radius-zero hypersphere.
  static Hypersphere FromPoint(Point p) { return Hypersphere(std::move(p), 0.0); }

  /// The center c.
  const Point& center() const { return center_; }
  /// Non-owning view over this sphere's contiguous coordinates. Valid only
  /// while this object is alive and unmodified.
  SphereView view() const {
    return SphereView{center_.data(), center_.size(), radius_};
  }
  /// The radius r >= 0.
  double radius() const { return radius_; }
  /// The dimensionality d.
  size_t dim() const { return center_.size(); }

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff every point of `other` lies inside this ball.
  bool ContainsSphere(const Hypersphere& other) const;

  /// "S(center=(..), r=..)" for diagnostics.
  std::string ToString() const;

  bool operator==(const Hypersphere& other) const {
    return radius_ == other.radius_ && center_ == other.center_;
  }

 private:
  Point center_;
  double radius_ = 0.0;
};

// -- View kernels ----------------------------------------------------------
// The span cores of the sphere-distance arithmetic. The Hypersphere
// overloads below delegate here. Defined inline: a by-value SphereView is
// passed on the stack (it exceeds the two-eightbyte register budget), and
// an opaque call re-writing the same stack slots every leaf-scan iteration
// serializes the loop — inlining erases the ABI traffic and leaves only
// the DistSpan register call. The bodies contain NO local arithmetic:
// distances come from the point.cc span kernels and the radius combines
// from kernel_core.h, the same force-inline spellings the batched kernels
// use, so the inline and out-of-line paths cannot diverge bit-wise
// (pinned by tests/kernel_identity_test.cc).

/// MaxDist(Sa, Sb) = Dist(ca, cb) + (ra + rb)  (paper Eq. (3)).
/// The radii grouping makes the result bit-symmetric in (a, b).
inline double MaxDist(SphereView a, SphereView b) {
  return kernel_core::CombineMaxDist(DistSpan(a.center, b.center, a.dim),
                                     a.radius, b.radius);
}

/// MinDist(Sa, Sb) = max(0, Dist(ca, cb) - (ra + rb))  (paper Eq. (4)).
inline double MinDist(SphereView a, SphereView b) {
  return kernel_core::CombineMinDist(DistSpan(a.center, b.center, a.dim),
                                     a.radius, b.radius);
}

/// MaxDist between a sphere view and a point span: Dist(c, p) + r.
inline double MaxDist(SphereView a, const double* p) {
  return kernel_core::CombineMaxDist(DistSpan(a.center, p, a.dim), a.radius,
                                     0.0);
}

/// MinDist between a sphere view and a point span: max(0, Dist(c, p) - r).
inline double MinDist(SphereView a, const double* p) {
  return kernel_core::CombineMinDist(DistSpan(a.center, p, a.dim), a.radius,
                                     0.0);
}

/// Overlap test: Dist(ca, cb) <= ra + rb (paper Section 2.1).
inline bool Overlaps(SphereView a, SphereView b) {
  return kernel_core::OverlapFromSquared(
      SquaredDistSpan(a.center, b.center, a.dim), a.radius, b.radius);
}

// -- Batched view kernels (gather forms) -----------------------------------
// One query against `count` views whose rows need not be contiguous (leaf
// entries resolved from arbitrary store slots, delta-overlay rows). Each
// result is bit-identical to the one-at-a-time view kernel on the same
// pair; for contiguous rows the raw forms in geometry/point.h
// (BatchedMinMaxDistSpan etc.) compute the same values from the arena
// base pointer directly.

/// out[i] = MaxDist(views[i], q).
void BatchedMaxDist(const SphereView* views, size_t count, SphereView q,
                    double* out);

/// min_out[i] = MinDist(views[i], q), max_out[i] = MaxDist(views[i], q),
/// with one center distance per view (fused; bit-identical to the
/// separate calls).
void BatchedMinMaxDist(const SphereView* views, size_t count, SphereView q,
                       double* min_out, double* max_out);

// -- Hypersphere adapters --------------------------------------------------

/// MaxDist(Sa, Sb) = Dist(ca, cb) + ra + rb  (paper Eq. (3)).
double MaxDist(const Hypersphere& a, const Hypersphere& b);

/// MinDist(Sa, Sb) = max(0, Dist(ca, cb) - ra - rb)  (paper Eq. (4)).
double MinDist(const Hypersphere& a, const Hypersphere& b);

/// MaxDist between a sphere and a point: Dist(c, p) + r.
double MaxDist(const Hypersphere& a, const Point& p);

/// MinDist between a sphere and a point: max(0, Dist(c, p) - r).
double MinDist(const Hypersphere& a, const Point& p);

/// Overlap test: Dist(ca, cb) <= ra + rb (paper Section 2.1). When two
/// spheres overlap, no dominance is possible (Lemma 1).
bool Overlaps(const Hypersphere& a, const Hypersphere& b);

/// Materializes an owning Hypersphere from a view (copies coordinates).
Hypersphere MaterializeSphere(SphereView v);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_HYPERSPHERE_H_
