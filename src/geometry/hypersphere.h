// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The Hypersphere object of the paper (Section 2.1): a center point and a
// non-negative radius. A point is a hypersphere of radius zero.

#ifndef HYPERDOM_GEOMETRY_HYPERSPHERE_H_
#define HYPERDOM_GEOMETRY_HYPERSPHERE_H_

#include <string>
#include <utility>

#include "common/status.h"
#include "geometry/point.h"

namespace hyperdom {

/// \brief A closed d-dimensional ball: { x : Dist(x, center) <= radius }.
///
/// Used both as an uncertain-object region (uncertain databases) and as an
/// index bounding region (SS-tree nodes).
class Hypersphere {
 public:
  Hypersphere() = default;

  /// Constructs a hypersphere. `radius` must be >= 0 and every component
  /// (center coordinates and radius) finite; both are asserted in debug
  /// builds. Untrusted inputs should be checked with Validate() first.
  Hypersphere(Point center, double radius);

  /// \brief Checks candidate components before construction.
  ///
  /// Returns InvalidArgument naming the first violation: a non-finite
  /// center coordinate, or a non-finite or negative radius. Loaders wrap
  /// the message into kCorruption with row context (data/csv.cc).
  static Status Validate(const Point& center, double radius);

  /// Validates this sphere's invariants (trivially OK for spheres built
  /// through the asserting constructor, useful after deserialization).
  Status Validate() const { return Validate(center_, radius_); }

  /// A point treated as a radius-zero hypersphere.
  static Hypersphere FromPoint(Point p) { return Hypersphere(std::move(p), 0.0); }

  /// The center c.
  const Point& center() const { return center_; }
  /// The radius r >= 0.
  double radius() const { return radius_; }
  /// The dimensionality d.
  size_t dim() const { return center_.size(); }

  /// True iff `p` lies inside or on the boundary.
  bool Contains(const Point& p) const;

  /// True iff every point of `other` lies inside this ball.
  bool ContainsSphere(const Hypersphere& other) const;

  /// "S(center=(..), r=..)" for diagnostics.
  std::string ToString() const;

  bool operator==(const Hypersphere& other) const {
    return radius_ == other.radius_ && center_ == other.center_;
  }

 private:
  Point center_;
  double radius_ = 0.0;
};

/// MaxDist(Sa, Sb) = Dist(ca, cb) + ra + rb  (paper Eq. (3)).
double MaxDist(const Hypersphere& a, const Hypersphere& b);

/// MinDist(Sa, Sb) = max(0, Dist(ca, cb) - ra - rb)  (paper Eq. (4)).
double MinDist(const Hypersphere& a, const Hypersphere& b);

/// MaxDist between a sphere and a point: Dist(c, p) + r.
double MaxDist(const Hypersphere& a, const Point& p);

/// MinDist between a sphere and a point: max(0, Dist(c, p) - r).
double MinDist(const Hypersphere& a, const Point& p);

/// Overlap test: Dist(ca, cb) <= ra + rb (paper Section 2.1). When two
/// spheres overlap, no dominance is possible (Lemma 1).
bool Overlaps(const Hypersphere& a, const Hypersphere& b);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_HYPERSPHERE_H_
