// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Smallest enclosing balls (Welzl's algorithm with move-to-front, expected
// linear time for fixed dimension). Used as the optional tight bounding
// policy of the SS-tree: White & Jain's centroid-centered node spheres are
// cheap but loose; the minimum enclosing ball of the node's contents is
// the tightest sphere bound possible.

#ifndef HYPERDOM_GEOMETRY_MIN_BALL_H_
#define HYPERDOM_GEOMETRY_MIN_BALL_H_

#include <vector>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// \brief The smallest ball enclosing `points` (exact up to floating-point
/// tolerance). Requires a non-empty input; all points share one dimension.
/// Deterministic (fixed internal shuffle seed).
Hypersphere MinBallOfPoints(const std::vector<Point>& points);

/// \brief A near-minimal ball enclosing every sphere in `spheres`:
/// the exact minimum ball of the centers, inflated just enough to cover
/// every sphere's far edge. A valid cover, and typically much tighter than
/// a centroid-centered bound; not guaranteed minimal over all center
/// choices (the exact min-ball-of-balls problem needs SOCP machinery).
Hypersphere MinBallOfSpheres(const std::vector<Hypersphere>& spheres);

/// \brief Circumball of an affinely independent support set (|support| in
/// [1, d+1]): the smallest ball with every support point ON its boundary.
/// Exposed for tests. Degenerate (affinely dependent) supports fall back
/// to dropping redundant points.
Hypersphere BallFromSupport(const std::vector<Point>& support);

}  // namespace hyperdom

#endif  // HYPERDOM_GEOMETRY_MIN_BALL_H_
