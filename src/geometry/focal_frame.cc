// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/focal_frame.h"

#include <cassert>
#include <cmath>

namespace hyperdom {

FocalFrame BuildFocalFrame(const Point& ca, const Point& cb, const Point& cq) {
  assert(ca.size() == cb.size() && ca.size() == cq.size());
  FocalFrame frame;
  frame.mid = Midpoint(ca, cb);
  Point diff = Sub(cb, ca);
  const double focal_dist = Norm(diff);
  assert(focal_dist > 0.0 && "foci must be distinct");
  frame.alpha = 0.5 * focal_dist;
  frame.axis = Scale(diff, 1.0 / focal_dist);

  Point rel = Sub(cq, frame.mid);
  frame.y1 = Dot(rel, frame.axis);
  const double perp_sq = SquaredNorm(rel) - frame.y1 * frame.y1;
  // Rounding can push perp_sq a hair below zero when cq is on the axis.
  frame.y2 = perp_sq > 0.0 ? std::sqrt(perp_sq) : 0.0;
  return frame;
}

Point LiftFromFrame(const FocalFrame& frame, const Point& cq, double t1,
                    double t2) {
  Point rel = Sub(cq, frame.mid);
  // In-plane orthogonal component of cq relative to the axis.
  Point perp = AddScaled(rel, -frame.y1, frame.axis);
  const double perp_norm = Norm(perp);
  Point w;
  if (perp_norm > 1e-12 * (1.0 + Norm(cq))) {
    w = Scale(perp, 1.0 / perp_norm);
  } else {
    // cq on the axis: synthesize any unit vector orthogonal to the axis.
    // Take the coordinate direction least aligned with the axis and
    // Gram-Schmidt it.
    size_t best = 0;
    double best_abs = std::abs(frame.axis[0]);
    for (size_t i = 1; i < frame.axis.size(); ++i) {
      if (std::abs(frame.axis[i]) < best_abs) {
        best = i;
        best_abs = std::abs(frame.axis[i]);
      }
    }
    w = Point(frame.axis.size(), 0.0);
    w[best] = 1.0;
    w = AddScaled(w, -frame.axis[best], frame.axis);
    w = Normalized(w);
  }
  Point out = AddScaled(frame.mid, t1, frame.axis);
  return AddScaled(out, t2, w);
}

}  // namespace hyperdom
