// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Algorithm Hyperbola (paper Section 4) — the paper's contribution and the
// first dominance criterion that is simultaneously correct, sound and O(d).
//
// Outline (Algorithm 1):
//   1. If Sa and Sb overlap, no dominance is possible (Lemma 1).
//   2. Otherwise the boundary of the safe region Ra is one sheet of the
//      two-sheet hyperboloid P: Dist(cb, x) - Dist(ca, x) = ra + rb, with
//      foci ca and cb (Lemma 7).
//   3. Sq lies entirely inside Ra iff cq is inside Ra AND the minimum
//      distance dmin from cq to P exceeds rq (Section 4.2).
//   4. dmin is found by transforming to focus-centered coordinates
//      (Section 4.3.1) and solving the Lagrange-multiplier quartic of
//      Eq. (14) in O(1) (Section 4.3.2); the transform costs O(d).
//
// Two implementation notes beyond the paper's text (details in DESIGN.md):
//   * We never materialize the d-dimensional rotation — only the axial
//     coordinate y1 of cq and its distance y2 from the focal axis enter the
//     quartic, and those are O(d) inner products (geometry/focal_frame.h).
//   * The squared implicit form F(x) = 0 covers both sheets of the
//     hyperboloid. For cq inside Ra the near sheet separates cq from the far
//     sheet, so minimizing over all quartic candidates still yields the
//     distance to the near sheet; when cq is outside Ra the algorithm has
//     already answered false.

#ifndef HYPERDOM_DOMINANCE_HYPERBOLA_H_
#define HYPERDOM_DOMINANCE_HYPERBOLA_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// How HyperbolaCriterion finds the minimum distance to the hyperboloid.
enum class HyperbolaInnerMethod {
  /// The paper's O(1) quartic (Eq. (14)) — the default.
  kQuartic,
  /// Dense parametric scan + golden-section refinement. Exact up to
  /// tolerance but two orders of magnitude slower; used as an ablation
  /// baseline and as a fallback safety net.
  kParametric,
};

/// \brief The paper's optimal dominance criterion.
class HyperbolaCriterion final : public DominanceCriterion {
 public:
  explicit HyperbolaCriterion(
      HyperbolaInnerMethod method = HyperbolaInnerMethod::kQuartic)
      : method_(method) {}

  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;

  /// Batched tier-1: one (Sa, Sq) pair against a block of candidates. The
  /// query-to-focus distance da = Dist(cq, ca) — the only O(d) term of
  /// the pipeline not involving cb — is computed once and amortized
  /// across the block; every verdict is bit-identical to the serial call.
  void DecideVerdictBatch(SphereView sa, const SphereView* sbs, size_t count,
                          SphereView sq, Verdict* out) const override;

  std::string_view name() const override { return "Hyperbola"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return true; }

 private:
  /// The pipeline after the Lemma 1 overlap gate, with da precomputed.
  bool DominatesNonOverlapping(SphereView sa, SphereView sb, SphereView sq,
                               double da) const;

  HyperbolaInnerMethod method_;
};

/// \brief Minimum distance from the 2-plane point (y1, y2) to the full
/// hyperbola Dist(f_b, x) - Dist(f_a, x) = rab (both sheets), with foci
/// f_a = (-alpha, 0) and f_b = (+alpha, 0), via the paper's quartic.
///
/// Requires alpha > 0, 0 < rab < 2*alpha, y2 >= 0. Exposed for tests and the
/// ablation benchmark.
double HyperbolaMinDistQuartic(double alpha, double rab, double y1, double y2);

/// \brief Reference implementation of the same minimum distance using the
/// cosh/sinh parametrization of each sheet with a dense scan and
/// golden-section refinement. Same preconditions as the quartic version.
double HyperbolaMinDistParametric(double alpha, double rab, double y1,
                                  double y2);

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_HYPERBOLA_H_
