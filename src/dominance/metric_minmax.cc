// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/metric_minmax.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "common/str_util.h"

namespace hyperdom {

double L1Metric::Distance(const Point& a, const Point& b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

double L2Metric::Distance(const Point& a, const Point& b) const {
  return Dist(a, b);
}

double LInfMetric::Distance(const Point& a, const Point& b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc = std::max(acc, std::abs(a[i] - b[i]));
  }
  return acc;
}

LpMetric::LpMetric(double p) : p_(p) {
  assert(p >= 1.0 && "Lp is a norm only for p >= 1");
  // snprintf instead of string concatenation: GCC 12's -Wrestrict misfires
  // on concatenating into the member string at -O3.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "L%g", p);
  name_ = buf;
}

double LpMetric::Distance(const Point& a, const Point& b) const {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    acc += std::pow(std::abs(a[i] - b[i]), p_);
  }
  return std::pow(acc, 1.0 / p_);
}

MetricMinMaxDominance::MetricMinMaxDominance(const PointMetric* metric)
    : metric_(metric) {
  assert(metric_ != nullptr);
}

double MetricMinMaxDominance::MaxDist(const Hypersphere& a,
                                      const Hypersphere& b) const {
  return metric_->Distance(a.center(), b.center()) +
         (a.radius() + b.radius());
}

double MetricMinMaxDominance::MinDist(const Hypersphere& a,
                                      const Hypersphere& b) const {
  const double d = metric_->Distance(a.center(), b.center()) -
                   (a.radius() + b.radius());
  return d > 0.0 ? d : 0.0;
}

bool MetricMinMaxDominance::Dominates(const Hypersphere& sa,
                                      const Hypersphere& sb,
                                      const Hypersphere& sq) const {
  return MaxDist(sa, sq) < MinDist(sb, sq);
}

}  // namespace hyperdom
