// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Dominance probability for uncertain objects. The dominance predicate is
// the "probability exactly 1" case: Dom(Sa, Sb, Sq) holds iff EVERY
// realization (a, b, q) of the three uncertain objects has a closer to q
// than b. When the predicate fails, applications in probabilistic
// databases (the paper's references [2, 7, 19, 25]) still want the
// PROBABILITY that a random realization does — this module estimates it by
// Monte Carlo under the standard uniform-in-ball independence model.

#ifndef HYPERDOM_DOMINANCE_PROBABILITY_H_
#define HYPERDOM_DOMINANCE_PROBABILITY_H_

#include <cstdint>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// Result of a Monte-Carlo dominance-probability estimation.
struct DominanceProbability {
  /// Fraction of sampled realizations with Dist(a, q) < Dist(b, q).
  double probability = 0.0;
  /// Standard error of the estimate: sqrt(p * (1 - p) / samples).
  double standard_error = 0.0;
  uint64_t samples = 0;
};

/// \brief Estimates P[ Dist(a, q) < Dist(b, q) ] for independent uniform
/// a in Sa, b in Sb, q in Sq, from `samples` realizations (>= 1).
/// Deterministic in `seed`.
///
/// Consistency with the predicate: Dom true implies probability 1 (every
/// realization qualifies); Dom(Sb, Sa, Sq) true implies probability 0.
DominanceProbability EstimateDominanceProbability(const Hypersphere& sa,
                                                  const Hypersphere& sb,
                                                  const Hypersphere& sq,
                                                  uint64_t samples,
                                                  uint64_t seed = 0xD1CE);

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_PROBABILITY_H_
