// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The dominance decision-criterion interface (paper Problem 1) plus a
// factory. A criterion decides Dom(Sa, Sb, Sq): does every point of Sa lie
// strictly closer to every point of Sq than every point of Sb does?
//
// Criteria are evaluated on three axes (paper Section 1):
//   * correct  — returns true  => dominance really holds (no false positives)
//   * sound    — returns false => dominance really fails (no false negatives)
//   * efficient — O(d) in the dimensionality
// Hyperbola is the only criterion satisfying all three (paper Table 1).

#ifndef HYPERDOM_DOMINANCE_CRITERION_H_
#define HYPERDOM_DOMINANCE_CRITERION_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// \brief Three-valued dominance verdict.
///
/// A plain bool criterion must commit to an answer even when the scene sits
/// so close to the decision boundary that double rounding could have flipped
/// it. Error-aware criteria instead return kUncertain in that regime, and
/// callers that prune on dominance must treat kUncertain conservatively
/// (i.e. never prune).
enum class Verdict {
  kDominates,     ///< dominance certified to hold
  kNotDominates,  ///< dominance certified to fail
  kUncertain,     ///< inside the numeric error band; do not trust either way
};

/// Display name: "Dominates", "NotDominates", "Uncertain".
std::string_view VerdictName(Verdict v);

/// \brief Abstract dominance decision criterion.
///
/// Implementations are stateless and thread-compatible: a single instance
/// may be shared by concurrent readers.
///
/// The virtual core operates on non-owning SphereView handles so that
/// spheres resolved from the columnar SphereStore are decided without
/// materializing Hypersphere copies; the Hypersphere overloads are thin
/// non-virtual adapters over the same kernels, so both entry points are
/// bit-identical by construction.
class DominanceCriterion {
 public:
  virtual ~DominanceCriterion() = default;

  /// Decides Dom(sa, sb, sq). The three spheres must share a dimensionality.
  virtual bool Dominates(SphereView sa, SphereView sb,
                         SphereView sq) const = 0;

  /// Adapter: decides on owning spheres by viewing them.
  bool Dominates(const Hypersphere& sa, const Hypersphere& sb,
                 const Hypersphere& sq) const {
    return Dominates(sa.view(), sb.view(), sq.view());
  }

  /// \brief Three-valued decision.
  ///
  /// The default folds Dominates() onto {kDominates, kNotDominates};
  /// error-aware criteria (CertifiedCriterion) override it and may return
  /// kUncertain when the scene lies inside their numeric error band.
  virtual Verdict DecideVerdict(SphereView sa, SphereView sb,
                                SphereView sq) const {
    return Dominates(sa, sb, sq) ? Verdict::kDominates
                                 : Verdict::kNotDominates;
  }

  /// Adapter: three-valued decision on owning spheres.
  Verdict DecideVerdict(const Hypersphere& sa, const Hypersphere& sb,
                        const Hypersphere& sq) const {
    return DecideVerdict(sa.view(), sb.view(), sq.view());
  }

  /// \brief Batched three-valued decision: out[i] = DecideVerdict(sa,
  /// sbs[i], sq) for i in [0, count).
  ///
  /// One (Sa, Sq) pair against a block of candidates — the shape of
  /// BestKnownList eviction/revival sweeps and leaf-scan filtering. The
  /// contract is strict element-wise equivalence: every out[i] must be
  /// bit-identical (same enumerator, same side effects) to the serial
  /// call, so batching is purely a scheduling change. The default is the
  /// serial loop; criteria with per-pair work that is invariant in Sb
  /// (Hyperbola's query-to-focus distance) override it to hoist that work
  /// out of the loop. Wrappers that add per-call behavior
  /// (InstrumentedCriterion counters, CertifiedCriterion escalation)
  /// inherit the default and keep their per-call semantics via virtual
  /// dispatch on DecideVerdict.
  virtual void DecideVerdictBatch(SphereView sa, const SphereView* sbs,
                                  size_t count, SphereView sq,
                                  Verdict* out) const {
    for (size_t i = 0; i < count; ++i) {
      out[i] = DecideVerdict(sa, sbs[i], sq);
    }
  }

  /// Short display name ("Hyperbola", "MinMax", ...).
  virtual std::string_view name() const = 0;

  /// True iff the criterion guarantees no false positives.
  virtual bool is_correct() const = 0;

  /// True iff the criterion guarantees no false negatives.
  virtual bool is_sound() const = 0;
};

/// The criteria studied in the paper (Table 1) plus the test oracle.
enum class CriterionKind {
  kMinMax,         ///< MaxDist/MinDist comparison [26, 15]; correct, not sound
  kMbr,            ///< adapted MBR criterion [14]; correct, not sound
  kGp,             ///< adapted GP criterion [22]; correct, not sound
  kTrigonometric,  ///< adapted trigonometric criterion [12]; sound, not correct
  kHyperbola,      ///< the paper's contribution; correct, sound, O(d)
  kNumericOracle,  ///< reference 2-plane minimizer; exact but not O(d)-cheap
  kCertified,      ///< error-bounded Hyperbola with escalation; three-valued
};

/// Instantiates a criterion. Never returns null.
std::unique_ptr<DominanceCriterion> MakeCriterion(CriterionKind kind);

/// Display name for a kind without instantiating it.
std::string_view CriterionKindName(CriterionKind kind);

/// The five paper criteria (excludes the oracle), in the paper's Table 1
/// order: MinMax, MBR, GP, Trigonometric, Hyperbola.
const std::vector<CriterionKind>& PaperCriteria();

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_CRITERION_H_
