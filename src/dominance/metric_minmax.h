// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Extension (paper Section 8, future work): dominance under distance
// metrics other than Euclidean, completing dominance/metric.h.
//
// For a weighted L2 metric the problem reduces *exactly* to Euclidean
// dominance (metric.h). For other norms (L1, Linf, general Lp) the
// Hyperbola construction does not carry over — the boundary is no longer a
// quadric and the focal-axis symmetry is lost — but the MinMax criterion
// does: if objects are balls of the SAME norm-induced metric, then
//   MaxDist_m(Sa, Sq) = d_m(ca, cq) + ra + rq   and
//   MinDist_m(Sb, Sq) = max(0, d_m(cb, cq) - rb - rq)
// hold in any normed space, so comparing them is a correct (never a false
// positive), not sound, O(d) criterion — the general-metric fallback.

#ifndef HYPERDOM_DOMINANCE_METRIC_MINMAX_H_
#define HYPERDOM_DOMINANCE_METRIC_MINMAX_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "geometry/hypersphere.h"

namespace hyperdom {

/// \brief A norm-induced point metric.
class PointMetric {
 public:
  virtual ~PointMetric() = default;
  /// Distance between two points; must satisfy the norm axioms.
  virtual double Distance(const Point& a, const Point& b) const = 0;
  virtual std::string_view name() const = 0;
};

/// Manhattan distance.
class L1Metric final : public PointMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  std::string_view name() const override { return "L1"; }
};

/// Euclidean distance (for cross-checking against the exact machinery).
class L2Metric final : public PointMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  std::string_view name() const override { return "L2"; }
};

/// Chebyshev distance.
class LInfMetric final : public PointMetric {
 public:
  double Distance(const Point& a, const Point& b) const override;
  std::string_view name() const override { return "Linf"; }
};

/// General Lp distance, p >= 1.
class LpMetric final : public PointMetric {
 public:
  explicit LpMetric(double p);
  double Distance(const Point& a, const Point& b) const override;
  std::string_view name() const override { return name_; }

 private:
  double p_;
  std::string name_;
};

/// \brief The generalized MinMax criterion: correct (never a false
/// positive) for ball-shaped objects of any norm-induced metric; not
/// sound; O(d) per decision given an O(d) metric.
class MetricMinMaxDominance {
 public:
  /// Borrows the metric; it must outlive this object.
  explicit MetricMinMaxDominance(const PointMetric* metric);

  /// Decides dominance of metric balls (sa, sb, sq interpreted as balls of
  /// `metric`).
  bool Dominates(const Hypersphere& sa, const Hypersphere& sb,
                 const Hypersphere& sq) const;

  /// MaxDist_m between two metric balls.
  double MaxDist(const Hypersphere& a, const Hypersphere& b) const;
  /// MinDist_m between two metric balls.
  double MinDist(const Hypersphere& a, const Hypersphere& b) const;

  const PointMetric& metric() const { return *metric_; }

 private:
  const PointMetric* metric_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_METRIC_MINMAX_H_
