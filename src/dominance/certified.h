// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Certified dominance verdicts: an error-bounded evaluation of the
// Hyperbola predicate that knows when double arithmetic cannot be trusted
// and escalates instead of returning a confidently wrong bool.
//
// The engine evaluates every margin the predicate depends on —
//   * the overlap margin          Dist(ca, cb) - (ra + rb)   (Lemma 1),
//   * the center-MDD margin       (db - da) - (ra + rb)      (cq ∈ Ra),
//   * the boundary margin         dmin - rq                  (Step 2),
// — together with a forward error band derived from the arithmetic that
// produced it (running-error Horner bounds for the quartic roots, rounding
// bands for the distance arithmetic). Any margin inside its band makes the
// verdict kUncertain at that tier, and the engine escalates through
//
//   tier 1: double quartic with certified root bounds (O(d), the fast path)
//   tier 2: double parametric refinement (conditioning-robust sampling)
//   tier 3: long double re-evaluation via the templated kernels
//   tier 4: the numeric oracle (dense scan + golden section)
//
// recording which tier resolved each call. Callers that prune on dominance
// must treat kUncertain conservatively (never prune); see docs/robustness.md
// for the error-bound model and its caveats.

#ifndef HYPERDOM_DOMINANCE_CERTIFIED_H_
#define HYPERDOM_DOMINANCE_CERTIFIED_H_

#include <atomic>
#include <cstdint>

#include "dominance/criterion.h"

namespace hyperdom {

/// A minimum distance together with a conservative error estimate:
/// the true minimum is believed to lie within [dmin - bound, dmin].
/// (dmin itself is always an upper bound: every candidate is an actual
/// curve point.) bound is +inf when the quartic roots were too
/// ill-conditioned to certify — callers must escalate.
struct CertifiedMinDist {
  double dmin = 0.0;
  double bound = 0.0;
};

/// \brief HyperbolaMinDistQuartic plus an error estimate.
///
/// Computes the candidate set of the quartic method, re-evaluating each
/// root's candidates at lambda and lambda ± root_bound; the observed spread
/// (plus a base rounding band) estimates how far the reported minimum can
/// sit above the true one. Preconditions match HyperbolaMinDistQuartic.
CertifiedMinDist HyperbolaMinDistCertified(double alpha, double rab,
                                           double y1, double y2);

/// \brief The unified dominance margin evaluated entirely in long double.
///
/// Returns min(overlap margin, center-MDD margin, boundary margin); the
/// scene dominates iff the result is strictly positive. Used as tier 3 of
/// the escalation chain and as the high-precision reference of the boundary
/// fuzz harness. The view overload is the core; the Hypersphere overload
/// delegates.
long double DominanceMarginLongDouble(SphereView sa, SphereView sb,
                                      SphereView sq);
long double DominanceMarginLongDouble(const Hypersphere& sa,
                                      const Hypersphere& sb,
                                      const Hypersphere& sq);

/// Which escalation tier produced a decisive verdict.
enum class CertifiedTier {
  kQuartic = 1,     ///< tier 1: double quartic with certified bounds
  kParametric = 2,  ///< tier 2: double parametric refinement
  kLongDouble = 3,  ///< tier 3: long double kernels
  kOracle = 4,      ///< tier 4: numeric oracle
  kUnresolved = 0,  ///< no tier could certify; verdict is kUncertain
};

/// Snapshot of an engine's per-tier resolution counters.
///
/// Engine-scoped: each CertifiedDominance instance counts its own calls so
/// tests and callers can reason about a single engine. The same resolution
/// events also feed the process-wide metrics registry
/// (hyperdom_certified_calls_total, hyperdom_certified_resolved_total{tier=},
/// hyperdom_certified_uncertain_total — see docs/observability.md), which
/// aggregates across engines and is what --metrics-out exports.
struct CertifiedStats {
  uint64_t calls = 0;
  uint64_t resolved_quartic = 0;
  uint64_t resolved_parametric = 0;
  uint64_t resolved_long_double = 0;
  uint64_t resolved_oracle = 0;
  uint64_t uncertain = 0;

  /// Fraction of calls that ended kUncertain (0 when no calls were made).
  double UncertainRate() const {
    return calls == 0 ? 0.0
                      : static_cast<double>(uncertain) /
                            static_cast<double>(calls);
  }
};

/// \brief The certified verdict engine.
///
/// Thread-compatible for concurrent Decide() calls (the counters are
/// relaxed atomics); stats() is a racy-but-consistent snapshot.
class CertifiedDominance {
 public:
  /// Decides Dom(sa, sb, sq) with certification, escalating as needed.
  /// The view overloads are the allocation-free core; the Hypersphere
  /// overloads view their arguments and delegate.
  Verdict Decide(SphereView sa, SphereView sb, SphereView sq) const;

  /// Same, reporting which tier resolved the call.
  Verdict Decide(SphereView sa, SphereView sb, SphereView sq,
                 CertifiedTier* tier) const;

  Verdict Decide(const Hypersphere& sa, const Hypersphere& sb,
                 const Hypersphere& sq) const {
    return Decide(sa.view(), sb.view(), sq.view());
  }

  Verdict Decide(const Hypersphere& sa, const Hypersphere& sb,
                 const Hypersphere& sq, CertifiedTier* tier) const {
    return Decide(sa.view(), sb.view(), sq.view(), tier);
  }

  CertifiedStats stats() const;

  /// Zeroes this engine's counters. Non-const on purpose: resetting is a
  /// mutation of observable state, unlike the mutable counting that
  /// piggybacks on const Decide() calls. Does not touch the process-wide
  /// registry (use MetricsRegistry::ResetAll for that).
  void ResetStats();

 private:
  mutable std::atomic<uint64_t> calls_{0};
  mutable std::atomic<uint64_t> resolved_quartic_{0};
  mutable std::atomic<uint64_t> resolved_parametric_{0};
  mutable std::atomic<uint64_t> resolved_long_double_{0};
  mutable std::atomic<uint64_t> resolved_oracle_{0};
  mutable std::atomic<uint64_t> uncertain_{0};
};

/// \brief DominanceCriterion adapter over CertifiedDominance.
///
/// Dominates() folds kUncertain to false (the conservative direction for
/// pruning); DecideVerdict() exposes the three-valued result. Correct and
/// sound outside the numeric error band — see docs/robustness.md for what
/// the band means and when callers see kUncertain.
class CertifiedCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  using DominanceCriterion::DecideVerdict;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override {
    return engine_.Decide(sa, sb, sq) == Verdict::kDominates;
  }
  Verdict DecideVerdict(SphereView sa, SphereView sb,
                        SphereView sq) const override {
    return engine_.Decide(sa, sb, sq);
  }
  std::string_view name() const override { return "Certified"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return true; }

  const CertifiedDominance& engine() const { return engine_; }

 private:
  CertifiedDominance engine_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_CERTIFIED_H_
