// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/mbr_criterion.h"

#include "geometry/mbr.h"

namespace hyperdom {

bool MbrCriterion::Dominates(const Hypersphere& sa, const Hypersphere& sb,
                             const Hypersphere& sq) const {
  // Rectangle dominance of the bounding boxes implies sphere dominance
  // because Sa ⊆ Ra, Sb ⊆ Rb, Sq ⊆ Rq and the rectangle decision quantifies
  // over every point of the boxes (paper Lemma 4).
  const Mbr ra = Mbr::FromSphere(sa);
  const Mbr rb = Mbr::FromSphere(sb);
  const Mbr rq = Mbr::FromSphere(sq);
  return RectDominates(ra, rb, rq);
}

}  // namespace hyperdom
