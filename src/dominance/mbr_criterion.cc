// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/mbr_criterion.h"

#include "geometry/mbr.h"

namespace hyperdom {

bool MbrCriterion::Dominates(SphereView sa, SphereView sb,
                             SphereView sq) const {
  // Rectangle dominance of the bounding boxes implies sphere dominance
  // because Sa ⊆ Ra, Sb ⊆ Rb, Sq ⊆ Rq and the rectangle decision quantifies
  // over every point of the boxes (paper Lemma 4). The sphere form computes
  // the box bounds on the fly instead of materializing three Mbrs.
  return RectDominatesSpheres(sa, sb, sq);
}

}  // namespace hyperdom
