// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/instrumented.h"

#include <cassert>
#include <chrono>

#include "obs/metrics.h"

namespace hyperdom {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
std::string VerdictCounterName(std::string_view criterion,
                               std::string_view verdict) {
  std::string name(obs::kCriterionVerdicts.name);
  name.append("{criterion=\"").append(criterion);
  name.append("\",verdict=\"").append(verdict).append("\"}");
  return name;
}
#endif

}  // namespace

struct InstrumentedCriterion::Instruments {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  obs::Counter* dominates = nullptr;
  obs::Counter* not_dominates = nullptr;
  obs::Counter* uncertain = nullptr;
  obs::Histogram* latency = nullptr;
#endif
};

InstrumentedCriterion::InstrumentedCriterion(
    std::unique_ptr<DominanceCriterion> inner)
    : inner_(std::move(inner)), instruments_(new Instruments()) {
  assert(inner_ != nullptr);
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  // Handles are resolved per instance, not via the macros' function-local
  // statics: the label value (the criterion's name) differs per instance.
  auto& registry = obs::MetricsRegistry::Instance();
  const std::string_view n = inner_->name();
  instruments_->dominates = registry.GetCounter(
      VerdictCounterName(n, "dominates"), obs::kCriterionVerdicts.help);
  instruments_->not_dominates = registry.GetCounter(
      VerdictCounterName(n, "not_dominates"), obs::kCriterionVerdicts.help);
  instruments_->uncertain = registry.GetCounter(
      VerdictCounterName(n, "uncertain"), obs::kCriterionVerdicts.help);
  instruments_->latency =
      registry.GetHistogram(obs::kCriterionDecideDuration, "criterion", n);
#endif
}

InstrumentedCriterion::~InstrumentedCriterion() = default;

void InstrumentedCriterion::RecordOutcome(Verdict v,
                                          uint64_t elapsed_ns) const {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  switch (v) {
    case Verdict::kDominates:
      instruments_->dominates->Add(1);
      break;
    case Verdict::kNotDominates:
      instruments_->not_dominates->Add(1);
      break;
    case Verdict::kUncertain:
      instruments_->uncertain->Add(1);
      break;
  }
  instruments_->latency->Record(elapsed_ns);
#else
  (void)v;
  (void)elapsed_ns;
#endif
}

bool InstrumentedCriterion::Dominates(SphereView sa, SphereView sb,
                                      SphereView sq) const {
  const int64_t start = NowNs();
  const bool dominates = inner_->Dominates(sa, sb, sq);
  RecordOutcome(dominates ? Verdict::kDominates : Verdict::kNotDominates,
                static_cast<uint64_t>(NowNs() - start));
  return dominates;
}

Verdict InstrumentedCriterion::DecideVerdict(SphereView sa, SphereView sb,
                                             SphereView sq) const {
  const int64_t start = NowNs();
  const Verdict v = inner_->DecideVerdict(sa, sb, sq);
  RecordOutcome(v, static_cast<uint64_t>(NowNs() - start));
  return v;
}

std::unique_ptr<DominanceCriterion> MakeInstrumentedCriterion(
    CriterionKind kind) {
  return std::make_unique<InstrumentedCriterion>(MakeCriterion(kind));
}

}  // namespace hyperdom
