// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The adapted GP decision criterion (paper appendix; Lian & Chen [22]).
//
// GP folds a d-dimensional point x onto the 2-plane
//   u(x) = ( ||x[0..d-2]||, x[d-1] ),
// under which pairwise distances can only shrink (reverse triangle
// inequality), and then runs the exact 2-dimensional decision on the
// transformed data. To keep the criterion *correct* the two sides are
// bounded in opposite directions: the b-side focus keeps its plain image
// (2D distance lower-bounds the true distance to cb) while the a-side focus
// is reflected to (-||ca[0..d-2]||, ca[d-1]) so that, by the forward
// triangle inequality, its 2D distance upper-bounds the true distance to ca.
// Information is lost by the fold, so the criterion is not sound for d > 2;
// for d == 2 it degenerates to the exact decision ("GP is optimal for
// 2-dimensional datasets only" — paper Section 3.1). O(d) overall.

#ifndef HYPERDOM_DOMINANCE_GP_H_
#define HYPERDOM_DOMINANCE_GP_H_

#include "dominance/criterion.h"
#include "dominance/hyperbola.h"

namespace hyperdom {

/// \brief GP criterion: fold to 2D with correctness-preserving bounds, then
/// decide exactly in the plane.
class GpCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  std::string_view name() const override { return "GP"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return false; }

 private:
  HyperbolaCriterion exact_2d_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_GP_H_
