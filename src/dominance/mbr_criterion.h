// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The adapted MBR decision criterion (paper Section 2.2; [14]):
// bound each hypersphere by its minimum bounding hyperrectangle and apply
// Emrich et al.'s optimal rectangle decision DDC_optimal. Correct (Lemma 4)
// because the boxes enclose the spheres; not sound (Lemma 5) because the
// boxes are strictly larger than the spheres (a factor growing with d); O(d).

#ifndef HYPERDOM_DOMINANCE_MBR_CRITERION_H_
#define HYPERDOM_DOMINANCE_MBR_CRITERION_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief MBR criterion: rectangle dominance on the spheres' bounding boxes.
class MbrCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  std::string_view name() const override { return "MBR"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return false; }
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_MBR_CRITERION_H_
