// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/minmax.h"

namespace hyperdom {

bool MinMaxCriterion::Dominates(const Hypersphere& sa, const Hypersphere& sb,
                                const Hypersphere& sq) const {
  return MaxDist(sa, sq) < MinDist(sb, sq);
}

}  // namespace hyperdom
