// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/minmax.h"

namespace hyperdom {

bool MinMaxCriterion::Dominates(SphereView sa, SphereView sb,
                                SphereView sq) const {
  return MaxDist(sa, sq) < MinDist(sb, sq);
}

}  // namespace hyperdom
