// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Precision-generic core of the Hyperbola minimum-distance computation
// (paper Section 4.3.2). dominance/hyperbola.cc instantiates these templates
// at double for the production predicate; dominance/certified.cc
// re-instantiates them at long double as an escalation tier when a double
// verdict lands inside its error band.
//
// The templates are faithful transcriptions of the previous double-only
// code: at T = double they perform the same operations in the same order,
// so the existing hyperbola test sweeps pin both precisions.

#ifndef HYPERDOM_DOMINANCE_HYPERBOLA_KERNEL_H_
#define HYPERDOM_DOMINANCE_HYPERBOLA_KERNEL_H_

#include <algorithm>
#include <cmath>
#include <limits>

#include "geometry/focal_frame.h"
#include "geometry/hypersphere.h"
#include "geometry/polynomial_kernel.h"

namespace hyperdom {
namespace hyperbola_internal {

// Distance from (y1, y2) to the candidate curve point (x1, xp).
template <typename T>
inline T CandidateDistT(T y1, T y2, T x1, T xp) {
  const T d1 = y1 - x1;
  const T d2 = y2 - xp;
  return std::sqrt(d1 * d1 + d2 * d2);
}

// Adds the candidates of the lambda-singular branches of the Lagrange
// system. The quartic derivation divides by (1 + a5*lambda) and
// (1 + a4*lambda); when cq sits on the focal axis (y2 == 0) or on the
// perpendicular bisector plane (y1 == 0) the corresponding factor may be
// zero and the nearest point is missed by the quartic roots. The singular
// candidates are genuine points of F(x) = 0, so including them
// unconditionally can only tighten the minimum, never break it.
template <typename T>
T SingularBranchCandidatesT(T alpha, T rab, T y1, T y2) {
  const T kInf = std::numeric_limits<T>::infinity();
  const T r2 = rab * rab;
  const T al2 = alpha * alpha;
  T best = kInf;

  // Branch 1 + a5*lambda = 0 (relevant when y1 == 0):
  //   xp = y2 * (4 alpha^2 - rab^2) / (4 alpha^2),
  //   x1^2 = (4 r^2 alpha^2 + 4 r^2 xp^2 - r^4) / (16 alpha^2 - 4 r^2).
  {
    const T xp = y2 * (T(4) * al2 - r2) / (T(4) * al2);
    const T num = T(4) * r2 * al2 + T(4) * r2 * xp * xp - r2 * r2;
    const T den = T(16) * al2 - T(4) * r2;
    const T x1_sq = num / den;
    if (x1_sq >= T(0)) {
      const T x1 = std::sqrt(x1_sq);
      best = std::min(best, CandidateDistT(y1, y2, x1, xp));
      best = std::min(best, CandidateDistT(y1, y2, -x1, xp));
    }
  }

  // Branch 1 + a4*lambda = 0 (relevant when y2 == 0):
  //   x1 = y1 * rab^2 / (4 alpha^2),
  //   xp^2 = ((16 alpha^2 - 4 r^2) x1^2 - (4 r^2 alpha^2 - r^4)) / (4 r^2).
  {
    const T x1 = y1 * r2 / (T(4) * al2);
    const T xp_sq =
        ((T(16) * al2 - T(4) * r2) * x1 * x1 - (T(4) * r2 * al2 - r2 * r2)) /
        (T(4) * r2);
    if (xp_sq >= T(0)) {
      const T xp = std::sqrt(xp_sq);
      best = std::min(best, CandidateDistT(y1, y2, x1, xp));
      best = std::min(best, CandidateDistT(y1, y2, x1, -xp));
    }
  }
  return best;
}

// Quartic-based minimum distance from (y1, y2) to the boundary curve.
// Unlike the public HyperbolaMinDistQuartic, this returns +inf when
// rounding produced no usable candidate; the caller chooses the fallback
// (the double predicate re-runs the parametric scan, the certified engine
// escalates a tier).
template <typename T>
T HyperbolaMinDistKernelT(T alpha, T rab, T y1, T y2) {
  const T kInf = std::numeric_limits<T>::infinity();
  // Normalize to alpha == 1: the quartic coefficients below scale like the
  // 12th power of the scene scale, which destroys precision for large
  // coordinates; the minimum distance itself scales linearly.
  if (alpha != T(1)) {
    return alpha *
           HyperbolaMinDistKernelT(T(1), rab / alpha, y1 / alpha, y2 / alpha);
  }
  const T r2 = rab * rab;
  const T al2 = alpha * alpha;

  // Coefficients of the paper's Section 4.3.2.
  const T a1 = (T(16) * al2 - T(4) * r2) * y1 * y1;
  const T a2 = r2 * r2 - T(4) * r2 * al2;
  const T a3 = T(4) * r2 * y2 * y2;
  const T a4 = T(4) * r2;
  const T a5 = T(4) * r2 - T(16) * al2;

  // Quartic in the Lagrange multiplier lambda (Eq. (14)).
  const T A = a2 * a4 * a4 * a5 * a5;
  const T B = T(2) * a2 * a4 * a4 * a5 + T(2) * a2 * a4 * a5 * a5;
  const T C = a1 * a4 * a4 + a2 * a4 * a4 + T(4) * a2 * a4 * a5 +
              a2 * a5 * a5 - a3 * a5 * a5;
  const T D = T(2) * a1 * a4 + T(2) * a2 * a4 + T(2) * a2 * a5 -
              T(2) * a3 * a5;
  const T E = a1 + a2 - a3;

  // Clearing the denominators (1 + a4*lambda), (1 + a5*lambda) while
  // deriving Eq. (14) can introduce roots whose candidate point does NOT
  // satisfy F(x) = 0, and an off-curve candidate can report a distance
  // BELOW the true minimum — a soundness bug. Every candidate is therefore
  // SNAPPED onto the hyperbola before measuring: fixing one of its
  // coordinates, the other follows from the curve equation
  // x1^2/A^2 - xp^2/B^2 = 1 (semi-axes A = rab/2, B = sqrt(alpha^2-A^2)),
  // so each reported distance is realized by an actual curve point and can
  // never undercut the minimum. In exact arithmetic the candidate set
  // contains the global minimizer, so the minimum is not overshot either.
  const T semi_a = T(0.5) * rab;
  const T semi_b_sq = al2 - semi_a * semi_a;
  const T semi_b = std::sqrt(semi_b_sq);

  T best = kInf;
  auto consider = [&](T x1, T xp) {
    const T d = CandidateDistT(y1, y2, x1, xp);
    if (std::isfinite(d)) best = std::min(best, d);
  };
  // The two vertices are always curve points; they also cover candidates
  // whose snapped coordinates degenerate.
  consider(-semi_a, T(0));
  consider(semi_a, T(0));
  polynomial_internal::RootsT<T> lambdas;
  polynomial_internal::SolveQuarticIntoT(A, B, C, D, E, &lambdas);
  for (T lambda : lambdas) {
    const T den1 = T(1) + a5 * lambda;
    const T den2 = T(1) + a4 * lambda;
    if (std::abs(den1) < T(1e-300) || std::abs(den2) < T(1e-300)) continue;
    const T x1 = y1 / den1;             // Eq. (12)
    const T xp = std::abs(y2 / den2);   // Eq. (13), folded to xp >= 0
    const T sheet = x1 >= T(0) ? T(1) : T(-1);
    // Snap keeping xp: x1' = sheet * A * sqrt(1 + (xp/B)^2).
    consider(sheet * semi_a * std::sqrt(T(1) + xp * xp / semi_b_sq), xp);
    // Snap keeping x1: xp' = B * sqrt((x1/A)^2 - 1), when |x1| >= A.
    const T ratio_sq = (x1 / semi_a) * (x1 / semi_a);
    if (ratio_sq >= T(1)) {
      consider(x1, semi_b * std::sqrt(ratio_sq - T(1)));
    }
  }

  best = std::min(best, SingularBranchCandidatesT(alpha, rab, y1, y2));
  return best;
}

// Distance from (y1, y2) to one sheet of the hyperbola, parametrized as
// x1 = sign * a * cosh(t), xp = b * sinh(t) with t >= 0 covering the
// half-plane xp >= 0 (sufficient since y2 >= 0 and the curve is symmetric).
template <typename T>
T SheetMinDistT(T a, T b, T sign, T y1, T y2) {
  auto dist_at = [&](T t) {
    const T x1 = sign * a * std::cosh(t);
    const T xp = b * std::sinh(t);
    return CandidateDistT(y1, y2, x1, xp);
  };

  // The minimizer cannot be farther along the sheet than where the
  // off-axis coordinate alone already exceeds the distance to the vertex.
  const T vertex_dist = dist_at(T(0));
  T t_max = std::asinh((y2 + vertex_dist) / b) + T(1);
  t_max = std::min(t_max, T(700));  // cosh overflow guard

  constexpr int kSamples = 512;
  T best_t = T(0);
  T best_d = vertex_dist;
  for (int i = 1; i <= kSamples; ++i) {
    const T t = t_max * static_cast<T>(i) / T(kSamples);
    const T d = dist_at(t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }

  // Golden-section refinement on the bracket around the best sample.
  const T step = t_max / T(kSamples);
  T lo = std::max(T(0), best_t - step);
  T hi = std::min(t_max, best_t + step);
  constexpr double kGolden = 0.6180339887498949;
  T x1 = hi - T(kGolden) * (hi - lo);
  T x2 = lo + T(kGolden) * (hi - lo);
  T f1 = dist_at(x1);
  T f2 = dist_at(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - T(kGolden) * (hi - lo);
      f1 = dist_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + T(kGolden) * (hi - lo);
      f2 = dist_at(x2);
    }
  }
  return std::min({best_d, f1, f2});
}

// Sampled-and-refined minimum distance; robust to quartic conditioning at
// any precision because every probe is an exact curve point.
template <typename T>
T HyperbolaMinDistParametricT(T alpha, T rab, T y1, T y2) {
  const T a = T(0.5) * rab;           // semi-major axis
  const T b2 = alpha * alpha - a * a;  // semi-minor axis squared
  const T b = std::sqrt(b2);
  // Near sheet (around the focus at -alpha) and far sheet.
  const T near = SheetMinDistT(a, b, T(-1), y1, y2);
  const T far = SheetMinDistT(a, b, T(1), y1, y2);
  return std::min(near, far);
}

// Tier-1 predicate core shared by the serial and batched entry points
// (dominance/hyperbola.cc): decides Dom(Sa, Sb, Sq) for a pair already
// known NOT to overlap (Lemma 1 dispatched by the caller), with the
// query-to-focus distance da = Dist(cq, ca) supplied precomputed. da is
// the only O(d) quantity of the pipeline that does not involve cb, so
// the batched form computes it once per (Sa, Sq) pair and amortizes it
// across every candidate Sb; the focal frame's foci are ca and cb, so
// the frame itself is rebuilt per candidate. `min_dist(alpha, rab, y1,
// y2)` supplies the curve minimizer (quartic or parametric) — the
// operations here are otherwise the exact serial-pipeline sequence, so
// batched verdicts are bit-identical to one-at-a-time calls.
template <typename MinDistFn>
bool DominatesNonOverlappingT(SphereView sa, SphereView sb, SphereView sq,
                              double da, MinDistFn&& min_dist) {
  const double rab = sa.radius + sb.radius;
  const double db = DistSpan(sq.center, sb.center, sq.dim);

  // cq itself must satisfy the MDD margin strictly (cq inside Ra); this is
  // necessary because cq ∈ Sq, and it is the second conjunct of Step 2.
  if (!(db - da > rab)) return false;

  // A point query inside Ra is decided: Sq = {cq}.
  if (sq.radius == 0.0) return true;

  if (sa.dim == 1) {
    // On a line Sq is the segment [cq - rq, cq + rq] and
    // f(t) = |t - cb| - |t - ca| is piecewise linear with breakpoints at
    // the two foci, so its minimum over the segment sits at a segment
    // endpoint or at a focus inside the segment. (The 2-plane reduction
    // below would allow off-line displacements that do not exist in 1-d.)
    const double ca = sa.center[0];
    const double cb = sb.center[0];
    const double lo = sq.center[0] - sq.radius;
    const double hi = sq.center[0] + sq.radius;
    auto f = [&](double t) { return std::abs(t - cb) - std::abs(t - ca); };
    double fmin = std::min(f(lo), f(hi));
    if (ca > lo && ca < hi) fmin = std::min(fmin, f(ca));
    if (cb > lo && cb < hi) fmin = std::min(fmin, f(cb));
    return fmin > rab;
  }

  if (rab == 0.0) {
    // Two points: the hyperbola degenerates to the perpendicular-bisector
    // hyperplane of ca and cb. The signed axial coordinate of cq is
    // y1 = (da^2 - db^2) / (4 alpha); cq is on the ca side (y1 < 0, already
    // guaranteed) and Sq avoids the plane iff |y1| > rq.
    const double focal = DistSpan(sa.center, sb.center, sa.dim);
    const double y1 = (da * da - db * db) / (2.0 * focal);
    return -y1 > sq.radius;
  }

  // Step 1: minimum distance from cq to the boundary P, computed in the
  // focal 2-plane (Section 4.3). ComputeFocalCoords is the allocation-free
  // reduction of BuildFocalFrame (same operation order, no mid/axis Points).
  const FocalCoords<double> frame =
      ComputeFocalCoords<double>(sa.center, sb.center, sq.center, sa.dim);
  const double dmin = min_dist(frame.alpha, rab, frame.y1, frame.y2);

  // Step 2: Sq ⊆ Ra iff cq ∈ Ra (checked above) and dmin > rq.
  return dmin > sq.radius;
}

}  // namespace hyperbola_internal
}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_HYPERBOLA_KERNEL_H_
