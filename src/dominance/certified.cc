// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/certified.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "common/fault.h"
#include "dominance/hyperbola.h"
#include "dominance/hyperbola_kernel.h"
#include "dominance/numeric_oracle.h"
#include "geometry/focal_frame.h"
#include "geometry/polynomial.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {

namespace {

constexpr double kInfD = std::numeric_limits<double>::infinity();

// Error-band widths, in multiples of epsilon * scene scale. Each tier's
// decisive verdicts must survive comparison against the next tier's more
// precise evaluation, so every width is a generous multiple of the worst
// rounding-error accumulation of the arithmetic it covers (a handful of
// O(d) distance reductions, subtractions, and a sqrt each contribute a few
// epsilon * scale).
constexpr double kBandDistance = 64.0;    // plain distance/margin arithmetic
constexpr double kBandParametric = 512.0; // sampled + golden-section dmin
constexpr double kBandLongDouble = 64.0;  // tier-3 unified margin
constexpr double kBandOracle = 4096.0;    // dense-scan oracle margin

// Distance between two double-precision coordinate spans, accumulated in T.
template <typename T>
T DistT(const double* a, const double* b, size_t n) {
  T acc = T(0);
  for (size_t i = 0; i < n; ++i) {
    const T d = T(a[i]) - T(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

// Minimum snapped-candidate distance at a given quartic root lambda
// (the per-root body of the kernel loop); +inf when the denominators
// vanish or no snap produces a finite distance.
double MinCandidateAtLambda(double lambda, double y1, double y2, double a4,
                            double a5, double semi_a, double semi_b_sq,
                            double semi_b) {
  const double den1 = 1.0 + a5 * lambda;
  const double den2 = 1.0 + a4 * lambda;
  if (std::abs(den1) < 1e-300 || std::abs(den2) < 1e-300) return kInfD;
  const double x1 = y1 / den1;
  const double xp = std::abs(y2 / den2);
  const double sheet = x1 >= 0.0 ? 1.0 : -1.0;
  double best = kInfD;
  const double snapped_x1 =
      sheet * semi_a * std::sqrt(1.0 + xp * xp / semi_b_sq);
  const double d1 = hyperbola_internal::CandidateDistT(y1, y2, snapped_x1, xp);
  if (std::isfinite(d1)) best = std::min(best, d1);
  const double ratio_sq = (x1 / semi_a) * (x1 / semi_a);
  if (ratio_sq >= 1.0) {
    const double d2 = hyperbola_internal::CandidateDistT(
        y1, y2, x1, semi_b * std::sqrt(ratio_sq - 1.0));
    if (std::isfinite(d2)) best = std::min(best, d2);
  }
  return best;
}

// Outcome of evaluating every margin of the predicate at one tier.
struct TierOutcome {
  bool negative = false;         // some margin certified negative
  bool uncertain = false;        // some margin inside its error band
  bool dmin_uncertain = false;   // the boundary (dmin - rq) margin is unclear
  bool other_uncertain = false;  // an overlap / center-MDD margin is unclear
};

// What a tier reports when fault injection knocks out its arithmetic:
// "uncertain about dmin", the same shape as a genuinely unresolvable
// margin, so the engine escalates through its normal path and the worst
// end state is an honest kUncertain — never a wrong decisive verdict.
TierOutcome DegradedOutcome() {
  TierOutcome out;
  out.uncertain = true;
  out.dmin_uncertain = true;
  return out;
}

// Evaluates the overlap, center-MDD, and boundary margins in precision T.
// `dmin_fn(alpha, rab, y1, y2)` returns {dmin, extra_band}: the boundary
// margin's band is max(band_dmin_k * eps * scale, extra_band).
template <typename T, typename DminFn>
TierOutcome EvaluateMarginsT(SphereView sa, SphereView sb, SphereView sq,
                             T band_dist_k, T band_dmin_k, DminFn&& dmin_fn) {
  const T eps = std::numeric_limits<T>::epsilon();
  const double* ca = sa.center;
  const double* cb = sb.center;
  const double* cq = sq.center;
  const size_t dim = sa.dim;
  const T rab = T(sa.radius) + T(sb.radius);
  const T rq = T(sq.radius);
  const T focal = DistT<T>(ca, cb, dim);
  const T da = DistT<T>(cq, ca, dim);
  const T db = DistT<T>(cq, cb, dim);
  const T scale = focal + da + db + rab + rq;
  // The eps-relative model is blind to underflow: a squared coordinate
  // difference below the smallest normal T flushes its information away,
  // corrupting a distance by up to ~sqrt(dim * min). The additive floor
  // covers that regime; at ~1e-153 for double it is far below every band
  // at normal scales and only bites on denormal-scale scenes, which then
  // escalate to a wider type instead of resolving on garbage distances.
  const T band_floor =
      T(4) * std::sqrt(T(dim) * std::numeric_limits<T>::min());
  const T band_dist = band_dist_k * eps * scale + band_floor;

  TierOutcome out;
  auto add = [&](T m, T band, bool is_dmin) {
    if (m <= -band) {
      out.negative = true;
    } else if (m <= band) {
      out.uncertain = true;
      if (is_dmin) {
        out.dmin_uncertain = true;
      } else {
        out.other_uncertain = true;
      }
    }
  };

  const T m_overlap = focal - rab;
  add(m_overlap, band_dist, false);
  add((db - da) - rab, band_dist, false);
  if (out.negative) return out;

  // A point query: the margins above are the whole predicate.
  if (rq == T(0)) return out;

  if (dim == 1) {
    // 1-d: f(t) = |t - cb| - |t - ca| over the segment [cq - rq, cq + rq]
    // is piecewise linear; its minimum sits at a segment endpoint or at a
    // focus inside the segment.
    const T ca1 = T(ca[0]);
    const T cb1 = T(cb[0]);
    const T lo = T(cq[0]) - rq;
    const T hi = T(cq[0]) + rq;
    auto f = [&](T t) { return std::abs(t - cb1) - std::abs(t - ca1); };
    T fmin = std::min(f(lo), f(hi));
    if (ca1 > lo && ca1 < hi) fmin = std::min(fmin, f(ca1));
    if (cb1 > lo && cb1 < hi) fmin = std::min(fmin, f(cb1));
    add(fmin - rab, band_dist, true);
    return out;
  }

  if (rab == T(0)) {
    // Two points: the boundary degenerates to the perpendicular-bisector
    // hyperplane; the margin is -y1 - rq. The factored form avoids the
    // da^2 - db^2 cancellation, but the division by focal still amplifies
    // the distance errors, hence the inflated band.
    const T y1 = (da - db) * (da + db) / (T(2) * focal);
    const T inflate = (da + db) / focal + T(1);
    add(-y1 - rq, band_dist * inflate, true);
    return out;
  }

  // The hyperbola machinery needs rab < 2*alpha certified; if the overlap
  // margin is itself inside the band, leave the call uncertain and let a
  // higher tier sharpen that margin first.
  if (!(m_overlap > band_dist)) return out;

  const FocalCoords<T> fc = ComputeFocalCoords<T>(ca, cb, cq, dim);
  const std::pair<T, T> dm = dmin_fn(fc.alpha, rab, fc.y1, fc.y2);
  const T band_dmin =
      std::max(band_dmin_k * eps * scale, dm.second) + band_floor;
  if (!std::isfinite(dm.first) || !std::isfinite(band_dmin)) {
    out.uncertain = true;
    out.dmin_uncertain = true;
    return out;
  }
  add(dm.first - rq, band_dmin, true);
  return out;
}

}  // namespace

CertifiedMinDist HyperbolaMinDistCertified(double alpha, double rab,
                                           double y1, double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  // Normalize to alpha == 1, exactly as the uncertified kernel does; the
  // minimum distance and its error estimate both scale linearly.
  if (alpha != 1.0) {
    CertifiedMinDist r =
        HyperbolaMinDistCertified(1.0, rab / alpha, y1 / alpha, y2 / alpha);
    r.dmin *= alpha;
    r.bound *= alpha;
    return r;
  }
  const double r2 = rab * rab;
  const double al2 = 1.0;
  const double a1 = (16.0 * al2 - 4.0 * r2) * y1 * y1;
  const double a2 = r2 * r2 - 4.0 * r2 * al2;
  const double a3 = 4.0 * r2 * y2 * y2;
  const double a4 = 4.0 * r2;
  const double a5 = 4.0 * r2 - 16.0 * al2;
  const double A = a2 * a4 * a4 * a5 * a5;
  const double B = 2.0 * a2 * a4 * a4 * a5 + 2.0 * a2 * a4 * a5 * a5;
  const double C = a1 * a4 * a4 + a2 * a4 * a4 + 4.0 * a2 * a4 * a5 +
                   a2 * a5 * a5 - a3 * a5 * a5;
  const double D = 2.0 * a1 * a4 + 2.0 * a2 * a4 + 2.0 * a2 * a5 -
                   2.0 * a3 * a5;
  const double E = a1 + a2 - a3;

  const double semi_a = 0.5 * rab;
  const double semi_b_sq = al2 - semi_a * semi_a;
  const double semi_b = std::sqrt(semi_b_sq);

  // `best` is the reported minimum (an upper bound on the true dmin: every
  // candidate is an actual curve point). `dmin_floor` is the lowest value
  // the true minimum could plausibly take: exact candidates (vertices,
  // singular branches) contribute their distance as-is, quartic roots
  // contribute theirs minus the spread observed when the root moves by its
  // certified error. If any root's coverage cannot be established the
  // estimate collapses to +inf and the caller escalates.
  double best = kInfD;
  double dmin_floor = kInfD;
  bool coverage_lost = false;

  auto exact_candidate = [&](double d) {
    if (!std::isfinite(d)) return;
    best = std::min(best, d);
    dmin_floor = std::min(dmin_floor, d);
  };
  exact_candidate(hyperbola_internal::CandidateDistT(y1, y2, -semi_a, 0.0));
  exact_candidate(hyperbola_internal::CandidateDistT(y1, y2, semi_a, 0.0));
  exact_candidate(
      hyperbola_internal::SingularBranchCandidatesT(1.0, rab, y1, y2));

  if (y1 == 0.0 || y2 == 0.0) {
    // On the focal axis (y2 == 0) or the bisector plane (y1 == 0) the
    // closest-point problem degenerates and the Lagrange quartic carries
    // root clusters with unbounded certified error. But there the normal
    // equations reduce in closed form to exactly the vertex and
    // singular-branch candidates above (e.g. for y2 == 0 the unconstrained
    // critical point is x1 = y1 * A^2, branch 1 + a4*lambda = 0, and the
    // vertices cover the clamped case), so the exact set provably contains
    // the true minimizer: certify from it and skip the quartic.
    CertifiedMinDist axis;
    axis.dmin = best;
    axis.bound = std::isfinite(best)
                     ? 64.0 * std::numeric_limits<double>::epsilon() *
                           (1.0 + std::abs(y1) + y2 + best)
                     : kInfD;
    return axis;
  }

  CertifiedRootSet roots;
  SolveQuarticWithBoundsInto(A, B, C, D, E, &roots);
  // No real roots at all is indistinguishable from roots lost to rounding;
  // generic scenes have at least one.
  if (roots.empty()) coverage_lost = true;
  for (const CertifiedRoot& cr : roots) {
    const double dc = MinCandidateAtLambda(cr.root, y1, y2, a4, a5, semi_a,
                                           semi_b_sq, semi_b);
    if (std::isfinite(dc)) best = std::min(best, dc);
    if (!std::isfinite(cr.error_bound) || !std::isfinite(dc)) {
      coverage_lost = true;
      continue;
    }
    double spread = 0.0;
    bool spread_ok = true;
    for (double probe :
         {cr.root - cr.error_bound, cr.root + cr.error_bound}) {
      const double dp = MinCandidateAtLambda(probe, y1, y2, a4, a5, semi_a,
                                             semi_b_sq, semi_b);
      if (!std::isfinite(dp)) {
        spread_ok = false;
        break;
      }
      best = std::min(best, dp);
      spread = std::max(spread, std::abs(dp - dc));
    }
    if (!spread_ok) {
      coverage_lost = true;
      continue;
    }
    dmin_floor = std::min(dmin_floor, dc - spread);
  }

  CertifiedMinDist out;
  out.dmin = best;
  if (!std::isfinite(best) || coverage_lost) {
    out.bound = kInfD;
    return out;
  }
  // Base rounding noise of the candidate-distance arithmetic itself.
  const double noise = 64.0 * std::numeric_limits<double>::epsilon() *
                       (1.0 + std::abs(y1) + y2 + best);
  out.bound = std::max(0.0, best - dmin_floor) + noise;
  return out;
}

long double DominanceMarginLongDouble(SphereView sa, SphereView sb,
                                      SphereView sq) {
  using LD = long double;
  const double* ca = sa.center;
  const double* cb = sb.center;
  const double* cq = sq.center;
  const size_t dim = sa.dim;
  const LD rab = LD(sa.radius) + LD(sb.radius);
  const LD rq = LD(sq.radius);
  const LD focal = DistT<LD>(ca, cb, dim);
  const LD da = DistT<LD>(cq, ca, dim);
  const LD db = DistT<LD>(cq, cb, dim);

  LD margin = focal - rab;                          // overlap (Lemma 1)
  margin = std::min(margin, (db - da) - rab);       // cq ∈ Ra
  if (rq == LD(0)) return margin;

  if (dim == 1) {
    const LD ca1 = LD(ca[0]);
    const LD cb1 = LD(cb[0]);
    const LD lo = LD(cq[0]) - rq;
    const LD hi = LD(cq[0]) + rq;
    auto f = [&](LD t) { return std::abs(t - cb1) - std::abs(t - ca1); };
    LD fmin = std::min(f(lo), f(hi));
    if (ca1 > lo && ca1 < hi) fmin = std::min(fmin, f(ca1));
    if (cb1 > lo && cb1 < hi) fmin = std::min(fmin, f(cb1));
    return std::min(margin, fmin - rab);
  }

  if (rab == LD(0)) {
    const LD y1 = (da - db) * (da + db) / (LD(2) * focal);
    return std::min(margin, -y1 - rq);
  }

  // Margin already non-positive: the hyperbola (which needs rab < 2*alpha)
  // cannot improve the verdict, and the value is decided by the terms above.
  if (margin <= LD(0)) return margin;

  const FocalCoords<LD> fc = ComputeFocalCoords<LD>(ca, cb, cq, dim);
  const LD k = hyperbola_internal::HyperbolaMinDistKernelT<LD>(
      fc.alpha, rab, fc.y1, fc.y2);
  const LD p = hyperbola_internal::HyperbolaMinDistParametricT<LD>(
      fc.alpha, rab, fc.y1, fc.y2);
  return std::min(margin, std::min(k, p) - rq);
}

long double DominanceMarginLongDouble(const Hypersphere& sa,
                                      const Hypersphere& sb,
                                      const Hypersphere& sq) {
  return DominanceMarginLongDouble(sa.view(), sb.view(), sq.view());
}

Verdict CertifiedDominance::Decide(SphereView sa, SphereView sb,
                                   SphereView sq) const {
  return Decide(sa, sb, sq, nullptr);
}

Verdict CertifiedDominance::Decide(SphereView sa, SphereView sb, SphereView sq,
                                   CertifiedTier* tier) const {
  calls_.fetch_add(1, std::memory_order_relaxed);
  HYPERDOM_COUNTER_INC(obs::kCertifiedCalls);
  auto resolve = [&](std::atomic<uint64_t>& counter, CertifiedTier t,
                     Verdict v) {
    counter.fetch_add(1, std::memory_order_relaxed);
    switch (t) {
      case CertifiedTier::kQuartic:
        HYPERDOM_COUNTER_INC_L(obs::kCertifiedResolved, "tier", "quartic");
        break;
      case CertifiedTier::kParametric:
        HYPERDOM_COUNTER_INC_L(obs::kCertifiedResolved, "tier", "parametric");
        break;
      case CertifiedTier::kLongDouble:
        HYPERDOM_COUNTER_INC_L(obs::kCertifiedResolved, "tier", "long_double");
        break;
      case CertifiedTier::kOracle:
        HYPERDOM_COUNTER_INC_L(obs::kCertifiedResolved, "tier", "oracle");
        break;
      case CertifiedTier::kUnresolved:
        break;
    }
    if (tier != nullptr) *tier = t;
    return v;
  };
  auto settle = [&](const TierOutcome& o, std::atomic<uint64_t>& counter,
                    CertifiedTier t, Verdict* v) {
    if (o.negative) {
      *v = resolve(counter, t, Verdict::kNotDominates);
      return true;
    }
    if (!o.uncertain) {
      *v = resolve(counter, t, Verdict::kDominates);
      return true;
    }
    return false;
  };
  Verdict v = Verdict::kUncertain;

  // Tier 1: double quartic with certified root bounds.
  const TierOutcome t1 =
      HYPERDOM_FAULT_DEGRADE("certified/quartic")
          ? DegradedOutcome()
          : EvaluateMarginsT<double>(
                sa, sb, sq, kBandDistance, kBandDistance,
                [](double alpha, double rab, double y1, double y2) {
                  const CertifiedMinDist c =
                      HyperbolaMinDistCertified(alpha, rab, y1, y2);
                  return std::pair<double, double>(c.dmin, c.bound);
                });
  if (settle(t1, resolved_quartic_, CertifiedTier::kQuartic, &v)) return v;

  // Tier 1 could not settle the call: from here on we are off the fast
  // path (rare), so a span per escalated call is affordable and shows up
  // in traces with the tier that finally resolved it.
  HYPERDOM_SPAN(escalation_span, "certified/escalate");

  // Tier 2: parametric refinement. Only worth running when the boundary
  // margin is the sole source of doubt — it cannot sharpen the distance
  // margins, but its fixed band often beats a pessimistic quartic bound.
  if (t1.dmin_uncertain && !t1.other_uncertain) {
    const TierOutcome t2 =
        HYPERDOM_FAULT_DEGRADE("certified/parametric")
            ? DegradedOutcome()
            : EvaluateMarginsT<double>(
                  sa, sb, sq, kBandDistance, kBandParametric,
                  [](double alpha, double rab, double y1, double y2) {
                    return std::pair<double, double>(
                        HyperbolaMinDistParametric(alpha, rab, y1, y2), 0.0);
                  });
    if (settle(t2, resolved_parametric_, CertifiedTier::kParametric, &v)) {
      HYPERDOM_SPAN_ANNOTATE(escalation_span, "tier", "parametric");
      return v;
    }
  }

  // Tier 3: long double re-evaluation of every margin. The boundary
  // distance takes the min of the quartic kernel and the parametric scan —
  // both are upper bounds (every candidate is a curve point), and the
  // parametric one is conditioning-robust, so the min is accurate within
  // the parametric band regardless of quartic conditioning.
  const TierOutcome t3 =
      HYPERDOM_FAULT_DEGRADE("certified/long_double")
          ? DegradedOutcome()
          : EvaluateMarginsT<long double>(
                sa, sb, sq, static_cast<long double>(kBandLongDouble),
                static_cast<long double>(kBandLongDouble),
                [](long double alpha, long double rab, long double y1,
                   long double y2) {
                  const long double k =
                      hyperbola_internal::HyperbolaMinDistKernelT<long double>(
                          alpha, rab, y1, y2);
                  const long double p =
                      hyperbola_internal::HyperbolaMinDistParametricT<
                          long double>(alpha, rab, y1, y2);
                  return std::pair<long double, long double>(std::min(k, p),
                                                             0.0L);
                });
  if (settle(t3, resolved_long_double_, CertifiedTier::kLongDouble, &v)) {
    HYPERDOM_SPAN_ANNOTATE(escalation_span, "tier", "long_double");
    return v;
  }

  // Tier 4: the numeric oracle, as the last resort the escalation contract
  // promises. Its band is the widest (dense scan in double), so it only
  // decides calls where the structured tiers disagreed with themselves,
  // e.g. margins the tier-3 guard refused to evaluate. A degraded oracle
  // leaves the call honestly kUncertain.
  if (!HYPERDOM_FAULT_DEGRADE("certified/oracle")) {
    const double rab = sa.radius + sb.radius;
    const double focal = DistSpan(sa.center, sb.center, sa.dim);
    const double da = DistSpan(sq.center, sa.center, sq.dim);
    const double db = DistSpan(sq.center, sb.center, sq.dim);
    const double scale = focal + da + db + rab + sq.radius;
    const double band =
        kBandOracle * std::numeric_limits<double>::epsilon() * scale +
        4.0 * std::sqrt(static_cast<double>(sa.dim) *
                        std::numeric_limits<double>::min());
    const double mdd = MinDistanceDifference(sa, sb, sq);
    const double m = std::min(focal - rab, mdd - rab);
    if (m <= -band) {
      HYPERDOM_SPAN_ANNOTATE(escalation_span, "tier", "oracle");
      return resolve(resolved_oracle_, CertifiedTier::kOracle,
                     Verdict::kNotDominates);
    }
    if (m > band) {
      HYPERDOM_SPAN_ANNOTATE(escalation_span, "tier", "oracle");
      return resolve(resolved_oracle_, CertifiedTier::kOracle,
                     Verdict::kDominates);
    }
  }

  HYPERDOM_SPAN_ANNOTATE(escalation_span, "tier", "unresolved");
  uncertain_.fetch_add(1, std::memory_order_relaxed);
  HYPERDOM_COUNTER_INC(obs::kCertifiedUncertain);
  if (tier != nullptr) *tier = CertifiedTier::kUnresolved;
  return Verdict::kUncertain;
}

CertifiedStats CertifiedDominance::stats() const {
  CertifiedStats s;
  s.calls = calls_.load(std::memory_order_relaxed);
  s.resolved_quartic = resolved_quartic_.load(std::memory_order_relaxed);
  s.resolved_parametric = resolved_parametric_.load(std::memory_order_relaxed);
  s.resolved_long_double =
      resolved_long_double_.load(std::memory_order_relaxed);
  s.resolved_oracle = resolved_oracle_.load(std::memory_order_relaxed);
  s.uncertain = uncertain_.load(std::memory_order_relaxed);
  return s;
}

void CertifiedDominance::ResetStats() {
  calls_.store(0, std::memory_order_relaxed);
  resolved_quartic_.store(0, std::memory_order_relaxed);
  resolved_parametric_.store(0, std::memory_order_relaxed);
  resolved_long_double_.store(0, std::memory_order_relaxed);
  resolved_oracle_.store(0, std::memory_order_relaxed);
  uncertain_.store(0, std::memory_order_relaxed);
}

}  // namespace hyperdom
