// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/probability.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "geometry/sampling.h"

namespace hyperdom {

DominanceProbability EstimateDominanceProbability(const Hypersphere& sa,
                                                  const Hypersphere& sb,
                                                  const Hypersphere& sq,
                                                  uint64_t samples,
                                                  uint64_t seed) {
  assert(samples >= 1);
  Rng base(seed);
  Rng rng_a = base.Fork(1);
  Rng rng_b = base.Fork(2);
  Rng rng_q = base.Fork(3);

  uint64_t hits = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    const Point a = SampleInBall(&rng_a, sa);
    const Point b = SampleInBall(&rng_b, sb);
    const Point q = SampleInBall(&rng_q, sq);
    if (SquaredDist(a, q) < SquaredDist(b, q)) ++hits;
  }

  DominanceProbability out;
  out.samples = samples;
  out.probability =
      static_cast<double>(hits) / static_cast<double>(samples);
  out.standard_error =
      std::sqrt(out.probability * (1.0 - out.probability) /
                static_cast<double>(samples));
  return out;
}

}  // namespace hyperdom
