// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/numeric_oracle.h"

#include <algorithm>
#include <cmath>

#include "geometry/focal_frame.h"

namespace hyperdom {

namespace {

// f(t1, rho) = Dist(cb', .) - Dist(ca', .) in the focal 2-plane, with
// ca' = (-alpha, 0) and cb' = (+alpha, 0). Even in rho.
inline double DistDiff(double alpha, double t1, double rho) {
  const double to_b = std::sqrt((t1 - alpha) * (t1 - alpha) + rho * rho);
  const double to_a = std::sqrt((t1 + alpha) * (t1 + alpha) + rho * rho);
  return to_b - to_a;
}

}  // namespace

double MinDistanceDifference(SphereView sa, SphereView sb, SphereView sq) {
  const double focal = DistSpan(sa.center, sb.center, sa.dim);
  if (focal == 0.0) return 0.0;  // f is identically zero

  if (sq.radius == 0.0) {
    return DistSpan(sq.center, sb.center, sq.dim) -
           DistSpan(sq.center, sa.center, sq.dim);
  }

  if (sa.dim == 1) {
    // 1-d query region is a segment; f is piecewise linear with breakpoints
    // at the foci (the planar reduction below would allow displacements off
    // the line).
    const double ca = sa.center[0];
    const double cb = sb.center[0];
    const double lo = sq.center[0] - sq.radius;
    const double hi = sq.center[0] + sq.radius;
    auto f = [&](double t) { return std::abs(t - cb) - std::abs(t - ca); };
    double fmin = std::min(f(lo), f(hi));
    if (ca > lo && ca < hi) fmin = std::min(fmin, f(ca));
    if (cb > lo && cb < hi) fmin = std::min(fmin, f(cb));
    return fmin;
  }

  const FocalCoords<double> frame =
      ComputeFocalCoords<double>(sa.center, sb.center, sq.center, sa.dim);
  const double alpha = frame.alpha;
  const double y1 = frame.y1;
  const double y2 = frame.y2;
  const double rq = sq.radius;

  auto f_at_angle = [&](double theta) {
    return DistDiff(alpha, y1 + rq * std::cos(theta),
                    y2 + rq * std::sin(theta));
  };

  // Dense scan of the boundary circle.
  constexpr int kSamples = 2048;
  double best = f_at_angle(0.0);
  double best_theta = 0.0;
  for (int i = 1; i < kSamples; ++i) {
    const double theta = 2.0 * M_PI * i / kSamples;
    const double v = f_at_angle(theta);
    if (v < best) {
      best = v;
      best_theta = theta;
    }
  }

  // Golden-section refinement around the best sample.
  const double step = 2.0 * M_PI / kSamples;
  double lo = best_theta - step;
  double hi = best_theta + step;
  constexpr double kGolden = 0.6180339887498949;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double f1 = f_at_angle(x1);
  double f2 = f_at_angle(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGolden * (hi - lo);
      f1 = f_at_angle(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGolden * (hi - lo);
      f2 = f_at_angle(x2);
    }
  }
  best = std::min({best, f1, f2});

  // Interior critical values: f is constant -2*alpha on the axis ray beyond
  // cb and +2*alpha beyond ca; only the former can lower the minimum. The
  // disk (center (y1, y2), radius rq, rho signed) reaches that ray iff it
  // crosses rho = 0 at some t1 >= alpha.
  if (y2 <= rq) {
    const double reach = std::sqrt(rq * rq - y2 * y2);
    if (y1 + reach >= alpha) best = std::min(best, -2.0 * alpha);
  }
  // The disk center itself is a valid query point; including it guards the
  // (non-critical) interior against scan granularity in razor-thin cases.
  best = std::min(best, DistDiff(alpha, y1, y2));
  return best;
}

double MinDistanceDifference(const Hypersphere& sa, const Hypersphere& sb,
                             const Hypersphere& sq) {
  return MinDistanceDifference(sa.view(), sb.view(), sq.view());
}

bool NumericOracleCriterion::Dominates(SphereView sa, SphereView sb,
                                       SphereView sq) const {
  if (Overlaps(sa, sb)) return false;
  return MinDistanceDifference(sa, sb, sq) > sa.radius + sb.radius;
}

}  // namespace hyperdom
