// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/metric.h"

#include <cassert>
#include <cmath>

namespace hyperdom {

WeightedEuclideanDominance::WeightedEuclideanDominance(
    std::vector<double> weights)
    : weights_(std::move(weights)) {
  sqrt_weights_.reserve(weights_.size());
  for (double w : weights_) {
    assert(w > 0.0 && "metric weights must be positive");
    sqrt_weights_.push_back(std::sqrt(w));
  }
}

Hypersphere WeightedEuclideanDominance::TransformSphere(
    const Hypersphere& s) const {
  assert(s.dim() == weights_.size());
  Point c(s.dim());
  for (size_t i = 0; i < s.dim(); ++i) c[i] = sqrt_weights_[i] * s.center()[i];
  return Hypersphere(std::move(c), s.radius());
}

bool WeightedEuclideanDominance::Dominates(const Hypersphere& sa,
                                           const Hypersphere& sb,
                                           const Hypersphere& sq) const {
  return hyperbola_.Dominates(TransformSphere(sa), TransformSphere(sb),
                              TransformSphere(sq));
}

double WeightedEuclideanDominance::Distance(const Point& x,
                                            const Point& y) const {
  assert(x.size() == weights_.size() && y.size() == weights_.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff = x[i] - y[i];
    acc += weights_[i] * diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace hyperdom
