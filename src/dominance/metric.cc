// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/metric.h"

#include <cassert>
#include <cmath>

namespace hyperdom {

WeightedEuclideanDominance::WeightedEuclideanDominance(
    std::vector<double> weights)
    : weights_(std::move(weights)) {
  sqrt_weights_.reserve(weights_.size());
  for (double w : weights_) {
    assert(w > 0.0 && "metric weights must be positive");
    sqrt_weights_.push_back(std::sqrt(w));
  }
}

bool WeightedEuclideanDominance::Dominates(const Hypersphere& sa,
                                           const Hypersphere& sb,
                                           const Hypersphere& sq) const {
  assert(sa.dim() == weights_.size() && sb.dim() == weights_.size() &&
         sq.dim() == weights_.size());
  // The axis scaling is applied into thread-local scratch (criteria are
  // shared across batch-query workers) so the steady-state decide path does
  // not allocate.
  const size_t d = weights_.size();
  thread_local std::vector<double> scratch;
  scratch.resize(3 * d);
  double* ta = scratch.data();
  double* tb = ta + d;
  double* tq = tb + d;
  for (size_t i = 0; i < d; ++i) {
    ta[i] = sqrt_weights_[i] * sa.center()[i];
    tb[i] = sqrt_weights_[i] * sb.center()[i];
    tq[i] = sqrt_weights_[i] * sq.center()[i];
  }
  return hyperbola_.Dominates(SphereView{ta, d, sa.radius()},
                              SphereView{tb, d, sb.radius()},
                              SphereView{tq, d, sq.radius()});
}

double WeightedEuclideanDominance::Distance(const Point& x,
                                            const Point& y) const {
  assert(x.size() == weights_.size() && y.size() == weights_.size());
  double acc = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double diff = x[i] - y[i];
    acc += weights_[i] * diff * diff;
  }
  return std::sqrt(acc);
}

}  // namespace hyperdom
