// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/criterion.h"

#include <cassert>

#include "dominance/certified.h"
#include "dominance/gp.h"
#include "dominance/hyperbola.h"
#include "dominance/mbr_criterion.h"
#include "dominance/minmax.h"
#include "dominance/numeric_oracle.h"
#include "dominance/trigonometric.h"

namespace hyperdom {

std::unique_ptr<DominanceCriterion> MakeCriterion(CriterionKind kind) {
  switch (kind) {
    case CriterionKind::kMinMax:
      return std::make_unique<MinMaxCriterion>();
    case CriterionKind::kMbr:
      return std::make_unique<MbrCriterion>();
    case CriterionKind::kGp:
      return std::make_unique<GpCriterion>();
    case CriterionKind::kTrigonometric:
      return std::make_unique<TrigonometricCriterion>();
    case CriterionKind::kHyperbola:
      return std::make_unique<HyperbolaCriterion>();
    case CriterionKind::kNumericOracle:
      return std::make_unique<NumericOracleCriterion>();
    case CriterionKind::kCertified:
      return std::make_unique<CertifiedCriterion>();
  }
  assert(false && "unknown criterion kind");
  return std::make_unique<HyperbolaCriterion>();
}

std::string_view VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kDominates:
      return "Dominates";
    case Verdict::kNotDominates:
      return "NotDominates";
    case Verdict::kUncertain:
      return "Uncertain";
  }
  return "Unknown";
}

std::string_view CriterionKindName(CriterionKind kind) {
  switch (kind) {
    case CriterionKind::kMinMax:
      return "MinMax";
    case CriterionKind::kMbr:
      return "MBR";
    case CriterionKind::kGp:
      return "GP";
    case CriterionKind::kTrigonometric:
      return "Trigonometric";
    case CriterionKind::kHyperbola:
      return "Hyperbola";
    case CriterionKind::kNumericOracle:
      return "NumericOracle";
    case CriterionKind::kCertified:
      return "Certified";
  }
  return "Unknown";
}

const std::vector<CriterionKind>& PaperCriteria() {
  static const std::vector<CriterionKind> kAll = {
      CriterionKind::kMinMax, CriterionKind::kMbr, CriterionKind::kGp,
      CriterionKind::kTrigonometric, CriterionKind::kHyperbola};
  return kAll;
}

}  // namespace hyperdom
