// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/hyperbola.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "geometry/focal_frame.h"
#include "geometry/polynomial.h"

namespace hyperdom {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Distance from (y1, y2) to the candidate curve point (x1, xp).
inline double CandidateDist(double y1, double y2, double x1, double xp) {
  const double d1 = y1 - x1;
  const double d2 = y2 - xp;
  return std::sqrt(d1 * d1 + d2 * d2);
}

// Adds the candidates of the lambda-singular branches of the Lagrange
// system. The quartic derivation divides by (1 + a5*lambda) and
// (1 + a4*lambda); when cq sits on the focal axis (y2 == 0) or on the
// perpendicular bisector plane (y1 == 0) the corresponding factor may be
// zero and the nearest point is missed by the quartic roots. The singular
// candidates are genuine points of F(x) = 0, so including them
// unconditionally can only tighten the minimum, never break it.
double SingularBranchCandidates(double alpha, double rab, double y1,
                                double y2) {
  const double r2 = rab * rab;
  const double al2 = alpha * alpha;
  double best = kInf;

  // Branch 1 + a5*lambda = 0 (relevant when y1 == 0):
  //   xp = y2 * (4 alpha^2 - rab^2) / (4 alpha^2),
  //   x1^2 = (4 r^2 alpha^2 + 4 r^2 xp^2 - r^4) / (16 alpha^2 - 4 r^2).
  {
    const double xp = y2 * (4.0 * al2 - r2) / (4.0 * al2);
    const double num = 4.0 * r2 * al2 + 4.0 * r2 * xp * xp - r2 * r2;
    const double den = 16.0 * al2 - 4.0 * r2;
    const double x1_sq = num / den;
    if (x1_sq >= 0.0) {
      const double x1 = std::sqrt(x1_sq);
      best = std::min(best, CandidateDist(y1, y2, x1, xp));
      best = std::min(best, CandidateDist(y1, y2, -x1, xp));
    }
  }

  // Branch 1 + a4*lambda = 0 (relevant when y2 == 0):
  //   x1 = y1 * rab^2 / (4 alpha^2),
  //   xp^2 = ((16 alpha^2 - 4 r^2) x1^2 - (4 r^2 alpha^2 - r^4)) / (4 r^2).
  {
    const double x1 = y1 * r2 / (4.0 * al2);
    const double xp_sq =
        ((16.0 * al2 - 4.0 * r2) * x1 * x1 - (4.0 * r2 * al2 - r2 * r2)) /
        (4.0 * r2);
    if (xp_sq >= 0.0) {
      const double xp = std::sqrt(xp_sq);
      best = std::min(best, CandidateDist(y1, y2, x1, xp));
      best = std::min(best, CandidateDist(y1, y2, x1, -xp));
    }
  }
  return best;
}

}  // namespace

double HyperbolaMinDistQuartic(double alpha, double rab, double y1,
                               double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  // Normalize to alpha == 1: the quartic coefficients below scale like the
  // 12th power of the scene scale, which destroys double precision for
  // large coordinates; the minimum distance itself scales linearly.
  if (alpha != 1.0) {
    return alpha *
           HyperbolaMinDistQuartic(1.0, rab / alpha, y1 / alpha, y2 / alpha);
  }
  const double r2 = rab * rab;
  const double al2 = alpha * alpha;

  // Coefficients of the paper's Section 4.3.2.
  const double a1 = (16.0 * al2 - 4.0 * r2) * y1 * y1;
  const double a2 = r2 * r2 - 4.0 * r2 * al2;
  const double a3 = 4.0 * r2 * y2 * y2;
  const double a4 = 4.0 * r2;
  const double a5 = 4.0 * r2 - 16.0 * al2;

  // Quartic in the Lagrange multiplier lambda (Eq. (14)).
  const double A = a2 * a4 * a4 * a5 * a5;
  const double B = 2.0 * a2 * a4 * a4 * a5 + 2.0 * a2 * a4 * a5 * a5;
  const double C = a1 * a4 * a4 + a2 * a4 * a4 + 4.0 * a2 * a4 * a5 +
                   a2 * a5 * a5 - a3 * a5 * a5;
  const double D = 2.0 * a1 * a4 + 2.0 * a2 * a4 + 2.0 * a2 * a5 -
                   2.0 * a3 * a5;
  const double E = a1 + a2 - a3;

  // Clearing the denominators (1 + a4*lambda), (1 + a5*lambda) while
  // deriving Eq. (14) can introduce roots whose candidate point does NOT
  // satisfy F(x) = 0 (e.g. whenever cq lies on or near the focal axis or
  // the bisector plane, where the true critical points live on the
  // singular branches below), and an off-curve candidate can report a
  // distance BELOW the true minimum — a soundness bug. Every candidate is
  // therefore SNAPPED onto the hyperbola before measuring: fixing one of
  // its coordinates, the other follows from the curve equation
  // x1^2/A^2 - xp^2/B^2 = 1 (semi-axes A = rab/2, B = sqrt(alpha^2-A^2)),
  // so each reported distance is realized by an actual curve point and can
  // never undercut the minimum. In exact arithmetic the candidate set
  // contains the global minimizer, so the minimum is not overshot either.
  const double semi_a = 0.5 * rab;
  const double semi_b_sq = al2 - semi_a * semi_a;
  const double semi_b = std::sqrt(semi_b_sq);

  double best = kInf;
  auto consider = [&](double x1, double xp) {
    const double d = CandidateDist(y1, y2, x1, xp);
    if (std::isfinite(d)) best = std::min(best, d);
  };
  // The two vertices are always curve points; they also cover candidates
  // whose snapped coordinates degenerate.
  consider(-semi_a, 0.0);
  consider(semi_a, 0.0);
  for (double lambda : SolveQuartic(A, B, C, D, E)) {
    const double den1 = 1.0 + a5 * lambda;
    const double den2 = 1.0 + a4 * lambda;
    if (std::abs(den1) < 1e-300 || std::abs(den2) < 1e-300) continue;
    const double x1 = y1 / den1;        // Eq. (12)
    const double xp = std::abs(y2 / den2);  // Eq. (13), folded to xp >= 0
    const double sheet = x1 >= 0.0 ? 1.0 : -1.0;
    // Snap keeping xp: x1' = sheet * A * sqrt(1 + (xp/B)^2).
    consider(sheet * semi_a * std::sqrt(1.0 + xp * xp / semi_b_sq), xp);
    // Snap keeping x1: xp' = B * sqrt((x1/A)^2 - 1), when |x1| >= A.
    const double ratio_sq = (x1 / semi_a) * (x1 / semi_a);
    if (ratio_sq >= 1.0) {
      consider(x1, semi_b * std::sqrt(ratio_sq - 1.0));
    }
  }

  best = std::min(best, SingularBranchCandidates(alpha, rab, y1, y2));

  if (!std::isfinite(best)) {
    // Defensive: rounding produced no usable candidate (never observed in
    // the test sweeps). Fall back to the parametric reference rather than
    // risk a wrong answer.
    best = HyperbolaMinDistParametric(alpha, rab, y1, y2);
  }
  return best;
}

namespace {

// Distance from (y1, y2) to one sheet of the hyperbola, parametrized as
// x1 = sign * a * cosh(t), xp = b * sinh(t) with t >= 0 covering the
// half-plane xp >= 0 (sufficient since y2 >= 0 and the curve is symmetric).
double SheetMinDist(double a, double b, double sign, double y1, double y2) {
  auto dist_at = [&](double t) {
    const double x1 = sign * a * std::cosh(t);
    const double xp = b * std::sinh(t);
    return CandidateDist(y1, y2, x1, xp);
  };

  // The minimizer cannot be farther along the sheet than where the
  // off-axis coordinate alone already exceeds the distance to the vertex.
  const double vertex_dist = dist_at(0.0);
  double t_max = std::asinh((y2 + vertex_dist) / b) + 1.0;
  t_max = std::min(t_max, 700.0);  // cosh overflow guard

  constexpr int kSamples = 512;
  double best_t = 0.0;
  double best_d = vertex_dist;
  for (int i = 1; i <= kSamples; ++i) {
    const double t = t_max * static_cast<double>(i) / kSamples;
    const double d = dist_at(t);
    if (d < best_d) {
      best_d = d;
      best_t = t;
    }
  }

  // Golden-section refinement on the bracket around the best sample.
  const double step = t_max / kSamples;
  double lo = std::max(0.0, best_t - step);
  double hi = std::min(t_max, best_t + step);
  constexpr double kGolden = 0.6180339887498949;
  double x1 = hi - kGolden * (hi - lo);
  double x2 = lo + kGolden * (hi - lo);
  double f1 = dist_at(x1);
  double f2 = dist_at(x2);
  for (int iter = 0; iter < 80; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - kGolden * (hi - lo);
      f1 = dist_at(x1);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + kGolden * (hi - lo);
      f2 = dist_at(x2);
    }
  }
  return std::min({best_d, f1, f2});
}

}  // namespace

double HyperbolaMinDistParametric(double alpha, double rab, double y1,
                                  double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  const double a = 0.5 * rab;               // semi-major axis
  const double b2 = alpha * alpha - a * a;  // semi-minor axis squared
  const double b = std::sqrt(b2);
  // Near sheet (around the focus at -alpha) and far sheet.
  const double near = SheetMinDist(a, b, -1.0, y1, y2);
  const double far = SheetMinDist(a, b, +1.0, y1, y2);
  return std::min(near, far);
}

bool HyperbolaCriterion::Dominates(const Hypersphere& sa,
                                   const Hypersphere& sb,
                                   const Hypersphere& sq) const {
  // Step 0 (Lemma 1): overlapping spheres never dominate. This also covers
  // coincident centers, so below Dist(ca, cb) > 0.
  if (Overlaps(sa, sb)) return false;

  const double rab = sa.radius() + sb.radius();
  const double da = Dist(sq.center(), sa.center());
  const double db = Dist(sq.center(), sb.center());

  // cq itself must satisfy the MDD margin strictly (cq inside Ra); this is
  // necessary because cq ∈ Sq, and it is the second conjunct of Step 2.
  if (!(db - da > rab)) return false;

  // A point query inside Ra is decided: Sq = {cq}.
  if (sq.radius() == 0.0) return true;

  if (sa.dim() == 1) {
    // On a line Sq is the segment [cq - rq, cq + rq] and
    // f(t) = |t - cb| - |t - ca| is piecewise linear with breakpoints at
    // the two foci, so its minimum over the segment sits at a segment
    // endpoint or at a focus inside the segment. (The 2-plane reduction
    // below would allow off-line displacements that do not exist in 1-d.)
    const double ca = sa.center()[0];
    const double cb = sb.center()[0];
    const double lo = sq.center()[0] - sq.radius();
    const double hi = sq.center()[0] + sq.radius();
    auto f = [&](double t) { return std::abs(t - cb) - std::abs(t - ca); };
    double fmin = std::min(f(lo), f(hi));
    if (ca > lo && ca < hi) fmin = std::min(fmin, f(ca));
    if (cb > lo && cb < hi) fmin = std::min(fmin, f(cb));
    return fmin > rab;
  }

  if (rab == 0.0) {
    // Two points: the hyperbola degenerates to the perpendicular-bisector
    // hyperplane of ca and cb. The signed axial coordinate of cq is
    // y1 = (da^2 - db^2) / (4 alpha); cq is on the ca side (y1 < 0, already
    // guaranteed) and Sq avoids the plane iff |y1| > rq.
    const double focal = Dist(sa.center(), sb.center());
    const double y1 = (da * da - db * db) / (2.0 * focal);
    return -y1 > sq.radius();
  }

  // Step 1: minimum distance from cq to the boundary P, computed in the
  // focal 2-plane (Section 4.3).
  const FocalFrame frame =
      BuildFocalFrame(sa.center(), sb.center(), sq.center());
  const double dmin =
      method_ == HyperbolaInnerMethod::kQuartic
          ? HyperbolaMinDistQuartic(frame.alpha, rab, frame.y1, frame.y2)
          : HyperbolaMinDistParametric(frame.alpha, rab, frame.y1, frame.y2);

  // Step 2: Sq ⊆ Ra iff cq ∈ Ra (checked above) and dmin > rq.
  return dmin > sq.radius();
}

}  // namespace hyperdom
