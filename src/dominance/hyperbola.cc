// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/hyperbola.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dominance/hyperbola_kernel.h"
#include "geometry/focal_frame.h"

namespace hyperdom {

double HyperbolaMinDistQuartic(double alpha, double rab, double y1,
                               double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  double best =
      hyperbola_internal::HyperbolaMinDistKernelT<double>(alpha, rab, y1, y2);
  if (!std::isfinite(best)) {
    // Defensive: rounding produced no usable candidate (never observed in
    // the test sweeps). Fall back to the parametric reference rather than
    // risk a wrong answer.
    best = HyperbolaMinDistParametric(alpha, rab, y1, y2);
  }
  return best;
}

double HyperbolaMinDistParametric(double alpha, double rab, double y1,
                                  double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  return hyperbola_internal::HyperbolaMinDistParametricT<double>(alpha, rab,
                                                                 y1, y2);
}

bool HyperbolaCriterion::DominatesNonOverlapping(SphereView sa, SphereView sb,
                                                 SphereView sq,
                                                 double da) const {
  // The full Algorithm 1 pipeline after the overlap gate lives in
  // hyperbola_internal so the serial and batched entry points share one
  // spelling (bit-identity by construction); only the curve minimizer is
  // bound here.
  return hyperbola_internal::DominatesNonOverlappingT(
      sa, sb, sq, da, [this](double alpha, double rab, double y1, double y2) {
        return method_ == HyperbolaInnerMethod::kQuartic
                   ? HyperbolaMinDistQuartic(alpha, rab, y1, y2)
                   : HyperbolaMinDistParametric(alpha, rab, y1, y2);
      });
}

bool HyperbolaCriterion::Dominates(SphereView sa, SphereView sb,
                                   SphereView sq) const {
  // Step 0 (Lemma 1): overlapping spheres never dominate. This also covers
  // coincident centers, so below Dist(ca, cb) > 0.
  if (Overlaps(sa, sb)) return false;
  const double da = DistSpan(sq.center, sa.center, sq.dim);
  return DominatesNonOverlapping(sa, sb, sq, da);
}

void HyperbolaCriterion::DecideVerdictBatch(SphereView sa,
                                            const SphereView* sbs,
                                            size_t count, SphereView sq,
                                            Verdict* out) const {
  if (count == 0) return;
  // Dist(cq, ca) does not involve the candidate, so one O(d) distance
  // serves the whole block. It is hoisted even when some candidates fall
  // to the overlap gate: da is needed by every surviving candidate and
  // the serial path computes the identical value, so verdicts cannot
  // drift.
  const double da = DistSpan(sq.center, sa.center, sq.dim);
  for (size_t i = 0; i < count; ++i) {
    const bool dom =
        !Overlaps(sa, sbs[i]) && DominatesNonOverlapping(sa, sbs[i], sq, da);
    out[i] = dom ? Verdict::kDominates : Verdict::kNotDominates;
  }
}

}  // namespace hyperdom
