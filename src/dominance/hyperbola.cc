// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/hyperbola.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "dominance/hyperbola_kernel.h"
#include "geometry/focal_frame.h"

namespace hyperdom {

double HyperbolaMinDistQuartic(double alpha, double rab, double y1,
                               double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  double best =
      hyperbola_internal::HyperbolaMinDistKernelT<double>(alpha, rab, y1, y2);
  if (!std::isfinite(best)) {
    // Defensive: rounding produced no usable candidate (never observed in
    // the test sweeps). Fall back to the parametric reference rather than
    // risk a wrong answer.
    best = HyperbolaMinDistParametric(alpha, rab, y1, y2);
  }
  return best;
}

double HyperbolaMinDistParametric(double alpha, double rab, double y1,
                                  double y2) {
  assert(alpha > 0.0 && rab > 0.0 && rab < 2.0 * alpha && y2 >= 0.0);
  return hyperbola_internal::HyperbolaMinDistParametricT<double>(alpha, rab,
                                                                 y1, y2);
}

bool HyperbolaCriterion::Dominates(SphereView sa, SphereView sb,
                                   SphereView sq) const {
  // Step 0 (Lemma 1): overlapping spheres never dominate. This also covers
  // coincident centers, so below Dist(ca, cb) > 0.
  if (Overlaps(sa, sb)) return false;

  const double rab = sa.radius + sb.radius;
  const double da = DistSpan(sq.center, sa.center, sq.dim);
  const double db = DistSpan(sq.center, sb.center, sq.dim);

  // cq itself must satisfy the MDD margin strictly (cq inside Ra); this is
  // necessary because cq ∈ Sq, and it is the second conjunct of Step 2.
  if (!(db - da > rab)) return false;

  // A point query inside Ra is decided: Sq = {cq}.
  if (sq.radius == 0.0) return true;

  if (sa.dim == 1) {
    // On a line Sq is the segment [cq - rq, cq + rq] and
    // f(t) = |t - cb| - |t - ca| is piecewise linear with breakpoints at
    // the two foci, so its minimum over the segment sits at a segment
    // endpoint or at a focus inside the segment. (The 2-plane reduction
    // below would allow off-line displacements that do not exist in 1-d.)
    const double ca = sa.center[0];
    const double cb = sb.center[0];
    const double lo = sq.center[0] - sq.radius;
    const double hi = sq.center[0] + sq.radius;
    auto f = [&](double t) { return std::abs(t - cb) - std::abs(t - ca); };
    double fmin = std::min(f(lo), f(hi));
    if (ca > lo && ca < hi) fmin = std::min(fmin, f(ca));
    if (cb > lo && cb < hi) fmin = std::min(fmin, f(cb));
    return fmin > rab;
  }

  if (rab == 0.0) {
    // Two points: the hyperbola degenerates to the perpendicular-bisector
    // hyperplane of ca and cb. The signed axial coordinate of cq is
    // y1 = (da^2 - db^2) / (4 alpha); cq is on the ca side (y1 < 0, already
    // guaranteed) and Sq avoids the plane iff |y1| > rq.
    const double focal = DistSpan(sa.center, sb.center, sa.dim);
    const double y1 = (da * da - db * db) / (2.0 * focal);
    return -y1 > sq.radius;
  }

  // Step 1: minimum distance from cq to the boundary P, computed in the
  // focal 2-plane (Section 4.3). ComputeFocalCoords is the allocation-free
  // reduction of BuildFocalFrame (same operation order, no mid/axis Points).
  const FocalCoords<double> frame =
      ComputeFocalCoords<double>(sa.center, sb.center, sq.center, sa.dim);
  const double dmin =
      method_ == HyperbolaInnerMethod::kQuartic
          ? HyperbolaMinDistQuartic(frame.alpha, rab, frame.y1, frame.y2)
          : HyperbolaMinDistParametric(frame.alpha, rab, frame.y1, frame.y2);

  // Step 2: Sq ⊆ Ra iff cq ∈ Ra (checked above) and dmin > rq.
  return dmin > sq.radius;
}

}  // namespace hyperdom
