// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The adapted Trigonometric decision criterion (paper appendix; Emrich et
// al. [12]).
//
// Instead of minimizing the true objective
//   f(q) = Dist(cb, q) - Dist(ca, q) - (ra + rb)
// over Sq (hard to differentiate), the method minimizes the tractable
// surrogate of the paper's appendix
//   g(q) = Dist(cb, q)^2 - Dist(ca, q)^2 - (ra + rb),
// which is affine in q, so its extrema over the ball Sq sit at the two
// axis-aligned extreme points cq ± rq * unit(ca - cb); the criterion accepts
// iff g is strictly positive at both. Optimizing g is not equivalent to
// optimizing f, so the criterion is NOT correct (paper Lemma 11 — its
// counterexample is pinned in the tests) but it IS sound whenever the scene
// scale keeps Dist(ca,q) + Dist(cb,q) >= 1 (paper Lemma 12; always true for
// the paper's workloads). Following the original, the extreme-point
// direction is evaluated through explicit direction-angle trigonometry
// (acos/cos per dimension) — identity-preserving but costly, which is why
// this criterion is the slowest in Section 7's measurements.

#ifndef HYPERDOM_DOMINANCE_TRIGONOMETRIC_H_
#define HYPERDOM_DOMINANCE_TRIGONOMETRIC_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief Trigonometric criterion: sign test of the affine surrogate g at
/// the two extreme query points.
class TrigonometricCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  std::string_view name() const override { return "Trigonometric"; }
  bool is_correct() const override { return false; }
  bool is_sound() const override { return true; }
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_TRIGONOMETRIC_H_
