// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Extension (paper Section 8, future work): dominance when the radii of the
// hyperspheres change over time.
//
// Model: centers are fixed, each radius grows linearly,
// r_x(t) = r_x(0) + v_x * t with growth rate v_x >= 0 — the standard
// uncertainty model for objects whose position error grows since the last
// measurement. Because the query ball only grows and the dominance margin
// ra + rb only grows, the set of times at which Sa dominates Sb w.r.t. Sq is
// a (possibly empty) prefix [0, T*) of the timeline; DominanceExpiry finds
// T* by bisecting the monotone predicate.

#ifndef HYPERDOM_DOMINANCE_GROWING_H_
#define HYPERDOM_DOMINANCE_GROWING_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief A hypersphere whose radius grows linearly in time.
struct GrowingSphere {
  Hypersphere at_t0;       ///< the sphere at time 0
  double growth_rate = 0;  ///< radius units per time unit, >= 0

  /// The sphere at time `t` >= 0.
  Hypersphere AtTime(double t) const {
    return Hypersphere(at_t0.center(), at_t0.radius() + growth_rate * t);
  }
};

/// Decides dominance at a single time instant using Hyperbola.
bool DominatesAtTime(const GrowingSphere& sa, const GrowingSphere& sb,
                     const GrowingSphere& sq, double t);

/// \brief The supremum T* of times t in [0, horizon] at which sa dominates
/// sb w.r.t. sq, assuming all growth rates are >= 0 (asserted).
///
/// Returns 0 when dominance already fails at t = 0, `horizon` when it holds
/// through the whole horizon, and the boundary time otherwise (bisection to
/// ~1e-9 * horizon resolution). The result is a conservative lower bound on
/// the true expiry within the bisection tolerance.
double DominanceExpiry(const GrowingSphere& sa, const GrowingSphere& sb,
                       const GrowingSphere& sq, double horizon);

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_GROWING_H_
