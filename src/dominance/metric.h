// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Extension (paper Section 8, future work): dominance under distance
// metrics other than plain Euclidean.
//
// For a weighted Euclidean metric dist_w(x, y) = sqrt(sum_i w_i (x_i-y_i)^2)
// with positive weights, the axis scaling T(x)_i = sqrt(w_i) * x_i is an
// isometry onto plain Euclidean space that maps metric balls of radius r to
// Euclidean balls of the same radius. Dominance under dist_w therefore
// reduces exactly to Euclidean dominance of the transformed spheres, decided
// by Hyperbola in O(d).

#ifndef HYPERDOM_DOMINANCE_METRIC_H_
#define HYPERDOM_DOMINANCE_METRIC_H_

#include <vector>

#include "dominance/criterion.h"
#include "dominance/hyperbola.h"

namespace hyperdom {

/// \brief Dominance under a weighted Euclidean metric.
class WeightedEuclideanDominance {
 public:
  /// `weights` must be positive, one per dimension (asserted).
  explicit WeightedEuclideanDominance(std::vector<double> weights);

  /// Decides Dom(sa, sb, sq) where every ball is a dist_w ball.
  bool Dominates(const Hypersphere& sa, const Hypersphere& sb,
                 const Hypersphere& sq) const;

  /// dist_w between two points (exposed for tests).
  double Distance(const Point& x, const Point& y) const;

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
  std::vector<double> sqrt_weights_;
  HyperbolaCriterion hyperbola_;
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_METRIC_H_
