// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/trigonometric.h"

#include <algorithm>
#include <cmath>

namespace hyperdom {

bool TrigonometricCriterion::Dominates(SphereView sa, SphereView sb,
                                       SphereView sq) const {
  const double* ca = sa.center;
  const double* cb = sb.center;
  const double* cq = sq.center;
  const double rab = sa.radius + sb.radius;

  const double focal = DistSpan(ca, cb, sa.dim);
  if (focal == 0.0) {
    // g(q) = -rab <= 0 everywhere: reject (sound — coincident centers can
    // never dominate).
    return false;
  }

  // Extreme points of the affine surrogate g over Sq: cq ± rq * u with
  // u = (ca - cb) / ||ca - cb||. Per the original method the direction is
  // reconstructed through its direction angles, cos(acos(.)) per dimension.
  const size_t d = sa.dim;
  double g_plus = -rab;
  double g_minus = -rab;
  for (size_t i = 0; i < d; ++i) {
    const double cosang = std::clamp((ca[i] - cb[i]) / focal, -1.0, 1.0);
    const double ui = std::cos(std::acos(cosang));
    const double qp = cq[i] + sq.radius * ui;
    const double qm = cq[i] - sq.radius * ui;
    const double dbp = cb[i] - qp;
    const double dap = ca[i] - qp;
    const double dbm = cb[i] - qm;
    const double dam = ca[i] - qm;
    g_plus += dbp * dbp - dap * dap;
    g_minus += dbm * dbm - dam * dam;
  }
  // Accept only when the surrogate is strictly positive at both extremes
  // (mixed signs or a zero mean the surrogate's optimum is not positive).
  return g_plus > 0.0 && g_minus > 0.0;
}

}  // namespace hyperdom
