// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// An independent, quartic-free evaluation of the MDD condition (paper
// Eq. (7)) used as ground truth in tests and as the value engine for the
// time-varying-radius extension.
//
// The objective f(q) = Dist(cb, q) - Dist(ca, q) is rotationally symmetric
// about the focal axis, so its minimum over the ball Sq is attained in the
// 2-plane spanned by the axis and cq. In that plane f has no interior
// critical points except on the axis rays beyond the foci (where it is
// constant ±2*alpha), so the minimum over the disk is the minimum over the
// boundary circle, possibly improved to -2*alpha when the disk reaches the
// ray beyond cb. The circle is scanned densely and refined by golden
// section. Exact up to tolerance; deliberately not O(d)-cheap.

#ifndef HYPERDOM_DOMINANCE_NUMERIC_ORACLE_H_
#define HYPERDOM_DOMINANCE_NUMERIC_ORACLE_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief min_{q in Sq} ( Dist(cb, q) - Dist(ca, q) ).
///
/// The MDD condition (and hence dominance of non-overlapping spheres) holds
/// iff this value strictly exceeds ra + rb. Returns 0 when ca == cb.
/// The view overload is the allocation-free core; the Hypersphere overload
/// delegates to it.
double MinDistanceDifference(SphereView sa, SphereView sb, SphereView sq);
double MinDistanceDifference(const Hypersphere& sa, const Hypersphere& sb,
                             const Hypersphere& sq);

/// \brief Reference criterion: overlap check + numeric MDD minimization.
class NumericOracleCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  std::string_view name() const override { return "NumericOracle"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return true; }
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_NUMERIC_ORACLE_H_
