// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// A DominanceCriterion decorator that records per-call decide latency and
// verdict outcomes into the metrics registry. Instrumentation lives in a
// wrapper — not inside the criterion kernels — so that raw criteria stay
// benchmarkable at their true cost (bench/micro_criteria.cc measures
// Dominates() at ~15 ns; even one atomic increment would distort that) and
// callers opt in where per-criterion observability is worth ~20 ns/call.
//
// Metrics (labelled with the wrapped criterion's name):
//   hyperdom_criterion_verdicts_total{criterion=,verdict=}
//   hyperdom_criterion_decide_duration_ns{criterion=}

#ifndef HYPERDOM_DOMINANCE_INSTRUMENTED_H_
#define HYPERDOM_DOMINANCE_INSTRUMENTED_H_

#include <memory>

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief Metrics-recording wrapper around any DominanceCriterion.
///
/// Forwards name()/is_correct()/is_sound() to the wrapped criterion;
/// Dominates() and DecideVerdict() time the inner call and count the
/// outcome. Thread-compatible, like the criteria themselves. When the
/// library is built with HYPERDOM_OBSERVABILITY=OFF the wrapper still
/// forwards correctly but records nothing.
class InstrumentedCriterion final : public DominanceCriterion {
 public:
  /// Takes ownership of `inner`, which must not be null.
  explicit InstrumentedCriterion(std::unique_ptr<DominanceCriterion> inner);
  ~InstrumentedCriterion() override;

  using DominanceCriterion::Dominates;
  using DominanceCriterion::DecideVerdict;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  Verdict DecideVerdict(SphereView sa, SphereView sb,
                        SphereView sq) const override;

  std::string_view name() const override { return inner_->name(); }
  bool is_correct() const override { return inner_->is_correct(); }
  bool is_sound() const override { return inner_->is_sound(); }

  const DominanceCriterion& inner() const { return *inner_; }

 private:
  void RecordOutcome(Verdict v, uint64_t elapsed_ns) const;

  std::unique_ptr<DominanceCriterion> inner_;
  // Per-instance instrument handles, resolved once in the constructor from
  // the wrapped criterion's name (macro-style static caching would collapse
  // all criterion names onto one label).
  struct Instruments;
  std::unique_ptr<Instruments> instruments_;
};

/// Convenience: MakeCriterion(kind) wrapped in an InstrumentedCriterion.
std::unique_ptr<DominanceCriterion> MakeInstrumentedCriterion(
    CriterionKind kind);

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_INSTRUMENTED_H_
