// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The MinMax decision criterion (paper Section 2.2; [26, 15]):
//   DC_MinMax(Sa, Sb, Sq) := MaxDist(Sa, Sq) < MinDist(Sb, Sq).
// Correct (Lemma 2), not sound (Lemma 3 — when Sq has positive radius the
// worst-case query points for the two distances differ), O(d).

#ifndef HYPERDOM_DOMINANCE_MINMAX_H_
#define HYPERDOM_DOMINANCE_MINMAX_H_

#include "dominance/criterion.h"

namespace hyperdom {

/// \brief MinMax criterion: compare the two extreme distances.
class MinMaxCriterion final : public DominanceCriterion {
 public:
  using DominanceCriterion::Dominates;
  bool Dominates(SphereView sa, SphereView sb, SphereView sq) const override;
  std::string_view name() const override { return "MinMax"; }
  bool is_correct() const override { return true; }
  bool is_sound() const override { return false; }
};

}  // namespace hyperdom

#endif  // HYPERDOM_DOMINANCE_MINMAX_H_
