// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/growing.h"

#include <cassert>

#include "dominance/hyperbola.h"

namespace hyperdom {

bool DominatesAtTime(const GrowingSphere& sa, const GrowingSphere& sb,
                     const GrowingSphere& sq, double t) {
  assert(t >= 0.0);
  static const HyperbolaCriterion kHyperbola;
  return kHyperbola.Dominates(sa.AtTime(t), sb.AtTime(t), sq.AtTime(t));
}

double DominanceExpiry(const GrowingSphere& sa, const GrowingSphere& sb,
                       const GrowingSphere& sq, double horizon) {
  assert(horizon >= 0.0);
  assert(sa.growth_rate >= 0.0 && sb.growth_rate >= 0.0 &&
         sq.growth_rate >= 0.0);
  if (!DominatesAtTime(sa, sb, sq, 0.0)) return 0.0;
  if (DominatesAtTime(sa, sb, sq, horizon)) return horizon;
  // Monotone predicate: dominance holds on a prefix of [0, horizon].
  double lo = 0.0;   // dominance holds
  double hi = horizon;  // dominance fails
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (DominatesAtTime(sa, sb, sq, mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace hyperdom
