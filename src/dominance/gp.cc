// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/gp.h"

#include <cmath>

namespace hyperdom {

namespace {

// Folds x, taken relative to the origin point `origin`, onto the 2-plane
// ( sign * ||rel[0..d-2]||, rel[d-1] ). The fold preserves ||x - origin||
// exactly and can only shrink (sign = +1) or grow (sign = -1 vs a +1 image)
// pairwise distances, by the triangle inequality on the collapsed block.
Point FoldAround(const Point& x, const Point& origin, double sign) {
  double acc = 0.0;
  for (size_t i = 0; i + 1 < x.size(); ++i) {
    const double rel = x[i] - origin[i];
    acc += rel * rel;
  }
  return {sign * std::sqrt(acc), x.back() - origin.back()};
}

}  // namespace

bool GpCriterion::Dominates(const Hypersphere& sa, const Hypersphere& sb,
                            const Hypersphere& sq) const {
  if (sa.dim() <= 2) {
    // The fold would lose the sign of the first coordinate for no benefit;
    // the 2D decision is already exact (and [22] is optimal for d == 2).
    return exact_2d_.Dominates(sa, sb, sq);
  }
  // Fold relative to cq: every point of Sq keeps its exact distance to the
  // (now origin-centered) folded query ball, the plain image of cb
  // lower-bounds Dist(cb, q), and the reflected image of ca upper-bounds
  // Dist(ca, q) — reflection anti-aligns the collapsed components, i.e. the
  // fold keeps both radial distances from cq and only pessimizes the angle
  // between the two foci. A positive 2D decision therefore implies true
  // dominance; the collapsed angle loses information, so soundness is lost
  // for d > 2 (paper Section 3.1).
  const Point& cq = sq.center();
  const Hypersphere sa2(FoldAround(sa.center(), cq, -1.0), sa.radius());
  const Hypersphere sb2(FoldAround(sb.center(), cq, +1.0), sb.radius());
  const Hypersphere sq2(Point{0.0, 0.0}, sq.radius());
  return exact_2d_.Dominates(sa2, sb2, sq2);
}

}  // namespace hyperdom
