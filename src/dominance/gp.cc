// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/gp.h"

#include <cmath>

namespace hyperdom {

namespace {

// Folds x, taken relative to the origin point `origin`, onto the 2-plane
// ( sign * ||rel[0..d-2]||, rel[d-1] ). The fold preserves ||x - origin||
// exactly and can only shrink (sign = +1) or grow (sign = -1 vs a +1 image)
// pairwise distances, by the triangle inequality on the collapsed block.
void FoldAround(const double* x, const double* origin, size_t dim,
                double sign, double out[2]) {
  double acc = 0.0;
  for (size_t i = 0; i + 1 < dim; ++i) {
    const double rel = x[i] - origin[i];
    acc += rel * rel;
  }
  out[0] = sign * std::sqrt(acc);
  out[1] = x[dim - 1] - origin[dim - 1];
}

}  // namespace

bool GpCriterion::Dominates(SphereView sa, SphereView sb,
                            SphereView sq) const {
  if (sa.dim <= 2) {
    // The fold would lose the sign of the first coordinate for no benefit;
    // the 2D decision is already exact (and [22] is optimal for d == 2).
    return exact_2d_.Dominates(sa, sb, sq);
  }
  // Fold relative to cq: every point of Sq keeps its exact distance to the
  // (now origin-centered) folded query ball, the plain image of cb
  // lower-bounds Dist(cb, q), and the reflected image of ca upper-bounds
  // Dist(ca, q) — reflection anti-aligns the collapsed components, i.e. the
  // fold keeps both radial distances from cq and only pessimizes the angle
  // between the two foci. A positive 2D decision therefore implies true
  // dominance; the collapsed angle loses information, so soundness is lost
  // for d > 2 (paper Section 3.1).
  const double* cq = sq.center;
  double ca2[2], cb2[2];
  const double cq2[2] = {0.0, 0.0};
  FoldAround(sa.center, cq, sa.dim, -1.0, ca2);
  FoldAround(sb.center, cq, sb.dim, +1.0, cb2);
  return exact_2d_.Dominates(SphereView{ca2, 2, sa.radius},
                             SphereView{cb2, 2, sb.radius},
                             SphereView{cq2, 2, sq.radius});
}

}  // namespace hyperdom
