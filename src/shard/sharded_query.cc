// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "shard/sharded_query.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/fault.h"
#include "exec/parallel_for.h"
#include "obs/trace.h"
#include "query/best_known_list.h"
#include "query/index_knn.h"
#include "query/knn.h"

namespace hyperdom {
namespace shard {

namespace {

constexpr uint64_t kUnlimitedBudget = std::numeric_limits<uint64_t>::max();

// SplitMix64 finalizer, same constants as fault.cc.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// The fault-scope id of (ambient query, shard): a pure mix, so fault
// placement inside a shard's traversal is deterministic in (outer id,
// shard index) no matter how the scatter interleaves across threads.
uint64_t SubQueryId(uint64_t outer, size_t shard) {
  return SplitMix64(outer ^ SplitMix64(static_cast<uint64_t>(shard) + 1));
}

// Shard j's slice of a node budget: budget/K, +1 for the first budget%K
// shards. Sums to the whole budget, and no shard's share exceeds any
// other's by more than one node — the fairness property pinned by the
// budget-skew regression test.
Deadline SplitDeadline(const Deadline& deadline, size_t shard, size_t shards) {
  if (deadline.node_budget() == kUnlimitedBudget || shards <= 1) {
    return deadline;
  }
  const uint64_t budget = deadline.node_budget();
  const uint64_t share =
      budget / shards + (shard < budget % shards ? uint64_t{1} : uint64_t{0});
  Deadline d = deadline;
  d.SetNodeBudget(share);
  return d;
}

void AddStats(const KnnStats& in, KnnStats* out) {
  out->nodes_visited += in.nodes_visited;
  out->nodes_pruned += in.nodes_pruned;
  out->entries_accessed += in.entries_accessed;
  out->dominance_checks += in.dominance_checks;
  out->pruned_case2 += in.pruned_case2;
  out->pruned_case3 += in.pruned_case3;
  out->removed_case1 += in.removed_case1;
  out->uncertain_verdicts += in.uncertain_verdicts;
  out->nodes_deadline_skipped += in.nodes_deadline_skipped;
}

void SortById(std::vector<DataEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const DataEntry& a, const DataEntry& b) { return a.id < b.id; });
}

}  // namespace

Result<KnnResult> ShardedKnn(const ShardedStore& store, const Hypersphere& sq,
                             const DominanceCriterion& criterion,
                             const KnnOptions& options, ThreadPool* pool,
                             std::vector<KnnStats>* per_shard_stats) {
  if (store.shards() == 0) {
    return Status::InvalidArgument("sharded store is not built");
  }
  if (options.pruning_mode != KnnPruningMode::kDeferred) {
    return Status::InvalidArgument(
        "sharded kNN requires deferred pruning (the merge invariant does "
        "not hold for the eager ablation mode)");
  }
  const size_t shards = store.shards();

  std::vector<KnnStats> local_stats;
  std::vector<KnnStats>* stats_out = per_shard_stats ? per_shard_stats
                                                     : &local_stats;
  stats_out->assign(shards, KnnStats{});

  std::vector<BestKnownList> lists;
  lists.reserve(shards);
  for (size_t j = 0; j < shards; ++j) {
    lists.emplace_back(&criterion, &sq, options.k, options.pruning_mode,
                       &(*stats_out)[j]);
  }
  std::vector<TraversalGuard> guards;
  guards.reserve(shards);
  for (size_t j = 0; j < shards; ++j) {
    guards.emplace_back(SplitDeadline(options.deadline, j, shards));
  }
  std::vector<Status> statuses(shards, Status::OK());

  const uint64_t outer_qid =
      FaultQueryScope::Active() ? FaultQueryScope::CurrentQueryId() : 0;

  ParallelFor(pool, shards, [&](size_t j) {
    // The scope comes first so even the scatter fault point itself draws
    // from the per-(query, shard) stream.
    FaultQueryScope scope(SubQueryId(outer_qid, j));
    Status fault = HYPERDOM_FAULT_POINT_STATUS("shard/scatter");
    if (!fault.ok()) {
      statuses[j] = std::move(fault);
      return;
    }
    HYPERDOM_SPAN(span, "shard/query");
    HYPERDOM_SPAN_ANNOTATE(span, "shard", static_cast<uint64_t>(j));
    store.CountShardQuery(j);
    const Shard& s = store.shard(j);
    switch (store.options().index) {
      case ShardIndexKind::kSsTree:
        if (s.ss != nullptr) {
          KnnSearchInto(*s.ss, sq, options.strategy, /*overlay=*/nullptr,
                        &lists[j], &(*stats_out)[j], &guards[j]);
        }
        break;
      case ShardIndexKind::kRStarTree:
        if (s.rstar != nullptr) {
          RStarKnnSearchInto(*s.rstar, sq, options.strategy, &lists[j],
                             &(*stats_out)[j], &guards[j]);
        }
        break;
      case ShardIndexKind::kVpTree:
        if (s.vp != nullptr) {
          VpTreeKnnSearchInto(*s.vp, sq, options.strategy, &lists[j],
                              &(*stats_out)[j], &guards[j]);
        }
        break;
      case ShardIndexKind::kMTree:
        if (s.m != nullptr) {
          MTreeKnnSearchInto(*s.m, sq, options.strategy, &lists[j],
                             &(*stats_out)[j], &guards[j]);
        }
        break;
    }
  });

  for (size_t j = 0; j < shards; ++j) {
    HYPERDOM_RETURN_NOT_OK(statuses[j]);
  }

  KnnResult result;
  // The merged list replays every shard survivor through the maintenance
  // rules; its counters (and the final filter's) land in result.stats on
  // top of the summed per-shard traversal counters below.
  BestKnownList merged(&criterion, &sq, options.k, options.pruning_mode,
                       &result.stats);
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  const auto merge_start = std::chrono::steady_clock::now();
#endif
  for (size_t j = 0; j < shards; ++j) {
    merged.MergeFrom(std::move(lists[j]));
  }
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  HYPERDOM_HISTOGRAM_RECORD(
      obs::kShardMergeDuration,
      static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - merge_start)
                                .count()));
#endif

  bool expired = false;
  double pending = std::numeric_limits<double>::infinity();
  for (const TraversalGuard& g : guards) {
    expired = expired || g.expired();
    pending = std::min(pending, g.pending_bound());
  }
  if (expired) {
    result.completeness = Completeness::kBestEffort;
    result.answers = merged.TakeAnswersWithin(pending);
  } else {
    result.answers = merged.TakeAnswers();
  }
  for (const KnnStats& s : *stats_out) AddStats(s, &result.stats);
  return result;
}

Result<RangeResult> ShardedRange(const ShardedStore& store,
                                 const Hypersphere& sq, double range,
                                 const Deadline& deadline, ThreadPool* pool) {
  if (store.shards() == 0) {
    return Status::InvalidArgument("sharded store is not built");
  }
  if (store.options().index != ShardIndexKind::kSsTree) {
    return Status::NotSupported(
        "sharded range queries require SS-tree shards");
  }
  if (range < 0.0) {
    return Status::InvalidArgument("range must be >= 0");
  }
  const size_t shards = store.shards();

  std::vector<RangeResult> partials(shards);
  std::vector<Status> statuses(shards, Status::OK());
  const uint64_t outer_qid =
      FaultQueryScope::Active() ? FaultQueryScope::CurrentQueryId() : 0;

  ParallelFor(pool, shards, [&](size_t j) {
    FaultQueryScope scope(SubQueryId(outer_qid, j));
    Status fault = HYPERDOM_FAULT_POINT_STATUS("shard/scatter");
    if (!fault.ok()) {
      statuses[j] = std::move(fault);
      return;
    }
    HYPERDOM_SPAN(span, "shard/query");
    HYPERDOM_SPAN_ANNOTATE(span, "shard", static_cast<uint64_t>(j));
    store.CountShardQuery(j);
    const Shard& s = store.shard(j);
    if (s.ss == nullptr) return;
    partials[j] =
        RangeSearch(*s.ss, sq, range, SplitDeadline(deadline, j, shards));
  });

  for (size_t j = 0; j < shards; ++j) {
    HYPERDOM_RETURN_NOT_OK(statuses[j]);
  }

  RangeResult result;
  for (RangeResult& p : partials) {
    result.certain.insert(result.certain.end(),
                          std::make_move_iterator(p.certain.begin()),
                          std::make_move_iterator(p.certain.end()));
    result.possible.insert(result.possible.end(),
                           std::make_move_iterator(p.possible.begin()),
                           std::make_move_iterator(p.possible.end()));
    if (p.completeness == Completeness::kBestEffort) {
      result.completeness = Completeness::kBestEffort;
    }
    result.stats.nodes_visited += p.stats.nodes_visited;
    result.stats.nodes_pruned += p.stats.nodes_pruned;
    result.stats.entries_accessed += p.stats.entries_accessed;
    result.stats.nodes_deadline_skipped += p.stats.nodes_deadline_skipped;
  }
  // Canonical order: ids are unique across shards, so id order is total
  // and independent of K, policy, and traversal order.
  SortById(&result.certain);
  SortById(&result.possible);
  return result;
}

}  // namespace shard
}  // namespace hyperdom
