// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shard-aware snapshot persistence: one checksummed HDSP generation file
// per shard plus a SHARDS manifest naming the generation and the sharding
// options it was cut under.
//
// Layout in the snapshot directory:
//
//   shard-<j>.<seq>.hdsp   per-shard snapshot envelope (index/snapshot.h);
//                          empty shards write no file
//   SHARDS                 manifest: "hyperdom-shards-v1 <seq> <shards>
//                          <policy> <kmeans_seed> <kmeans_iterations>\n"
//
// Writes follow the rotation discipline of index/rotation.cc: all K
// generation files are written (each itself tmp+rename atomic) before the
// manifest swings via tmp+rename, so a crash at any point leaves either
// the previous complete generation or the new one — never a mix. The two
// newest generations are kept; older files are pruned.
//
// Loads re-partition the raw data (partitioning is deterministic in
// (data, options) — shard/partitioner.h), so each shard knows exactly
// which entries its generation file must contain. A shard whose file is
// missing, corrupt, or inconsistent with its slice falls back to an
// in-memory rebuild OF THAT SHARD ONLY; the other shards still load from
// disk. Per-shard outcomes are reported so tests and operators can see
// which shards fell back.

#ifndef HYPERDOM_SHARD_SHARD_SNAPSHOT_H_
#define HYPERDOM_SHARD_SHARD_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "index/snapshot.h"
#include "shard/sharded_store.h"

namespace hyperdom {
namespace shard {

/// \brief Persists and restores a ShardedStore (SS-tree shards only).
class ShardedSnapshotSet {
 public:
  explicit ShardedSnapshotSet(std::string dir);

  /// Writes one generation file per non-empty shard, then swings the
  /// manifest. NotSupported unless the store's shards are SS-trees. On
  /// success reports the published sequence number through `published_seq`
  /// (when non-null) and prunes generations older than the previous one.
  /// On failure no manifest update happens and the new generation files
  /// are removed (no debris).
  Status Persist(const ShardedStore& store, uint64_t* published_seq);

  /// Restores a store over `data` from the newest manifest-named
  /// generation. `options` must match the manifest (shard count, policy,
  /// k-means parameters) — InvalidArgument otherwise, because a mismatched
  /// partition would scatter entries across the wrong generation files.
  /// NotFound when no manifest exists. Each shard that fails to load is
  /// rebuilt from its re-partitioned slice; `outcomes` (when non-null) is
  /// resized to K with each shard's kLoaded/kRebuilt.
  Status LoadLatest(const std::vector<Hypersphere>& data,
                    const ShardingOptions& options, ShardedStore* out,
                    std::vector<SnapshotLoadOutcome>* outcomes,
                    uint64_t* seq_out);

  /// The manifest-named sequence, 0 when absent/unreadable.
  uint64_t CurrentSeq() const;

  /// Path of shard `j`'s generation file under sequence `seq`.
  std::string ShardPath(size_t shard, uint64_t seq) const;

 private:
  std::string ManifestPath() const;
  /// Parses "shard-<j>.<seq>.hdsp"; false for any other name.
  bool ParseGeneration(const std::string& name, size_t* shard,
                       uint64_t* seq) const;
  void Prune(uint64_t newest) const;

  std::string dir_;
};

}  // namespace shard
}  // namespace hyperdom

#endif  // HYPERDOM_SHARD_SHARD_SNAPSHOT_H_
