// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Partitioning policies for the sharded store (src/shard/sharded_store.h).
// A Partitioner deterministically maps every dataset entry to one of K
// shards; the assignment is a pure function of the entry and the
// partitioner's own (seeded) state, so re-partitioning the same dataset
// with the same options always reproduces the same layout — the property
// the sharded snapshot loader relies on (shard/shard_snapshot.h).
//
// Two policies:
//   * hash    — SplitMix64 on the entry id, modulo K. Even sizes, no
//               spatial locality; the safe default.
//   * k-means — seeded Lloyd iterations over the sphere centers; each
//               entry goes to its nearest centroid (ties to the lowest
//               shard index). Spatially coherent shards, so queries often
//               touch few shards deeply and prune the rest cheaply, at the
//               cost of skewed shard sizes.

#ifndef HYPERDOM_SHARD_PARTITIONER_H_
#define HYPERDOM_SHARD_PARTITIONER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/hypersphere.h"

namespace hyperdom {
namespace shard {

/// \brief Deterministic entry-to-shard assignment.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  /// Number of shards this partitioner maps into (>= 1).
  virtual size_t shards() const = 0;

  /// The shard of the entry with this sphere and (global) id; always in
  /// [0, shards()).
  virtual size_t Assign(const Hypersphere& sphere, uint64_t id) const = 0;
};

/// \brief Hash-on-id partitioning: SplitMix64(id) % K.
class HashPartitioner : public Partitioner {
 public:
  /// `shards` must be >= 1.
  explicit HashPartitioner(size_t shards);

  size_t shards() const override { return shards_; }
  size_t Assign(const Hypersphere& sphere, uint64_t id) const override;

 private:
  size_t shards_;
};

/// \brief K-means-on-centers partitioning (seeded, deterministic Lloyd).
class KMeansPartitioner : public Partitioner {
 public:
  /// Fits `shards` centroids to the centers of `data` with `iterations`
  /// Lloyd rounds from a seeded start. Deterministic in (data, shards,
  /// seed, iterations). Fails on empty data or inconsistent dimensions.
  static Status Fit(const std::vector<Hypersphere>& data, size_t shards,
                    uint64_t seed, size_t iterations, KMeansPartitioner* out);

  size_t shards() const override { return centroids_.size() / dim_; }
  size_t Assign(const Hypersphere& sphere, uint64_t id) const override;

  size_t dim() const { return dim_; }

 private:
  size_t dim_ = 1;
  /// Row-major [shards x dim] centroid coordinates.
  std::vector<double> centroids_;
};

}  // namespace shard
}  // namespace hyperdom

#endif  // HYPERDOM_SHARD_PARTITIONER_H_
