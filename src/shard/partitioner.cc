// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "shard/partitioner.h"

#include <cassert>
#include <limits>

#include "common/rng.h"

namespace hyperdom {
namespace shard {

namespace {

// SplitMix64 finalizer (same avalanche mix rng.cc and fault.cc use), so
// consecutive ids spread evenly across shards.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Squared center distance; relative order is all assignment needs.
double SqDistTo(const double* a, const double* b, size_t dim) {
  double acc = 0.0;
  for (size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

HashPartitioner::HashPartitioner(size_t shards) : shards_(shards) {
  assert(shards_ >= 1);
}

size_t HashPartitioner::Assign(const Hypersphere& sphere, uint64_t id) const {
  (void)sphere;
  return static_cast<size_t>(SplitMix64(id) % shards_);
}

Status KMeansPartitioner::Fit(const std::vector<Hypersphere>& data,
                              size_t shards, uint64_t seed, size_t iterations,
                              KMeansPartitioner* out) {
  if (shards < 1) {
    return Status::InvalidArgument("k-means needs at least one shard");
  }
  if (data.empty()) {
    return Status::InvalidArgument("k-means needs a non-empty dataset");
  }
  const size_t dim = data.front().dim();
  for (const auto& s : data) {
    if (s.dim() != dim) {
      return Status::InvalidArgument(
          "all spheres must share one dimensionality");
    }
  }

  // Seeded start: k distinct data centers where possible (duplicates are
  // harmless — coinciding centroids just leave some shards empty).
  Rng rng(seed);
  std::vector<double> centroids(shards * dim);
  std::vector<size_t> picked;
  picked.reserve(shards);
  for (size_t j = 0; j < shards; ++j) {
    size_t idx = static_cast<size_t>(rng.UniformU64(data.size()));
    for (size_t attempt = 0; attempt < 8; ++attempt) {
      bool taken = false;
      for (size_t p : picked) taken = taken || (p == idx);
      if (!taken) break;
      idx = static_cast<size_t>(rng.UniformU64(data.size()));
    }
    picked.push_back(idx);
    const double* c = data[idx].center().data();
    for (size_t d = 0; d < dim; ++d) centroids[j * dim + d] = c[d];
  }

  // Lloyd rounds, fully serial so the fit is deterministic in
  // (data, shards, seed, iterations). Empty clusters keep their centroid.
  std::vector<double> sums(shards * dim);
  std::vector<uint64_t> counts(shards);
  std::vector<size_t> assign(data.size());
  for (size_t round = 0; round < iterations; ++round) {
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), uint64_t{0});
    for (size_t i = 0; i < data.size(); ++i) {
      const double* c = data[i].center().data();
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < shards; ++j) {
        const double d = SqDistTo(c, &centroids[j * dim], dim);
        if (d < best_dist) {  // strict: ties go to the lowest index
          best_dist = d;
          best = j;
        }
      }
      assign[i] = best;
      ++counts[best];
      for (size_t d = 0; d < dim; ++d) sums[best * dim + d] += c[d];
    }
    for (size_t j = 0; j < shards; ++j) {
      if (counts[j] == 0) continue;
      for (size_t d = 0; d < dim; ++d) {
        centroids[j * dim + d] =
            sums[j * dim + d] / static_cast<double>(counts[j]);
      }
    }
  }

  out->dim_ = dim;
  out->centroids_ = std::move(centroids);
  return Status::OK();
}

size_t KMeansPartitioner::Assign(const Hypersphere& sphere,
                                 uint64_t id) const {
  (void)id;
  assert(sphere.dim() == dim_);
  const double* c = sphere.center().data();
  const size_t k = shards();
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < k; ++j) {
    const double d = SqDistTo(c, &centroids_[j * dim_], dim_);
    if (d < best_dist) {
      best_dist = d;
      best = j;
    }
  }
  return best;
}

}  // namespace shard
}  // namespace hyperdom
