// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "shard/sharded_store.h"

#include <string>
#include <utility>

#include "common/fault.h"
#include "obs/trace.h"
#include "shard/partitioner.h"

namespace hyperdom {
namespace shard {

std::string_view ShardPolicyName(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kHash:
      return "hash";
    case ShardPolicy::kKmeans:
      return "kmeans";
  }
  return "unknown";
}

bool ParseShardPolicy(std::string_view name, ShardPolicy* out) {
  if (name == "hash") {
    *out = ShardPolicy::kHash;
    return true;
  }
  if (name == "kmeans") {
    *out = ShardPolicy::kKmeans;
    return true;
  }
  return false;
}

std::string_view ShardIndexKindName(ShardIndexKind kind) {
  switch (kind) {
    case ShardIndexKind::kSsTree:
      return "ss";
    case ShardIndexKind::kRStarTree:
      return "rstar";
    case ShardIndexKind::kVpTree:
      return "vp";
    case ShardIndexKind::kMTree:
      return "m";
  }
  return "unknown";
}

Status ShardedStore::Partition(const std::vector<Hypersphere>& data,
                               const ShardingOptions& options,
                               ShardedStore* out) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  const size_t dim = data.empty() ? 0 : data.front().dim();
  for (const auto& s : data) {
    if (s.dim() != dim) {
      return Status::InvalidArgument(
          "all spheres must share one dimensionality");
    }
  }

  ShardedStore store;
  store.options_ = options;
  store.shards_.resize(options.shards);
  store.size_ = data.size();
  store.dim_ = dim;

  if (!data.empty()) {
    HashPartitioner hash(options.shards);
    KMeansPartitioner kmeans;
    const Partitioner* partitioner = &hash;
    if (options.policy == ShardPolicy::kKmeans) {
      HYPERDOM_RETURN_NOT_OK(KMeansPartitioner::Fit(
          data, options.shards, options.kmeans_seed, options.kmeans_iterations,
          &kmeans));
      partitioner = &kmeans;
    }
    // Dataset order is preserved within each shard, so with K=1 the single
    // shard is the dataset itself in its original order and its index is
    // byte-for-byte the unsharded build.
    for (size_t i = 0; i < data.size(); ++i) {
      const uint64_t id = static_cast<uint64_t>(i);
      const size_t j = partitioner->Assign(data[i], id);
      store.shards_[j].spheres.push_back(data[i]);
      store.shards_[j].ids.push_back(id);
    }
  }

  *out = std::move(store);
  return Status::OK();
}

Status ShardedStore::BuildShardIndex(size_t j) {
  Shard& s = shards_[j];
  s.ss.reset();
  s.rstar.reset();
  s.vp.reset();
  s.m.reset();
  if (s.spheres.empty()) return Status::OK();
  switch (options_.index) {
    case ShardIndexKind::kSsTree: {
      auto tree = std::make_unique<SsTree>(dim_);
      HYPERDOM_RETURN_NOT_OK(tree->BulkLoadStrWithIds(s.spheres, s.ids));
      s.ss = std::move(tree);
      return Status::OK();
    }
    case ShardIndexKind::kRStarTree: {
      auto tree = std::make_unique<RStarTree>(dim_);
      for (size_t i = 0; i < s.spheres.size(); ++i) {
        HYPERDOM_RETURN_NOT_OK(tree->Insert(s.spheres[i], s.ids[i]));
      }
      s.rstar = std::move(tree);
      return Status::OK();
    }
    case ShardIndexKind::kVpTree: {
      auto tree = std::make_unique<VpTree>();
      HYPERDOM_RETURN_NOT_OK(tree->BuildWithIds(s.spheres, s.ids));
      s.vp = std::move(tree);
      return Status::OK();
    }
    case ShardIndexKind::kMTree: {
      auto tree = std::make_unique<MTree>(dim_);
      for (size_t i = 0; i < s.spheres.size(); ++i) {
        HYPERDOM_RETURN_NOT_OK(tree->Insert(s.spheres[i], s.ids[i]));
      }
      s.m = std::move(tree);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown shard index kind");
}

void ShardedStore::PublishMetrics() {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  HYPERDOM_GAUGE_SET(obs::kShardCount, static_cast<double>(shards_.size()));
  auto& registry = obs::MetricsRegistry::Instance();
  query_counters_.clear();
  query_counters_.reserve(shards_.size());
  for (size_t j = 0; j < shards_.size(); ++j) {
    const std::string label = std::to_string(j);
    registry.GetGauge(obs::kShardSizeEntries, "shard", label)
        ->Set(static_cast<double>(shards_[j].size()));
    query_counters_.push_back(
        registry.GetCounter(obs::kShardQueries, "shard", label));
  }
#endif
}

Status ShardedStore::Build(const std::vector<Hypersphere>& data,
                           const ShardingOptions& options, ShardedStore* out) {
  ShardedStore store;
  HYPERDOM_RETURN_NOT_OK(Partition(data, options, &store));
  for (size_t j = 0; j < store.shards(); ++j) {
    HYPERDOM_SPAN(span, "shard/build");
    HYPERDOM_SPAN_ANNOTATE(span, "shard", static_cast<uint64_t>(j));
    HYPERDOM_FAULT_POINT("shard/build");
    HYPERDOM_RETURN_NOT_OK(store.BuildShardIndex(j));
  }
  store.PublishMetrics();
  *out = std::move(store);
  return Status::OK();
}

}  // namespace shard
}  // namespace hyperdom
