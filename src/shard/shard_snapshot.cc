// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "shard/shard_snapshot.h"

#include <sstream>
#include <utility>

#include "common/fault.h"
#include "common/io.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hyperdom {
namespace shard {

namespace {

constexpr char kManifestName[] = "SHARDS";
constexpr char kManifestMagic[] = "hyperdom-shards-v1";
/// Generations kept behind the newest, matching index/rotation.cc.
constexpr uint64_t kKeepGenerations = 2;

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty()) return false;
  uint64_t value = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    if (value > (~0ull - 9) / 10) return false;  // overflow
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

ShardedSnapshotSet::ShardedSnapshotSet(std::string dir)
    : dir_(std::move(dir)) {}

std::string ShardedSnapshotSet::ManifestPath() const {
  return dir_ + "/" + kManifestName;
}

std::string ShardedSnapshotSet::ShardPath(size_t shard, uint64_t seq) const {
  return dir_ + "/shard-" + std::to_string(shard) + "." + std::to_string(seq) +
         ".hdsp";
}

bool ShardedSnapshotSet::ParseGeneration(const std::string& name,
                                         size_t* shard, uint64_t* seq) const {
  const std::string_view prefix = "shard-";
  const std::string_view suffix = ".hdsp";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string middle = name.substr(
      prefix.size(), name.size() - prefix.size() - suffix.size());
  const size_t dot = middle.find('.');
  if (dot == std::string::npos) return false;
  uint64_t shard_value = 0;
  uint64_t seq_value = 0;
  if (!ParseU64(middle.substr(0, dot), &shard_value)) return false;
  if (!ParseU64(middle.substr(dot + 1), &seq_value)) return false;
  *shard = static_cast<size_t>(shard_value);
  *seq = seq_value;
  return true;
}

uint64_t ShardedSnapshotSet::CurrentSeq() const {
  Result<std::string> body = ReadFileToString(ManifestPath());
  if (!body.ok()) return 0;
  std::istringstream in(body.ValueOrDie());
  std::string magic;
  uint64_t seq = 0;
  if (!(in >> magic >> seq) || magic != kManifestMagic) return 0;
  return seq;
}

Status ShardedSnapshotSet::Persist(const ShardedStore& store,
                                   uint64_t* published_seq) {
  if (store.options().index != ShardIndexKind::kSsTree) {
    return Status::NotSupported(
        "sharded snapshots require SS-tree shards");
  }
  HYPERDOM_SPAN(span, "shard/persist");
  const uint64_t next = CurrentSeq() + 1;
  HYPERDOM_SPAN_ANNOTATE(span, "generation", std::to_string(next));

  // All K generation files land (each tmp+rename atomic on its own)
  // before the manifest swings; empty shards write nothing, which the
  // loader reproduces by re-partitioning the same data.
  std::vector<std::string> written;
  Status status = Status::OK();
  for (size_t j = 0; j < store.shards() && status.ok(); ++j) {
    if (store.shard(j).ss == nullptr) continue;
    const std::string path = ShardPath(j, next);
    status = SaveSnapshot(*store.shard(j).ss, path);
    if (status.ok()) written.push_back(path);
  }
  if (status.ok()) {
    status = HYPERDOM_FAULT_POINT_STATUS("snapshot/rotate");
  }
  if (status.ok()) {
    std::ostringstream manifest;
    manifest << kManifestMagic << ' ' << next << ' ' << store.shards() << ' '
             << ShardPolicyName(store.options().policy) << ' '
             << store.options().kmeans_seed << ' '
             << store.options().kmeans_iterations << '\n';
    const std::string tmp = ManifestPath() + ".tmp";
    status = WriteStringToFile(tmp, manifest.str());
    if (status.ok()) status = RenameFile(tmp, ManifestPath());
    if (!status.ok()) (void)RemoveFile(tmp);
  }
  if (!status.ok()) {
    // No manifest references the new generation; leave no debris.
    for (const std::string& path : written) (void)RemoveFile(path);
    HYPERDOM_SPAN_ANNOTATE(span, "result", "error");
    return status;
  }

  HYPERDOM_SPAN_ANNOTATE(span, "result", "ok");
  if (published_seq != nullptr) *published_seq = next;
  Prune(next);
  return Status::OK();
}

void ShardedSnapshotSet::Prune(uint64_t newest) const {
  Result<std::vector<std::string>> entries = ListDirectory(dir_);
  if (!entries.ok()) return;  // best-effort
  for (const std::string& name : entries.ValueOrDie()) {
    size_t shard = 0;
    uint64_t seq = 0;
    if (!ParseGeneration(name, &shard, &seq)) continue;
    if (seq + kKeepGenerations <= newest) {
      (void)RemoveFile(dir_ + "/" + name);
    }
  }
}

Status ShardedSnapshotSet::LoadLatest(
    const std::vector<Hypersphere>& data, const ShardingOptions& options,
    ShardedStore* out, std::vector<SnapshotLoadOutcome>* outcomes,
    uint64_t* seq_out) {
  if (options.index != ShardIndexKind::kSsTree) {
    return Status::NotSupported(
        "sharded snapshots require SS-tree shards");
  }
  Result<std::string> body = ReadFileToString(ManifestPath());
  if (!body.ok()) {
    return Status::NotFound("no sharded snapshot manifest in '" + dir_ + "'");
  }
  std::istringstream in(body.ValueOrDie());
  std::string magic;
  std::string policy_name;
  uint64_t seq = 0;
  uint64_t shards = 0;
  uint64_t kmeans_seed = 0;
  uint64_t kmeans_iterations = 0;
  if (!(in >> magic >> seq >> shards >> policy_name >> kmeans_seed >>
        kmeans_iterations) ||
      magic != kManifestMagic || seq == 0) {
    return Status::Corruption("malformed sharded snapshot manifest '" +
                              ManifestPath() + "'");
  }
  ShardPolicy policy = ShardPolicy::kHash;
  if (!ParseShardPolicy(policy_name, &policy)) {
    return Status::Corruption("unknown shard policy '" + policy_name +
                              "' in manifest");
  }
  // The generation files hold exactly the slices the manifest's options
  // produced; loading them under a different partition would misplace
  // entries, so a mismatch is the caller's error, not a fallback case.
  if (shards != options.shards || policy != options.policy ||
      (policy == ShardPolicy::kKmeans &&
       (kmeans_seed != options.kmeans_seed ||
        kmeans_iterations != options.kmeans_iterations))) {
    return Status::InvalidArgument(
        "sharding options do not match the snapshot manifest");
  }

  HYPERDOM_SPAN(span, "shard/load_latest");
  HYPERDOM_SPAN_ANNOTATE(span, "generation", std::to_string(seq));
  ShardedStore store;
  HYPERDOM_RETURN_NOT_OK(ShardedStore::Partition(data, options, &store));
  if (outcomes != nullptr) {
    outcomes->assign(store.shards(), SnapshotLoadOutcome::kLoaded);
  }
  for (size_t j = 0; j < store.shards(); ++j) {
    Shard& s = store.shards_[j];
    if (s.spheres.empty()) continue;  // nothing persisted, nothing to load
    SsTree tree(store.dim());
    const Status load = LoadSnapshot(ShardPath(j, seq), &tree);
    if (load.ok() && tree.size() == s.spheres.size() &&
        tree.dim() == store.dim()) {
      s.ss = std::make_unique<SsTree>(std::move(tree));
      continue;
    }
    // Per-shard fallback: only this shard pays the rebuild; its siblings
    // keep loading from disk.
    HYPERDOM_COUNTER_INC(obs::kSnapshotRebuildFallback);
    HYPERDOM_RETURN_NOT_OK(store.BuildShardIndex(j));
    if (outcomes != nullptr) (*outcomes)[j] = SnapshotLoadOutcome::kRebuilt;
  }
  store.PublishMetrics();
  if (seq_out != nullptr) *seq_out = seq;
  *out = std::move(store);
  return Status::OK();
}

}  // namespace shard
}  // namespace hyperdom
