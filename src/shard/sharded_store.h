// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// The sharded store: one dataset partitioned into K shards, each owning
// its own columnar arena and index, built by the existing per-index
// builders. The scatter-gather engines (shard/sharded_query.h) fan a
// query across the shards and merge the per-shard best-known lists into
// an answer bit-identical to a single unsharded index over the same data
// (the merge contract; see BestKnownList::MergeFrom).
//
// Partition layout is deterministic in (data, options) — see
// shard/partitioner.h — and entries keep their GLOBAL ids (positions in
// the source vector), so answers from any shard line up with answers from
// an unsharded index over the same vector.

#ifndef HYPERDOM_SHARD_SHARDED_STORE_H_
#define HYPERDOM_SHARD_SHARDED_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/m_tree.h"
#include "index/rstar_tree.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "obs/metrics.h"

namespace hyperdom {
namespace shard {

/// Which partitioning policy assigns entries to shards.
enum class ShardPolicy {
  kHash,    ///< SplitMix64 on the global id, modulo K
  kKmeans,  ///< nearest of K seeded-Lloyd centroids over sphere centers
};

/// "hash" / "kmeans".
std::string_view ShardPolicyName(ShardPolicy policy);

/// Parses "hash"/"kmeans"; false on anything else.
bool ParseShardPolicy(std::string_view name, ShardPolicy* out);

/// Which index structure each shard builds over its slice.
enum class ShardIndexKind {
  kSsTree,
  kRStarTree,
  kVpTree,
  kMTree,
};

/// "ss" / "rstar" / "vp" / "m".
std::string_view ShardIndexKindName(ShardIndexKind kind);

/// Options for ShardedStore::Build.
struct ShardingOptions {
  /// Number of shards (>= 1).
  size_t shards = 1;
  ShardPolicy policy = ShardPolicy::kHash;
  ShardIndexKind index = ShardIndexKind::kSsTree;
  /// Seed and Lloyd rounds for the k-means policy; ignored under hash.
  uint64_t kmeans_seed = 42;
  size_t kmeans_iterations = 8;
};

/// \brief One shard: the slice of the dataset it owns (in global order,
/// with global ids) plus its index. Exactly one tree pointer matching
/// ShardingOptions.index is set once the store is built; a shard of an
/// empty dataset has no tree.
struct Shard {
  std::vector<Hypersphere> spheres;
  std::vector<uint64_t> ids;
  std::unique_ptr<SsTree> ss;
  std::unique_ptr<RStarTree> rstar;
  std::unique_ptr<VpTree> vp;
  std::unique_ptr<MTree> m;

  size_t size() const { return spheres.size(); }
};

/// \brief K shards over one dataset.
///
/// Immutable once built. Thread-compatible: concurrent queries against a
/// built store are safe (per-shard trees are read-only).
class ShardedStore {
 public:
  ShardedStore() = default;
  ShardedStore(ShardedStore&&) = default;
  ShardedStore& operator=(ShardedStore&&) = default;

  /// Partitions `data` per `options` and builds every shard's index.
  /// Entries keep their global ids (positions in `data`). Replaces `*out`.
  /// With K=1 and the hash policy the single shard holds the dataset in
  /// its original order, so its tree is identical to an unsharded build.
  static Status Build(const std::vector<Hypersphere>& data,
                      const ShardingOptions& options, ShardedStore* out);

  size_t shards() const { return shards_.size(); }
  const Shard& shard(size_t j) const { return shards_[j]; }
  const ShardingOptions& options() const { return options_; }
  /// Total entries across shards.
  size_t size() const { return size_; }
  /// Data dimensionality (0 for an empty dataset).
  size_t dim() const { return dim_; }

  /// Bumps the per-shard query counter (hyperdom_shard_queries_total
  /// {shard="j"}); the pointers are cached at build time because the
  /// labels are runtime values the literal-only hot-path macros cannot
  /// register. No-op when observability is compiled out.
  void CountShardQuery(size_t j) const {
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
    query_counters_[j]->Inc();
#else
    (void)j;
#endif
  }

 private:
  friend class ShardedSnapshotSet;

  /// Partitions `data` into shard slices without building indexes; shared
  /// by Build and the snapshot loader (which re-partitions to know what
  /// each generation file must contain).
  static Status Partition(const std::vector<Hypersphere>& data,
                          const ShardingOptions& options, ShardedStore* out);

  /// Builds shard `j`'s index from its slice per options().index.
  Status BuildShardIndex(size_t j);

  /// Registers/updates the shard gauges and caches the per-shard counter
  /// handles. Called once per (re)build.
  void PublishMetrics();

  ShardingOptions options_;
  std::vector<Shard> shards_;
  size_t size_ = 0;
  size_t dim_ = 0;
#if defined(HYPERDOM_OBSERVABILITY_ENABLED)
  std::vector<obs::Counter*> query_counters_;
#endif
};

}  // namespace shard
}  // namespace hyperdom

#endif  // HYPERDOM_SHARD_SHARDED_STORE_H_
