// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Scatter-gather query engines over a ShardedStore.
//
// A query is scattered across the K shards (optionally on a thread pool),
// each shard runs its index's ordinary traversal into a shard-local
// best-known list, and the lists are folded with BestKnownList::MergeFrom
// before one final-Sk filter. The merge invariant (best_known_list.h)
// makes the merged kNN answer bit-identical to a single unsharded index
// over the same dataset — independent of K, of the partitioning policy,
// and of how many threads ran the scatter. Pinned by
// tests/shard_query_test.cc.
//
// Determinism under fault injection: each (query, shard) pair runs inside
// its own FaultQueryScope whose id is a pure mix of the caller's ambient
// query id (0 when none) and the shard index, so ArmRandom fault placement
// is reproducible regardless of scatter interleaving.
//
// Deadlines: a node budget on the query is split fairly across the shards
// up front (shard j gets budget/K, +1 for the first budget%K shards), so a
// serial scatter cannot let the first shard eat the whole budget. Wall
// deadlines are absolute time points and shared by all shards as-is. If
// any shard's traversal expires, the merged answer is kBestEffort and
// carries only entries whose membership in the exact answer is certain
// (the proven-subset guarantee of TakeAnswersWithin, applied to the
// minimum pending bound over all shards).

#ifndef HYPERDOM_SHARD_SHARDED_QUERY_H_
#define HYPERDOM_SHARD_SHARDED_QUERY_H_

#include <vector>

#include "common/deadline.h"
#include "common/status.h"
#include "dominance/criterion.h"
#include "exec/thread_pool.h"
#include "query/knn_types.h"
#include "query/range.h"
#include "shard/sharded_store.h"

namespace hyperdom {
namespace shard {

/// Runs the kNN query of `sq` against every shard and merges the answers.
///
/// `pool` may be null (serial scatter) — REQUIRED when the caller already
/// runs on a pool worker (a worker waiting on its own pool deadlocks).
/// `per_shard_stats`, when non-null, is resized to K and receives each
/// shard's traversal counters (the merged result's stats are the sum, plus
/// the merge/filter work itself).
///
/// Fails on an empty store option mismatch or injected faults
/// ("shard/scatter"); requires kDeferred pruning (the merge invariant does
/// not hold for the eager ablation mode).
Result<KnnResult> ShardedKnn(const ShardedStore& store, const Hypersphere& sq,
                             const DominanceCriterion& criterion,
                             const KnnOptions& options,
                             ThreadPool* pool = nullptr,
                             std::vector<KnnStats>* per_shard_stats = nullptr);

/// Runs the range query of `sq` against every shard (SS-tree shards only;
/// NotSupported otherwise) and concatenates the per-shard answers. Range
/// membership is per-entry, so the merged sets equal the unsharded answer
/// as multisets; both are returned sorted by ascending id (the canonical
/// order — an unsharded traversal's order depends on tree layout, so id
/// order is the only K-independent choice). Deadline budget splitting and
/// completeness propagation match ShardedKnn.
Result<RangeResult> ShardedRange(const ShardedStore& store,
                                 const Hypersphere& sq, double range,
                                 const Deadline& deadline = Deadline::Unbounded(),
                                 ThreadPool* pool = nullptr);

}  // namespace shard
}  // namespace hyperdom

#endif  // HYPERDOM_SHARD_SHARDED_QUERY_H_
