// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Registry-level tests: histogram bucket boundaries, shard-merge
// correctness under concurrent writers, export shapes, and the
// zero-allocation guarantee on the counter/histogram hot path.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

// Counting replacement of the global allocator, so tests can assert that a
// code region performs no heap allocation. Must live at global scope.
namespace {
std::atomic<uint64_t> g_allocation_count{0};
}  // namespace

// GCC pairs the inlined free() below with callers' `new` expressions and
// warns -Wmismatched-new-delete, not seeing that operator new is replaced
// with malloc in this same TU; the pairing is in fact consistent.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace hyperdom {
namespace obs {
namespace {

TEST(HistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  // Every power-of-two boundary: 2^k - 1 stays in bucket k, 2^k moves to
  // bucket k + 1.
  for (size_t k = 1; k < 64; ++k) {
    const uint64_t pow = uint64_t{1} << k;
    EXPECT_EQ(Histogram::BucketIndex(pow - 1), k) << "k = " << k;
    EXPECT_EQ(Histogram::BucketIndex(pow), k + 1) << "k = " << k;
  }
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), kHistogramBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundMatchesIndex) {
  // A value must land in a bucket whose inclusive upper bound covers it,
  // and must not fit in the previous bucket.
  for (uint64_t value : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3},
                         uint64_t{7}, uint64_t{8}, uint64_t{1000},
                         uint64_t{1} << 40}) {
    const size_t i = Histogram::BucketIndex(value);
    EXPECT_LE(value, HistogramSnapshot::BucketUpperBound(i));
    if (i > 0) {
      EXPECT_GT(value, HistogramSnapshot::BucketUpperBound(i - 1));
    }
  }
}

TEST(HistogramTest, SnapshotCountsAndSum) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram(
      "test_histogram_snapshot_ns");
  h->Record(0);
  h->Record(1);
  h->Record(3);
  h->Record(3);
  h->Record(1000);
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 0u + 1 + 3 + 3 + 1000);
  EXPECT_EQ(snap.buckets[0], 1u);  // the 0
  EXPECT_EQ(snap.buckets[1], 1u);  // the 1
  EXPECT_EQ(snap.buckets[2], 2u);  // both 3s
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(1000)], 1u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1007.0 / 5.0);
}

TEST(CounterTest, ShardMergeAcrossThreads) {
  Counter* c =
      MetricsRegistry::Instance().GetCounter("test_shard_merge_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), uint64_t{kThreads} * kIncrements);
}

TEST(HistogramTest, ShardMergeAcrossThreads) {
  Histogram* h = MetricsRegistry::Instance().GetHistogram(
      "test_histogram_shard_merge_ns");
  constexpr int kThreads = 8;
  constexpr int kRecords = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kRecords; ++i) {
        h->Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistogramSnapshot snap = h->Snapshot();
  EXPECT_EQ(snap.count, uint64_t{kThreads} * kRecords);
  uint64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += uint64_t{kRecords} * static_cast<uint64_t>(t + 1);
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(CounterTest, HotPathDoesNotAllocate) {
  auto& registry = MetricsRegistry::Instance();
  Counter* c = registry.GetCounter("test_zero_alloc_total");
  Histogram* h = registry.GetHistogram("test_zero_alloc_ns");
  // Warm the thread's shard assignment (first use initializes a
  // thread_local) before measuring.
  c->Inc();
  h->Record(1);
  const uint64_t before = g_allocation_count.load(std::memory_order_relaxed);
  for (uint64_t i = 0; i < 10'000; ++i) {
    c->Inc();
    c->Add(3);
    h->Record(i);
  }
  const uint64_t after = g_allocation_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before)
      << "counter/histogram hot path allocated on the heap";
}

TEST(GaugeTest, SetValueReset) {
  Gauge* g = MetricsRegistry::Instance().GetGauge("test_gauge_entries");
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  g->Set(42.5);
  EXPECT_DOUBLE_EQ(g->Value(), 42.5);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(RegistryTest, LabeledNameAndLookupStability) {
  EXPECT_EQ(LabeledName("base_total", "index", "ss"),
            "base_total{index=\"ss\"}");
  auto& registry = MetricsRegistry::Instance();
  Counter* a = registry.GetCounter("test_stable_total", "help text");
  Counter* b = registry.GetCounter("test_stable_total");
  EXPECT_EQ(a, b);  // same name -> same instrument, pointers stay valid
}

TEST(RegistryTest, ResetAllZeroesButKeepsRegistrations) {
  auto& registry = MetricsRegistry::Instance();
  Counter* c = registry.GetCounter("test_resetall_total");
  c->Add(7);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("test_resetall_total"), c);
}

TEST(RegistryTest, PrometheusExportShape) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test_prom_total{index=\"ss\"}", "a counter")->Add(3);
  Histogram* h = registry.GetHistogram("test_prom_ns{op=\"save\"}", "a hist");
  h->Record(0);
  h->Record(5);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# HELP test_prom_total a counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total{index=\"ss\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_ns histogram"), std::string::npos);
  // Labels merge with le=, buckets are cumulative, +Inf is mandatory.
  EXPECT_NE(text.find("test_prom_ns_bucket{op=\"save\",le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_ns_bucket{op=\"save\",le=\"7\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_ns_bucket{op=\"save\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_ns_sum{op=\"save\"} 5"), std::string::npos);
  EXPECT_NE(text.find("test_prom_ns_count{op=\"save\"} 2"),
            std::string::npos);
}

TEST(RegistryTest, JsonExportShape) {
  auto& registry = MetricsRegistry::Instance();
  registry.GetCounter("test_json_total")->Add(11);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"schema\": \"hyperdom-metrics-v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\": 11"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(CatalogueTest, NamesAreUniqueAndWellFormed) {
  const auto& catalogue = MetricCatalogue();
  ASSERT_FALSE(catalogue.empty());
  std::vector<std::string> names;
  for (const MetricDef& def : catalogue) {
    names.emplace_back(def.name);
    EXPECT_EQ(std::string(def.name).find("hyperdom_"), 0u) << def.name;
    EXPECT_NE(std::string(def.help), "") << def.name;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
      << "duplicate metric name in the catalogue";
}

}  // namespace
}  // namespace obs
}  // namespace hyperdom
