// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Partitioning and shard-build contract of src/shard/sharded_store.h:
// deterministic layouts, full coverage with global ids, a K=1 hash store
// whose single shard is the dataset in original order, per-shard builds
// across all four index kinds, and clean Status propagation from the
// shard/build fault site.

#include "shard/sharded_store.h"

#include <gtest/gtest.h>

#include <set>

#include "common/fault.h"
#include "common/rng.h"
#include "shard/partitioner.h"

namespace hyperdom {
namespace shard {
namespace {

std::vector<Hypersphere> MakeData(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Hypersphere> data;
  data.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point c(3);
    for (size_t d = 0; d < 3; ++d) c[d] = rng.Gaussian(0.0, 20.0);
    data.emplace_back(c, rng.Uniform(0.0, 3.0));
  }
  return data;
}

TEST(PartitionerTest, HashIsDeterministicAndInRange) {
  HashPartitioner p(4);
  const Hypersphere s(Point{1.0, 2.0, 3.0}, 0.5);
  for (uint64_t id = 0; id < 200; ++id) {
    const size_t j = p.Assign(s, id);
    EXPECT_LT(j, 4u);
    EXPECT_EQ(j, p.Assign(s, id));  // pure in id
  }
}

TEST(PartitionerTest, HashSpreadsAcrossShards) {
  HashPartitioner p(4);
  const Hypersphere s(Point{0.0, 0.0, 0.0}, 0.0);
  std::set<size_t> seen;
  for (uint64_t id = 0; id < 64; ++id) seen.insert(p.Assign(s, id));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(PartitionerTest, KMeansIsDeterministicInSeed) {
  const auto data = MakeData(300, 42);
  KMeansPartitioner a, b;
  ASSERT_TRUE(KMeansPartitioner::Fit(data, 4, 7, 8, &a).ok());
  ASSERT_TRUE(KMeansPartitioner::Fit(data, 4, 7, 8, &b).ok());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(a.Assign(data[i], i), b.Assign(data[i], i)) << i;
  }
}

TEST(PartitionerTest, KMeansRejectsEmptyData) {
  KMeansPartitioner p;
  EXPECT_FALSE(KMeansPartitioner::Fit({}, 2, 1, 4, &p).ok());
}

TEST(ShardedStoreTest, PolicyNamesRoundTrip) {
  ShardPolicy policy = ShardPolicy::kKmeans;
  EXPECT_TRUE(ParseShardPolicy("hash", &policy));
  EXPECT_EQ(policy, ShardPolicy::kHash);
  EXPECT_TRUE(ParseShardPolicy("kmeans", &policy));
  EXPECT_EQ(policy, ShardPolicy::kKmeans);
  EXPECT_FALSE(ParseShardPolicy("round-robin", &policy));
  EXPECT_EQ(ShardPolicyName(ShardPolicy::kHash), "hash");
  EXPECT_EQ(ShardPolicyName(ShardPolicy::kKmeans), "kmeans");
}

TEST(ShardedStoreTest, RejectsZeroShards) {
  ShardingOptions options;
  options.shards = 0;
  ShardedStore store;
  EXPECT_FALSE(ShardedStore::Build(MakeData(10, 1), options, &store).ok());
}

TEST(ShardedStoreTest, CoversEveryEntryExactlyOnceWithGlobalIds) {
  const auto data = MakeData(500, 7);
  for (ShardPolicy policy : {ShardPolicy::kHash, ShardPolicy::kKmeans}) {
    ShardingOptions options;
    options.shards = 4;
    options.policy = policy;
    ShardedStore store;
    ASSERT_TRUE(ShardedStore::Build(data, options, &store).ok());
    ASSERT_EQ(store.shards(), 4u);
    EXPECT_EQ(store.size(), data.size());
    EXPECT_EQ(store.dim(), 3u);

    std::set<uint64_t> seen;
    for (size_t j = 0; j < store.shards(); ++j) {
      const Shard& s = store.shard(j);
      ASSERT_EQ(s.spheres.size(), s.ids.size());
      for (size_t i = 0; i < s.ids.size(); ++i) {
        const uint64_t id = s.ids[i];
        EXPECT_TRUE(seen.insert(id).second) << "duplicate id " << id;
        ASSERT_LT(id, data.size());
        // The slice holds the entry the global id names.
        EXPECT_EQ(s.spheres[i].center(), data[id].center());
        EXPECT_EQ(s.spheres[i].radius(), data[id].radius());
      }
    }
    EXPECT_EQ(seen.size(), data.size());
  }
}

TEST(ShardedStoreTest, SingleHashShardPreservesDatasetOrder) {
  const auto data = MakeData(100, 3);
  ShardingOptions options;  // shards = 1, hash
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build(data, options, &store).ok());
  ASSERT_EQ(store.shards(), 1u);
  const Shard& s = store.shard(0);
  ASSERT_EQ(s.spheres.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(s.ids[i], i);
    EXPECT_EQ(s.spheres[i].center(), data[i].center());
  }
}

TEST(ShardedStoreTest, BuildsEveryIndexKind) {
  const auto data = MakeData(200, 11);
  for (ShardIndexKind kind :
       {ShardIndexKind::kSsTree, ShardIndexKind::kRStarTree,
        ShardIndexKind::kVpTree, ShardIndexKind::kMTree}) {
    ShardingOptions options;
    options.shards = 3;
    options.index = kind;
    ShardedStore store;
    ASSERT_TRUE(ShardedStore::Build(data, options, &store).ok())
        << ShardIndexKindName(kind);
    size_t total = 0;
    for (size_t j = 0; j < store.shards(); ++j) {
      const Shard& s = store.shard(j);
      switch (kind) {
        case ShardIndexKind::kSsTree:
          ASSERT_NE(s.ss, nullptr);
          EXPECT_EQ(s.ss->size(), s.size());
          EXPECT_TRUE(s.ss->CheckInvariants().ok());
          break;
        case ShardIndexKind::kRStarTree:
          ASSERT_NE(s.rstar, nullptr);
          EXPECT_EQ(s.rstar->size(), s.size());
          break;
        case ShardIndexKind::kVpTree:
          ASSERT_NE(s.vp, nullptr);
          EXPECT_EQ(s.vp->size(), s.size());
          EXPECT_TRUE(s.vp->CheckInvariants().ok());
          break;
        case ShardIndexKind::kMTree:
          ASSERT_NE(s.m, nullptr);
          EXPECT_EQ(s.m->size(), s.size());
          break;
      }
      total += s.size();
    }
    EXPECT_EQ(total, data.size());
  }
}

TEST(ShardedStoreTest, EmptyDatasetBuildsEmptyShards) {
  ShardingOptions options;
  options.shards = 4;
  ShardedStore store;
  ASSERT_TRUE(ShardedStore::Build({}, options, &store).ok());
  EXPECT_EQ(store.shards(), 4u);
  EXPECT_EQ(store.size(), 0u);
  for (size_t j = 0; j < store.shards(); ++j) {
    EXPECT_EQ(store.shard(j).size(), 0u);
    EXPECT_EQ(store.shard(j).ss, nullptr);
  }
}

TEST(ShardedStoreTest, RejectsMixedDimensions) {
  std::vector<Hypersphere> data = {Hypersphere(Point{0.0, 0.0}, 1.0),
                                   Hypersphere(Point{0.0, 0.0, 0.0}, 1.0)};
  ShardingOptions options;
  options.shards = 2;
  ShardedStore store;
  EXPECT_FALSE(ShardedStore::Build(data, options, &store).ok());
}

#if defined(HYPERDOM_FAULT_INJECTION_ENABLED)
TEST(ShardedStoreTest, BuildFaultPropagatesPerShard) {
  const auto data = MakeData(100, 13);
  ShardingOptions options;
  options.shards = 4;
  // shard/build fires once per shard; arming the nth execution fails the
  // build while shards 1..n-1 already built — the error must surface
  // regardless of which shard it lands on.
  for (uint64_t nth = 1; nth <= 4; ++nth) {
    FaultRegistry::Instance().ArmSite("shard/build", nth);
    ShardedStore store;
    const Status status = ShardedStore::Build(data, options, &store);
    EXPECT_FALSE(status.ok()) << "nth=" << nth;
    EXPECT_EQ(FaultRegistry::Instance().injected(), 1u);
  }
  FaultRegistry::Instance().Reset();
  // Disarmed, the same build succeeds.
  ShardedStore store;
  EXPECT_TRUE(ShardedStore::Build(data, options, &store).ok());
}
#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace shard
}  // namespace hyperdom
