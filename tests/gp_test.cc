// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/gp.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hyperdom {
namespace {

TEST(GpTest, Metadata) {
  GpCriterion c;
  EXPECT_EQ(c.name(), "GP");
  EXPECT_TRUE(c.is_correct());
  EXPECT_FALSE(c.is_sound());
}

// Paper Section 3.1: GP "is optimal for 2-dimensional datasets only" — in
// 2D it must agree with the oracle everywhere.
TEST(GpTest, ExactInTwoDimensions) {
  Rng rng(940);
  GpCriterion c;
  int checked = 0;
  for (int iter = 0; iter < 6000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 2, 10.0);
    if (test::IsBorderline(s)) continue;
    ++checked;
    EXPECT_EQ(c.Dominates(s.sa, s.sb, s.sq), test::OracleDominates(s))
        << test::SceneToString(s);
  }
  EXPECT_GT(checked, 5000);
}

// Correctness sweep in higher dimensions: positives must be true.
class GpCorrectnessTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GpCorrectnessTest, NeverFalsePositive) {
  const size_t dim = GetParam();
  Rng rng(950 + dim);
  GpCriterion c;
  int positives = 0;
  for (int iter = 0; iter < 6000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, dim, 8.0);
    if (!c.Dominates(s.sa, s.sb, s.sq)) continue;
    ++positives;
    if (test::IsBorderline(s)) continue;
    EXPECT_TRUE(test::OracleDominates(s)) << test::SceneToString(s);
  }
  EXPECT_GT(positives, 10);
}

INSTANTIATE_TEST_SUITE_P(Dims, GpCorrectnessTest,
                         ::testing::Values(3, 4, 8, 16));

// The 2D fold loses information: for d > 2 there must exist true dominances
// that GP misses (non-soundness witness).
TEST(GpTest, FalseNegativesExistAboveTwoDimensions) {
  for (size_t dim : {3u, 6u, 10u}) {
    Rng rng(960 + dim);
    GpCriterion c;
    int false_negatives = 0;
    for (int iter = 0; iter < 6000 && false_negatives == 0; ++iter) {
      const test::Scene s = test::RandomScene(&rng, dim, 15.0);
      if (test::IsBorderline(s)) continue;
      if (test::OracleDominates(s) && !c.Dominates(s.sa, s.sb, s.sq)) {
        ++false_negatives;
      }
    }
    EXPECT_GT(false_negatives, 0) << "dim " << dim;
  }
}

// A targeted miss: the fold collapses the perpendicular components to
// norms, anti-aligning the two foci around the query. Scenes whose foci
// perpendicular components are truly ALIGNED and whose margin is thin must
// therefore produce at least one conservative miss in this deterministic
// family.
TEST(GpTest, DirectionBlindnessProducesMisses) {
  GpCriterion c;
  int misses = 0;
  int true_dominances = 0;
  for (double height : {2.0, 3.0, 4.0, 6.0, 8.0, 12.0}) {
    for (double rq : {0.5, 1.0, 2.0}) {
      for (double rab_half : {0.02, 0.2, 0.6}) {
        // ca and cb share their perpendicular direction (the +x axis).
        const test::Scene s{Hypersphere({5.0, 0.0, 0.0}, rab_half),
                            Hypersphere({5.0, 0.0, height}, rab_half),
                            Hypersphere({0.0, 0.0, 0.0}, rq)};
        if (test::IsBorderline(s)) continue;
        const bool truth = test::OracleDominates(s);
        const bool gp = c.Dominates(s.sa, s.sb, s.sq);
        if (gp) {
          EXPECT_TRUE(truth) << test::SceneToString(s);  // still correct
        }
        if (truth) ++true_dominances;
        if (truth && !gp) ++misses;
      }
    }
  }
  EXPECT_GT(true_dominances, 0);
  EXPECT_GT(misses, 0) << "the fold's angle pessimism never bit";
}

TEST(GpTest, OverlapImpliesFalse) {
  Rng rng(970);
  GpCriterion c;
  for (int iter = 0; iter < 500; ++iter) {
    const size_t dim = 2 + rng.UniformU64(6);
    const Hypersphere sa = test::RandomSphere(&rng, dim, 15.0);
    const Hypersphere sb(sa.center(), rng.Uniform(0.0, 4.0));
    const Hypersphere sq = test::RandomSphere(&rng, dim, 10.0);
    EXPECT_FALSE(c.Dominates(sa, sb, sq)) << "overlapping pair";
  }
}

TEST(GpTest, OneDimensionalInputsHandled) {
  // d == 1 routes through the exact branch as well.
  GpCriterion c;
  EXPECT_TRUE(c.Dominates(Hypersphere({1.0}, 0.1), Hypersphere({9.0}, 0.1),
                          Hypersphere({0.0}, 0.1)));
  EXPECT_FALSE(c.Dominates(Hypersphere({9.0}, 0.1), Hypersphere({1.0}, 0.1),
                           Hypersphere({0.0}, 0.1)));
}

}  // namespace
}  // namespace hyperdom
