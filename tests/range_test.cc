// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/range.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "eval/workload.h"

namespace hyperdom {
namespace {

std::set<uint64_t> Ids(const std::vector<DataEntry>& entries) {
  std::set<uint64_t> ids;
  for (const auto& e : entries) ids.insert(e.id);
  return ids;
}

TEST(RangeLinearScanTest, HandComputableScene) {
  const std::vector<Hypersphere> data = {
      Hypersphere({2.0, 0.0}, 1.0),   // 0: maxdist 3.5, certain
      Hypersphere({5.0, 0.0}, 1.0),   // 1: mindist 3.5, maxdist 6.5: possible
      Hypersphere({20.0, 0.0}, 1.0),  // 2: mindist 18.5: out
  };
  const Hypersphere sq({0.0, 0.0}, 0.5);
  const RangeResult result = RangeLinearScan(data, sq, 5.0);
  EXPECT_EQ(Ids(result.certain), (std::set<uint64_t>{0}));
  EXPECT_EQ(Ids(result.possible), (std::set<uint64_t>{0, 1}));
}

TEST(RangeLinearScanTest, CertainSubsetOfPossible) {
  SyntheticSpec spec;
  spec.n = 1000;
  spec.dim = 3;
  spec.seed = 3200;
  const auto data = GenerateSynthetic(spec);
  const RangeResult result = RangeLinearScan(data, data[0], 40.0);
  const auto certain = Ids(result.certain);
  const auto possible = Ids(result.possible);
  for (uint64_t id : certain) EXPECT_TRUE(possible.count(id));
  EXPECT_LE(certain.size(), possible.size());
}

TEST(RangeSearchTest, MatchesLinearScan) {
  SyntheticSpec spec;
  spec.n = 4000;
  spec.dim = 4;
  spec.radius_mean = 8.0;
  spec.seed = 3201;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  for (double range : {0.0, 10.0, 50.0, 200.0}) {
    for (const auto& sq : MakeKnnQueries(data, 5, 3202)) {
      const RangeResult from_tree = RangeSearch(tree, sq, range);
      const RangeResult from_scan = RangeLinearScan(data, sq, range);
      EXPECT_EQ(Ids(from_tree.certain), Ids(from_scan.certain))
          << "range " << range;
      EXPECT_EQ(Ids(from_tree.possible), Ids(from_scan.possible))
          << "range " << range;
    }
  }
}

TEST(RangeSearchTest, EmptyTree) {
  SsTree tree(2);
  const RangeResult result =
      RangeSearch(tree, Hypersphere({0.0, 0.0}, 1.0), 10.0);
  EXPECT_TRUE(result.certain.empty());
  EXPECT_TRUE(result.possible.empty());
}

TEST(RangeSearchTest, ZeroRangeStillFindsOverlapping) {
  // MinDist == 0 for an object overlapping the query region.
  SsTree tree(2);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 0.0}, 2.0), 0).ok());
  ASSERT_TRUE(tree.Insert(Hypersphere({50.0, 0.0}, 2.0), 1).ok());
  const RangeResult result =
      RangeSearch(tree, Hypersphere({0.0, 0.0}, 1.0), 0.0);
  EXPECT_EQ(Ids(result.possible), (std::set<uint64_t>{0}));
  EXPECT_TRUE(result.certain.empty());
}

TEST(RangeSearchTest, PrunesFarSubtrees) {
  SyntheticSpec spec;
  spec.n = 10'000;
  spec.dim = 3;
  spec.radius_mean = 2.0;
  spec.seed = 3203;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  const RangeResult result = RangeSearch(tree, data[0], 10.0);
  EXPECT_GT(result.stats.nodes_pruned, 0u);
  EXPECT_LT(result.stats.entries_accessed, data.size());
}

TEST(RangeSearchTest, GrowingRangeIsMonotone) {
  SyntheticSpec spec;
  spec.n = 2000;
  spec.dim = 3;
  spec.seed = 3204;
  const auto data = GenerateSynthetic(spec);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  size_t prev_possible = 0, prev_certain = 0;
  for (double range : {5.0, 20.0, 60.0, 150.0, 400.0}) {
    const RangeResult result = RangeSearch(tree, data[42], range);
    EXPECT_GE(result.possible.size(), prev_possible);
    EXPECT_GE(result.certain.size(), prev_certain);
    prev_possible = result.possible.size();
    prev_certain = result.certain.size();
  }
  // A range covering the whole space returns everything, certainly.
  const RangeResult all = RangeSearch(tree, data[42], 1e7);
  EXPECT_EQ(all.certain.size(), data.size());
  EXPECT_EQ(all.possible.size(), data.size());
}

}  // namespace
}  // namespace hyperdom
