// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Boundary fuzz harness for the certified verdict engine.
//
// Each scene pins the query radius to the exact dominance boundary
// (rq = dmin, recovered in long double) and then sweeps rq across ±k ULPs
// for k from 0 to ~10^6. For every perturbed triple the harness checks the
// core robustness contract:
//
//   no decisive certified verdict may disagree with the high-precision
//   ground truth, at any distance from the boundary;
//
// and the usefulness contract:
//
//   outside a ±4-ULP band around the boundary, the engine must almost
//   always be decisive (uncertainty rate < 5%).
//
// The sweep runs >= 10^5 triples with a fixed seed so failures reproduce.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dominance/certified.h"
#include "dominance/hyperbola.h"
#include "geometry/focal_frame.h"
#include "geometry/hypersphere.h"

namespace hyperdom {
namespace {

// One scene whose dominance boundary has been located in long double:
// for rq near dmin_hp the unified margin is exactly dmin_hp - rq (the
// distance margins are kept > dmin_hp + 0.5 by construction, so they never
// bind near the boundary).
struct BoundaryScene {
  Hypersphere sa;
  Hypersphere sb;
  Point cq;
  long double dmin_hp;  // boundary radius: dominance <=> rq < dmin_hp
};

Point RandomCenter(Rng* rng, size_t dim) {
  Point p(dim);
  for (auto& v : p) v = rng->Uniform(-10.0, 10.0);
  return p;
}

// Rejection-samples a scene whose boundary margin is the binding one and
// whose boundary radius is moderate (so ULP perturbations of rq are well
// above the long double noise floor). Returns false when the candidate
// fails a filter.
bool TryMakeScene(Rng* rng, size_t dim, BoundaryScene* out) {
  const Point ca = RandomCenter(rng, dim);
  const double ra = rng->Uniform(0.1, 3.0);
  const Point cb = RandomCenter(rng, dim);
  const double rb = rng->Uniform(0.1, 3.0);
  const double rab = ra + rb;
  const double focal = Dist(ca, cb);
  if (focal - rab < 0.5) return false;  // overlap margin must not bind

  Point cq(dim);
  for (size_t i = 0; i < dim; ++i) cq[i] = ca[i] + rng->Gaussian(0.0, 1.0);
  const double da = Dist(cq, ca);
  const double db = Dist(cq, cb);
  const double c_margin_proxy = std::min(focal - rab, (db - da) - rab);
  if (c_margin_proxy < 4.6) return false;

  // Cheap double-precision proxy of the boundary radius before paying for
  // the long double confirmation.
  const FocalCoords<double> fc = ComputeFocalCoords<double>(ca, cb, cq);
  const double dmin_proxy =
      HyperbolaMinDistQuartic(fc.alpha, rab, fc.y1, fc.y2);
  if (!(dmin_proxy > 4.05 && dmin_proxy < 39.9)) return false;
  if (c_margin_proxy < dmin_proxy + 0.55) return false;

  const Hypersphere sa(ca, ra);
  const Hypersphere sb(cb, rb);
  // rq = 0 returns exactly min(overlap margin, center-MDD margin).
  const long double c_margin =
      DominanceMarginLongDouble(sa, sb, Hypersphere(cq, 0.0));
  // rq = 100 is far past any boundary here, so the returned margin is
  // dmin - 100 and the boundary radius recovers exactly (to ~1e-17).
  const long double dmin_hp =
      DominanceMarginLongDouble(sa, sb, Hypersphere(cq, 100.0)) + 100.0L;
  if (!(dmin_hp > 4.0L && dmin_hp < 40.0L)) return false;
  if (!(c_margin > dmin_hp + 0.5L)) return false;

  out->sa = sa;
  out->sb = sb;
  out->cq = cq;
  out->dmin_hp = dmin_hp;
  return true;
}

// rq perturbed k ULPs away from the boundary anchor (exact nextafter chain
// for small |k|, one fused step for large |k|).
double PerturbUlps(double x, long long k) {
  const double inf = std::numeric_limits<double>::infinity();
  if (std::llabs(k) <= 64) {
    for (long long i = 0; i < std::llabs(k); ++i) {
      x = std::nextafter(x, k > 0 ? inf : -inf);
    }
    return x;
  }
  const double ulp = std::nextafter(x, inf) - x;
  return x + static_cast<double>(k) * ulp;
}

TEST(CertifiedFuzzTest, BoundaryPerturbationsNeverFoolTheEngine) {
  constexpr int kScenes = 4000;
  constexpr long long kUlpOffsets[] = {
      0,  1,  -1, 2,   -2,   3,    -3,   4,       -4,      5,    -5, 6, -6,
      8, -8, 16, -16, 64, -64, 256, -256, 4096, -4096, 1 << 20, -(1 << 20)};

  const CertifiedDominance engine;
  Rng rng(0xF5A2);
  uint64_t triples = 0;
  uint64_t disagreements = 0;
  uint64_t uncertain_total = 0;
  uint64_t outside_band = 0;
  uint64_t outside_band_uncertain = 0;
  uint64_t exact_ties = 0;

  int made = 0;
  int attempts = 0;
  constexpr int kMaxAttempts = 2'000'000;
  while (made < kScenes && attempts < kMaxAttempts) {
    ++attempts;
    BoundaryScene scene{Hypersphere({0.0}, 0.0), Hypersphere({0.0}, 0.0),
                        Point{}, 0.0L};
    const size_t dim = 2 + static_cast<size_t>(rng.UniformU64(4));
    if (!TryMakeScene(&rng, dim, &scene)) continue;
    ++made;

    // Spot-check the cached-margin identity against a full re-evaluation:
    // near the boundary the unified margin must equal dmin_hp - rq.
    if (made % 500 == 1) {
      const double rq_probe = static_cast<double>(scene.dmin_hp) - 1e-7;
      const long double full = DominanceMarginLongDouble(
          scene.sa, scene.sb, Hypersphere(scene.cq, rq_probe));
      const long double cached =
          scene.dmin_hp - static_cast<long double>(rq_probe);
      ASSERT_NEAR(static_cast<double>(full - cached), 0.0, 1e-15);
    }

    const double rq_anchor = static_cast<double>(scene.dmin_hp);
    for (long long k : kUlpOffsets) {
      const double rq = PerturbUlps(rq_anchor, k);
      ASSERT_GT(rq, 0.0);
      const long double truth_margin =
          scene.dmin_hp - static_cast<long double>(rq);
      const Hypersphere sq(scene.cq, rq);
      const Verdict v = engine.Decide(scene.sa, scene.sb, sq);
      ++triples;

      if (truth_margin == 0.0L) {
        // A dead tie: dominance is (vacuously) false, but no finite
        // precision distinguishes it from true; only record it.
        ++exact_ties;
        if (v == Verdict::kDominates) ++disagreements;
        continue;
      }
      const bool truth = truth_margin > 0.0L;
      if (v == Verdict::kUncertain) {
        ++uncertain_total;
      } else if ((v == Verdict::kDominates) != truth) {
        ++disagreements;
        ADD_FAILURE() << "decisive verdict disagrees with ground truth: k="
                      << k << " rq=" << rq << " margin="
                      << static_cast<double>(truth_margin)
                      << " Sa=" << scene.sa.ToString()
                      << " Sb=" << scene.sb.ToString()
                      << " Sq=" << sq.ToString();
      }

      const double ulp = std::nextafter(rq, std::numeric_limits<double>::infinity()) - rq;
      if (std::fabs(static_cast<double>(truth_margin)) > 4.0 * ulp) {
        ++outside_band;
        if (v == Verdict::kUncertain) ++outside_band_uncertain;
      }
    }
  }

  ASSERT_EQ(made, kScenes) << "scene rejection rate too high ("
                           << attempts << " attempts)";
  EXPECT_GE(triples, 100'000u);
  EXPECT_EQ(disagreements, 0u);
  // Usefulness: outside the ±4-ULP band the engine must be decisive almost
  // always (< 5% uncertainty).
  ASSERT_GT(outside_band, 0u);
  EXPECT_LT(static_cast<double>(outside_band_uncertain),
            0.05 * static_cast<double>(outside_band))
      << outside_band_uncertain << " of " << outside_band
      << " outside-band triples were uncertain";

  const CertifiedStats stats = engine.stats();
  EXPECT_EQ(stats.calls, triples);
  // Large perturbations must resolve in the fast tier; sub-band ones must
  // reach the long double tier rather than stay uncertain.
  EXPECT_GT(stats.resolved_quartic, 0u);
  EXPECT_GT(stats.resolved_long_double, 0u);
  std::cout << "[fuzz] triples=" << triples << " scenes=" << made
            << " disagreements=" << disagreements
            << " exact_ties=" << exact_ties
            << " uncertain=" << uncertain_total << " ("
            << 100.0 * stats.UncertainRate() << "% of calls)\n"
            << "[fuzz] outside ±4-ULP band: " << outside_band << " triples, "
            << outside_band_uncertain << " uncertain ("
            << (outside_band
                    ? 100.0 * static_cast<double>(outside_band_uncertain) /
                          static_cast<double>(outside_band)
                    : 0.0)
            << "%)\n"
            << "[fuzz] tiers: quartic=" << stats.resolved_quartic
            << " parametric=" << stats.resolved_parametric
            << " long-double=" << stats.resolved_long_double
            << " oracle=" << stats.resolved_oracle << "\n";
}

// A second, cheaper sweep: random *far-from-boundary* scenes must resolve
// decisively in the fast tier with verdicts matching the ground truth sign.
TEST(CertifiedFuzzTest, FarScenesResolveFastAndCorrectly) {
  const CertifiedDominance engine;
  Rng rng(0xF5A3);
  uint64_t checked = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const size_t dim = 2 + static_cast<size_t>(rng.UniformU64(4));
    Point ca = RandomCenter(&rng, dim);
    Point cb = RandomCenter(&rng, dim);
    Point cq = RandomCenter(&rng, dim);
    const Hypersphere sa(std::move(ca), rng.Uniform(0.0, 3.0));
    const Hypersphere sb(std::move(cb), rng.Uniform(0.0, 3.0));
    const Hypersphere sq(std::move(cq), rng.Uniform(0.0, 3.0));
    const long double margin = DominanceMarginLongDouble(sa, sb, sq);
    if (std::fabs(static_cast<double>(margin)) < 1e-9) continue;  // razor edge
    ++checked;
    const Verdict v = engine.Decide(sa, sb, sq);
    if (v == Verdict::kUncertain) continue;
    EXPECT_EQ(v == Verdict::kDominates, margin > 0.0L)
        << "Sa=" << sa.ToString() << " Sb=" << sb.ToString()
        << " Sq=" << sq.ToString();
  }
  EXPECT_GT(checked, 15000u);
  EXPECT_LT(engine.stats().UncertainRate(), 0.01);
}

}  // namespace
}  // namespace hyperdom
