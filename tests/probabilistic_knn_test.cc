// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "query/probabilistic_knn.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(ProbabilisticKnnTest, CertainSceneIsDeterministic) {
  // Well-separated tiny spheres: top-2 is certain.
  const std::vector<Hypersphere> data = {
      Hypersphere({1.0, 0.0}, 0.01), Hypersphere({2.0, 0.0}, 0.01),
      Hypersphere({50.0, 0.0}, 0.01), Hypersphere({60.0, 0.0}, 0.01)};
  const Hypersphere sq({0.0, 0.0}, 0.01);
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions options;
  options.k = 2;
  options.tau = 0.9;
  options.samples = 100;
  const auto result = ProbabilisticKnn(data, sq, exact, options);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_EQ(result.answers[0].id, 0u);
  EXPECT_EQ(result.answers[1].id, 1u);
  EXPECT_DOUBLE_EQ(result.answers[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(result.answers[1].probability, 1.0);
  EXPECT_EQ(result.candidates_pruned, 2u);
}

TEST(ProbabilisticKnnTest, SymmetricTieIsNearHalfForThirdSlot) {
  // Two certain winners and two symmetric contenders for the 3rd slot.
  const std::vector<Hypersphere> data = {
      Hypersphere({1.0, 0.0}, 0.01), Hypersphere({-1.0, 0.0}, 0.01),
      Hypersphere({0.0, 10.0}, 1.0), Hypersphere({0.0, -10.0}, 1.0)};
  const Hypersphere sq({0.0, 0.0}, 0.01);
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions options;
  options.k = 3;
  options.tau = 0.25;
  options.samples = 20'000;
  const auto result = ProbabilisticKnn(data, sq, exact, options);
  ASSERT_EQ(result.answers.size(), 4u);  // all pass tau = 0.25
  double p2 = 0.0, p3 = 0.0;
  for (const auto& c : result.answers) {
    if (c.id == 2) p2 = c.probability;
    if (c.id == 3) p3 = c.probability;
  }
  EXPECT_NEAR(p2, 0.5, 0.02);
  EXPECT_NEAR(p3, 0.5, 0.02);
  EXPECT_NEAR(p2 + p3, 1.0, 1e-12);  // exactly one wins each round
}

TEST(ProbabilisticKnnTest, PrunedObjectsNeverScore) {
  // Validity of the >= k-dominators prune: pruned objects must never be
  // credited by the Monte Carlo either.
  SyntheticSpec spec;
  spec.n = 150;
  spec.dim = 3;
  spec.radius_mean = 5.0;
  spec.seed = 3300;
  const auto data = GenerateSynthetic(spec);
  const Hypersphere sq = data[9];
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions options;
  options.k = 5;
  options.tau = 0.0;  // keep every scored candidate
  options.samples = 300;
  const auto result = ProbabilisticKnn(data, sq, exact, options);
  EXPECT_EQ(result.candidates_sampled + result.candidates_pruned,
            data.size());

  std::set<uint64_t> answer_ids;
  double total_probability = 0.0;
  for (const auto& c : result.answers) {
    answer_ids.insert(c.id);
    total_probability += c.probability;
  }
  // Expected top-k mass: probabilities over all objects sum to k; since
  // pruned objects provably have zero probability, the candidates carry
  // all of it.
  EXPECT_NEAR(total_probability, 5.0, 1e-9);
}

TEST(ProbabilisticKnnTest, ThresholdFiltersAnswers) {
  SyntheticSpec spec;
  spec.n = 120;
  spec.dim = 3;
  spec.radius_mean = 8.0;
  spec.seed = 3301;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions lo;
  lo.k = 4;
  lo.tau = 0.05;
  lo.samples = 500;
  ProbabilisticKnnOptions hi = lo;
  hi.tau = 0.8;
  const auto loose = ProbabilisticKnn(data, data[0], exact, lo);
  const auto strict = ProbabilisticKnn(data, data[0], exact, hi);
  EXPECT_GE(loose.answers.size(), strict.answers.size());
  for (const auto& c : strict.answers) EXPECT_GE(c.probability, 0.8);
}

TEST(ProbabilisticKnnTest, DeterministicInSeed) {
  SyntheticSpec spec;
  spec.n = 80;
  spec.dim = 2;
  spec.seed = 3302;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions options;
  options.k = 3;
  options.tau = 0.1;
  options.samples = 200;
  const auto a = ProbabilisticKnn(data, data[1], exact, options);
  const auto b = ProbabilisticKnn(data, data[1], exact, options);
  ASSERT_EQ(a.answers.size(), b.answers.size());
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].id, b.answers[i].id);
    EXPECT_DOUBLE_EQ(a.answers[i].probability, b.answers[i].probability);
  }
}

TEST(ProbabilisticKnnTest, EmptyAndTinyDatasets) {
  HyperbolaCriterion exact;
  ProbabilisticKnnOptions options;
  options.k = 3;
  options.tau = 0.5;
  options.samples = 50;
  const Hypersphere sq({0.0, 0.0}, 1.0);
  EXPECT_TRUE(ProbabilisticKnn({}, sq, exact, options).answers.empty());
  // Fewer objects than k: everything is certain.
  const std::vector<Hypersphere> two = {Hypersphere({5.0, 0.0}, 1.0),
                                        Hypersphere({9.0, 0.0}, 1.0)};
  const auto result = ProbabilisticKnn(two, sq, exact, options);
  ASSERT_EQ(result.answers.size(), 2u);
  EXPECT_DOUBLE_EQ(result.answers[0].probability, 1.0);
  EXPECT_DOUBLE_EQ(result.answers[1].probability, 1.0);
}

}  // namespace
}  // namespace hyperdom
