// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Structured logger tests: level gating, JSON line shape, field
// rendering/escaping, sink routing (callback + file), the macro's
// evaluate-nothing-when-disabled guarantee, and the slow-query record.

#include "obs/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace hyperdom {
namespace obs {
namespace {

// Captures emitted lines and restores the default sink/level on exit, so
// tests compose regardless of order (the logger is process-global).
class LogCapture {
 public:
  LogCapture() {
    Logger::Instance().SetCallbackSink(
        [this](const std::string& line) { lines_.push_back(line); });
  }
  ~LogCapture() {
    Logger::Instance().SetCallbackSink(nullptr);
    Logger::Instance().SetLevel(LogLevel::kWarn);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

TEST(LogLevelTest, NamesRoundTrip) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    LogLevel parsed = LogLevel::kOff;
    ASSERT_TRUE(ParseLogLevel(LogLevelName(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  LogLevel parsed = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("loud", &parsed));
  EXPECT_EQ(parsed, LogLevel::kInfo);  // untouched on failure
}

TEST(LoggerTest, LevelGates) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kWarn);
  EXPECT_FALSE(logger.Enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.Enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.Enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.Enabled(LogLevel::kError));
  // kOff can never be "enabled", even with the threshold all the way down.
  logger.SetLevel(LogLevel::kDebug);
  EXPECT_FALSE(logger.Enabled(LogLevel::kOff));
  logger.SetLevel(LogLevel::kOff);
  EXPECT_FALSE(logger.Enabled(LogLevel::kError));
}

TEST(LoggerTest, JsonLineShape) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kInfo);
  logger.Log(LogLevel::kInfo, "server", 42, "request done",
             {LogField::U64("latency_ns", 1234), LogField::Bool("ok", true),
              LogField::F64("rate", 0.5), LogField::I64("delta", -3)});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_EQ(line.find("{\"ts_ns\":"), 0u);
  EXPECT_NE(line.find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"server\""), std::string::npos);
  EXPECT_NE(line.find("\"request_id\":42"), std::string::npos);
  EXPECT_NE(line.find("\"msg\":\"request done\""), std::string::npos);
  EXPECT_NE(line.find("\"latency_ns\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(line.find("\"rate\":0.5"), std::string::npos);
  EXPECT_NE(line.find("\"delta\":-3"), std::string::npos);
  EXPECT_EQ(line.back(), '}');
}

TEST(LoggerTest, RequestIdZeroIsOmitted) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kInfo);
  logger.Log(LogLevel::kInfo, "cli", 0, "no id here", {});
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].find("request_id"), std::string::npos);
}

TEST(LoggerTest, StringFieldsAreJsonEscaped) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kInfo);
  logger.Log(LogLevel::kInfo, "server", 0, "quote \" and newline \n",
             {LogField::Str("path", "a\\b\"c")});
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("quote \\\" and newline \\n"), std::string::npos);
  EXPECT_NE(line.find("\"path\":\"a\\\\b\\\"c\""), std::string::npos);
  // No raw newline may survive into a JSON-lines stream.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LoggerTest, MacroSkipsFieldEvaluationWhenDisabled) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kWarn);
  int evaluations = 0;
  auto costly = [&evaluations] {
    ++evaluations;
    return uint64_t{7};
  };
  HYPERDOM_LOG(LogLevel::kDebug, "test", 0, "below threshold",
               LogField::U64("v", costly()));
  EXPECT_EQ(evaluations, 0);
  EXPECT_TRUE(capture.lines().empty());
  HYPERDOM_LOG(LogLevel::kError, "test", 0, "above threshold",
               LogField::U64("v", costly()));
  EXPECT_EQ(evaluations, 1);
  EXPECT_EQ(capture.lines().size(), 1u);
}

TEST(LoggerTest, FileSinkAppends) {
  const std::string path = ::testing::TempDir() + "/hyperdom_log_test.jsonl";
  std::remove(path.c_str());
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kInfo);
  ASSERT_TRUE(logger.OpenFileSink(path).ok());
  logger.Log(LogLevel::kInfo, "test", 1, "first", {});
  logger.Log(LogLevel::kInfo, "test", 2, "second", {});
  logger.SetStderrSink();  // closes the file
  logger.SetLevel(LogLevel::kWarn);
  std::ifstream in(path);
  ASSERT_TRUE(static_cast<bool>(in));
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"msg\":\"first\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"msg\":\"second\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowQueryLogTest, EmitsSchemaTaggedRecord) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kWarn);
  SlowQueryRecord record;
  record.request_id = 99;
  record.latency_ns = 5'000'000;
  record.threshold_ns = 1'000'000;
  record.index_kind = "ss";
  record.k = 10;
  record.nodes_visited = 120;
  record.completeness = 1.0;
  record.store_version = 3;
  LogSlowQuery(record);
  ASSERT_EQ(capture.lines().size(), 1u);
  const std::string& line = capture.lines()[0];
  EXPECT_NE(line.find("\"schema\":\"hyperdom-slowlog-v1\""),
            std::string::npos);
  EXPECT_NE(line.find("\"level\":\"warn\""), std::string::npos);
  EXPECT_NE(line.find("\"component\":\"slowlog\""), std::string::npos);
  EXPECT_NE(line.find("\"request_id\":99"), std::string::npos);
  EXPECT_NE(line.find("\"latency_ns\":5000000"), std::string::npos);
  EXPECT_NE(line.find("\"threshold_ns\":1000000"), std::string::npos);
  EXPECT_NE(line.find("\"index\":\"ss\""), std::string::npos);
  EXPECT_NE(line.find("\"k\":10"), std::string::npos);
  EXPECT_NE(line.find("\"nodes_visited\":120"), std::string::npos);
  EXPECT_NE(line.find("\"completeness\":1"), std::string::npos);
  EXPECT_NE(line.find("\"store_version\":3"), std::string::npos);
}

TEST(SlowQueryLogTest, CountsEvenWhenLoggingDisabled) {
  LogCapture capture;
  Logger& logger = Logger::Instance();
  logger.SetLevel(LogLevel::kOff);
  const uint64_t emitted_before = logger.lines_emitted();
  SlowQueryRecord record;
  record.latency_ns = 1;
  LogSlowQuery(record);  // counter bumps; no line
  EXPECT_TRUE(capture.lines().empty());
  EXPECT_EQ(logger.lines_emitted(), emitted_before);
}

}  // namespace
}  // namespace obs
}  // namespace hyperdom
