// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/generator.h"

namespace hyperdom {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return testing::TempDir() + "/hyperdom_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
};

TEST_F(CsvTest, RoundTrip) {
  SyntheticSpec spec;
  spec.n = 200;
  spec.dim = 5;
  spec.seed = 77;
  const auto original = GenerateSynthetic(spec);
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveSpheresCsv(path, original).ok());

  auto loaded = LoadSpheresCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST_F(CsvTest, EmptyDatasetRoundTrips) {
  const std::string path = TempPath("empty.csv");
  ASSERT_TRUE(SaveSpheresCsv(path, {}).ok());
  auto loaded = LoadSpheresCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST_F(CsvTest, MixedDimensionalityRejectedOnSave) {
  const std::vector<Hypersphere> bad = {Hypersphere({1.0, 2.0}, 0.5),
                                        Hypersphere({1.0, 2.0, 3.0}, 0.5)};
  const Status st = SaveSpheresCsv(TempPath("mixed.csv"), bad);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, MissingFileIsNotFound) {
  auto loaded = LoadSpheresCsv("/nonexistent/dir/file.csv");
  ASSERT_FALSE(loaded.ok());
  // common/io maps ENOENT to kNotFound and names the syscall and path.
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
  EXPECT_NE(loaded.status().message().find("/nonexistent/dir/file.csv"),
            std::string::npos);
}

TEST_F(CsvTest, CommentsAndBlankLinesSkipped) {
  const std::string path = TempPath("comments.csv");
  WriteFile(path, "# header\n\n1,2,0.5\n  \n# more\n3,4,1.5\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0], Hypersphere({1.0, 2.0}, 0.5));
  EXPECT_EQ((*loaded)[1], Hypersphere({3.0, 4.0}, 1.5));
  std::remove(path.c_str());
}

TEST_F(CsvTest, BadNumberIsCorruption) {
  const std::string path = TempPath("badnum.csv");
  WriteFile(path, "1,2,abc\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("line 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, InconsistentDimensionalityIsCorruption) {
  const std::string path = TempPath("baddim.csv");
  WriteFile(path, "1,2,0.5\n1,2,3,0.5\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CsvTest, NegativeRadiusIsCorruption) {
  const std::string path = TempPath("negr.csv");
  WriteFile(path, "1,2,-0.5\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CsvTest, NonFiniteCenterIsCorruption) {
  // A "nan" token parses as a double but fails sphere validation; the load
  // must fail with the offending line, not hand out a poisoned sphere.
  const std::string path = TempPath("nancenter.csv");
  WriteFile(path, "1,2,0.5\nnan,2,0.5\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  EXPECT_NE(loaded.status().message().find("line 2"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(CsvTest, InfiniteRadiusIsCorruption) {
  const std::string path = TempPath("infradius.csv");
  WriteFile(path, "1,2,inf\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CsvTest, SingleFieldRowIsCorruption) {
  const std::string path = TempPath("short.csv");
  WriteFile(path, "42\n");
  auto loaded = LoadSpheresCsv(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST_F(CsvTest, FullPrecisionPreserved) {
  const std::vector<Hypersphere> original = {
      Hypersphere({1.0 / 3.0, 2.0 / 7.0}, 1e-17),
      Hypersphere({-1234567.89012345, 0.1}, 3.14159265358979)};
  const std::string path = TempPath("precision.csv");
  ASSERT_TRUE(SaveSpheresCsv(path, original).ok());
  auto loaded = LoadSpheresCsv(path);
  ASSERT_TRUE(loaded.ok());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]);  // bit-exact via %.17g
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hyperdom
