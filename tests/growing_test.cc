// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/growing.h"

#include <gtest/gtest.h>

#include "dominance/hyperbola.h"
#include "test_util.h"

namespace hyperdom {
namespace {

GrowingSphere Grow(Hypersphere s, double rate) {
  return GrowingSphere{std::move(s), rate};
}

TEST(GrowingSphereTest, AtTime) {
  const GrowingSphere g = Grow(Hypersphere({1.0, 2.0}, 3.0), 0.5);
  EXPECT_DOUBLE_EQ(g.AtTime(0.0).radius(), 3.0);
  EXPECT_DOUBLE_EQ(g.AtTime(4.0).radius(), 5.0);
  EXPECT_EQ(g.AtTime(4.0).center(), g.at_t0.center());
}

TEST(DominatesAtTimeTest, MatchesStaticHyperbola) {
  Rng rng(7100);
  HyperbolaCriterion c;
  for (int iter = 0; iter < 1000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 8.0);
    const GrowingSphere ga = Grow(s.sa, rng.Uniform(0.0, 2.0));
    const GrowingSphere gb = Grow(s.sb, rng.Uniform(0.0, 2.0));
    const GrowingSphere gq = Grow(s.sq, rng.Uniform(0.0, 2.0));
    const double t = rng.Uniform(0.0, 5.0);
    EXPECT_EQ(DominatesAtTime(ga, gb, gq, t),
              c.Dominates(ga.AtTime(t), gb.AtTime(t), gq.AtTime(t)));
  }
}

TEST(DominanceExpiryTest, NeverDominantGivesZero) {
  const GrowingSphere ga = Grow(Hypersphere({10.0, 0.0}, 1.0), 0.1);
  const GrowingSphere gb = Grow(Hypersphere({1.0, 0.0}, 1.0), 0.1);
  const GrowingSphere gq = Grow(Hypersphere({0.0, 0.0}, 1.0), 0.1);
  EXPECT_DOUBLE_EQ(DominanceExpiry(ga, gb, gq, 100.0), 0.0);
}

TEST(DominanceExpiryTest, AlwaysDominantGivesHorizon) {
  const GrowingSphere ga = Grow(Hypersphere({1.0, 0.0}, 0.1), 0.0);
  const GrowingSphere gb = Grow(Hypersphere({100.0, 0.0}, 0.1), 0.0);
  const GrowingSphere gq = Grow(Hypersphere({0.0, 0.0}, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(DominanceExpiry(ga, gb, gq, 50.0), 50.0);
}

TEST(DominanceExpiryTest, ClosedFormPointQueryCase) {
  // Point query at the origin, Sa at 2, Sb at 20: the margin is
  // f(cq) = 20 - 2 = 18, and dominance needs 18 > ra(t) + rb(t)
  // = 1 + 2t, so the expiry is t = 8.5.
  const GrowingSphere ga = Grow(Hypersphere({2.0, 0.0}, 0.5), 1.0);
  const GrowingSphere gb = Grow(Hypersphere({20.0, 0.0}, 0.5), 1.0);
  const GrowingSphere gq = Grow(Hypersphere({0.0, 0.0}, 0.0), 0.0);
  EXPECT_NEAR(DominanceExpiry(ga, gb, gq, 100.0), 8.5, 1e-6);
}

TEST(DominanceExpiryTest, PredicateIsMonotoneAroundExpiry) {
  Rng rng(7101);
  int found = 0;
  for (int iter = 0; iter < 300 && found < 60; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 2, 5.0);
    const GrowingSphere ga = Grow(s.sa, rng.Uniform(0.1, 1.0));
    const GrowingSphere gb = Grow(s.sb, rng.Uniform(0.1, 1.0));
    const GrowingSphere gq = Grow(s.sq, rng.Uniform(0.1, 1.0));
    const double horizon = 200.0;
    const double expiry = DominanceExpiry(ga, gb, gq, horizon);
    if (expiry <= 0.0 || expiry >= horizon) continue;
    ++found;
    EXPECT_TRUE(DominatesAtTime(ga, gb, gq, expiry * 0.99));
    EXPECT_FALSE(DominatesAtTime(ga, gb, gq, expiry * 1.01 + 1e-6));
  }
  EXPECT_GT(found, 10);
}

TEST(DominanceExpiryTest, FasterGrowthExpiresSooner) {
  const Hypersphere sa({2.0, 0.0}, 0.5);
  const Hypersphere sb({30.0, 0.0}, 0.5);
  const Hypersphere sq({0.0, 0.0}, 1.0);
  const double slow =
      DominanceExpiry(Grow(sa, 0.5), Grow(sb, 0.5), Grow(sq, 0.0), 1000.0);
  const double fast =
      DominanceExpiry(Grow(sa, 2.0), Grow(sb, 2.0), Grow(sq, 0.0), 1000.0);
  EXPECT_LT(fast, slow);
  EXPECT_GT(fast, 0.0);
}

}  // namespace
}  // namespace hyperdom
