// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Shared helpers for the hyperdom test suite: deterministic random scene
// builders and margin-aware ground truth (so property sweeps never compare
// decisions on floating-point razor edges).

#ifndef HYPERDOM_TESTS_TEST_UTIL_H_
#define HYPERDOM_TESTS_TEST_UTIL_H_

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dominance/numeric_oracle.h"
#include "geometry/hypersphere.h"

namespace hyperdom {
namespace test {

/// A random point with coordinates ~ Gaussian(mean, stddev).
inline Point RandomPoint(Rng* rng, size_t dim, double mean = 100.0,
                         double stddev = 25.0) {
  Point p(dim);
  for (auto& v : p) v = rng->Gaussian(mean, stddev);
  return p;
}

/// A random hypersphere following the paper's synthetic recipe.
inline Hypersphere RandomSphere(Rng* rng, size_t dim, double radius_mean) {
  const double r = rng->Gaussian(radius_mean, radius_mean / 4.0);
  return Hypersphere(RandomPoint(rng, dim), std::max(0.0, r));
}

/// One random dominance scene.
struct Scene {
  Hypersphere sa;
  Hypersphere sb;
  Hypersphere sq;
};

inline Scene RandomScene(Rng* rng, size_t dim, double radius_mean) {
  return Scene{RandomSphere(rng, dim, radius_mean),
               RandomSphere(rng, dim, radius_mean),
               RandomSphere(rng, dim, radius_mean)};
}

/// Exact MDD margin of a scene: min distance difference minus (ra + rb).
/// Positive -> dominance (given non-overlap), negative -> no dominance;
/// |margin| below a tolerance means "too close to call", and sweeps skip
/// the comparison.
inline double MddMargin(const Scene& s) {
  return MinDistanceDifference(s.sa, s.sb, s.sq) -
         (s.sa.radius() + s.sb.radius());
}

/// Ground-truth dominance via the oracle.
inline bool OracleDominates(const Scene& s) {
  return !Overlaps(s.sa, s.sb) && MddMargin(s) > 0.0;
}

/// True when the scene is too close to the decision boundary for exact
/// comparison across independently rounded implementations.
inline bool IsBorderline(const Scene& s, double tol = 1e-6) {
  if (std::fabs(MddMargin(s)) < tol) return true;
  // Overlap boundary is a second razor edge.
  const double gap = Dist(s.sa.center(), s.sb.center()) -
                     (s.sa.radius() + s.sb.radius());
  return std::fabs(gap) < tol;
}

/// Pretty label for gtest diagnostics.
inline std::string SceneToString(const Scene& s) {
  return "Sa=" + s.sa.ToString() + " Sb=" + s.sb.ToString() +
         " Sq=" + s.sq.ToString();
}

}  // namespace test
}  // namespace hyperdom

#endif  // HYPERDOM_TESTS_TEST_UTIL_H_
