// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/metric_minmax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "dominance/minmax.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(PointMetricTest, Definitions) {
  const Point a = {0.0, 0.0};
  const Point b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(L1Metric().Distance(a, b), 7.0);
  EXPECT_DOUBLE_EQ(L2Metric().Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(LInfMetric().Distance(a, b), 4.0);
  EXPECT_NEAR(LpMetric(3.0).Distance(a, b),
              std::pow(27.0 + 64.0, 1.0 / 3.0), 1e-12);
}

TEST(PointMetricTest, LpInterpolatesBetweenL1AndLinf) {
  Rng rng(2300);
  const LpMetric p15(1.5);
  const L1Metric l1;
  const LInfMetric linf;
  for (int i = 0; i < 500; ++i) {
    Point a(3), b(3);
    for (int j = 0; j < 3; ++j) {
      a[j] = rng.Uniform(-10, 10);
      b[j] = rng.Uniform(-10, 10);
    }
    EXPECT_LE(p15.Distance(a, b), l1.Distance(a, b) + 1e-9);
    EXPECT_GE(p15.Distance(a, b), linf.Distance(a, b) - 1e-9);
  }
}

TEST(PointMetricTest, NormAxiomsSampled) {
  Rng rng(2301);
  const L1Metric l1;
  const LInfMetric linf;
  const LpMetric p3(3.0);
  const PointMetric* metrics[] = {&l1, &linf, &p3};
  for (const PointMetric* m : metrics) {
    for (int i = 0; i < 300; ++i) {
      Point a(4), b(4), c(4);
      for (int j = 0; j < 4; ++j) {
        a[j] = rng.Uniform(-5, 5);
        b[j] = rng.Uniform(-5, 5);
        c[j] = rng.Uniform(-5, 5);
      }
      EXPECT_DOUBLE_EQ(m->Distance(a, a), 0.0);
      EXPECT_DOUBLE_EQ(m->Distance(a, b), m->Distance(b, a));
      EXPECT_LE(m->Distance(a, c),
                m->Distance(a, b) + m->Distance(b, c) + 1e-9);
    }
  }
}

TEST(MetricMinMaxTest, L2MatchesEuclideanMinMax) {
  const L2Metric l2;
  const MetricMinMaxDominance metric_minmax(&l2);
  const MinMaxCriterion euclidean;
  Rng rng(2302);
  for (int i = 0; i < 3000; ++i) {
    const test::Scene s = test::RandomScene(&rng, 4, 10.0);
    EXPECT_EQ(metric_minmax.Dominates(s.sa, s.sb, s.sq),
              euclidean.Dominates(s.sa, s.sb, s.sq));
  }
}

// Correctness in any metric: if MetricMinMax accepts, then every sampled
// triple of ball points obeys the strict ordering.
class MetricCorrectnessTest : public ::testing::TestWithParam<int> {
 protected:
  const PointMetric& metric() const {
    static const L1Metric l1;
    static const LInfMetric linf;
    static const LpMetric p3(3.0);
    switch (GetParam()) {
      case 0:
        return l1;
      case 1:
        return linf;
      default:
        return p3;
    }
  }

  // A random point of the metric ball: rejection-sample the bounding box.
  Point SampleBall(Rng* rng, const Hypersphere& ball) const {
    for (;;) {
      Point p(ball.dim());
      for (size_t i = 0; i < ball.dim(); ++i) {
        p[i] = ball.center()[i] +
               rng->Uniform(-ball.radius(), ball.radius());
      }
      if (ball.radius() == 0.0 ||
          metric().Distance(p, ball.center()) <= ball.radius()) {
        return p;
      }
    }
  }
};

TEST_P(MetricCorrectnessTest, PositivesHaveNoCounterexample) {
  Rng rng(2303 + GetParam());
  const MetricMinMaxDominance criterion(&metric());
  int positives = 0;
  for (int iter = 0; iter < 4000 && positives < 300; ++iter) {
    const test::Scene s = test::RandomScene(&rng, 3, 6.0);
    if (!criterion.Dominates(s.sa, s.sb, s.sq)) continue;
    ++positives;
    for (int k = 0; k < 10; ++k) {
      const Point a = SampleBall(&rng, s.sa);
      const Point b = SampleBall(&rng, s.sb);
      const Point q = SampleBall(&rng, s.sq);
      EXPECT_LT(metric().Distance(a, q), metric().Distance(b, q))
          << test::SceneToString(s);
    }
  }
  EXPECT_GT(positives, 20);
}

INSTANTIATE_TEST_SUITE_P(Metrics, MetricCorrectnessTest,
                         ::testing::Values(0, 1, 2));

TEST(MetricMinMaxTest, MinMaxDistDefinitions) {
  const L1Metric l1;
  const MetricMinMaxDominance m(&l1);
  const Hypersphere a({0.0, 0.0}, 1.0);
  const Hypersphere b({3.0, 4.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.MaxDist(a, b), 7.0 + 3.0);
  EXPECT_DOUBLE_EQ(m.MinDist(a, b), 7.0 - 3.0);
  const Hypersphere overlapping({1.0, 1.0}, 2.0);
  EXPECT_DOUBLE_EQ(m.MinDist(a, overlapping), 0.0);
}

TEST(MetricMinMaxTest, MetricChangesDecisions) {
  // Sb diagonal from the query: far in L1, close in Linf.
  const Hypersphere sa({3.5, 0.0}, 0.1);
  const Hypersphere sb({2.4, 2.4}, 0.1);
  const Hypersphere sq({0.0, 0.0}, 0.1);
  const L1Metric l1;
  const LInfMetric linf;
  // L1: d(sa)=3.5, d(sb)=4.8 -> dominance plausible;
  // Linf: d(sa)=3.5, d(sb)=2.4 -> surely not.
  EXPECT_TRUE(MetricMinMaxDominance(&l1).Dominates(sa, sb, sq));
  EXPECT_FALSE(MetricMinMaxDominance(&linf).Dominates(sa, sb, sq));
}

TEST(MetricMinMaxTest, Names) {
  EXPECT_EQ(L1Metric().name(), "L1");
  EXPECT_EQ(L2Metric().name(), "L2");
  EXPECT_EQ(LInfMetric().name(), "Linf");
  EXPECT_EQ(LpMetric(2.5).name(), "L2.5");
}

}  // namespace
}  // namespace hyperdom
