// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "dominance/trigonometric.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace hyperdom {
namespace {

TEST(TrigonometricTest, Metadata) {
  TrigonometricCriterion c;
  EXPECT_EQ(c.name(), "Trigonometric");
  EXPECT_FALSE(c.is_correct());
  EXPECT_TRUE(c.is_sound());
}

TEST(TrigonometricTest, ObviousCases) {
  TrigonometricCriterion c;
  EXPECT_TRUE(c.Dominates(Hypersphere({2.0, 0.0}, 0.5),
                          Hypersphere({100.0, 0.0}, 0.5),
                          Hypersphere({0.0, 0.0}, 0.5)));
  EXPECT_FALSE(c.Dominates(Hypersphere({100.0, 0.0}, 0.5),
                           Hypersphere({2.0, 0.0}, 0.5),
                           Hypersphere({0.0, 0.0}, 0.5)));
}

// Paper Lemma 11's exact counterexample: the criterion answers true even
// though dominance does not hold (optimizing g is not optimizing f).
TEST(TrigonometricTest, Lemma11FalsePositive) {
  const Hypersphere sa({20.0, 8.0}, 0.4);
  const Hypersphere sb({8.0, 10.0}, 0.3);
  const Hypersphere sq({16.0, 16.0}, 0.3);
  const test::Scene scene{sa, sb, sq};
  ASSERT_FALSE(test::OracleDominates(scene));  // dominance genuinely fails
  TrigonometricCriterion c;
  EXPECT_TRUE(c.Dominates(sa, sb, sq));  // ...but the criterion accepts
}

// Soundness sweep (paper Lemma 12): a negative answer must match the
// oracle's negative, across dimensions and radius scales — the paper's
// workloads keep Dist(ca,q) + Dist(cb,q) >= 1, where the surrogate's
// soundness argument applies.
class TrigSoundnessTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(TrigSoundnessTest, NeverFalseNegative) {
  const auto [dim, mu] = GetParam();
  Rng rng(980 + dim * 7 + static_cast<uint64_t>(mu));
  TrigonometricCriterion c;
  int negatives = 0;
  for (int iter = 0; iter < 6000; ++iter) {
    const test::Scene s = test::RandomScene(&rng, dim, mu);
    if (c.Dominates(s.sa, s.sb, s.sq)) continue;
    ++negatives;
    if (test::IsBorderline(s)) continue;
    EXPECT_FALSE(test::OracleDominates(s)) << test::SceneToString(s);
  }
  EXPECT_GT(negatives, 100);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TrigSoundnessTest,
    ::testing::Combine(::testing::Values<size_t>(2, 3, 6, 10),
                       ::testing::Values(5.0, 10.0, 50.0)));

// Non-correctness is systematic at large radii (the Figure-8 precision
// collapse). On wide scenes (real-data-like coordinate scales, so overlap
// stays rare) the acceptance band |Db - Da| in
// (rab / (Da + Db), rab] widens with mu, producing more false positives.
TEST(TrigonometricTest, FalsePositivesGrowWithRadius) {
  Rng rng(991);
  TrigonometricCriterion c;
  auto wide_scene = [&](double mu) {
    auto sphere = [&]() {
      Point p(4);
      for (auto& v : p) v = rng.Gaussian(1000.0, 250.0);
      return Hypersphere(std::move(p),
                         std::max(0.0, rng.Gaussian(mu, mu / 4.0)));
    };
    return test::Scene{sphere(), sphere(), sphere()};
  };
  int fp_small = 0, fp_large = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const test::Scene small = wide_scene(5.0);
    if (!test::IsBorderline(small) &&
        c.Dominates(small.sa, small.sb, small.sq) &&
        !test::OracleDominates(small)) {
      ++fp_small;
    }
    const test::Scene large = wide_scene(100.0);
    if (!test::IsBorderline(large) &&
        c.Dominates(large.sa, large.sb, large.sq) &&
        !test::OracleDominates(large)) {
      ++fp_large;
    }
  }
  EXPECT_GT(fp_large, fp_small);
  EXPECT_GT(fp_large, 0);
}

TEST(TrigonometricTest, CoincidentCentersRejected) {
  TrigonometricCriterion c;
  const Hypersphere sa({5.0, 5.0}, 1.0);
  const Hypersphere sb({5.0, 5.0}, 2.0);
  EXPECT_FALSE(c.Dominates(sa, sb, Hypersphere({0.0, 0.0}, 1.0)));
}

TEST(TrigonometricTest, PointQueryStillSound) {
  Rng rng(992);
  TrigonometricCriterion c;
  for (int iter = 0; iter < 2000; ++iter) {
    test::Scene s = test::RandomScene(&rng, 3, 10.0);
    s.sq = Hypersphere(s.sq.center(), 0.0);
    if (test::IsBorderline(s)) continue;
    if (!c.Dominates(s.sa, s.sb, s.sq)) {
      EXPECT_FALSE(test::OracleDominates(s)) << test::SceneToString(s);
    }
  }
}

}  // namespace
}  // namespace hyperdom
