// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Tests for the box measures backing the R*-tree heuristics
// (Volume/Margin/OverlapVolume/Union) and the point/sphere MinDist
// variants used by the searchers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geometry/mbr.h"

namespace hyperdom {
namespace {

TEST(BoxMeasuresTest, VolumeAndMargin) {
  const Mbr box({0.0, 0.0, 0.0}, {2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(Volume(box), 24.0);
  EXPECT_DOUBLE_EQ(Margin(box), 9.0);
  const Mbr flat({1.0, 1.0}, {1.0, 5.0});  // degenerate slab
  EXPECT_DOUBLE_EQ(Volume(flat), 0.0);
  EXPECT_DOUBLE_EQ(Margin(flat), 4.0);
}

TEST(BoxMeasuresTest, OverlapVolume) {
  const Mbr a({0.0, 0.0}, {4.0, 4.0});
  EXPECT_DOUBLE_EQ(OverlapVolume(a, Mbr({2.0, 2.0}, {6.0, 6.0})), 4.0);
  EXPECT_DOUBLE_EQ(OverlapVolume(a, Mbr({4.0, 0.0}, {5.0, 4.0})), 0.0);
  EXPECT_DOUBLE_EQ(OverlapVolume(a, Mbr({5.0, 0.0}, {6.0, 4.0})), 0.0);
  EXPECT_DOUBLE_EQ(OverlapVolume(a, a), 16.0);
  EXPECT_DOUBLE_EQ(OverlapVolume(a, Mbr({1.0, 1.0}, {2.0, 2.0})), 1.0);
}

TEST(BoxMeasuresTest, UnionCoversBoth) {
  const Mbr a({0.0, 0.0}, {1.0, 1.0});
  const Mbr b({3.0, -2.0}, {4.0, 0.5});
  const Mbr u = Union(a, b);
  EXPECT_EQ(u.lo(), (Point{0, -2}));
  EXPECT_EQ(u.hi(), (Point{4, 1}));
}

TEST(BoxMeasuresTest, UnionProperties) {
  Rng rng(5100);
  for (int iter = 0; iter < 1000; ++iter) {
    auto random_box = [&]() {
      Point lo(3), hi(3);
      for (int i = 0; i < 3; ++i) {
        lo[i] = rng.Uniform(-10, 10);
        hi[i] = lo[i] + rng.Uniform(0.0, 5.0);
      }
      return Mbr(lo, hi);
    };
    const Mbr a = random_box();
    const Mbr b = random_box();
    const Mbr u = Union(a, b);
    EXPECT_GE(Volume(u) + 1e-12, Volume(a));
    EXPECT_GE(Volume(u) + 1e-12, Volume(b));
    EXPECT_GE(Margin(u) + 1e-12, Margin(a));
    // Overlap is symmetric and bounded by the smaller volume.
    EXPECT_DOUBLE_EQ(OverlapVolume(a, b), OverlapVolume(b, a));
    EXPECT_LE(OverlapVolume(a, b), std::min(Volume(a), Volume(b)) + 1e-12);
  }
}

TEST(BoxPointDistTest, MinDistToPoint) {
  const Mbr box({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(MinDist(box, Point{1.0, 1.0}), 0.0);   // inside
  EXPECT_DOUBLE_EQ(MinDist(box, Point{2.0, 2.0}), 0.0);   // corner
  EXPECT_DOUBLE_EQ(MinDist(box, Point{5.0, 2.0}), 3.0);   // face
  EXPECT_DOUBLE_EQ(MinDist(box, Point{5.0, 6.0}), 5.0);   // corner 3-4-5
}

TEST(BoxPointDistTest, MaxDistToPoint) {
  const Mbr box({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(MaxDist(box, Point{0.0, 0.0}), std::sqrt(8.0));
  EXPECT_DOUBLE_EQ(MaxDist(box, Point{-1.0, -1.0}), std::sqrt(18.0));
  EXPECT_DOUBLE_EQ(MaxDist(box, Point{1.0, 1.0}), std::sqrt(2.0));
}

TEST(BoxSphereDistTest, MinDistToSphere) {
  const Mbr box({0.0, 0.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(MinDist(box, Hypersphere({5.0, 2.0}, 1.0)), 2.0);
  EXPECT_DOUBLE_EQ(MinDist(box, Hypersphere({5.0, 2.0}, 4.0)), 0.0);
  EXPECT_DOUBLE_EQ(MinDist(box, Hypersphere({1.0, 1.0}, 0.5)), 0.0);
}

TEST(BoxPointDistTest, SampledPointsRespectBounds) {
  Rng rng(5101);
  for (int iter = 0; iter < 500; ++iter) {
    Point lo(3), hi(3), p(3);
    for (int i = 0; i < 3; ++i) {
      lo[i] = rng.Uniform(-10, 10);
      hi[i] = lo[i] + rng.Uniform(0.1, 5.0);
      p[i] = rng.Uniform(-20, 20);
    }
    const Mbr box(lo, hi);
    for (int s = 0; s < 20; ++s) {
      Point inside(3);
      for (int i = 0; i < 3; ++i) {
        inside[i] = rng.Uniform(lo[i], hi[i]);
      }
      const double d = Dist(inside, p);
      EXPECT_GE(d, MinDist(box, p) - 1e-9);
      EXPECT_LE(d, MaxDist(box, p) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace hyperdom
