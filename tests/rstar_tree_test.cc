// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/rstar_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree(3);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, SingleInsert) {
  RStarTree tree(2);
  ASSERT_TRUE(tree.Insert(Hypersphere({1.0, 2.0}, 3.0), 7).ok());
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.Height(), 1u);
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_TRUE(tree.root()->is_leaf());
  // The root box is the sphere's box.
  EXPECT_EQ(tree.root()->mbr().lo(), (Point{-2, -1}));
  EXPECT_EQ(tree.root()->mbr().hi(), (Point{4, 5}));
}

TEST(RStarTreeTest, DimensionMismatchRejected) {
  RStarTree tree(2);
  EXPECT_EQ(tree.Insert(Hypersphere({1.0, 2.0, 3.0}, 0.5), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(RStarTreeTest, BadOptionsRejected) {
  RStarTreeOptions options;
  options.max_entries = 3;
  RStarTree tree(2, options);
  EXPECT_EQ(tree.Insert(Hypersphere({0.0, 0.0}, 1.0), 0).code(),
            StatusCode::kInvalidArgument);

  RStarTreeOptions bad_reinsert;
  bad_reinsert.reinsert_fraction = 0.7;
  RStarTree tree2(2, bad_reinsert);
  EXPECT_EQ(tree2.Insert(Hypersphere({0.0, 0.0}, 1.0), 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(RStarTreeTest, SplitsGrowTheTree) {
  RStarTreeOptions options;
  options.max_entries = 4;
  RStarTree tree(2, options);
  Rng rng(1800);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, 2, 2.0), i).ok());
    ASSERT_TRUE(tree.CheckInvariants().ok())
        << "after insert " << i << ": " << tree.CheckInvariants().ToString();
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_GT(tree.Height(), 2u);
}

TEST(RStarTreeTest, ReinsertDisabledStillWorks) {
  RStarTreeOptions options;
  options.reinsert_fraction = 0.0;
  RStarTree tree(3, options);
  Rng rng(1801);
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree.Insert(test::RandomSphere(&rng, 3, 5.0), i).ok());
  }
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, AllIdsPresentAfterBulkLoad) {
  SyntheticSpec spec;
  spec.n = 800;
  spec.dim = 3;
  spec.seed = 1802;
  const auto data = GenerateSynthetic(spec);
  RStarTree tree(3);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_EQ(tree.size(), 800u);
  std::set<uint64_t> ids;
  std::vector<const RStarTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const RStarTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& e : node->entries()) {
        EXPECT_TRUE(ids.insert(e.id).second);
      }
    } else {
      for (const auto& child : node->children()) stack.push_back(child.get());
    }
  }
  EXPECT_EQ(ids.size(), 800u);
}

class RStarTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(RStarTreeInvariantTest, InvariantsHoldAfterBulkLoad) {
  const auto [dim, max_entries] = GetParam();
  SyntheticSpec spec;
  spec.n = 3000;
  spec.dim = dim;
  spec.radius_mean = 10.0;
  spec.seed = 1803 + dim;
  const auto data = GenerateSynthetic(spec);
  RStarTreeOptions options;
  options.max_entries = max_entries;
  RStarTree tree(dim, options);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  // Every data sphere's box is inside the root box.
  const Mbr& root_box = tree.root()->mbr();
  for (const auto& s : data) {
    const Mbr box = Mbr::FromSphere(s);
    for (size_t i = 0; i < dim; ++i) {
      EXPECT_GE(box.lo()[i], root_box.lo()[i] - 1e-9);
      EXPECT_LE(box.hi()[i], root_box.hi()[i] + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RStarTreeInvariantTest,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 10),
                       ::testing::Values<size_t>(4, 8, 24)));

TEST(RStarTreeTest, DuplicateEntriesHandled) {
  RStarTree tree(2);
  for (uint64_t i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Insert(Hypersphere({3.0, 3.0}, 1.0), i).ok());
  }
  EXPECT_EQ(tree.size(), 150u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(RStarTreeTest, HeightStaysLogarithmic) {
  SyntheticSpec spec;
  spec.n = 20'000;
  spec.dim = 4;
  spec.seed = 1804;
  const auto data = GenerateSynthetic(spec);
  RStarTree tree(4);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  EXPECT_LE(tree.Height(), 8u);
  EXPECT_GE(tree.Height(), 3u);
}

}  // namespace
}  // namespace hyperdom
