// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "geometry/focal_frame.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace hyperdom {
namespace {

TEST(FocalFrameTest, AxisAlignedScene) {
  // Foci on the x-axis; cq straight above the midpoint.
  const FocalFrame f = BuildFocalFrame({0.0, 0.0}, {10.0, 0.0}, {5.0, 7.0});
  EXPECT_DOUBLE_EQ(f.alpha, 5.0);
  EXPECT_NEAR(f.y1, 0.0, 1e-12);
  EXPECT_NEAR(f.y2, 7.0, 1e-12);
  EXPECT_EQ(f.mid, (Point{5, 0}));
  EXPECT_EQ(f.axis, (Point{1, 0}));
}

TEST(FocalFrameTest, QueryOnAxis) {
  const FocalFrame f = BuildFocalFrame({0.0, 0.0}, {10.0, 0.0}, {-3.0, 0.0});
  EXPECT_DOUBLE_EQ(f.y1, -8.0);
  EXPECT_DOUBLE_EQ(f.y2, 0.0);
}

TEST(FocalFrameTest, SignConvention) {
  // cq nearer to cb (the +alpha focus) must have positive y1.
  const FocalFrame f = BuildFocalFrame({0.0, 0.0}, {10.0, 0.0}, {9.0, 1.0});
  EXPECT_GT(f.y1, 0.0);
  const FocalFrame g = BuildFocalFrame({0.0, 0.0}, {10.0, 0.0}, {1.0, 1.0});
  EXPECT_LT(g.y1, 0.0);
}

// The defining identities: distances to the foci are reproduced exactly by
// the 2-plane coordinates. This is the property Hyperbola's O(d) bound
// rests on (DESIGN.md).
class FocalFrameIdentityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(FocalFrameIdentityTest, DistanceIdentitiesHold) {
  const size_t dim = GetParam();
  Rng rng(300 + dim);
  for (int iter = 0; iter < 2000; ++iter) {
    Point ca(dim), cb(dim), cq(dim);
    for (size_t i = 0; i < dim; ++i) {
      ca[i] = rng.Gaussian(0, 50);
      cb[i] = rng.Gaussian(0, 50);
      cq[i] = rng.Gaussian(0, 50);
    }
    if (Dist(ca, cb) < 1e-9) continue;
    const FocalFrame f = BuildFocalFrame(ca, cb, cq);
    const double da = std::sqrt((f.y1 + f.alpha) * (f.y1 + f.alpha) +
                                f.y2 * f.y2);
    const double db = std::sqrt((f.y1 - f.alpha) * (f.y1 - f.alpha) +
                                f.y2 * f.y2);
    EXPECT_NEAR(da, Dist(cq, ca), 1e-8 * (1.0 + Dist(cq, ca)));
    EXPECT_NEAR(db, Dist(cq, cb), 1e-8 * (1.0 + Dist(cq, cb)));
    EXPECT_GE(f.y2, 0.0);
    EXPECT_GT(f.alpha, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, FocalFrameIdentityTest,
                         ::testing::Values(1, 2, 3, 5, 10, 50));

TEST(LiftFromFrameTest, RoundTripsTheQueryCenter) {
  Rng rng(310);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t dim = 2 + rng.UniformU64(8);
    Point ca(dim), cb(dim), cq(dim);
    for (size_t i = 0; i < dim; ++i) {
      ca[i] = rng.Gaussian(0, 50);
      cb[i] = rng.Gaussian(0, 50);
      cq[i] = rng.Gaussian(0, 50);
    }
    if (Dist(ca, cb) < 1e-9) continue;
    const FocalFrame f = BuildFocalFrame(ca, cb, cq);
    // Lifting (y1, y2) must land exactly on cq.
    const Point lifted = LiftFromFrame(f, cq, f.y1, f.y2);
    EXPECT_NEAR(Dist(lifted, cq), 0.0, 1e-7 * (1.0 + Norm(cq)));
  }
}

TEST(LiftFromFrameTest, LiftPreservesFrameCoordinates) {
  Rng rng(311);
  for (int iter = 0; iter < 500; ++iter) {
    const size_t dim = 2 + rng.UniformU64(8);
    Point ca(dim), cb(dim), cq(dim);
    for (size_t i = 0; i < dim; ++i) {
      ca[i] = rng.Gaussian(0, 20);
      cb[i] = rng.Gaussian(0, 20);
      cq[i] = rng.Gaussian(0, 20);
    }
    if (Dist(ca, cb) < 1e-9) continue;
    const FocalFrame f = BuildFocalFrame(ca, cb, cq);
    const double t1 = rng.Uniform(-30.0, 30.0);
    const double t2 = rng.Uniform(0.0, 30.0);
    const Point lifted = LiftFromFrame(f, cq, t1, t2);
    // Recompute the lifted point's frame coordinates.
    const Point rel = Sub(lifted, f.mid);
    EXPECT_NEAR(Dot(rel, f.axis), t1, 1e-7 * (1.0 + std::fabs(t1)));
    const double perp_sq = SquaredNorm(rel) - t1 * t1;
    EXPECT_NEAR(std::sqrt(std::max(0.0, perp_sq)), t2,
                1e-6 * (1.0 + t2));
  }
}

TEST(LiftFromFrameTest, HandlesQueryOnAxis) {
  // cq exactly on the focal axis: the orthogonal direction is synthesized.
  const Point ca = {0.0, 0.0, 0.0};
  const Point cb = {10.0, 0.0, 0.0};
  const Point cq = {4.0, 0.0, 0.0};
  const FocalFrame f = BuildFocalFrame(ca, cb, cq);
  EXPECT_DOUBLE_EQ(f.y2, 0.0);
  const Point lifted = LiftFromFrame(f, cq, -1.0, 2.0);
  const Point rel = Sub(lifted, f.mid);
  EXPECT_NEAR(Dot(rel, f.axis), -1.0, 1e-12);
  EXPECT_NEAR(std::sqrt(SquaredNorm(rel) - 1.0), 2.0, 1e-9);
}

}  // namespace
}  // namespace hyperdom
