// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Fault-injection sweeps (common/fault.h). A workload touching every
// fallible subsystem — CSV I/O, all four index builds, snapshot
// save/load, the certified escalation chain — is run with each site armed
// in turn: every failure must surface as a clean Status naming the site
// (or, for the certified degrade sites, as a conservative verdict), never
// as a crash. A seeded 1%-probability randomized run across 10k queries
// then shakes out interactions between sites.

#include "common/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "common/io.h"
#include "data/csv.h"
#include "data/generator.h"
#include "dominance/certified.h"
#include "dominance/criterion.h"
#include "dominance/hyperbola.h"
#include "eval/workload.h"
#include "index/m_tree.h"
#include "index/mutable_ss_tree.h"
#include "index/rotation.h"
#include "index/rstar_tree.h"
#include "index/snapshot.h"
#include "index/ss_tree.h"
#include "index/vp_tree.h"
#include "query/knn.h"

namespace hyperdom {
namespace {

#if !defined(HYPERDOM_FAULT_INJECTION_ENABLED)
TEST(FaultInjectionTest, CompiledOut) {
  GTEST_SKIP() << "built with HYPERDOM_FAULT_INJECTION=OFF";
}
#else

std::vector<Hypersphere> WorkloadData(uint64_t seed, size_t n = 300) {
  SyntheticSpec spec;
  spec.n = n;
  spec.dim = 3;
  spec.radius_mean = 8.0;
  spec.seed = seed;
  return GenerateSynthetic(spec);
}

std::string WorkloadPath(const std::string& name) {
  return ::testing::TempDir() + "hyperdom_fault_" + name;
}

// Disarms the registry when a test ends, whatever happened.
struct RegistryGuard {
  ~RegistryGuard() { FaultRegistry::Instance().Reset(); }
};

// Runs one pass through every fallible subsystem, stopping at the first
// non-OK Status. Certified verdicts cannot fail; they are exercised for
// their degrade sites and checked separately.
Status RunFallibleWorkload(const std::vector<Hypersphere>& data,
                           const std::string& tag) {
  const std::string csv_path = WorkloadPath(tag + ".csv");
  const std::string ss_path = WorkloadPath(tag + "_ss.snap");
  const std::string vp_path = WorkloadPath(tag + "_vp.snap");

  HYPERDOM_RETURN_NOT_OK(SaveSpheresCsv(csv_path, data));
  auto reloaded = LoadSpheresCsv(csv_path);
  HYPERDOM_RETURN_NOT_OK(reloaded.status());

  // Dynamic SS-tree inserts reach insert + split; STR reaches str_pack.
  SsTree dynamic_tree(3);
  for (size_t i = 0; i < data.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(dynamic_tree.Insert(data[i], i));
  }
  SsTree str_tree(3);
  HYPERDOM_RETURN_NOT_OK(str_tree.BulkLoadStr(data));

  HYPERDOM_RETURN_NOT_OK(SaveSnapshot(str_tree, ss_path));
  SsTree ss_loaded(1);
  HYPERDOM_RETURN_NOT_OK(LoadSnapshot(ss_path, &ss_loaded));

  VpTree vp;
  HYPERDOM_RETURN_NOT_OK(vp.Build(data));
  HYPERDOM_RETURN_NOT_OK(SaveSnapshot(vp, vp_path));
  VpTree vp_loaded;
  HYPERDOM_RETURN_NOT_OK(LoadSnapshot(vp_path, &vp_loaded));

  RStarTree rstar(3);
  for (size_t i = 0; i < data.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(rstar.Insert(data[i], i));
  }
  MTree mtree(3);
  for (size_t i = 0; i < data.size(); ++i) {
    HYPERDOM_RETURN_NOT_OK(mtree.Insert(data[i], i));
  }

  // Certified chain: tier 1 (certified/quartic) runs on every call.
  const CertifiedDominance engine;
  for (size_t i = 0; i + 2 < data.size(); i += 3) {
    (void)engine.Decide(data[i], data[i + 1], data[i + 2]);
  }

  // Mutable store: Insert reaches store/insert, an explicit Compact
  // reaches store/compact (auto-compaction stays off below its delta
  // threshold).
  MutableSsTree store(3);
  for (size_t i = 0; i < std::min<size_t>(data.size(), 32); ++i) {
    HYPERDOM_RETURN_NOT_OK(store.Insert(data[i], 10'000 + i));
  }
  HYPERDOM_RETURN_NOT_OK(store.Compact());

  // Snapshot rotation reaches snapshot/rotate.
  const std::string rot_dir = WorkloadPath(tag + "_rot");
  ::mkdir(rot_dir.c_str(), 0755);
  SnapshotRotator rotator(rot_dir, "store");
  const Status rotated = rotator.Persist(str_tree);
  if (auto entries = ListDirectory(rot_dir); entries.ok()) {
    for (const auto& name : *entries) {
      std::remove((rot_dir + "/" + name).c_str());
    }
  }
  ::rmdir(rot_dir.c_str());
  HYPERDOM_RETURN_NOT_OK(rotated);

  std::remove(csv_path.c_str());
  std::remove(ss_path.c_str());
  std::remove(vp_path.c_str());
  return Status::OK();
}

TEST(FaultRegistryTest, ArmSiteFiresExactlyTheNthHit) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  registry.ArmSite("csv/open_read", 3);
  EXPECT_TRUE(registry.Hit("csv/open_read").ok());
  EXPECT_TRUE(registry.Hit("csv/open_read").ok());
  const Status fired = registry.Hit("csv/open_read");
  EXPECT_FALSE(fired.ok());
  EXPECT_NE(fired.message().find("csv/open_read"), std::string::npos);
  // Single-shot: later hits pass again.
  EXPECT_TRUE(registry.Hit("csv/open_read").ok());
  EXPECT_EQ(registry.injected(), 1u);
  // Other sites are unaffected.
  EXPECT_TRUE(registry.Hit("csv/parse_row").ok());
}

TEST(FaultRegistryTest, RandomModeIsDeterministicInSeed) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  auto pattern = [&](uint64_t seed) {
    registry.ArmRandom(seed, 0.3);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!registry.Hit("ss_tree/insert").ok());
    }
    return fired;
  };
  const auto a = pattern(42);
  const auto b = pattern(42);
  const auto c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultRegistryTest, ResetDisarms) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  registry.ArmSite("csv/open_read", 1);
  EXPECT_TRUE(registry.armed());
  registry.Reset();
  EXPECT_FALSE(registry.armed());
  EXPECT_TRUE(registry.Hit("csv/open_read").ok());
  EXPECT_EQ(registry.injected(), 0u);
}

// With counting enabled but no faults (p = 0), the workload must execute
// every Status-returning site at least once — otherwise the sweep below
// proves nothing for the unexecuted sites.
TEST(FaultInjectionTest, WorkloadCoversEveryStatusSite) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  registry.ArmRandom(/*seed=*/1, /*probability=*/0.0);
  const auto data = WorkloadData(7001);
  ASSERT_TRUE(RunFallibleWorkload(data, "coverage").ok());
  for (std::string_view site : AllFaultSites()) {
    if (IsDegradeFaultSite(site)) continue;  // covered by the p=1 test
    // server/* sites run on the network request path, not in this
    // workload; the `server`-labelled suite has its own armed sweep.
    // shard/* sites run in the scatter-gather engine; the `shard`-labelled
    // suite arms them (tests/shard_query_test.cc, shard_partition_test.cc).
    if (site.substr(0, 7) == "server/") continue;
    if (site.substr(0, 6) == "shard/") continue;
    EXPECT_GT(registry.hits(site), 0u) << "site never executed: " << site;
  }
  EXPECT_EQ(registry.injected(), 0u);
}

// Arming each Status site in turn: the workload must fail with a Status
// that names the site — and nothing worse.
TEST(FaultInjectionTest, EverySiteFailsWithCleanStatus) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  const auto data = WorkloadData(7002);
  for (std::string_view site : AllFaultSites()) {
    if (IsDegradeFaultSite(site)) continue;
    if (site.substr(0, 7) == "server/") continue;  // server-suite sweep
    if (site.substr(0, 6) == "shard/") continue;   // shard-suite sweep
    registry.ArmSite(site, 1);
    const Status status = RunFallibleWorkload(data, "sweep");
    EXPECT_FALSE(status.ok()) << "armed site did not surface: " << site;
    EXPECT_NE(status.message().find(site), std::string::npos)
        << "wrong failure for " << site << ": " << status.ToString();
    EXPECT_EQ(registry.injected(), 1u) << site;
  }
}

// Degrade sites (the certified escalation chain) must never produce a
// Status failure — only conservative kUncertain verdicts. Forcing every
// tier to degrade (p = 1) walks the whole chain on each call.
TEST(FaultInjectionTest, DegradeSitesDegradeNeverFail) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  const auto data = WorkloadData(7003, 90);

  registry.ArmRandom(/*seed=*/5, /*probability=*/1.0);
  const CertifiedDominance engine;
  for (size_t i = 0; i + 2 < data.size(); i += 3) {
    const Verdict v = engine.Decide(data[i], data[i + 1], data[i + 2]);
    EXPECT_EQ(v, Verdict::kUncertain)
        << "a fully degraded chain must answer kUncertain";
  }
  for (std::string_view site : AllFaultSites()) {
    if (!IsDegradeFaultSite(site)) continue;
    EXPECT_GT(registry.hits(site), 0u) << "degrade site never hit: " << site;
  }

  // Individually armed, a degraded tier is simply skipped: the chain
  // escalates past it and the workload stays clean end to end.
  for (std::string_view site : AllFaultSites()) {
    if (!IsDegradeFaultSite(site)) continue;
    registry.ArmSite(site, 1);
    const Status status = RunFallibleWorkload(data, "degrade");
    EXPECT_TRUE(status.ok()) << site << ": " << status.ToString();
  }
}

// The acceptance run: seeded 1%-probability faults across 10k certified
// queries plus periodic snapshot/CSV cycles. No crashes; every failure is
// a Status; query answers stay supersets of the exact Definition-2 set
// (degraded verdicts keep entries, never drop them).
TEST(FaultInjectionTest, RandomizedTenThousandQuerySweep) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  const auto data = WorkloadData(7004, 200);
  SsTree tree(3);
  ASSERT_TRUE(tree.BulkLoadStr(data).ok());
  const auto queries = MakeKnnQueries(data, 10'000, 7005);

  HyperbolaCriterion exact;
  const auto certified = MakeCriterion(CriterionKind::kCertified);
  KnnSearcher searcher(certified.get(), KnnOptions{});
  KnnSearcher exact_searcher(&exact, KnnOptions{});

  // Exact answers computed before arming, so they are fault-free.
  std::vector<std::set<uint64_t>> truth;
  truth.reserve(queries.size());
  for (const auto& sq : queries) {
    std::set<uint64_t> ids;
    for (const auto& e : exact_searcher.Search(tree, sq).answers) {
      ids.insert(e.id);
    }
    truth.push_back(std::move(ids));
  }

  registry.ArmRandom(/*seed=*/0xFA17, /*probability=*/0.01);
  uint64_t status_failures = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const KnnResult result = searcher.Search(tree, queries[i]);
    std::set<uint64_t> ids;
    for (const auto& e : result.answers) ids.insert(e.id);
    ASSERT_TRUE(std::includes(ids.begin(), ids.end(), truth[i].begin(),
                              truth[i].end()))
        << "degraded query " << i << " lost an exact answer";
    if (i % 500 == 0) {
      // Interleave fallible subsystems; failures must be clean Statuses.
      const std::string path = WorkloadPath("rand.snap");
      const Status saved = SaveSnapshot(tree, path);
      if (!saved.ok()) {
        ++status_failures;
      } else {
        SsTree loaded(1);
        if (!LoadSnapshot(path, &loaded).ok()) ++status_failures;
        std::remove(path.c_str());
      }
    }
  }
  // With p = 1% over tens of thousands of site executions, faults fired.
  EXPECT_GT(registry.injected(), 0u);
  // Same seed, same workload => identical injection count (determinism).
  const uint64_t first_run = registry.injected();
  registry.ArmRandom(/*seed=*/0xFA17, /*probability=*/0.01);
  for (size_t i = 0; i < queries.size(); ++i) {
    (void)searcher.Search(tree, queries[i]);
    if (i % 500 == 0) {
      const std::string path = WorkloadPath("rand.snap");
      if (SaveSnapshot(tree, path).ok()) {
        SsTree loaded(1);
        (void)LoadSnapshot(path, &loaded);
        std::remove(path.c_str());
      }
    }
  }
  EXPECT_EQ(registry.injected(), first_run);
}

// --- FaultQueryScope: per-query streams under concurrency -----------------

TEST(FaultQueryScopeTest, ActiveAndCurrentQueryIdTrackTheScope) {
  EXPECT_FALSE(FaultQueryScope::Active());
  EXPECT_EQ(FaultQueryScope::CurrentQueryId(), 0u);
  {
    FaultQueryScope outer(7);
    EXPECT_TRUE(FaultQueryScope::Active());
    EXPECT_EQ(FaultQueryScope::CurrentQueryId(), 7u);
    {
      FaultQueryScope inner(9);
      EXPECT_EQ(FaultQueryScope::CurrentQueryId(), 9u);
    }
    // Nesting restores the outer context.
    EXPECT_TRUE(FaultQueryScope::Active());
    EXPECT_EQ(FaultQueryScope::CurrentQueryId(), 7u);
  }
  EXPECT_FALSE(FaultQueryScope::Active());
}

// The firing pattern a query sees inside its scope must be a pure function
// of (seed, site, query id, per-query hit index): the same whether the
// query runs alone, after another query, or concurrently with it.
TEST(FaultQueryScopeTest, QueryStreamIsIndependentOfExecutionOrder) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  constexpr int kHits = 200;

  auto pattern_of = [&](uint64_t query_id) {
    FaultQueryScope scope(query_id);
    std::vector<bool> fired;
    for (int i = 0; i < kHits; ++i) {
      fired.push_back(!registry.Hit("ss_tree/insert").ok());
    }
    return fired;
  };

  registry.ArmRandom(/*seed=*/0x5C0BE, /*probability=*/0.25);
  const auto q3_alone = pattern_of(3);
  const auto q8_alone = pattern_of(8);
  EXPECT_GT(std::count(q3_alone.begin(), q3_alone.end(), true), 0);
  EXPECT_NE(q3_alone, q8_alone) << "distinct queries get distinct streams";

  // Re-arm (clearing global counters) and run in the opposite order: the
  // global per-site counter now assigns different indices, but the
  // query-scoped streams must not care.
  registry.ArmRandom(/*seed=*/0x5C0BE, /*probability=*/0.25);
  EXPECT_EQ(pattern_of(8), q8_alone);
  EXPECT_EQ(pattern_of(3), q3_alone);

  // And concurrently, racing each other on two threads.
  registry.ArmRandom(/*seed=*/0x5C0BE, /*probability=*/0.25);
  std::vector<bool> q3_threaded, q8_threaded;
  std::thread t3([&] { q3_threaded = pattern_of(3); });
  std::thread t8([&] { q8_threaded = pattern_of(8); });
  t3.join();
  t8.join();
  EXPECT_EQ(q3_threaded, q3_alone);
  EXPECT_EQ(q8_threaded, q8_alone);
}

TEST(FaultQueryScopeTest, UnscopedStreamKeepsTheGlobalCounterBehavior) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  auto pattern = [&] {
    std::vector<bool> fired;
    for (int i = 0; i < 100; ++i) {
      fired.push_back(!registry.Hit("ss_tree/insert").ok());
    }
    return fired;
  };
  // A scope that opened and closed must leave the historical
  // global-counter stream untouched for later unscoped callers.
  registry.ArmRandom(/*seed=*/77, /*probability=*/0.3);
  const auto reference = pattern();
  registry.ArmRandom(/*seed=*/77, /*probability=*/0.3);
  { FaultQueryScope scope(1); }
  EXPECT_EQ(pattern(), reference);
}

TEST(FaultQueryScopeTest, ArmSiteNthExecutionStaysProcessWide) {
  RegistryGuard guard;
  auto& registry = FaultRegistry::Instance();
  registry.ArmSite("ss_tree/insert", /*nth=*/3);
  FaultQueryScope scope(5);
  // Single-shot arming counts process-wide executions even inside a
  // query scope: exactly the third hit fires.
  EXPECT_TRUE(registry.Hit("ss_tree/insert").ok());
  EXPECT_TRUE(registry.Hit("ss_tree/insert").ok());
  EXPECT_FALSE(registry.Hit("ss_tree/insert").ok());
  EXPECT_TRUE(registry.Hit("ss_tree/insert").ok());
}

#endif  // HYPERDOM_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace hyperdom
