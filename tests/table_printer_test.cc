// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "eval/table_printer.h"

#include <gtest/gtest.h>

namespace hyperdom {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter table({"a", "b"});
  table.AddRow({"long-cell-content", "x"});
  table.AddRow({"s", "y"});
  const std::string out = table.Render();
  // Find the column of 'x' and 'y': both must start at the same offset.
  const size_t line2 = out.find("long-cell-content");
  const size_t x_off = out.find('x', line2) - line2;
  const size_t line3_start = out.find("s", out.find('x'));
  const size_t y_off = out.find('y', line3_start) - line3_start;
  EXPECT_EQ(x_off, y_off);
}

TEST(TablePrinterTest, EmptyTableStillRendersHeader) {
  TablePrinter table({"only"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);  // header + rule
}

TEST(TablePrinterTest, NoTrailingSpaces) {
  TablePrinter table({"a", "b"});
  table.AddRow({"wide-content", "x"});
  const std::string out = table.Render();
  size_t pos = 0;
  while ((pos = out.find('\n', pos)) != std::string::npos) {
    if (pos > 0) {
      EXPECT_NE(out[pos - 1], ' ');
    }
    ++pos;
  }
}

}  // namespace
}  // namespace hyperdom
