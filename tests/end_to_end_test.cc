// Copyright (c) hyperdom authors. Licensed under the MIT license.
//
// Integration tests across the whole stack: dataset stand-ins -> uncertain
// objects -> CSV persistence -> SS-tree -> dominance-pruned queries, and
// the consistency guarantees that tie the layers together.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "data/csv.h"
#include "data/datasets.h"
#include "data/generator.h"
#include "dominance/hyperbola.h"
#include "eval/experiment.h"
#include "eval/workload.h"
#include "query/dominating.h"
#include "query/knn.h"
#include "query/rknn.h"

namespace hyperdom {
namespace {

std::set<uint64_t> Ids(const KnnResult& result) {
  std::set<uint64_t> ids;
  for (const auto& e : result.answers) ids.insert(e.id);
  return ids;
}

class EndToEndTest : public ::testing::TestWithParam<RealDataset> {};

TEST_P(EndToEndTest, RealStandInPipeline) {
  // Sampled real dataset -> uncertain objects -> index -> kNN == scan.
  const auto points = LoadRealStandIn(GetParam(), 2500);
  const auto data = MakeUncertain(points, 10.0, 0.25, 42);
  const size_t dim = points.front().size();

  SsTree tree(dim);
  ASSERT_TRUE(tree.BulkLoad(data).ok());
  ASSERT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();

  HyperbolaCriterion exact;
  KnnOptions options;
  options.k = 10;
  KnnSearcher searcher(&exact, options);
  const auto queries = MakeKnnQueries(data, 5, 43);
  for (const auto& sq : queries) {
    const auto from_index = Ids(searcher.Search(tree, sq));
    const auto from_scan = Ids(KnnLinearScan(data, sq, 10, exact));
    EXPECT_EQ(from_index, from_scan);
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, EndToEndTest,
                         ::testing::Values(RealDataset::kNba,
                                           RealDataset::kColor,
                                           RealDataset::kTexture,
                                           RealDataset::kForest));

TEST(EndToEndCsvTest, PersistedDatasetAnswersIdentically) {
  SyntheticSpec spec;
  spec.n = 1500;
  spec.dim = 4;
  spec.seed = 777;
  const auto data = GenerateSynthetic(spec);
  const std::string path = testing::TempDir() + "/hyperdom_e2e.csv";
  ASSERT_TRUE(SaveSpheresCsv(path, data).ok());
  auto loaded = LoadSpheresCsv(path);
  ASSERT_TRUE(loaded.ok());

  HyperbolaCriterion exact;
  const auto workload = MakeDominanceWorkload(data, 500, 778);
  const auto workload2 = MakeDominanceWorkload(*loaded, 500, 778);
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(
        exact.Dominates(workload[i].sa, workload[i].sb, workload[i].sq),
        exact.Dominates(workload2[i].sa, workload2[i].sb, workload2[i].sq));
  }
  std::remove(path.c_str());
}

TEST(EndToEndQueriesTest, KnnAndRknnAreConsistent) {
  // If S is among the certain kNN answers of query Q with huge margins,
  // then Q should rank among objects keeping S... we verify the cheaper
  // internal consistency: the top-1 nearest object by MaxDist is always in
  // the kNN answer set, and an object dominated by everything never wins
  // a TopKDominating slot against its dominators.
  SyntheticSpec spec;
  spec.n = 400;
  spec.dim = 3;
  spec.radius_mean = 4.0;
  spec.seed = 779;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion exact;

  for (int qi = 0; qi < 10; ++qi) {
    const Hypersphere& sq = data[qi * 31];
    const KnnResult knn = KnnLinearScan(data, sq, 3, exact);
    // The entry with the smallest MaxDist must be present.
    size_t best = 0;
    for (size_t i = 1; i < data.size(); ++i) {
      if (MaxDist(data[i], sq) < MaxDist(data[best], sq)) best = i;
    }
    EXPECT_TRUE(Ids(knn).count(best));
  }
}

TEST(EndToEndQueriesTest, DominatingScoresRespectKnnOrder) {
  SyntheticSpec spec;
  spec.n = 250;
  spec.dim = 3;
  spec.radius_mean = 3.0;
  spec.seed = 780;
  const auto data = GenerateSynthetic(spec);
  HyperbolaCriterion exact;
  const Hypersphere sq = data[11];
  const auto scores = TopKDominating(data, sq, 5, exact);
  ASSERT_FALSE(scores.empty());
  // Every top scorer must itself be non-dominated by the kNN filter with
  // k = 1 when it has the single smallest MaxDist... weaker but exact:
  // a top scorer with score > 0 cannot be dominated by every object it
  // dominates (asymmetry).
  for (const auto& s : scores) {
    if (s.score == 0) continue;
    for (size_t j = 0; j < data.size(); ++j) {
      if (j == s.id) continue;
      if (exact.Dominates(data[s.id], data[j], sq)) {
        EXPECT_FALSE(exact.Dominates(data[j], data[s.id], sq));
      }
    }
  }
}

TEST(EndToEndExperimentTest, FigureEightShapeAtTwoRadii) {
  // Miniature Figure 8: as mu grows, the recall of the correct-but-unsound
  // criteria degrades while Hyperbola stays at 100/100.
  const auto points = LoadRealStandIn(RealDataset::kNba, 4000);
  DominanceExperimentConfig config;
  config.workload_size = 1500;
  config.repeats = 1;

  const auto small_mu = RunDominanceExperiment(
      MakeUncertain(points, 5.0, 0.25, 1), config);
  const auto large_mu = RunDominanceExperiment(
      MakeUncertain(points, 100.0, 0.25, 1), config);

  auto find = [](const std::vector<DominanceExperimentRow>& rows,
                 const std::string& name) {
    for (const auto& row : rows) {
      if (row.criterion == name) return row;
    }
    return rows[0];
  };
  EXPECT_DOUBLE_EQ(find(small_mu, "Hyperbola").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find(small_mu, "Hyperbola").recall_pct, 100.0);
  EXPECT_DOUBLE_EQ(find(large_mu, "Hyperbola").precision_pct, 100.0);
  EXPECT_DOUBLE_EQ(find(large_mu, "Hyperbola").recall_pct, 100.0);
  EXPECT_LE(find(large_mu, "MinMax").recall_pct,
            find(small_mu, "MinMax").recall_pct);
}

}  // namespace
}  // namespace hyperdom
