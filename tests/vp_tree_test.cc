// Copyright (c) hyperdom authors. Licensed under the MIT license.

#include "index/vp_tree.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "test_util.h"

namespace hyperdom {
namespace {

TEST(VpTreeTest, EmptyBuild) {
  VpTree tree;
  ASSERT_TRUE(tree.Build({}).ok());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.root(), nullptr);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(VpTreeTest, SmallBuildIsLeafBucket) {
  VpTreeOptions options;
  options.leaf_size = 8;
  VpTree tree(options);
  SyntheticSpec spec;
  spec.n = 5;
  spec.dim = 3;
  spec.seed = 1900;
  ASSERT_TRUE(tree.Build(GenerateSynthetic(spec)).ok());
  ASSERT_NE(tree.root(), nullptr);
  EXPECT_TRUE(tree.root()->is_leaf());
  EXPECT_EQ(tree.root()->bucket().size(), 5u);
}

TEST(VpTreeTest, BadOptionsRejected) {
  VpTreeOptions options;
  options.leaf_size = 0;
  VpTree tree(options);
  EXPECT_EQ(tree.Build({Hypersphere({0.0}, 1.0)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(VpTreeTest, MixedDimensionsRejected) {
  VpTree tree;
  EXPECT_EQ(
      tree.Build({Hypersphere({0.0, 0.0}, 1.0), Hypersphere({0.0}, 1.0)})
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(VpTreeTest, RebuildReplacesContents) {
  VpTree tree;
  SyntheticSpec spec;
  spec.n = 100;
  spec.dim = 2;
  spec.seed = 1901;
  ASSERT_TRUE(tree.Build(GenerateSynthetic(spec)).ok());
  EXPECT_EQ(tree.size(), 100u);
  spec.n = 50;
  ASSERT_TRUE(tree.Build(GenerateSynthetic(spec)).ok());
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

class VpTreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(VpTreeInvariantTest, InvariantsAndCompleteness) {
  const auto [dim, leaf_size] = GetParam();
  SyntheticSpec spec;
  spec.n = 2500;
  spec.dim = dim;
  spec.radius_mean = 8.0;
  spec.seed = 1902 + dim;
  const auto data = GenerateSynthetic(spec);
  VpTreeOptions options;
  options.leaf_size = leaf_size;
  VpTree tree(options);
  ASSERT_TRUE(tree.Build(data).ok());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();

  // Every id present exactly once.
  std::set<uint64_t> ids;
  std::vector<const VpTreeNode*> stack = {tree.root()};
  while (!stack.empty()) {
    const VpTreeNode* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      for (const auto& e : node->bucket()) {
        EXPECT_TRUE(ids.insert(e.id).second);
      }
    } else {
      EXPECT_TRUE(ids.insert(node->vantage().id).second);
      if (node->inside() != nullptr) stack.push_back(node->inside());
      if (node->outside() != nullptr) stack.push_back(node->outside());
    }
  }
  EXPECT_EQ(ids.size(), data.size());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, VpTreeInvariantTest,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 10),
                       ::testing::Values<size_t>(1, 4, 32)));

TEST(VpTreeTest, DuplicateCentersHandled) {
  std::vector<Hypersphere> data(300, Hypersphere({5.0, 5.0}, 1.0));
  VpTree tree;
  ASSERT_TRUE(tree.Build(data).ok());
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

TEST(VpTreeTest, MaxRadiusTracksFattestSphere) {
  std::vector<Hypersphere> data;
  Rng rng(1903);
  double fattest = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double r = rng.Uniform(0.0, 30.0);
    fattest = std::max(fattest, r);
    data.emplace_back(test::RandomPoint(&rng, 3), r);
  }
  VpTree tree;
  ASSERT_TRUE(tree.Build(data).ok());
  EXPECT_DOUBLE_EQ(tree.root()->max_radius(), fattest);
}

}  // namespace
}  // namespace hyperdom
